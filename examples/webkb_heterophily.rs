//! Paradigm II end-to-end: an oriented heterophilous web-page network (the
//! Texas/WebKB replica). Direction carries the class signal here, so AMUD
//! keeps the digraph and directed models win — exactly observation O1 of
//! the paper's Fig. 2.
//!
//! ```sh
//! cargo run --example webkb_heterophily --release
//! ```

use amud_repro::core::amud::rank_patterns;
use amud_repro::core::{paradigm, paradigm::Paradigm, Adpa, AdpaConfig};
use amud_repro::datasets::{replica, ReplicaScale};
use amud_repro::graph::patterns::PatternSet;
use amud_repro::models::{dirgnn::DirGnn, gcn::Gcn};
use amud_repro::train::{train, GraphData, TrainConfig};

fn main() {
    let dataset = replica("texas", ReplicaScale::default(), 5);
    let data = GraphData::new(
        &dataset.graph,
        dataset.features.clone(),
        dataset.split.train.clone(),
        dataset.split.val.clone(),
        dataset.split.test.clone(),
    )
    .expect("replica bundles are well-formed");

    // AMUD: strongly oriented heterophily → keep the digraph.
    let (prepared, report, par) = paradigm::prepare_topology(&data);
    println!("AMUD score S = {:.3} → Paradigm {par:?}", report.score);
    assert_eq!(par, Paradigm::II);

    // Which directed patterns carry the signal? (Sec. IV-B DP selection.)
    let patterns = PatternSet::up_to_order(&data.adj, 2).expect("square adjacency");
    let ranked =
        rank_patterns(patterns.operators(), &data.labels, data.n_classes, Some(&data.train));
    println!("\nDP operators ranked by label correlation:");
    for (idx, r) in &ranked {
        println!("  {:<6} r = {:+.4}", patterns.patterns()[*idx].name(), r);
    }

    // Contrast: an undirected GCN on the coarse U- transformation vs a
    // directed GNN and ADPA on the natural digraph.
    let cfg = TrainConfig {
        epochs: 150,
        patience: 30,
        lr: 0.01,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    };

    let undirected = data.to_undirected();
    let mut gcn = Gcn::new(&undirected, 64, 0.4, 0);
    let gcn_acc = train(&mut gcn, &undirected, cfg, 0).expect("training diverged").test_acc;

    let mut dirgnn = DirGnn::new(&prepared, 64, 0.4, 0);
    let dir_acc = train(&mut dirgnn, &prepared, cfg, 0).expect("training diverged").test_acc;

    let mut adpa = Adpa::new(&prepared, AdpaConfig::default(), 0).unwrap();
    let adpa_acc = train(&mut adpa, &prepared, cfg, 0).expect("training diverged").test_acc;

    println!("\ntest accuracy:");
    println!("  U-GCN    {gcn_acc:.3}   (coarse undirected transformation)");
    println!("  D-DirGNN {dir_acc:.3}   (natural digraph)");
    println!("  D-ADPA   {adpa_acc:.3}   (natural digraph, DP attention)");
    println!("\nExpected: the directed models exploit orientation that U-GCN destroyed.");
}
