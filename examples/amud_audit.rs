//! Audit every benchmark replica with the full metric suite: the five
//! classic homophily measures (directed and undirected views) and the AMUD
//! guidance score — the data-engineering view of Tables I & II.
//!
//! ```sh
//! cargo run --example amud_audit --release
//! ```

use amud_repro::core::amud::amud_score;
use amud_repro::datasets::{all_replicas, ReplicaScale};
use amud_repro::graph::measures::homophily_report;

fn main() {
    println!(
        "{:<18} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}  decision",
        "dataset", "Hnode", "Hedge", "Hclass", "Hadj", "LI", "S", "θ"
    );
    for d in all_replicas(ReplicaScale::default(), 42) {
        let h = homophily_report(&d.graph);
        let amud = amud_score(d.graph.adjacency(), d.labels(), d.n_classes());
        println!(
            "{:<18} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.2}  {:?} (paper: {:?})",
            d.name(),
            h.node,
            h.edge,
            h.class,
            h.adjusted,
            h.label_informativeness,
            amud.score,
            amud.theta,
            amud.decision,
            d.spec.regime,
        );
    }
    println!(
        "\nNote how the classic measures conflate Actor (orientation-uninformative)\n\
         with Chameleon (orientation-informative) — both 'heterophilous' — while\n\
         the AMUD score separates them. That separation is the paper's Table V story."
    );
}
