//! Paradigm I end-to-end: a homophilous citation network (the CoraML
//! replica) flows through AMUD, gets the undirected transformation, and is
//! served both by a classic undirected GNN and by ADPA — the workflow the
//! paper's Fig. 1 draws for `AMUndirected` data.
//!
//! ```sh
//! cargo run --example citation_pipeline --release
//! ```

use amud_repro::core::{paradigm, paradigm::Paradigm, Adpa, AdpaConfig};
use amud_repro::datasets::{replica, ReplicaScale};
use amud_repro::graph::measures::homophily_report;
use amud_repro::models::registry::build_model;
use amud_repro::train::{repeat_runs, GraphData, TrainConfig};

fn main() {
    let dataset = replica("cora_ml", ReplicaScale::default(), 11);
    let data = GraphData::new(
        &dataset.graph,
        dataset.features.clone(),
        dataset.split.train.clone(),
        dataset.split.val.clone(),
        dataset.split.test.clone(),
    )
    .expect("replica bundles are well-formed");

    // Homophily audit, directed vs undirected view (Table I's comparison).
    let d_report = homophily_report(&dataset.graph);
    let u_report = homophily_report(&dataset.graph.to_undirected());
    println!("citation network homophily:");
    println!("  directed:   H_edge = {:.3}  H_adj = {:.3}", d_report.edge, d_report.adjusted);
    println!("  undirected: H_edge = {:.3}  H_adj = {:.3}", u_report.edge, u_report.adjusted);

    // AMUD sends homophilous citation graphs down Paradigm I.
    let (prepared, report, par) = paradigm::prepare_topology(&data);
    println!("\nAMUD score S = {:.3} → Paradigm {par:?}", report.score);
    assert_eq!(par, Paradigm::I);
    assert!(prepared.is_undirected());

    // Paradigm I: a well-designed undirected GNN is a strong choice...
    let cfg = TrainConfig {
        epochs: 150,
        patience: 30,
        lr: 0.01,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    };
    struct Shim(Box<dyn amud_repro::train::Model>);
    impl amud_repro::train::Model for Shim {
        fn bank(&self) -> &amud_repro::nn::ParamBank {
            self.0.bank()
        }
        fn bank_mut(&mut self) -> &mut amud_repro::nn::ParamBank {
            self.0.bank_mut()
        }
        fn forward(
            &self,
            tape: &mut amud_repro::nn::Tape,
            data: &GraphData,
            training: bool,
            rng: &mut rand::rngs::StdRng,
        ) -> amud_repro::nn::NodeId {
            self.0.forward(tape, data, training, rng)
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
    }
    for name in ["GCN", "GPRGNN", "BernNet"] {
        let out = repeat_runs(|s| Ok(Shim(build_model(name, &prepared, s))), &prepared, cfg, 3, 0);
        println!("  {name:<10} test acc {}", out.summary);
    }

    // ...and ADPA remains competitive on the same undirected input (the
    // paper's "feasible for both scenarios" claim).
    let out = repeat_runs(|s| Adpa::new(&prepared, AdpaConfig::default(), s), &prepared, cfg, 3, 0);
    println!("  {:<10} test acc {}", "ADPA", out.summary);
}
