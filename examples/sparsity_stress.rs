//! Robustness under real-world sparsity (the paper's Q4 / Fig. 7): stress
//! a digraph replica with missing features, missing edges and scarce
//! labels, and watch how ADPA degrades compared to a coupled baseline.
//!
//! ```sh
//! cargo run --example sparsity_stress --release
//! ```

use amud_repro::core::{Adpa, AdpaConfig};
use amud_repro::datasets::sparsify::{drop_edges, limit_labels, mask_features};
use amud_repro::datasets::{replica, Dataset, ReplicaScale};
use amud_repro::models::dirgnn::DirGnn;
use amud_repro::train::{train, GraphData, TrainConfig};

fn bundle(d: &Dataset) -> GraphData {
    GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .expect("replica bundles are well-formed")
}

fn eval(data: &GraphData) -> (f64, f64) {
    let cfg = TrainConfig {
        epochs: 120,
        patience: 25,
        lr: 0.01,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    };
    let mut adpa = Adpa::new(data, AdpaConfig::default(), 0).unwrap();
    let adpa_acc = train(&mut adpa, data, cfg, 0).expect("training diverged").test_acc;
    let mut dirgnn = DirGnn::new(data, 64, 0.4, 0);
    let dir_acc = train(&mut dirgnn, data, cfg, 0).expect("training diverged").test_acc;
    (adpa_acc, dir_acc)
}

fn main() {
    let base = replica("squirrel", ReplicaScale::default(), 3);
    println!("squirrel replica: {} nodes, {} edges\n", base.n_nodes(), base.graph.n_edges());
    println!("{:<28} {:>8} {:>8}", "stressor", "ADPA", "DirGNN");

    let (a, d) = eval(&bundle(&base));
    println!("{:<28} {a:>8.3} {d:>8.3}", "none");

    for frac in [0.4, 0.8] {
        let (a, d) = eval(&bundle(&mask_features(&base, frac, 1)));
        println!(
            "{:<28} {a:>8.3} {d:>8.3}",
            format!("features masked {frac:.0}%", frac = frac * 100.0)
        );
    }
    for frac in [0.4, 0.8] {
        let (a, d) = eval(&bundle(&drop_edges(&base, frac, 2)));
        println!(
            "{:<28} {a:>8.3} {d:>8.3}",
            format!("edges removed {frac:.0}%", frac = frac * 100.0)
        );
    }
    for per_class in [10usize, 3] {
        let (a, d) = eval(&bundle(&limit_labels(&base, per_class)));
        println!("{:<28} {a:>8.3} {d:>8.3}", format!("labels/class = {per_class}"));
    }
    println!("\nExpected: both degrade with sparsity, ADPA more gracefully (larger receptive field\nvia K-step DP propagation compensates for missing local signal).");
}
