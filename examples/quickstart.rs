//! Quickstart: generate a natural digraph, ask AMUD how to model it, and
//! train ADPA under the recommended paradigm.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use amud_repro::core::{amud::AmudDecision, paradigm, Adpa, AdpaConfig};
use amud_repro::datasets::{replica, ReplicaScale};
use amud_repro::train::{train, GraphData, TrainConfig};

fn main() {
    // 1. A "newly collected" digraph: the Chameleon replica — heterophilous
    //    wiki-page network whose edge *orientation* carries class signal.
    let dataset = replica("chameleon", ReplicaScale::default(), 7);
    let data = GraphData::new(
        &dataset.graph,
        dataset.features.clone(),
        dataset.split.train.clone(),
        dataset.split.val.clone(),
        dataset.split.test.clone(),
    )
    .expect("replica bundles are well-formed");
    println!(
        "dataset: {} ({} nodes, {} directed edges, {} classes)",
        dataset.name(),
        dataset.n_nodes(),
        dataset.graph.n_edges(),
        dataset.n_classes()
    );

    // 2. AMUD guidance (Fig. 1): correlate 2-order directed patterns with
    //    the training labels and decide directed vs undirected modeling.
    let (prepared, report, paradigm) = paradigm::prepare_topology(&data);
    println!("\nAMUD report (threshold θ = {}):", report.theta);
    for c in &report.correlations {
        println!("  r({}, labels) = {:+.4}   R² = {:.5}", c.pattern, c.r, c.r_squared);
    }
    println!(
        "  guidance score S = {:.3} → {:?} (Paradigm {:?})",
        report.score, report.decision, paradigm
    );
    assert_eq!(report.decision, AmudDecision::Directed, "chameleon should stay directed");

    // 3. Train ADPA on the prepared topology.
    let mut model = Adpa::new(&prepared, AdpaConfig::default(), 0).unwrap();
    println!(
        "\nADPA: {} DP operators {:?}, {} parameters",
        model.pattern_names().len(),
        model.pattern_names(),
        amud_repro::train::Model::n_parameters(&model),
    );
    let cfg = TrainConfig {
        epochs: 150,
        patience: 30,
        lr: 0.01,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    };
    let result = train(&mut model, &prepared, cfg, 0).expect("training diverged");
    println!(
        "trained {} epochs — best val acc {:.3}, test acc {:.3}",
        result.epochs_run, result.best_val_acc, result.test_acc
    );
}
