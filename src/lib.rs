//! # amud-repro
//!
//! Umbrella crate for the Rust reproduction of *"Breaking the Entanglement of
//! Homophily and Heterophily in Semi-supervised Node Classification"*
//! (ICDE 2024). It re-exports the public API of every workspace crate so the
//! examples and integration tests have a single import root.
//!
//! The two contributions of the paper live in [`core`]:
//!
//! * [`core::amud`] — AMUD, the statistical guidance that decides whether a
//!   natural digraph should be modeled directed or undirected.
//! * [`core::adpa`] — ADPA, the adaptive directed-pattern aggregation model.
//!
//! The remaining crates are the substrates the paper depends on: a sparse
//! graph engine ([`graph`]), an autodiff engine ([`nn`]), synthetic dataset
//! replicas ([`datasets`]), fifteen baseline GNNs ([`models`]), a training
//! harness ([`train`]) and an online inference service ([`serve`]).

pub use amud_core as core;
pub use amud_datasets as datasets;
pub use amud_graph as graph;
pub use amud_models as models;
pub use amud_nn as nn;
pub use amud_quant as quant;
pub use amud_serve as serve;
pub use amud_train as train;
