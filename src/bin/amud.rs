//! `amud` — command-line front door to the reproduction.
//!
//! ```text
//! amud score    <dataset|file.amud>      AMUD report for a digraph
//! amud train    <dataset> [model] [--verify-tape] [--max-retries N]
//!                                        train one model end-to-end,
//!                                        optionally printing the tape
//!                                        verifier's report first
//! amud export   <dataset> <file.amud>    write a replica to disk
//! amud snapshot <dataset> --out <file.snap> [--tag N]
//!                                        train ADPA and write a serving
//!                                        snapshot artifact
//! amud serve    --snapshot <file.snap> [--port N] [--queue-capacity N]
//!               [--max-batch N] [--max-connections N]
//!               [--default-deadline-ms N] [--watch-interval-ms N]
//!               [--batch-delay-ms N]     serve predictions over TCP
//! amud list                              datasets and models available
//! ```
//!
//! `<dataset>` is a replica name from Table II (`cora_ml`, `texas`, …);
//! anything ending in `.amud` is loaded from disk instead. Scale and
//! repeats respect the `AMUD_SCALE` / `AMUD_EPOCHS` environment knobs;
//! `AMUD_CACHE=off` disables the precompute cache (bit-identical outputs,
//! only wall-clock changes).
//!
//! Every failure maps onto a distinct exit code (see the README table):
//! 1 I/O, 2 usage, 3 bad input, 4 dataset parse, 5 verifier rejected,
//! 6 non-finite loss, 7 gradient explosion, 8 train timeout, 9 snapshot
//! rejected, 10 deadline, 11 overload, 12 bad request.

use amud_repro::core::{paradigm, Adpa, AdpaConfig};
use amud_repro::datasets::registry::all_specs;
use amud_repro::datasets::{try_replica, Dataset, DatasetError, ReplicaScale};
use amud_repro::models::registry::{
    build_model, extra_model_names, is_directed_model, model_names,
};
use amud_repro::train::{train, GraphData, Model, TrainConfig, TrainError};

fn env_scale() -> ReplicaScale {
    // TAINT-PURE(env_scale): AMUD_SCALE only selects among the fixed
    // ReplicaScale presets; the env value itself never reaches data.
    match std::env::var("AMUD_SCALE").as_deref() {
        Ok("tiny") => ReplicaScale::tiny(),
        Ok("full") => ReplicaScale::full(),
        _ => ReplicaScale::default(),
    }
}

fn load_dataset(arg: &str) -> Dataset {
    if arg.ends_with(".amud") {
        let text = std::fs::read_to_string(arg)
            .unwrap_or_else(|e| die(&format!("cannot read {arg}: {e}"), 1));
        amud_repro::datasets::io::dataset_from_text(&text).unwrap_or_else(|e: DatasetError| {
            die(&format!("cannot parse {arg}: {e}"), e.exit_code())
        })
    } else {
        try_replica(arg, env_scale(), 42).unwrap_or_else(|e| die(&e.to_string(), e.exit_code()))
    }
}

fn to_bundle(d: &Dataset) -> GraphData {
    GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .unwrap_or_else(|e| die(&e.to_string(), e.exit_code()))
}

fn die(msg: &str, code: i32) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(code)
}

fn cmd_score(target: &str) {
    let d = load_dataset(target);
    let data = to_bundle(&d);
    let (report, par) = paradigm::decide(&data);
    println!(
        "dataset: {} ({} nodes, {} edges, {} classes)",
        d.name(),
        d.n_nodes(),
        d.graph.n_edges(),
        d.n_classes()
    );
    println!("\nper-pattern correlations with node profiles:");
    for c in &report.correlations {
        println!(
            "  {:<6} r = {:+.4}   R² = {:.6}   combined R² = {:.6}   floor = {:.6}",
            c.pattern.name(),
            c.r,
            c.r_squared,
            c.r_squared_combined,
            c.noise_floor
        );
    }
    println!("\nguidance score S = {:.3} (θ = {})", report.score, report.theta);
    println!("decision: {:?} → Paradigm {:?}", report.decision, par);
}

/// Statically verifies the tape a model records and prints the findings.
/// Exits with the verifier's code when the graph is wrong (mirrors the
/// trainer's mandatory pre-flight, but with a readable report).
fn report_verification(label: &str, model: &dyn Model, input: &GraphData) {
    use amud_repro::nn::verify::{has_errors, render};
    let diags = amud_repro::train::verify_model(model, input, 0);
    if diags.is_empty() {
        println!("verify-tape: {label}: clean ({} params)", model.bank().len());
    } else {
        println!("verify-tape: {label}: {} finding(s)\n{}", diags.len(), render(&diags));
        if has_errors(&diags) {
            die(
                "tape verification failed",
                TrainError::VerifierRejected { model: label.to_string(), report: String::new() }
                    .exit_code(),
            );
        }
    }
}

/// Reports a training outcome, exiting with the error's code on failure.
fn finish(result: Result<amud_repro::train::TrainResult, TrainError>) {
    match result {
        Ok(result) => {
            for ev in &result.recovery.events {
                println!(
                    "recovered at epoch {} ({:?}) — rolled back to epoch {}, lr -> {}",
                    ev.epoch, ev.cause, ev.restored_epoch, ev.new_lr
                );
            }
            println!(
                "done in {} epochs ({} kernel thread{}) — best val acc {:.3}, test acc {:.3}",
                result.epochs_run,
                result.threads,
                if result.threads == 1 { "" } else { "s" },
                result.best_val_acc,
                result.test_acc
            );
            if result.cache.total() > 0 {
                println!("precompute cache: {}", result.cache);
            }
        }
        Err(e) => die(&e.to_string(), e.exit_code()),
    }
}

fn cmd_train(target: &str, model_name: &str, verify_tape: bool, max_retries: Option<usize>) {
    let d = load_dataset(target);
    let data = to_bundle(&d);
    // TAINT-PURE(epochs): a user-facing epoch budget only bounds the
    // training loop; it never enters tensor values or cache keys.
    let epochs: usize =
        std::env::var("AMUD_EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(150);
    let cfg = TrainConfig {
        epochs,
        patience: 30,
        lr: 0.01,
        weight_decay: 5e-4,
        max_retries: max_retries.unwrap_or(TrainConfig::default().max_retries),
        ..TrainConfig::default()
    };
    println!("training {model_name} on {} ({} nodes)...", d.name(), d.n_nodes());
    if model_name == "ADPA" {
        let (prepared, report, _) = paradigm::prepare_topology(&data);
        println!("AMUD S = {:.3} → {:?}", report.score, report.decision);
        let mut model = Adpa::new(&prepared, AdpaConfig::default(), 0)
            .unwrap_or_else(|e| die(&e.to_string(), e.exit_code()));
        if verify_tape {
            report_verification("ADPA", &model, &prepared);
        }
        finish(train(&mut model, &prepared, cfg, 0));
    } else {
        struct Shim(Box<dyn Model>);
        impl Model for Shim {
            fn bank(&self) -> &amud_repro::nn::ParamBank {
                self.0.bank()
            }
            fn bank_mut(&mut self) -> &mut amud_repro::nn::ParamBank {
                self.0.bank_mut()
            }
            fn forward(
                &self,
                tape: &mut amud_repro::nn::Tape,
                data: &GraphData,
                training: bool,
                rng: &mut rand::rngs::StdRng,
            ) -> amud_repro::nn::NodeId {
                self.0.forward(tape, data, training, rng)
            }
            fn name(&self) -> &'static str {
                self.0.name()
            }
        }
        if !model_names().contains(&model_name) && !extra_model_names().contains(&model_name) {
            die(
                &format!("unknown model '{model_name}' (run `amud list` for the available models)"),
                TrainError::bad_input("").exit_code(),
            );
        }
        let input = if is_directed_model(model_name) { data.clone() } else { data.to_undirected() };
        let mut model = Shim(build_model(model_name, &input, 0));
        if verify_tape {
            report_verification(model_name, &model, &input);
        }
        finish(train(&mut model, &input, cfg, 0));
    }
}

/// Small `--flag value` parser for the serving subcommands (they carry
/// too many knobs for positional args).
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String], allowed: &[&str]) -> Flags {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                die(&format!("unexpected argument '{a}' (flags only here)"), 2);
            };
            if !allowed.contains(&name) {
                die(&format!("unknown flag '--{name}' (allowed: --{})", allowed.join(", --")), 2);
            }
            let Some(value) = it.next() else {
                die(&format!("--{name} needs a value"), 2);
            };
            out.push((name.to_string(), value.clone()));
        }
        Flags(out)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => {
                v.parse().unwrap_or_else(|_| die(&format!("--{name}: '{v}' is not a number"), 2))
            }
        }
    }
}

fn cmd_snapshot(dataset: &str, flags: &Flags) {
    let Some(out_path) = flags.get("out") else {
        die("snapshot needs --out <file.snap>", 2);
    };
    let tag: u64 = flags.num("tag", 1);
    // Validate the quantization spec before spending a training run on it.
    let quant_spec = flags.get("quantize").map(|spec| {
        amud_repro::quant::QuantSpec::parse(spec).unwrap_or_else(|| {
            die(
                &format!(
                    "--quantize: unknown precision '{spec}' (want f32, f16, or int8, optionally features:weights)"
                ),
                2,
            )
        })
    });
    let d = load_dataset(dataset);
    let data = to_bundle(&d);
    // TAINT-PURE(epochs): a user-facing epoch budget only bounds the
    // training loop; it never enters tensor values or cache keys.
    let epochs: usize =
        std::env::var("AMUD_EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(150);
    let cfg = TrainConfig { epochs, patience: 30, ..TrainConfig::default() };
    println!("training ADPA on {} ({} nodes) for the snapshot...", d.name(), d.n_nodes());
    let (prepared, report, _) = paradigm::prepare_topology(&data);
    println!("AMUD S = {:.3} → {:?}", report.score, report.decision);
    let mut model = Adpa::new(&prepared, AdpaConfig::default(), 0)
        .unwrap_or_else(|e| die(&e.to_string(), e.exit_code()));
    let result =
        train(&mut model, &prepared, cfg, 0).unwrap_or_else(|e| die(&e.to_string(), e.exit_code()));
    let mut snapshot = amud_repro::serve::Snapshot::from_export(tag, model.export());
    if let Some(spec) = quant_spec {
        snapshot = snapshot.requantized(spec);
    }
    let bytes = amud_repro::serve::write_snapshot(std::path::Path::new(out_path), &snapshot)
        .unwrap_or_else(|e| die(&e.to_string(), amud_serve_exit(&e)));
    println!(
        "wrote snapshot tag {tag} ({} features / {} weights, {bytes} bytes, test acc {:.3}) to {out_path}",
        snapshot.export.spec().features.name(),
        snapshot.export.spec().weights.name(),
        result.test_acc
    );
}

fn amud_serve_exit(e: &amud_repro::serve::SnapshotError) -> i32 {
    amud_repro::serve::ServeError::from(e.clone()).exit_code()
}

fn cmd_serve(flags: &Flags) {
    let Some(snapshot_path) = flags.get("snapshot") else {
        die("serve needs --snapshot <file.snap>", 2);
    };
    let defaults = amud_repro::serve::ServerConfig::default();
    let cfg = amud_repro::serve::ServerConfig {
        snapshot_path: snapshot_path.into(),
        port: flags.num("port", defaults.port),
        queue_capacity: flags.num("queue-capacity", defaults.queue_capacity),
        max_batch: flags.num("max-batch", defaults.max_batch),
        max_connections: flags.num("max-connections", defaults.max_connections),
        default_deadline_ms: flags.num("default-deadline-ms", defaults.default_deadline_ms),
        watch_interval_ms: flags.num("watch-interval-ms", defaults.watch_interval_ms),
        batch_delay_ms: flags.num("batch-delay-ms", defaults.batch_delay_ms),
        ..defaults
    };
    let server = amud_repro::serve::Server::start(cfg)
        .unwrap_or_else(|e| die(&e.to_string(), e.exit_code()));
    println!("listening on 127.0.0.1:{}", server.port());
    // Stdout is block-buffered when piped; the listening line is how
    // harnesses learn the ephemeral port, so push it out now.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    server.wait();
    // A supervising harness may have closed our stdout long ago; a dead
    // pipe must not turn a clean shutdown into a panic.
    let _ = std::io::Write::write_all(&mut std::io::stdout(), b"server stopped\n");
}

fn cmd_export(dataset: &str, path: &str) {
    let d = load_dataset(dataset);
    let text = amud_repro::datasets::io::dataset_to_text(&d);
    std::fs::write(path, text).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}"), 1));
    println!("wrote {} ({} nodes, {} edges) to {path}", d.name(), d.n_nodes(), d.graph.n_edges());
}

fn cmd_list() {
    println!("datasets (Table II replicas):");
    for s in all_specs() {
        println!(
            "  {:<18} {:>6} nodes {:>7} edges  {:?}",
            s.name, s.paper_nodes, s.paper_edges, s.regime
        );
    }
    println!("\nbaseline models: {}", model_names().join(", "));
    println!("extra models:    {}", extra_model_names().join(", "));
    println!("and ADPA (the paper's model).");
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // The serving subcommands are flag-driven; route them before the
    // legacy positional parser (which rejects unknown flags).
    match raw.first().map(String::as_str) {
        Some("snapshot") => {
            let Some(dataset) = raw.get(1).filter(|d| !d.starts_with("--")) else {
                die("usage: amud snapshot <dataset> --out <file.snap> [--tag N] [--quantize f16|int8|f:w]", 2);
            };
            let flags = Flags::parse(&raw[2..], &["out", "tag", "quantize"]);
            cmd_snapshot(dataset, &flags);
            return;
        }
        Some("serve") => {
            let flags = Flags::parse(
                &raw[1..],
                &[
                    "snapshot",
                    "port",
                    "queue-capacity",
                    "max-batch",
                    "max-connections",
                    "default-deadline-ms",
                    "watch-interval-ms",
                    "batch-delay-ms",
                ],
            );
            cmd_serve(&flags);
            return;
        }
        _ => {}
    }
    let verify_tape = raw.iter().any(|a| a == "--verify-tape");
    let mut max_retries: Option<usize> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--verify-tape" {
            continue;
        }
        if a == "--max-retries" {
            let value = it.next().unwrap_or_else(|| die("--max-retries needs a value", 2));
            max_retries =
                Some(value.parse().unwrap_or_else(|_| {
                    die(&format!("--max-retries: '{value}' is not a count"), 2)
                }));
            continue;
        }
        if a.starts_with("--") {
            die(&format!("unknown flag '{a}' (--verify-tape and --max-retries exist)"), 2);
        }
        args.push(a);
    }
    match args.first().map(String::as_str) {
        Some("score") if args.len() == 2 => cmd_score(&args[1]),
        Some("train") if args.len() >= 2 => cmd_train(
            &args[1],
            args.get(2).map(String::as_str).unwrap_or("ADPA"),
            verify_tape,
            max_retries,
        ),
        Some("export") if args.len() == 3 => cmd_export(&args[1], &args[2]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!(
                "usage:\n  amud score    <dataset|file.amud>\n  amud train    <dataset> [model] [--verify-tape] [--max-retries N]\n  amud export   <dataset> <file.amud>\n  amud snapshot <dataset> --out <file.snap> [--tag N]\n  amud serve    --snapshot <file.snap> [--port N] [...]\n  amud list"
            );
            std::process::exit(2);
        }
    }
}
