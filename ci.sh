#!/usr/bin/env sh
# Workspace CI gate: formatting, clippy, the lint harness, and tier-1
# (build + tests). Run from the repo root; stops at the first failure.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

# The analysis engine's own unit, golden-snapshot, and exit-code tests
# run before the engine is trusted to gate anything else.
echo "==> cargo test -p amud-lint"
cargo test -q -p amud-lint

# Full workspace analysis: all passes, resolved against lint-allow.txt.
# Exit 1 = fresh violation, 3 = ratchet regression; both stop CI here.
echo "==> amud-analyze (cargo run -p amud-lint)"
cargo run --release -q -p amud-lint -- --report analyze-report.json

echo "==> analyze-report.json summary"
grep -A17 '"summary"' analyze-report.json || true

# The report is a deterministic artifact: no timestamps, sorted findings,
# every rule listed (zero rows included). Two back-to-back runs over the
# same tree must produce byte-identical JSON, or downstream report diffing
# is meaningless.
# The second run adds --timings: wall-time lines go to stdout only, so
# the JSON must still be byte-identical — and the total analysis time
# must stay inside the CI runtime budget.
echo "==> analyze-report.json is deterministic (--timings stays out of the JSON)"
timings_out=$(cargo run --release -q -p amud-lint -- --timings --report analyze-report.second.json)
cmp analyze-report.json analyze-report.second.json
rm -f analyze-report.second.json

wall_ms=$(printf '%s\n' "$timings_out" | sed -n 's/^amud-analyze: analysis wall time \([0-9][0-9]*\) ms$/\1/p')
if [ -z "$wall_ms" ] || [ "$wall_ms" -gt 10000 ]; then
    echo "error: analysis wall time '${wall_ms:-unparsed}' ms blew the 10000 ms budget" >&2
    exit 1
fi
echo "    analysis wall time ${wall_ms} ms (budget 10000 ms)"

# The engine must analyze its own crate cleanly with zero budgets —
# explicit-file mode grants none, so the linter cannot accumulate debt in
# the code that enforces the rules.
echo "==> amud-analyze self-check (lint crate, zero budgets)"
cargo run --release -q -p amud-lint -- crates/lint/src/*.rs

# The engine must still bite: the committed fixture has fresh violations,
# and "fresh violation" must be exit code 1 exactly (2/3/4 mean the
# harness itself broke — see crates/lint/tests/cli.rs).
echo "==> amud-analyze fixture must fail with exit 1"
set +e
cargo run --release -q -p amud-lint -- crates/lint/fixtures/bad.rs >/dev/null 2>&1
fixture_status=$?
set -e
if [ "$fixture_status" -ne 1 ]; then
    echo "error: lint fixture exited $fixture_status (want 1) — the harness has gone soft" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

# Tier-1 tests run under two thread budgets: the exact serial fallback
# and a 4-way pool. The amud-par determinism contract says both must see
# bit-identical numerics, so any seed-pinned assertion that passes at one
# budget and fails at the other is a runtime bug, not flake.
echo "==> AMUD_THREADS=1 cargo test -q"
AMUD_THREADS=1 cargo test -q

echo "==> AMUD_THREADS=4 cargo test -q"
AMUD_THREADS=4 cargo test -q

# Tier-1 again under the runtime disjointness sanitizer: every block the
# parallel runtime hands out is shadow-recorded and checked for overlap
# and cross-epoch retention, and the san-abuse suite proves the abort
# path actually fires (see crates/par/tests/san.rs).
echo "==> AMUD_THREADS=4 cargo test -q --workspace --features amud-par/san"
AMUD_THREADS=4 cargo test -q --workspace --features amud-par/san

# The fault-injection suite proves every injected failure is recovered or
# surfaces as a typed error (and pins the CLI exit-code table).
echo "==> cargo test -q --test fault_injection"
cargo test -q --test fault_injection

# Precompute-cache equivalence suite runs under both process-wide cache
# defaults: the properties flip the cache per-closure via with_cache, but
# the env default governs every path the suite does not pin explicitly.
echo "==> precompute equivalence (AMUD_CACHE default)"
cargo test -q -p amud-core --test precompute_equivalence

echo "==> precompute equivalence (AMUD_CACHE=off)"
AMUD_CACHE=off cargo test -q -p amud-core --test precompute_equivalence

# Serving smoke: spawn a real `amud serve` subprocess and drive it through
# normal requests, a past-deadline request, and a corrupt-then-valid hot
# swap, asserting every stats counter moved (tests/serve_e2e.rs::ci_smoke).
# The `ci_smoke` filter also matches ci_smoke_quantized_snapshot_serves,
# which serves an int8/f16 artifact and pins wire replies to the
# in-process engine on the same bytes.
echo "==> serve smoke (cargo test --test serve_e2e ci_smoke)"
cargo test -q --release --test serve_e2e -- ci_smoke

# Serving load/fault harness: Zipf-skewed steady load, overload burst,
# deadline miss, corrupt-snapshot-mid-run, and a slow client — emits
# p50/p99/QPS plus shed/timeout/degraded/swap counters.
echo "==> bench-serve --smoke"
cargo run --release -q -p amud-bench --bin bench-serve -- --smoke --out /tmp/BENCH_serve_smoke.json

# Kernel benchmark smoke run: times serial vs parallel on CI-sized shapes,
# fails if any kernel's outputs diverge bitwise between the budgets, and
# gates serial timings against the committed baseline (>10% + 0.25 ms per
# kernel/shape is a regression).
echo "==> bench-kernels --smoke --check"
cargo run --release -q -p amud-bench --bin bench-kernels -- --smoke --out /tmp/BENCH_kernels_smoke.json --check BENCH_kernels.json

# Precompute-cache smoke run: cold vs warm sweeps must produce bit-identical
# tables and the warm pass must clear the 5x spmm-reduction gate.
echo "==> bench-precompute --smoke"
cargo run --release -q -p amud-bench --bin bench-precompute -- --smoke --out /tmp/BENCH_precompute_smoke.json

# Quantization smoke run: fused dequant kernels must match decode-then-
# compute bitwise, f16/int8 artifacts must clear the 1.7x/3.0x byte-
# reduction gates on disk AND resident, engine logits must be identical
# across thread budgets, and the registry accuracy drop stays <= 0.5 pt.
echo "==> bench-quant --smoke"
cargo run --release -q -p amud-bench --bin bench-quant -- --smoke --out /tmp/BENCH_quant_smoke.json

echo "ci: all green"
