#!/usr/bin/env sh
# Workspace CI gate: formatting, clippy, the lint harness, and tier-1
# (build + tests). Run from the repo root; stops at the first failure.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo run -p amud-lint"
cargo run --release -q -p amud-lint

# The linter must still bite: the committed fixture has a fresh violation
# and explicit-file mode grants zero budget.
echo "==> amud-lint fixture must fail"
if cargo run --release -q -p amud-lint -- crates/lint/fixtures/bad.rs >/dev/null 2>&1; then
    echo "error: lint fixture passed — the harness has gone soft" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The fault-injection suite proves every injected failure is recovered or
# surfaces as a typed error (and pins the CLI exit-code table).
echo "==> cargo test -q --test fault_injection"
cargo test -q --test fault_injection

echo "ci: all green"
