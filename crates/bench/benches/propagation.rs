//! Criterion bench: DP-guided feature propagation throughput (Eq. 9).
//!
//! Validates the Sec. IV-D claim that propagation is `O(k·K·m·f)` and a
//! one-time pre-processing cost: time should scale roughly linearly in
//! each of k (operator count via max order), K (steps) and f.

use amud_core::PropagatedFeatures;
use amud_datasets::{DsbmConfig, InterClassStructure};
use amud_graph::PatternSet;
use amud_nn::DenseMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn setup(n: usize, m: usize) -> (PatternSet, PatternSet, DenseMatrix) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let g = DsbmConfig::new(n, m, 5)
        .with_homophily(0.3)
        .with_direction_informativeness(0.8)
        .with_structure(InterClassStructure::Cyclic)
        .generate(&mut rng);
    let order1 = PatternSet::up_to_order(g.adjacency(), 1).expect("square");
    let order2 = PatternSet::up_to_order(g.adjacency(), 2).expect("square");
    let x = DenseMatrix::xavier_uniform(n, 64, &mut rng);
    (order1, order2, x)
}

fn bench_propagation(c: &mut Criterion) {
    let (order1, order2, x) = setup(2000, 16_000);
    let mut group = c.benchmark_group("propagation");
    for k_steps in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("order1", k_steps), &k_steps, |b, &k| {
            b.iter(|| PropagatedFeatures::compute(&order1, &x, k).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("order2", k_steps), &k_steps, |b, &k| {
            b.iter(|| PropagatedFeatures::compute(&order2, &x, k).unwrap())
        });
    }
    group.finish();
}

fn bench_feature_width(c: &mut Criterion) {
    let (_, order2, _) = setup(2000, 16_000);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("propagation_feature_width");
    for f in [16usize, 64, 256] {
        let x = DenseMatrix::xavier_uniform(2000, f, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, _| {
            b.iter(|| PropagatedFeatures::compute(&order2, &x, 2).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation, bench_feature_width);
criterion_main!(benches);
