//! Criterion bench: boolean SpGEMM for 2-order DP operator materialisation
//! — the pre-processing cost AMUD and ADPA pay once per graph.

use amud_datasets::{DsbmConfig, InterClassStructure};
use amud_graph::patterns::DirectedPattern;
use amud_graph::CsrMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn graph(n: usize, avg_deg: usize) -> CsrMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    DsbmConfig::new(n, n * avg_deg, 5)
        .with_homophily(0.3)
        .with_direction_informativeness(0.7)
        .with_structure(InterClassStructure::Cyclic)
        .generate(&mut rng)
        .adjacency()
        .clone()
}

fn bench_two_order_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_two_order");
    group.sample_size(20);
    for n in [500usize, 2000, 8000] {
        let a = graph(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                DirectedPattern::two_order()
                    .iter()
                    .map(|p| p.materialize(&a).expect("square").nnz())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let a = graph(8000, 8);
    c.bench_function("transpose_8k", |b| b.iter(|| a.transpose().nnz()));
}

criterion_group!(benches, bench_two_order_patterns, bench_transpose);
criterion_main!(benches);
