//! Criterion bench: per-epoch training cost — ADPA's decoupled design
//! (propagation pre-processed, training touches only dense matrices)
//! against the tightly coupled NSTE, which pays sparse aggregation every
//! step (the Sec. IV-D / IV-E efficiency claim).

use amud_bench::to_graph_data;
use amud_core::{Adpa, AdpaConfig};
use amud_datasets::{replica, ReplicaScale};
use amud_models::nste::Nste;
use amud_nn::{Adam, Tape};
use amud_train::{GraphData, Model};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

fn one_epoch(model: &mut dyn Model, data: &GraphData, adam: &mut Adam, rng: &mut StdRng) -> f32 {
    let mut tape = Tape::new();
    let logits = model.forward(&mut tape, data, true, rng);
    let loss = tape.masked_cross_entropy(logits, Rc::clone(&data.labels), Rc::clone(&data.train));
    let out = tape.value(loss).get(0, 0);
    tape.backward(loss);
    tape.apply_grads(model.bank_mut());
    adam.step(model.bank_mut());
    out
}

fn bench_epoch_cost(c: &mut Criterion) {
    let scale = ReplicaScale { node_cap: 1000, feature_cap: 64, avg_degree_cap: 12.0 };
    let data = to_graph_data(&replica("chameleon", scale, 0));
    let mut group = c.benchmark_group("epoch");
    group.sample_size(20);

    group.bench_function("adpa_decoupled", |b| {
        let mut model = Adpa::new(&data, AdpaConfig::default(), 0).unwrap();
        let mut adam = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| one_epoch(&mut model, &data, &mut adam, &mut rng));
    });

    group.bench_function("nste_coupled", |b| {
        let mut model = Nste::new(&data, 64, 2, 0.4, 0);
        let mut adam = Adam::new(0.01);
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| one_epoch(&mut model, &data, &mut adam, &mut rng));
    });

    group.finish();
}

fn bench_preprocessing_once(c: &mut Criterion) {
    // The decoupled model's one-time setup cost (operator materialisation +
    // K-step propagation) — paid once, amortised over all epochs.
    let scale = ReplicaScale { node_cap: 1000, feature_cap: 64, avg_degree_cap: 12.0 };
    let data = to_graph_data(&replica("chameleon", scale, 0));
    let mut group = c.benchmark_group("setup");
    group.sample_size(10);
    group.bench_function("adpa_construction", |b| {
        b.iter(|| Adpa::new(&data, AdpaConfig::default(), 0).unwrap().n_parameters())
    });
    group.finish();
}

criterion_group!(benches, bench_epoch_cost, bench_preprocessing_once);
criterion_main!(benches);
