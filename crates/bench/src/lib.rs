//! # amud-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation section. One binary per artefact:
//!
//! | binary | artefact |
//! |---|---|
//! | `table1` | Table I — homophily measures, directed vs undirected, + AMUD |
//! | `table2` | Table II — dataset statistics + AMUD scores |
//! | `table3` | Table III — accuracy on the six Score<0.5 datasets |
//! | `table4` | Table IV — accuracy on the six Score>0.5 datasets |
//! | `table5` | Table V — Actor/Amazon-rating U- vs D- improvements |
//! | `table6` | Table VI — k-order DP operator sweep |
//! | `table7` | Table VII — attention-mechanism ablation |
//! | `fig2`   | Fig. 2 — observations O1/O2 |
//! | `fig5`   | Fig. 5 — training curves |
//! | `fig6`   | Fig. 6 — propagation-step sweep |
//! | `fig7`   | Fig. 7 — sparsity robustness |
//! | `bench-kernels` | serial vs parallel kernel timings → `BENCH_kernels.json` |
//! | `bench-precompute` | uncached/cold/warm sweep cost → `BENCH_precompute.json` |
//!
//! Shared environment knobs (all optional):
//!
//! * `AMUD_SCALE` — `tiny` / `default` / `full` replica scale;
//! * `AMUD_REPEATS` — seeded repeats per cell (default 3);
//! * `AMUD_EPOCHS` — training epochs (default 150);
//! * `AMUD_THREADS` — kernel thread budget (default = available cores;
//!   results are bit-identical at any value);
//! * `AMUD_CACHE` — `off` disables the ADPA precompute cache (results
//!   are bit-identical either way; only wall-clock changes).

use amud_core::{Adpa, AdpaConfig};
use amud_datasets::{replica, Dataset, ReplicaScale};
use amud_models::registry::{build_model, is_directed_model};
use amud_train::{repeat_runs, GraphData, Summary, TrainConfig};

/// Replica scale from `AMUD_SCALE`.
pub fn env_scale() -> ReplicaScale {
    // TAINT-PURE(env_scale): AMUD_SCALE only selects among the fixed
    // ReplicaScale presets; the env value itself never reaches data.
    match std::env::var("AMUD_SCALE").as_deref() {
        Ok("tiny") => ReplicaScale::tiny(),
        Ok("full") => ReplicaScale::full(),
        _ => ReplicaScale::default(),
    }
}

/// Repeats per experiment cell from `AMUD_REPEATS`.
pub fn env_repeats(default: usize) -> usize {
    // TAINT-PURE(env_repeats): a repeat count sizes the experiment loop;
    // each repeat is seeded independently, so it never alters values.
    std::env::var("AMUD_REPEATS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Training epochs from `AMUD_EPOCHS`.
pub fn env_epochs(default: usize) -> usize {
    // TAINT-PURE(env_epochs): an epoch budget only bounds the training
    // loop; it never enters tensor values or cache keys.
    std::env::var("AMUD_EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Default training configuration for table sweeps.
pub fn sweep_config() -> TrainConfig {
    TrainConfig {
        epochs: env_epochs(150),
        patience: 30,
        lr: 0.01,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    }
}

/// True when the binary was invoked with `--verify-tape`: every model a
/// harness entry point trains is then statically verified first and the
/// findings printed (the run aborts if the verifier reports errors).
pub fn verify_tape_requested() -> bool {
    std::env::args().any(|a| a == "--verify-tape")
}

/// Runs [`amud_train::verify_model`] on `model` and prints the findings
/// under the given label. Exits the process on error-severity findings —
/// the tape would panic mid-kernel anyway, this way it dies with a report.
pub fn report_verification(label: &str, model: &dyn amud_train::Model, input: &GraphData) {
    use amud_nn::verify::{has_errors, render, Severity};
    let diags = amud_train::verify_model(model, input, 0);
    if diags.is_empty() {
        eprintln!("verify-tape: {label}: clean");
        return;
    }
    let worst = diags.iter().map(|d| d.severity).max().unwrap_or(Severity::Info);
    eprintln!("verify-tape: {label}: {} finding(s) [{worst:?}]\n{}", diags.len(), render(&diags));
    if has_errors(&diags) {
        std::process::exit(1);
    }
}

/// Wraps a replica as the harness's [`GraphData`] bundle (directed topology).
/// Harness binaries have no recovery path for an inconsistent replica, so
/// this exits with the error's code rather than returning a `Result`.
pub fn to_graph_data(d: &Dataset) -> GraphData {
    GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code())
    })
}

/// Loads a named replica at the environment scale.
pub fn load(name: &str, seed: u64) -> GraphData {
    to_graph_data(&replica(name, env_scale(), seed))
}

/// Trains a *baseline* with the paper's input convention: undirected GNNs
/// receive the coarse undirected transformation (`U-`), directed GNNs the
/// natural digraph (`D-`). Returns the test-accuracy summary.
pub fn run_baseline(
    name: &'static str,
    directed: &GraphData,
    cfg: TrainConfig,
    repeats: usize,
    seed: u64,
) -> Summary {
    let input = if is_directed_model(name) { directed.clone() } else { directed.to_undirected() };
    run_on(name, &input, cfg, repeats, seed)
}

/// Adapter so boxed registry models satisfy the sized bound of
/// [`repeat_runs`].
pub struct Shim(pub Box<dyn amud_train::Model>);

impl amud_train::Model for Shim {
    fn bank(&self) -> &amud_nn::ParamBank {
        self.0.bank()
    }
    fn bank_mut(&mut self) -> &mut amud_nn::ParamBank {
        self.0.bank_mut()
    }
    fn forward(
        &self,
        tape: &mut amud_nn::Tape,
        data: &GraphData,
        training: bool,
        rng: &mut rand::rngs::StdRng,
    ) -> amud_nn::NodeId {
        self.0.forward(tape, data, training, rng)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// Trains a baseline on exactly the given input (for the U-/D- contrast
/// experiments of Fig. 2 and Table V).
pub fn run_on(
    name: &'static str,
    input: &GraphData,
    cfg: TrainConfig,
    repeats: usize,
    seed: u64,
) -> Summary {
    if verify_tape_requested() {
        report_verification(name, &Shim(build_model(name, input, seed)), input);
    }
    repeat_runs(|s| Ok(Shim(build_model(name, input, s))), input, cfg, repeats, seed).summary
}

/// Trains ADPA on exactly the given input.
pub fn run_adpa(
    input: &GraphData,
    adpa_cfg: AdpaConfig,
    cfg: TrainConfig,
    repeats: usize,
    seed: u64,
) -> Summary {
    if verify_tape_requested() {
        match Adpa::new(input, adpa_cfg, seed) {
            Ok(model) => report_verification("ADPA", &model, input),
            Err(e) => {
                eprintln!("error: ADPA construction failed during --verify-tape: {e}");
                std::process::exit(e.exit_code());
            }
        }
    }
    repeat_runs(|s| Adpa::new(input, adpa_cfg, s), input, cfg, repeats, seed).summary
}

/// Trains ADPA with the AMUD-guided input (Fig. 1 workflow: undirected
/// transformation iff the guidance score is below θ).
pub fn run_adpa_guided(
    directed: &GraphData,
    adpa_cfg: AdpaConfig,
    cfg: TrainConfig,
    repeats: usize,
    seed: u64,
) -> Summary {
    let (prepared, _, _) = amud_core::paradigm::prepare_topology(directed);
    run_adpa(&prepared, adpa_cfg, cfg, repeats, seed)
}

/// Prints a fixed-width table row.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Prints a header row followed by a separator.
pub fn print_header(label: &str, cells: &[&str]) {
    print_row(label, &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(14 + 13 * cells.len()));
}

/// Runs the Table III/IV protocol: every baseline (paper input convention)
/// plus AMUD-guided ADPA over the given datasets, printing accuracy
/// mean±std per cell and the average-rank column.
pub fn run_accuracy_table(title: &str, datasets: &[&str]) {
    use amud_models::registry::model_names;
    use amud_train::metrics::average_ranks;

    let cfg = sweep_config();
    let repeats = env_repeats(3);
    println!("{title}: accuracy mean±std over {repeats} repeats\n");
    let mut header: Vec<&str> = datasets.to_vec();
    header.push("Rank");
    print_header("Model", &header);

    let bundles: Vec<GraphData> = datasets.iter().map(|n| load(n, 42)).collect();
    let mut acc_matrix: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();

    // Rows stream as they finish so long sweeps are observable; the rank
    // column needs every row and is printed as a footer.
    for name in model_names() {
        let mut cells = Vec::new();
        let mut accs = Vec::new();
        for data in &bundles {
            let s = run_baseline(name, data, cfg, repeats, 0);
            accs.push(s.mean);
            cells.push(format!("{s}"));
        }
        acc_matrix.push(accs);
        labels.push(name.to_string());
        print_row(name, &cells);
    }
    {
        let mut cells = Vec::new();
        let mut accs = Vec::new();
        for data in &bundles {
            let s = run_adpa_guided(data, AdpaConfig::default(), cfg, repeats, 0);
            accs.push(s.mean);
            cells.push(format!("{s}"));
        }
        acc_matrix.push(accs);
        labels.push("ADPA".to_string());
        print_row("ADPA", &cells);
    }

    println!(
        "
Average rank (1 = best):"
    );
    let ranks = average_ranks(&acc_matrix);
    let mut order: Vec<usize> = (0..labels.len()).collect();
    order.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]));
    for i in order {
        println!("  {:<12} {:.1}", labels[i], ranks[i]);
    }
}

/// Records a full training curve for a named model ("ADPA" or any registry
/// baseline) with the paper's input convention (Fig. 5 helper).
pub fn train_curve_for(
    name: &'static str,
    data: &GraphData,
    cfg: TrainConfig,
    seed: u64,
) -> Result<amud_train::TrainResult, amud_train::TrainError> {
    use amud_train::train_with_curve;
    if name == "ADPA" {
        let (prepared, _, _) = amud_core::paradigm::prepare_topology(data);
        let mut model = Adpa::new(&prepared, AdpaConfig::default(), seed)?;
        train_with_curve(&mut model, &prepared, cfg, seed)
    } else {
        let input = if is_directed_model(name) { data.clone() } else { data.to_undirected() };
        let mut model = Shim(build_model(name, &input, seed));
        train_with_curve(&mut model, &input, cfg, seed)
    }
}
