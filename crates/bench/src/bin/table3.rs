//! Table III — accuracy of all models on the six homophilous (AMUD
//! Score < 0.5) datasets. Undirected baselines receive the U- input,
//! directed baselines the natural D- input; ADPA follows the AMUD guidance.

use amud_bench::run_accuracy_table;

fn main() {
    run_accuracy_table(
        "Table III (homophilous, Score < 0.5)",
        &["cora_ml", "citeseer", "pubmed", "tolokers", "wikics", "amazon_computers"],
    );
}
