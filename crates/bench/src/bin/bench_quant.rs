//! `bench-quant` — quantized artifacts and the fused-dequant hot path.
//!
//! The inference path is bandwidth-bound: a row-gather engine streams
//! propagated feature tensors whose size, not flop count, sets the
//! latency floor. This harness measures what quantization buys and
//! proves it changes nothing it must not:
//!
//! 1. **fused kernels** — `matmul_deq` over f16/int8 weights vs the
//!    decode-then-`matmul` reference, timed at dataset-scale shapes and
//!    compared bitwise (the fused path must be exact, not just close);
//! 2. **artifact bytes** — disk bytes ([`write_snapshot`]'s return) and
//!    resident bytes (`QuantizedExport::n_bytes`) per precision, gated at
//!    ≥ 1.7× (f16) and ≥ 3.0× (int8) reduction vs f32;
//! 3. **per-query latency** — engine `logits` on a serving-sized batch,
//!    per precision;
//! 4. **thread determinism** — quantized-engine logits must be
//!    bit-identical across `AMUD_THREADS` ∈ {1, 2, 3, 8};
//! 5. **accuracy sweep** — train ADPA on tiny registry replicas, serve
//!    the same model at f32/f16/int8, and gate the mean test-accuracy
//!    drop at ≤ 0.5 points per quantized precision.
//!
//! Results go to `BENCH_quant.json`. Exit code 1 if any gate fails.
//!
//! ```text
//! cargo run --release -p amud-bench --bin bench-quant             # full shapes
//! cargo run --release -p amud-bench --bin bench-quant -- --smoke  # CI-sized
//! cargo run --release -p amud-bench --bin bench-quant -- --out q.json
//! cargo run --release -p amud-bench --bin bench-quant -- --smoke --check BENCH_quant.json
//! ```
//!
//! `--check <baseline.json>` mirrors `bench-kernels`: any kernel/shape
//! row present in both runs may regress `serial_ms` by at most 10% plus
//! a 0.25 ms noise floor; rows absent from the baseline are skipped, and
//! an unreadable or row-free baseline is exit 2.

use amud_core::paradigm;
use amud_core::{Adpa, AdpaConfig};
use amud_datasets::registry::all_specs;
use amud_datasets::{replica, ReplicaScale};
use amud_nn::DenseMatrix;
use amud_quant::{matmul_deq, Precision, QMatrix, QuantSpec};
use amud_serve::{write_snapshot, Engine, Snapshot};
use amud_train::{accuracy, train, GraphData, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct KernelRow {
    kernel: &'static str,
    shape: String,
    serial_ms: f64,
    /// Bytes actually streamed per call (A + stored B + output).
    bytes: f64,
    bit_identical: bool,
}

impl KernelRow {
    fn gbs(&self) -> f64 {
        self.bytes / (self.serial_ms * 1e-3) / 1e9
    }
}

struct ArtifactRow {
    precision: &'static str,
    disk_bytes: usize,
    resident_bytes: usize,
    query_us: f64,
}

struct AccuracyRow {
    dataset: String,
    f32_acc: f64,
    f16_acc: f64,
    i8_acc: f64,
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// Minimum wall-clock over `reps` runs (least-perturbed observation).
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    // TAINT-PURE(best): the minimum wall-clock is reported alongside the
    // closure's result; it is never fed back into a computed value.
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn seeded(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

/// Extracts the string value of `"key": "…"` from a single JSON-line `row`.
fn json_str_field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = row.find(&tag)? + tag.len();
    let end = row[start..].find('"')?;
    Some(&row[start..start + end])
}

/// Extracts the numeric value of `"key": <num>` from a single JSON-line `row`.
fn json_num_field(row: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = row.find(&tag)? + tag.len();
    let num: String = row[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn parse_baseline(text: &str) -> Vec<((String, String), f64)> {
    text.lines()
        .filter_map(|row| {
            let kernel = json_str_field(row, "kernel")?;
            let shape = json_str_field(row, "shape")?;
            let serial = json_num_field(row, "serial_ms")?;
            Some(((kernel.to_string(), shape.to_string()), serial))
        })
        .collect()
}

fn data_for(name: &str, seed: u64) -> GraphData {
    let d = replica(name, ReplicaScale::tiny(), seed);
    match GraphData::new(
        &d.graph,
        d.features.clone(),
        d.split.train.clone(),
        d.split.val.clone(),
        d.split.test.clone(),
    ) {
        Ok(g) => g,
        Err(e) => fail(&format!("replica {name}: {e}")),
    }
}

/// Test accuracy of an engine over its full node set.
fn engine_accuracy(engine: &Engine, data: &GraphData) -> f64 {
    let all: Vec<usize> = (0..engine.n_nodes()).collect();
    let logits = engine.logits(&all).unwrap_or_else(|e| fail(&e.to_string()));
    accuracy(&logits, &data.labels, &data.test)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_quant.json".to_string());
    let check_path = args.iter().position(|a| a == "--check").map(|i| match args.get(i + 1) {
        Some(p) => p.clone(),
        None => {
            eprintln!("error: --check requires a baseline path");
            std::process::exit(2);
        }
    });

    let par_budget = amud_par::max_threads();
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let reps = 5;
    println!(
        "bench-quant: host_threads={host_threads} amud_threads={par_budget} reps={reps}{}",
        if smoke { " (smoke)" } else { "" }
    );

    // -- Phase 1: fused-dequant GEMM vs decode-then-matmul, bitwise.
    let dense_shapes: &[(usize, usize, usize)] = if smoke {
        &[(256, 64, 32), (1200, 128, 64)]
    } else {
        &[(256, 64, 32), (1200, 128, 64), (4096, 256, 128)]
    };
    let mut kernels: Vec<KernelRow> = Vec::new();
    for &(n, f, h) in dense_shapes {
        let a = seeded(n, f, 1);
        let b = seeded(f, h, 2);
        let shape = format!("{n}x{f}x{h}");
        let out_bytes = (4 * n * h) as f64;
        let a_bytes = (4 * n * f) as f64;

        let (ms, _) = time_min(reps, || a.matmul(&b).as_slice().to_vec());
        kernels.push(KernelRow {
            kernel: "matmul_f32",
            shape: shape.clone(),
            serial_ms: ms,
            bytes: a_bytes + (4 * f * h) as f64 + out_bytes,
            bit_identical: true,
        });

        for (name, precision) in
            [("matmul_deq_f16", Precision::F16), ("matmul_deq_i8", Precision::I8)]
        {
            let q = QMatrix::quantize(&b, precision);
            let (ms, fused) = time_min(reps, || matmul_deq(&a, &q).as_slice().to_vec());
            // The exactness contract: fused == decode-then-matmul, bit
            // for bit. (It differs from f32 matmul by the quantization
            // rounding itself, which is the accuracy sweep's concern.)
            let decoded = a.matmul(&q.dequantize());
            kernels.push(KernelRow {
                kernel: name,
                shape: shape.clone(),
                serial_ms: ms,
                bytes: a_bytes + q.n_bytes() as f64 + out_bytes,
                bit_identical: bits_equal(&fused, decoded.as_slice()),
            });
        }
    }
    println!("{:<16} {:<16} {:>10} {:>8}  bits", "kernel", "shape", "serial", "GB/s");
    for r in &kernels {
        println!(
            "{:<16} {:<16} {:>8.3}ms {:>8.2}  {}",
            r.kernel,
            r.shape,
            r.serial_ms,
            r.gbs(),
            if r.bit_identical { "identical" } else { "DIVERGED" }
        );
    }
    if kernels.iter().any(|r| !r.bit_identical) {
        fail("a fused dequant kernel diverged from its decode-then-compute reference");
    }

    // -- Phase 2+3: artifact bytes on disk and resident, per-query latency.
    let (n_nodes, n_feat) = if smoke { (300, 16) } else { (4096, 64) };
    let base = amud_serve::synthetic_snapshot(1, n_nodes, n_feat, 3, 2, 32, 0);
    let batch: Vec<usize> = (0..8).map(|i| (i * 37) % n_nodes).collect();
    let snap_path =
        std::env::temp_dir().join(format!("amud-bench-quant-{}.snap", std::process::id()));
    let mut artifacts: Vec<ArtifactRow> = Vec::new();
    let mut engines: Vec<(Precision, Engine)> = Vec::new();
    for precision in [Precision::F32, Precision::F16, Precision::I8] {
        let snap = base.requantized(QuantSpec::uniform(precision));
        let disk_bytes = write_snapshot(&snap_path, &snap).unwrap_or_else(|e| fail(&e.to_string()));
        let resident_bytes = snap.export.n_bytes();
        let engine = Engine::new(snap).unwrap_or_else(|e| fail(&e.to_string()));
        let (ms, _) =
            time_min(reps * 4, || engine.logits(&batch).unwrap_or_else(|e| fail(&e.to_string())));
        artifacts.push(ArtifactRow {
            precision: precision.name(),
            disk_bytes,
            resident_bytes,
            query_us: ms * 1e3,
        });
        engines.push((precision, engine));
    }
    std::fs::remove_file(&snap_path).ok();
    let f32_row = &artifacts[0];
    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>10}",
        "precision", "disk", "resident", "disk_x", "query"
    );
    for r in &artifacts {
        println!(
            "{:<10} {:>11}B {:>13}B {:>9.2}x {:>8.1}us",
            r.precision,
            r.disk_bytes,
            r.resident_bytes,
            f32_row.disk_bytes as f64 / r.disk_bytes as f64,
            r.query_us
        );
    }
    for (row, min_ratio) in [(&artifacts[1], 1.7), (&artifacts[2], 3.0)] {
        for (kind, f32_b, b) in [
            ("disk", f32_row.disk_bytes, row.disk_bytes),
            ("resident", f32_row.resident_bytes, row.resident_bytes),
        ] {
            let ratio = f32_b as f64 / b as f64;
            if ratio < min_ratio {
                fail(&format!(
                    "{} {kind} reduction {ratio:.2}x is below the {min_ratio}x gate",
                    row.precision
                ));
            }
        }
    }

    // -- Phase 4: quantized logits must not depend on the thread budget.
    for (precision, engine) in &engines {
        let reference = amud_par::with_threads(1, || {
            engine.logits(&batch).unwrap_or_else(|e| fail(&e.to_string()))
        });
        for budget in [2usize, 3, 8] {
            let got = amud_par::with_threads(budget, || {
                engine.logits(&batch).unwrap_or_else(|e| fail(&e.to_string()))
            });
            if !bits_equal(got.as_slice(), reference.as_slice()) {
                fail(&format!(
                    "{} engine logits diverged at AMUD_THREADS={budget}",
                    precision.name()
                ));
            }
        }
    }
    println!("determinism: logits bit-identical across thread budgets 1/2/3/8");

    // -- Phase 5: registry sweep — quantization may cost ≤ 0.5pt mean acc.
    let sweep: Vec<String> = {
        let names: Vec<String> = all_specs().iter().map(|s| s.name.to_string()).collect();
        let take = if smoke { 1 } else { 3.min(names.len()) };
        names.into_iter().take(take).collect()
    };
    let epochs = if smoke { 30 } else { 60 };
    let cfg = TrainConfig { epochs, patience: 20, ..TrainConfig::default() };
    let mut rows: Vec<AccuracyRow> = Vec::new();
    for name in &sweep {
        let data = data_for(name, 0);
        let (prepared, _, _) = paradigm::prepare_topology(&data);
        let mut model =
            Adpa::new(&prepared, AdpaConfig::default(), 0).unwrap_or_else(|e| fail(&e.to_string()));
        train(&mut model, &prepared, cfg, 0).unwrap_or_else(|e| fail(&e.to_string()));
        let snap = Snapshot::from_export(1, model.export());
        let acc_at = |spec: QuantSpec| {
            let engine =
                Engine::new(snap.requantized(spec)).unwrap_or_else(|e| fail(&e.to_string()));
            engine_accuracy(&engine, &prepared)
        };
        let row = AccuracyRow {
            dataset: name.to_string(),
            f32_acc: acc_at(QuantSpec::F32),
            f16_acc: acc_at(QuantSpec::uniform(Precision::F16)),
            i8_acc: acc_at(QuantSpec::uniform(Precision::I8)),
        };
        println!(
            "accuracy: {:<18} f32 {:.3}  f16 {:.3}  int8 {:.3}",
            row.dataset, row.f32_acc, row.f16_acc, row.i8_acc
        );
        rows.push(row);
    }
    let mean =
        |f: &dyn Fn(&AccuracyRow) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    let drop_f16 = mean(&|r: &AccuracyRow| r.f32_acc - r.f16_acc);
    let drop_i8 = mean(&|r: &AccuracyRow| r.f32_acc - r.i8_acc);
    println!(
        "accuracy: mean drop vs f32 — f16 {:.2}pt, int8 {:.2}pt (gate ≤ 0.50pt)",
        drop_f16 * 100.0,
        drop_i8 * 100.0
    );
    for (name, drop) in [("f16", drop_f16), ("int8", drop_i8)] {
        if drop > 0.005 {
            fail(&format!(
                "{name} mean accuracy drop {:.2}pt exceeds the 0.5pt gate",
                drop * 100.0
            ));
        }
    }

    // Machine-readable JSON (hand-rendered: std-only workspace).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"amud_threads\": {par_budget},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"serial_ms\": {:.4}, \"gbs\": {:.4}, \"bit_identical\": {}}}{}\n",
            r.kernel,
            r.shape,
            r.serial_ms,
            r.gbs(),
            r.bit_identical,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"artifacts\": [\n");
    for (i, r) in artifacts.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"precision\": \"{}\", \"disk_bytes\": {}, \"resident_bytes\": {}, \"disk_ratio\": {:.4}, \"resident_ratio\": {:.4}, \"query_us\": {:.2}}}{}\n",
            r.precision,
            r.disk_bytes,
            r.resident_bytes,
            f32_row.disk_bytes as f64 / r.disk_bytes as f64,
            f32_row.resident_bytes as f64 / r.resident_bytes as f64,
            r.query_us,
            if i + 1 < artifacts.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"accuracy\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"f32_acc\": {:.4}, \"f16_acc\": {:.4}, \"i8_acc\": {:.4}}}{}\n",
            r.dataset,
            r.f32_acc,
            r.f16_acc,
            r.i8_acc,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"mean_drop_f16_pt\": {:.4},\n  \"mean_drop_i8_pt\": {:.4},\n  \"thread_deterministic\": true\n}}\n",
        drop_f16 * 100.0,
        drop_i8 * 100.0
    ));
    if let Err(e) = std::fs::write(&out_path, json) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            eprintln!("error: baseline {path} has no parseable result rows");
            std::process::exit(2);
        }
        let mut checked = 0usize;
        let mut regressed = 0usize;
        for r in &kernels {
            let Some((_, base_ms)) =
                baseline.iter().find(|((k, s), _)| *k == r.kernel && *s == r.shape)
            else {
                continue; // smoke-only shape, or a kernel the baseline predates
            };
            checked += 1;
            // 10% relative budget plus a 0.25 ms absolute floor, matching
            // bench-kernels' regression policy.
            let limit = base_ms * 1.10 + 0.25;
            if r.serial_ms > limit {
                regressed += 1;
                eprintln!(
                    "regression: {} {} serial {:.3}ms exceeds {:.3}ms (baseline {:.3}ms +10% +0.25ms)",
                    r.kernel, r.shape, r.serial_ms, limit, base_ms
                );
            }
        }
        println!("check vs {path}: {checked} kernel/shape pair(s) compared, {regressed} regressed");
        if regressed > 0 {
            std::process::exit(1);
        }
        if checked == 0 {
            eprintln!("error: no kernel/shape pair overlapped the baseline — nothing was gated");
            std::process::exit(2);
        }
    }
}
