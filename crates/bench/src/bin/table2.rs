//! Table II — statistics of all 14 replicas: nodes, edges, features,
//! classes, edge/adjusted homophily, AMUD score and decision.

use amud_bench::{env_scale, print_header, print_row};
use amud_core::amud::{amud_score, AmudDecision};
use amud_datasets::registry::all_specs;
use amud_datasets::Dataset;
use amud_graph::measures::{adjusted_homophily, edge_homophily};

fn main() {
    println!("Table II: replica statistics and AMUD scores\n");
    print_header(
        "Dataset",
        &["Nodes", "Edges", "Feats", "Classes", "E.Homo", "Adj.Homo", "AMUD", "Decision", "Paper"],
    );
    for spec in all_specs() {
        let paper = match (spec.paper_amud_score, spec.regime) {
            (Some(s), amud_datasets::registry::AmudRegime::Directed) => format!("{s:.3}(D-)"),
            (Some(s), amud_datasets::registry::AmudRegime::Undirected) => format!("{s:.3}(U-)"),
            (None, _) => "-".to_string(),
        };
        let name = spec.name;
        let d = Dataset::generate(spec, env_scale(), 42);
        let labels = d.labels();
        let e_homo = edge_homophily(d.graph.adjacency(), labels);
        let adj_homo = adjusted_homophily(d.graph.adjacency(), labels, d.n_classes());
        let report = amud_score(d.graph.adjacency(), labels, d.n_classes());
        let decision = match report.decision {
            AmudDecision::Directed => "D-",
            AmudDecision::Undirected => "U-",
        };
        print_row(
            name,
            &[
                format!("{}", d.n_nodes()),
                format!("{}", d.graph.n_edges()),
                format!("{}", d.features.cols()),
                format!("{}", d.n_classes()),
                format!("{e_homo:.3}"),
                format!("{adj_homo:.3}"),
                format!("{:.3}", report.score),
                decision.to_string(),
                paper,
            ],
        );
    }
}
