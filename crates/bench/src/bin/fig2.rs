//! Fig. 2 — the two empirical observations motivating AMUD.
//!
//! * **(a)/(b) — O1**: on homophilous CoraML, undirected GNNs on the coarse
//!   undirected transformation beat directed GNNs on the natural digraph;
//!   on heterophilous Chameleon the situation flips.
//! * **(c)/(d) — O2**: undirected edge-wise augmentation (`U-` input) helps
//!   directed GNNs on CiteSeer but *hurts* them on Squirrel.

use amud_bench::{env_repeats, load, print_header, print_row, run_on, sweep_config};

fn main() {
    let cfg = sweep_config();
    let repeats = env_repeats(3);

    println!("Fig. 2(a)/(b) — O1: undirected GNNs (U- input) vs directed GNNs (D- input)\n");
    print_header("Model", &["cora_ml", "chameleon"]);
    let cora = load("cora_ml", 42);
    let chameleon = load("chameleon", 42);
    for name in ["GCN", "GPRGNN", "AERO-GNN"] {
        let a = run_on(name, &cora.to_undirected(), cfg, repeats, 0);
        let b = run_on(name, &chameleon.to_undirected(), cfg, repeats, 0);
        print_row(&format!("U-{name}"), &[format!("{a}"), format!("{b}")]);
    }
    for name in ["DiGCN", "NSTE", "DirGNN"] {
        let a = run_on(name, &cora, cfg, repeats, 0);
        let b = run_on(name, &chameleon, cfg, repeats, 0);
        print_row(&format!("D-{name}"), &[format!("{a}"), format!("{b}")]);
    }

    println!("\nFig. 2(c)/(d) — O2: directed GNNs with D- vs U- (augmented) inputs\n");
    print_header("Model", &["citeseer", "squirrel"]);
    let citeseer = load("citeseer", 42);
    let squirrel = load("squirrel", 42);
    for name in ["DiGCN", "NSTE", "DirGNN"] {
        let d1 = run_on(name, &citeseer, cfg, repeats, 0);
        let d2 = run_on(name, &squirrel, cfg, repeats, 0);
        print_row(&format!("D-{name}"), &[format!("{d1}"), format!("{d2}")]);
        let u1 = run_on(name, &citeseer.to_undirected(), cfg, repeats, 0);
        let u2 = run_on(name, &squirrel.to_undirected(), cfg, repeats, 0);
        print_row(&format!("U-{name}"), &[format!("{u1}"), format!("{u2}")]);
    }
    println!(
        "\nExpected shape: U- wins on cora_ml & citeseer (homophily), D- wins on\n\
         chameleon & squirrel (oriented heterophily)."
    );
}
