//! `bench-serve` — load generator and fault harness for `amud-serve`.
//!
//! Starts an in-process server on a synthetic snapshot and drives it
//! through the whole robustness surface in one run:
//!
//! 1. **steady load** — Zipf-skewed node popularity (a few nodes take
//!    most of the queries, the long tail takes the rest), one request at
//!    a time so every latency sample is a clean round-trip;
//! 2. **overload burst** — concurrent clients slam the bounded queue and
//!    some of them must be shed with `retry_after_ms`;
//! 3. **deadline miss** — a `DEADLINE 0` request must come back as a
//!    `TIMEOUT` line, not a hang;
//! 4. **corrupt snapshot mid-run** — garbage is written over the watched
//!    snapshot file; the server must count a degradation and keep
//!    answering from last-good, then hot-swap a subsequent valid version;
//! 5. **slow client** — a connection that trickles half a request and
//!    stalls must be disconnected by the read timeout without affecting
//!    other clients.
//!
//! Results (p50/p99 latency, QPS, shed/timeout/degraded/swap counters)
//! go to `BENCH_serve.json`. Exit code 1 if any phase fails its gate.
//!
//! ```text
//! cargo run --release -p amud-bench --bin bench-serve             # full load
//! cargo run --release -p amud-bench --bin bench-serve -- --smoke  # CI-sized
//! cargo run --release -p amud-bench --bin bench-serve -- --out s.json
//! ```

use amud_par::spawn_service;
use amud_serve::{synthetic_snapshot, write_snapshot, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> std::io::Result<Client> {
        let stream = TcpStream::connect(("127.0.0.1", port))?;
        stream.set_nodelay(true)?;
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    fn roundtrip(&mut self, cmd: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{cmd}")?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        Ok(line.trim().to_string())
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Zipf(s=1) sampler over `0..n` via inverse CDF on precomputed
/// cumulative weights — node 0 is the hottest, the tail is long.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / (i + 1) as f64;
            cdf.push(acc);
        }
        Zipf { cdf }
    }

    fn sample(&self, state: &mut u64) -> usize {
        let total = match self.cdf.last() {
            Some(&t) => t,
            None => return 0,
        };
        let u = (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let ix = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[ix.min(sorted_us.len() - 1)]
}

/// Polls `STATS` until `pred` matches or the deadline passes.
fn poll_stats(client: &mut Client, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.roundtrip("STATS").unwrap_or_else(|e| fail(&e.to_string()));
        if pred(&stats) {
            return stats;
        }
        if Instant::now() > deadline {
            fail(&format!("timed out waiting for {what}; last STATS: {stats}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let n_nodes = if smoke { 300 } else { 5_000 };
    let n_requests = if smoke { 400 } else { 5_000 };
    let burst = if smoke { 24 } else { 64 };

    let snap_path: PathBuf =
        std::env::temp_dir().join(format!("amud-bench-serve-{}.snap", std::process::id()));
    let snapshot = synthetic_snapshot(1, n_nodes, 16, 3, 2, 32, 0);
    let snapshot_bytes;
    let snapshot_v2 = {
        // Pre-encode the hot-swap candidate so the mid-run swap is one
        // atomic write.
        snapshot_bytes =
            write_snapshot(&snap_path, &snapshot).unwrap_or_else(|e| fail(&e.to_string()));
        synthetic_snapshot(2, n_nodes, 16, 3, 2, 32, 0)
    };
    // What a single-node row-gather walks: one row of each feature
    // tensor. Denominator is nodes, numerator the resident feature bytes.
    let bytes_per_query = snapshot.export.feature_bytes() / n_nodes;

    let cfg = ServerConfig {
        snapshot_path: snap_path.clone(),
        queue_capacity: 4,
        max_batch: 8,
        max_connections: 256,
        default_deadline_ms: 10_000,
        watch_interval_ms: 10,
        batch_delay_ms: 2,
        client_read_timeout_ms: 200,
        ..Default::default()
    };
    let server = Server::start(cfg).unwrap_or_else(|e| fail(&e.to_string()));
    let port = server.port();
    println!(
        "bench-serve: n_nodes={n_nodes} n_requests={n_requests} burst={burst} port={port}{}",
        if smoke { " (smoke)" } else { "" }
    );

    // -- Phase 1: steady Zipf-skewed load, one clean round-trip per sample.
    let zipf = Zipf::new(n_nodes);
    let mut state = 42u64;
    let mut client = Client::connect(port).unwrap_or_else(|e| fail(&e.to_string()));
    let mut latencies_us: Vec<u64> = Vec::with_capacity(n_requests);
    let t0 = Instant::now();
    for _ in 0..n_requests {
        let node = zipf.sample(&mut state);
        let t = Instant::now();
        let reply =
            client.roundtrip(&format!("PREDICT {node}")).unwrap_or_else(|e| fail(&e.to_string()));
        if !reply.starts_with("OK ") {
            fail(&format!("steady-load request failed: {reply}"));
        }
        latencies_us.push(t.elapsed().as_micros() as u64);
    }
    let steady_wall = t0.elapsed().as_secs_f64();
    let qps = n_requests as f64 / steady_wall;
    latencies_us.sort_unstable();
    let p50_us = percentile(&latencies_us, 0.50);
    let p99_us = percentile(&latencies_us, 0.99);
    println!("steady:   {n_requests} requests in {steady_wall:.2}s — {qps:.0} QPS, p50 {p50_us}us, p99 {p99_us}us");

    // -- Phase 2: overload burst — concurrent clients vs a 4-slot queue.
    let handles: Vec<_> = (0..burst)
        .map(|i| {
            spawn_service("bench-serve-burst", move || {
                let mut c = Client::connect(port).ok()?;
                c.roundtrip(&format!("PREDICT {}", i % 8)).ok()
            })
            .unwrap_or_else(|e| fail(&format!("spawn burst client: {e}")))
        })
        .collect();
    let mut burst_ok = 0u64;
    let mut burst_shed = 0u64;
    for h in handles {
        match h.join().as_deref() {
            Some(r) if r.starts_with("OK ") => burst_ok += 1,
            Some(r) if r.starts_with("SHED ") => burst_shed += 1,
            Some(r) if r.starts_with("BUSY ") => burst_shed += 1,
            other => fail(&format!("burst client got {other:?}")),
        }
    }
    println!("burst:    {burst} concurrent — {burst_ok} served, {burst_shed} shed");
    if burst_ok == 0 {
        fail("overload burst: no request was served");
    }

    // -- Phase 3: deadline miss must be a TIMEOUT line, not a hang.
    let reply = client.roundtrip("PREDICT 0 DEADLINE 0").unwrap_or_else(|e| fail(&e.to_string()));
    if !reply.starts_with("TIMEOUT") {
        fail(&format!("DEADLINE 0 expected TIMEOUT, got {reply}"));
    }
    println!("deadline: {reply}");

    // -- Phase 4: corrupt the watched snapshot mid-run, then hot-swap a
    // valid successor.
    std::fs::write(&snap_path, b"not a snapshot at all").unwrap_or_else(|e| fail(&e.to_string()));
    poll_stats(&mut client, "degraded counter", |s| !s.contains("\"degraded\":0,"));
    let reply = client.roundtrip("PREDICT 1").unwrap_or_else(|e| fail(&e.to_string()));
    if !reply.starts_with("OK ") {
        fail(&format!("last-good engine stopped serving after corrupt candidate: {reply}"));
    }
    write_snapshot(&snap_path, &snapshot_v2).unwrap_or_else(|e| fail(&e.to_string()));
    // Traffic gives the batcher batch boundaries to swap between.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.roundtrip("STATS").unwrap_or_else(|e| fail(&e.to_string()));
        if stats.contains("\"tag\":2") {
            break;
        }
        if Instant::now() > deadline {
            fail(&format!("valid candidate never swapped in: {stats}"));
        }
        let _ = client.roundtrip("PREDICT 2").unwrap_or_else(|e| fail(&e.to_string()));
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("hot-swap: corrupt candidate degraded, valid tag 2 swapped in");

    // -- Phase 5: a slow client trickles and stalls; the read timeout
    // must disconnect it while other clients keep working.
    let slow = TcpStream::connect(("127.0.0.1", port)).unwrap_or_else(|e| fail(&e.to_string()));
    {
        let mut w = &slow;
        let _ = w.write_all(b"PRED"); // half a command, never finished
        let _ = w.flush();
    }
    std::thread::sleep(Duration::from_millis(400)); // > client_read_timeout_ms
    let reply = client.roundtrip("PREDICT 3").unwrap_or_else(|e| fail(&e.to_string()));
    if !reply.starts_with("OK ") {
        fail(&format!("server wedged by slow client: {reply}"));
    }
    drop(slow);
    println!("slow:     trickling client disconnected, service unaffected");

    let stats = server.stats();
    server.stop();
    std::fs::remove_file(&snap_path).ok();

    println!(
        "counters: served={} shed={} timeouts={} degraded={} swaps={}",
        stats.served, stats.shed, stats.timeouts, stats.degraded, stats.swaps
    );
    println!("artifact: snapshot_bytes={snapshot_bytes} bytes_per_query={bytes_per_query}");

    // Machine-readable JSON (hand-rendered: std-only workspace).
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"n_nodes\": {n_nodes},\n  \"n_requests\": {n_requests},\n  \
         \"zipf_s\": 1.0,\n  \"steady_wall_s\": {steady_wall:.3},\n  \"qps\": {qps:.1},\n  \
         \"p50_us\": {p50_us},\n  \"p99_us\": {p99_us},\n  \"burst_clients\": {burst},\n  \
         \"burst_served\": {burst_ok},\n  \"burst_shed\": {burst_shed},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \"bytes_per_query\": {bytes_per_query},\n  \
         \"served\": {},\n  \"shed\": {},\n  \"timeouts\": {},\n  \"degraded\": {},\n  \
         \"swaps\": {}\n}}\n",
        stats.served, stats.shed, stats.timeouts, stats.degraded, stats.swaps
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        fail(&format!("cannot write {out_path}: {e}"));
    }
    println!("wrote {out_path}");

    // Gates: every robustness phase must have left its trace.
    if stats.served == 0 || stats.timeouts == 0 || stats.degraded == 0 || stats.swaps == 0 {
        fail(&format!("a phase left no trace in the counters: {stats:?}"));
    }
}
