//! Fig. 6 — accuracy as a function of the propagation step K (1..5) for
//! SGC, GPR-GNN, NSTE, DIMPA and ADPA, on three AMUndirected and three
//! AMDirected replicas. Baselines over-smooth past K≈3; ADPA's node-wise
//! hop attention keeps it flat or improving.

use amud_bench::{env_repeats, load, print_header, print_row, run_adpa, sweep_config};
use amud_core::AdpaConfig;
use amud_models::{dimpa::Dimpa, gprgnn::GprGnn, nste::Nste, sgc::Sgc};
use amud_train::{repeat_runs, GraphData, TrainConfig};

fn run_k(name: &str, data: &GraphData, k: usize, cfg: TrainConfig, repeats: usize) -> f64 {
    match name {
        "SGC" => repeat_runs(|s| Ok(Sgc::new(data, k, s)), data, cfg, repeats, 0).summary.mean,
        "GPRGNN" => {
            repeat_runs(|s| Ok(GprGnn::new(data, 64, k, 0.1, 0.4, s)), data, cfg, repeats, 0)
                .summary
                .mean
        }
        "NSTE" => {
            repeat_runs(|s| Ok(Nste::new(data, 64, k, 0.4, s)), data, cfg, repeats, 0).summary.mean
        }
        "DIMPA" => {
            repeat_runs(|s| Ok(Dimpa::new(data, 64, k, 0.4, s)), data, cfg, repeats, 0).summary.mean
        }
        "ADPA" => {
            let adpa_cfg = AdpaConfig { k_steps: k, ..Default::default() };
            run_adpa(data, adpa_cfg, cfg, repeats, 0).mean
        }
        other => panic!("unknown model {other}"),
    }
}

fn main() {
    let cfg = sweep_config();
    let repeats = env_repeats(2);
    let models = ["SGC", "GPRGNN", "NSTE", "DIMPA", "ADPA"];
    // Left three panels: AMUndirected (fed U- to undirected models); right
    // three: AMDirected (fed D-).
    let panels: [(&str, bool); 6] = [
        ("cora_ml", true),
        ("citeseer", true),
        ("actor", true),
        ("cornell", false),
        ("chameleon", false),
        ("squirrel", false),
    ];
    for (dataset, undirect) in panels {
        println!(
            "\nFig. 6 — {dataset} ({}): accuracy vs propagation step K\n",
            if undirect { "AMUndirected" } else { "AMDirected" }
        );
        let raw = load(dataset, 42);
        let data = if undirect { raw.to_undirected() } else { raw };
        print_header("K", &models);
        for k in 1..=5 {
            let cells: Vec<String> = models
                .iter()
                .map(|&m| format!("{:.3}", run_k(m, &data, k, cfg, repeats)))
                .collect();
            print_row(&format!("{k}"), &cells);
        }
    }
    println!("\nExpected shape: baselines peak near K=2-3 then decay (over-smoothing); ADPA stays stable.");
}
