//! Table I — homophily measures from naturally directed to coarse
//! undirected transformation, plus the AMUD score, on the four motivating
//! datasets.

use amud_bench::{env_scale, print_header, print_row};
use amud_core::amud::amud_score;
use amud_datasets::replica;
use amud_graph::measures::homophily_report;

fn main() {
    println!("Table I: homophily (directed -> undirected) and AMUD score\n");
    print_header(
        "Dataset",
        &["Hnode D", "Hnode U", "Hedge D", "Hedge U", "Hadj D", "Hadj U", "LI D", "LI U", "AMUD"],
    );
    for name in ["cora_ml", "chameleon", "citeseer", "squirrel"] {
        let d = replica(name, env_scale(), 42);
        let directed = homophily_report(&d.graph);
        let undirected = homophily_report(&d.graph.to_undirected());
        let amud = amud_score(d.graph.adjacency(), d.labels(), d.n_classes());
        print_row(
            name,
            &[
                format!("{:.3}", directed.node),
                format!("{:.3}", undirected.node),
                format!("{:.3}", directed.edge),
                format!("{:.3}", undirected.edge),
                format!("{:.3}", directed.adjusted),
                format!("{:.3}", undirected.adjusted),
                format!("{:.3}", directed.label_informativeness),
                format!("{:.3}", undirected.label_informativeness),
                format!("{:.3}", amud.score),
            ],
        );
    }
    println!(
        "\nPaper reference: CoraML 0.380, Chameleon 0.657, CiteSeer 0.269, Squirrel 0.693;\n\
         the classic measures barely move between D and U while AMUD separates the regimes."
    );
}
