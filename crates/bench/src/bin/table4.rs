//! Table IV — accuracy of all models on the six heterophilous (AMUD
//! Score > 0.5) datasets. Same protocol as Table III.

use amud_bench::run_accuracy_table;

fn main() {
    run_accuracy_table(
        "Table IV (heterophilous, Score > 0.5)",
        &["texas", "cornell", "wisconsin", "chameleon", "squirrel", "roman_empire"],
    );
}
