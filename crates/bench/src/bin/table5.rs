//! Table V — the two "abnormal" datasets (Actor, Amazon-rating):
//! heterophilous by the classic measures, yet AMUD recommends the
//! undirected transformation, and directed GNNs indeed *gain* from it.

use amud_bench::{env_repeats, load, print_header, print_row, run_adpa, run_on, sweep_config};
use amud_core::AdpaConfig;

fn main() {
    let cfg = sweep_config();
    let repeats = env_repeats(3);
    println!("Table V: U- transformation gains on Actor / Amazon-rating\n");
    print_header("Model", &["actor", "amazon_rating", "U-Improv."]);

    let actor = load("actor", 42);
    let rating = load("amazon_rating", 42);

    // Undirected reference baselines (always U- input).
    for name in ["GCN", "LINKX", "BernNet", "JacobiConv", "GloGNN", "AERO-GNN"] {
        let a = run_on(name, &actor.to_undirected(), cfg, repeats, 0);
        let b = run_on(name, &rating.to_undirected(), cfg, repeats, 0);
        print_row(name, &[format!("{a}"), format!("{b}"), "-".into()]);
    }
    println!();

    // Directed GNNs: D- vs U- input.
    for name in ["MagNet", "DIMPA", "DirGNN"] {
        let da = run_on(name, &actor, cfg, repeats, 0);
        let db = run_on(name, &rating, cfg, repeats, 0);
        let ua = run_on(name, &actor.to_undirected(), cfg, repeats, 0);
        let ub = run_on(name, &rating.to_undirected(), cfg, repeats, 0);
        let improv = 100.0 * ((ua.mean - da.mean) / da.mean + (ub.mean - db.mean) / db.mean) / 2.0;
        print_row(&format!("D-{name}"), &[format!("{da}"), format!("{db}"), "-".into()]);
        print_row(
            &format!("U-{name}"),
            &[format!("{ua}"), format!("{ub}"), format!("{improv:+.2}%")],
        );
    }
    // ADPA: robust to either input (the paper's robustness claim).
    let da = run_adpa(&actor, AdpaConfig::default(), cfg, repeats, 0);
    let db = run_adpa(&rating, AdpaConfig::default(), cfg, repeats, 0);
    let ua = run_adpa(&actor.to_undirected(), AdpaConfig::default(), cfg, repeats, 0);
    let ub = run_adpa(&rating.to_undirected(), AdpaConfig::default(), cfg, repeats, 0);
    let improv = 100.0 * ((ua.mean - da.mean) / da.mean + (ub.mean - db.mean) / db.mean) / 2.0;
    print_row("D-ADPA", &[format!("{da}"), format!("{db}"), "-".into()]);
    print_row("U-ADPA", &[format!("{ua}"), format!("{ub}"), format!("{improv:+.2}%")]);
    println!(
        "\nExpected shape: U- beats D- for the directed baselines (AMUD called it);\n\
         ADPA's U-/D- gap is the smallest (robustness)."
    );
}
