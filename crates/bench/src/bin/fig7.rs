//! Fig. 7 — robustness under feature, edge and label sparsity on CiteSeer
//! (upper) and Squirrel (lower), comparing ADPA against JacobiConv, A2DUG,
//! DirGNN and MagNet.

use amud_bench::{
    env_repeats, env_scale, print_header, print_row, run_adpa, run_on, sweep_config, to_graph_data,
};
use amud_core::AdpaConfig;
use amud_datasets::sparsify::{drop_edges, limit_labels, mask_features};
use amud_datasets::{replica, Dataset};
use amud_train::TrainConfig;

fn eval_all(data: &Dataset, cfg: TrainConfig, repeats: usize) -> Vec<String> {
    let bundle = to_graph_data(data);
    let mut cells = Vec::new();
    for name in ["JacobiConv", "A2DUG", "DirGNN", "MagNet"] {
        let input = if amud_models::registry::is_directed_model(name) {
            bundle.clone()
        } else {
            bundle.to_undirected()
        };
        cells.push(format!("{:.3}", run_on(name, &input, cfg, repeats, 0).mean));
    }
    let (prepared, _, _) = amud_core::paradigm::prepare_topology(&bundle);
    cells.push(format!("{:.3}", run_adpa(&prepared, AdpaConfig::default(), cfg, repeats, 0).mean));
    cells
}

fn main() {
    let cfg = sweep_config();
    let repeats = env_repeats(2);
    let models = ["JacobiConv", "A2DUG", "DirGNN", "MagNet", "ADPA"];
    for dataset in ["citeseer", "squirrel"] {
        let base = replica(dataset, env_scale(), 42);

        println!("\nFig. 7 — {dataset}: FEATURE sparsity (fraction of unlabeled nodes masked)\n");
        print_header("masked", &models);
        for frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let d = mask_features(&base, frac, 7);
            print_row(&format!("{frac:.1}"), &eval_all(&d, cfg, repeats));
        }

        println!("\nFig. 7 — {dataset}: EDGE sparsity (fraction of edges removed)\n");
        print_header("removed", &models);
        for frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let d = drop_edges(&base, frac, 7);
            print_row(&format!("{frac:.1}"), &eval_all(&d, cfg, repeats));
        }

        println!("\nFig. 7 — {dataset}: LABEL sparsity (train labels per class)\n");
        print_header("labels/c", &models);
        for per_class in [2usize, 5, 10, 20] {
            let d = limit_labels(&base, per_class);
            print_row(&format!("{per_class}"), &eval_all(&d, cfg, repeats));
        }
    }
    println!("\nExpected shape: ADPA degrades most gracefully; JacobiConv collapses under feature sparsity; A2DUG under edge-coupled feature loss.");
}
