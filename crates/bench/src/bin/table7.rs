//! Table VII — ablation of the two hierarchical node-wise attention
//! mechanisms: DP attention variants (Original / Gate / Recursive / JK /
//! none) and hop attention (on / off).

use amud_bench::{env_repeats, load, print_header, print_row, run_adpa, sweep_config};
use amud_core::{AdpaConfig, DpAttention};

fn main() {
    let cfg = sweep_config();
    let repeats = env_repeats(3);
    let datasets = ["cora_ml", "citeseer", "chameleon", "squirrel"];
    println!("Table VII: node-wise attention ablation\n");
    print_header("Variant", &datasets);

    // AMUD-guided inputs per the paper: cora_ml/citeseer U-, chameleon/squirrel D-.
    let bundles: Vec<_> = datasets
        .iter()
        .map(|n| {
            let d = load(n, 42);
            let (prepared, _, _) = amud_core::paradigm::prepare_topology(&d);
            prepared
        })
        .collect();

    let rows: Vec<(&str, AdpaConfig)> = vec![
        ("w/o DP Attn", AdpaConfig { dp_attention: DpAttention::None, ..Default::default() }),
        ("DP-Original", AdpaConfig { dp_attention: DpAttention::Original, ..Default::default() }),
        ("DP-Gate", AdpaConfig { dp_attention: DpAttention::Gate, ..Default::default() }),
        ("DP-Recursive", AdpaConfig { dp_attention: DpAttention::Recursive, ..Default::default() }),
        ("DP-JK", AdpaConfig { dp_attention: DpAttention::Jk, ..Default::default() }),
        ("w/o Hop Attn", AdpaConfig { hop_attention: false, ..Default::default() }),
        ("ADPA (full)", AdpaConfig::default()),
    ];

    for (label, adpa_cfg) in rows {
        let cells: Vec<String> = bundles
            .iter()
            .map(|data| format!("{}", run_adpa(data, adpa_cfg, cfg, repeats, 0)))
            .collect();
        print_row(label, &cells);
    }
    println!("\nExpected shape: both 'w/o' rows fall below every attention-equipped variant.");
}
