//! Fig. 5 — training dynamics: validation accuracy per epoch. ADPA should
//! converge faster and more stably than the baselines.

use amud_bench::{load, print_row, sweep_config, train_curve_for};
use amud_train::TrainResult;

fn main() {
    let mut cfg = sweep_config();
    cfg.patience = 0; // record the full curve
    let models = ["GCN", "GPRGNN", "DirGNN", "MagNet", "ADPA"];
    for dataset in ["tolokers", "wikics", "roman_empire", "texas"] {
        println!("\nFig. 5 — {dataset}: validation accuracy by epoch\n");
        let data = load(dataset, 42);
        let curves: Vec<(&str, TrainResult)> = models
            .iter()
            .map(|&m| {
                let r = train_curve_for(m, &data, cfg, 0).unwrap_or_else(|e| {
                    eprintln!("error: {m} on {dataset}: {e}");
                    std::process::exit(e.exit_code())
                });
                (m, r)
            })
            .collect();
        let header: Vec<String> = models.iter().map(|s| s.to_string()).collect();
        print_row("epoch", &header);
        for epoch in (0..cfg.epochs).step_by(10) {
            let cells: Vec<String> = curves
                .iter()
                .map(|(_, r)| {
                    r.curve.get(epoch).map_or("-".into(), |p| format!("{:.3}", p.val_acc))
                })
                .collect();
            print_row(&format!("{epoch}"), &cells);
        }
        let finals: Vec<String> =
            curves.iter().map(|(_, r)| format!("{:.3}", r.best_val_acc)).collect();
        print_row("best", &finals);
    }
}
