//! `bench-precompute` — cold vs warm cost of the ADPA precompute cache.
//!
//! Runs the harness's hottest end-to-end shape — a multi-seed ADPA sweep
//! over a `k_steps × conv_r` grid on one fixed graph — three times:
//!
//! 1. **uncached** — `amud_cache::with_cache(false)`: every model
//!    construction rebuilds operators and re-runs Eq. 9 from scratch;
//! 2. **cold** — cache enabled on empty stores (`precompute::clear()`):
//!    first-touch cost including fingerprinting and store bookkeeping;
//! 3. **warm** — cache enabled with populated stores: the steady state of
//!    `repeat_runs`/`grid_search`/table binaries after the first point.
//!
//! For each pass it measures wall-clock, the **counted** number of
//! `CsrMatrix::spmm` invocations (a monotonic counter in amud-graph, not
//! an estimate), and the cache hit/miss/extend deltas, then verifies the
//! three passes produced bit-identical per-grid-point accuracy summaries.
//! Results go to `BENCH_precompute.json`. Exit code 1 if any pass diverges
//! bitwise or the warm pass fails the ≥5× spmm-reduction acceptance gate.
//!
//! ```text
//! cargo run --release -p amud-bench --bin bench-precompute             # full grid
//! cargo run --release -p amud-bench --bin bench-precompute -- --smoke  # CI-sized
//! cargo run --release -p amud-bench --bin bench-precompute -- --out p.json
//! ```

use amud_bench::{load, sweep_config};
use amud_cache::CacheStats;
use amud_core::{precompute, Adpa, AdpaConfig};
use amud_graph::spmm_calls;
use amud_train::{repeat_runs, GraphData, TrainConfig};
use std::time::Instant;

/// One grid point's outcome: the summary over all seeds.
struct Cell {
    k_steps: usize,
    conv_r: f32,
    mean: f64,
    n_failed: usize,
}

struct Pass {
    label: &'static str,
    wall_ms: f64,
    spmm: u64,
    cache: CacheStats,
    cells: Vec<Cell>,
}

fn run_sweep(
    data: &GraphData,
    seeds: usize,
    k_list: &[usize],
    r_list: &[f32],
    cfg: TrainConfig,
) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &k_steps in k_list {
        for &conv_r in r_list {
            let adpa_cfg = AdpaConfig { k_steps, conv_r, ..Default::default() };
            let out = repeat_runs(|s| Adpa::new(data, adpa_cfg, s), data, cfg, seeds, 0);
            cells.push(Cell {
                k_steps,
                conv_r,
                mean: out.summary.mean,
                n_failed: out.summary.n_failed,
            });
        }
    }
    cells
}

fn measure(
    label: &'static str,
    cached: bool,
    data: &GraphData,
    seeds: usize,
    k_list: &[usize],
    r_list: &[f32],
    cfg: TrainConfig,
) -> Pass {
    let spmm_before = spmm_calls();
    let cache_before = amud_cache::stats();
    let t = Instant::now();
    let cells = amud_cache::with_cache(cached, || run_sweep(data, seeds, k_list, r_list, cfg));
    // TAINT-PURE(wall_ms): pass wall-clock is a reporting field; the
    // accuracy cells it rides beside are compared bitwise across passes.
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    Pass {
        label,
        wall_ms,
        spmm: spmm_calls() - spmm_before,
        cache: amud_cache::stats().delta(&cache_before),
        cells,
    }
}

/// Bitwise equality of two passes' accuracy tables (`f64::to_bits`, so
/// "close enough" cannot mask a cache-introduced divergence).
fn tables_identical(a: &Pass, b: &Pass) -> bool {
    a.cells.len() == b.cells.len()
        && a.cells.iter().zip(&b.cells).all(|(x, y)| {
            x.k_steps == y.k_steps
                && x.conv_r == y.conv_r
                && x.mean.to_bits() == y.mean.to_bits()
                && x.n_failed == y.n_failed
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_precompute.json".to_string());

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let par_budget = amud_par::max_threads();
    let seeds = if smoke { 4 } else { 10 };
    let k_list: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 3, 4, 5] };
    let r_list: &[f32] = if smoke { &[0.0] } else { &[0.0, 0.5] };
    // Short runs: training is decoupled (dense-only), so epochs add equal
    // constant work to every pass without touching a single spmm.
    let cfg = TrainConfig { epochs: if smoke { 5 } else { 10 }, patience: 0, ..sweep_config() };

    let data = load("chameleon", 42);
    println!(
        "bench-precompute: chameleon n={} seeds={seeds} k_steps={k_list:?} conv_r={r_list:?} \
         epochs={} host_threads={host_threads} amud_threads={par_budget}{}",
        data.n_nodes(),
        cfg.epochs,
        if smoke { " (smoke)" } else { "" }
    );

    precompute::clear();
    let uncached = measure("uncached", false, &data, seeds, k_list, r_list, cfg);
    precompute::clear();
    let cold = measure("cold", true, &data, seeds, k_list, r_list, cfg);
    let warm = measure("warm", true, &data, seeds, k_list, r_list, cfg);

    let passes = [&uncached, &cold, &warm];
    println!("\n{:<10} {:>12} {:>12}  cache (ops h/m, features h/m/x)", "pass", "wall", "spmm");
    for p in passes {
        println!("{:<10} {:>10.1}ms {:>12} {}", p.label, p.wall_ms, p.spmm, p.cache);
    }

    let identical = tables_identical(&uncached, &cold) && tables_identical(&cold, &warm);
    // Acceptance gate: a warm sweep must perform ≥5× fewer spmm calls than
    // a cold one (counted, not estimated).
    let gate_ok = warm.spmm.saturating_mul(5) <= cold.spmm;
    println!(
        "\ntables bit-identical across passes: {identical}\n\
         spmm reduction cold→warm: {} → {} ({})",
        cold.spmm,
        warm.spmm,
        if warm.spmm == 0 {
            "all served from cache".to_string()
        } else {
            format!("{:.1}x", cold.spmm as f64 / warm.spmm as f64)
        }
    );

    // Machine-readable JSON (hand-rendered: std-only workspace).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"amud_threads\": {par_budget},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"dataset\": \"chameleon\",\n");
    json.push_str(&format!("  \"n_nodes\": {},\n", data.n_nodes()));
    json.push_str(&format!("  \"seeds\": {seeds},\n"));
    json.push_str(&format!("  \"k_steps\": {k_list:?},\n"));
    json.push_str(&format!(
        "  \"conv_r\": [{}],\n",
        r_list.iter().map(|r| format!("{r:.1}")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str(&format!("  \"epochs\": {},\n", cfg.epochs));
    json.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"pass\": \"{}\", \"wall_ms\": {:.2}, \"spmm_calls\": {}, \
             \"op_hits\": {}, \"op_misses\": {}, \"feat_hits\": {}, \"feat_misses\": {}, \
             \"feat_extends\": {}}}{}\n",
            p.label,
            p.wall_ms,
            p.spmm,
            p.cache.op_hits,
            p.cache.op_misses,
            p.cache.feat_hits,
            p.cache.feat_misses,
            p.cache.feat_extends,
            if i + 1 < passes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"cells\": [\n");
    for (i, c) in warm.cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"k_steps\": {}, \"conv_r\": {:.1}, \"mean_acc\": {:.6}, \"n_failed\": {}}}{}\n",
            c.k_steps,
            c.conv_r,
            c.mean,
            c.n_failed,
            if i + 1 < warm.cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"tables_identical\": {identical},\n"));
    json.push_str(&format!("  \"spmm_reduction_gate_5x\": {gate_ok}\n}}\n"));
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if !identical {
        eprintln!("error: cached and uncached sweeps diverged bitwise");
        std::process::exit(1);
    }
    if !gate_ok {
        eprintln!(
            "error: warm sweep performed {} spmm calls vs {} cold — below the 5x reduction gate",
            warm.spmm, cold.spmm
        );
        std::process::exit(1);
    }
}
