//! `bench-kernels` — serial vs parallel timings for the amud-par hot paths.
//!
//! Times every runtime-backed kernel (`matmul`, `matmul_transb`,
//! `matmul_transa`, `CsrMatrix::spmm`, and the elementwise/softmax layer)
//! at dataset-scale shapes, once with a 1-thread budget (exact serial
//! fallback) and once with the full `AMUD_THREADS` budget, and writes
//! machine-readable results to `BENCH_kernels.json`. Every pair is also
//! compared bitwise, so the report doubles as an equivalence check.
//!
//! ```text
//! cargo run --release -p amud-bench --bin bench-kernels             # full shapes
//! cargo run --release -p amud-bench --bin bench-kernels -- --smoke  # CI-sized
//! cargo run --release -p amud-bench --bin bench-kernels -- --out p.json
//! ```
//!
//! Speedup expectations are hardware-gated: on a single-core host the
//! parallel budget collapses to 1 and `speedup` hovers around 1.0; the
//! `host_threads` field records what the numbers were measured on.

use amud_graph::CsrMatrix;
use amud_nn::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct KernelResult {
    kernel: &'static str,
    shape: String,
    serial_ms: f64,
    parallel_ms: f64,
    bit_identical: bool,
}

/// Minimum wall-clock over `reps` runs (the standard noise filter for
/// micro-benchmarks: the minimum is the least-perturbed observation).
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    // TAINT-PURE(best): the minimum wall-clock is reported alongside the
    // closure's result; it is never fed back into a computed value.
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn seeded(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

/// Synthetic propagation operator at node count `n`: average degree ~16
/// with a handful of high-degree hubs and a band of empty rows, mirroring
/// the skew of real citation/co-purchase graphs.
fn skewed_operator(n: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize, f32)> = Vec::new();
    for hub in 0..(n / 200).max(1) {
        for _ in 0..n / 4 {
            edges.push((hub, rng.gen_range(0..n as u64) as usize, rng.gen_range(0.0f32..1.0)));
        }
    }
    for r in (n / 200).max(1)..n {
        if r % 23 == 0 {
            continue; // empty rows
        }
        for _ in 0..16 {
            edges.push((r, rng.gen_range(0..n as u64) as usize, rng.gen_range(0.0f32..1.0)));
        }
    }
    match CsrMatrix::from_coo(n, n, edges) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: synthetic operator construction failed: {e:?}");
            std::process::exit(1);
        }
    }
}

fn run_pair(reps: usize, par_budget: usize, f: impl Fn() -> Vec<f32>) -> (f64, f64, bool) {
    let (serial_ms, serial_out) = amud_par::with_threads(1, || time_min(reps, &f));
    let (parallel_ms, parallel_out) = amud_par::with_threads(par_budget, || time_min(reps, &f));
    (serial_ms, parallel_ms, bits_equal(&serial_out, &parallel_out))
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'), "labels stay escape-free");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let par_budget = amud_par::max_threads();
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let reps = if smoke { 2 } else { 5 };
    // (nodes, features, hidden): tiny replica, default replica cap, and a
    // full-scale shape whose k-extent crosses TRANSA_BLOCK_ROWS.
    let dense_shapes: &[(usize, usize, usize)] = if smoke {
        &[(256, 64, 32), (1200, 128, 64)]
    } else {
        &[(256, 64, 32), (1200, 128, 64), (4096, 256, 128)]
    };
    let spmm_shapes: &[(usize, usize)] =
        if smoke { &[(1200, 32)] } else { &[(1200, 64), (4096, 64), (16384, 64)] };

    let mut results: Vec<KernelResult> = Vec::new();

    for &(n, f, h) in dense_shapes {
        let a = seeded(n, f, 1);
        let b = seeded(f, h, 2);
        let bt = seeded(h, f, 3);
        let g = seeded(n, h, 4);
        let shape = format!("{n}x{f}x{h}");

        let (s, p, ok) = run_pair(reps, par_budget, || a.matmul(&b).as_slice().to_vec());
        results.push(KernelResult {
            kernel: "matmul",
            shape: shape.clone(),
            serial_ms: s,
            parallel_ms: p,
            bit_identical: ok,
        });

        let (s, p, ok) = run_pair(reps, par_budget, || a.matmul_transb(&bt).as_slice().to_vec());
        results.push(KernelResult {
            kernel: "matmul_transb",
            shape: shape.clone(),
            serial_ms: s,
            parallel_ms: p,
            bit_identical: ok,
        });

        let (s, p, ok) = run_pair(reps, par_budget, || a.matmul_transa(&g).as_slice().to_vec());
        results.push(KernelResult {
            kernel: "matmul_transa",
            shape: shape.clone(),
            serial_ms: s,
            parallel_ms: p,
            bit_identical: ok,
        });

        let (s, p, ok) = run_pair(reps, par_budget, || a.transpose().as_slice().to_vec());
        results.push(KernelResult {
            kernel: "transpose",
            shape: format!("{n}x{f}"),
            serial_ms: s,
            parallel_ms: p,
            bit_identical: ok,
        });

        let (s, p, ok) = run_pair(reps, par_budget, || {
            let mut m = a.map(|v| 1.0 / (1.0 + (-v).exp()));
            m.par_rows_mut(|_, row| {
                let mut max = f32::NEG_INFINITY;
                for &v in row.iter() {
                    max = max.max(v);
                }
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                }
                let sum = amud_par::ordered_sum(row);
                for v in row.iter_mut() {
                    *v /= sum;
                }
            });
            m.as_slice().to_vec()
        });
        results.push(KernelResult {
            kernel: "elementwise_softmax",
            shape: format!("{n}x{f}"),
            serial_ms: s,
            parallel_ms: p,
            bit_identical: ok,
        });
    }

    for &(n, x_cols) in spmm_shapes {
        let op = skewed_operator(n, 7);
        let x = seeded(n, x_cols, 8);
        let shape = format!("{n}x{n} nnz={} X={n}x{x_cols}", op.nnz());
        let (s, p, ok) = run_pair(reps, par_budget, || {
            let mut out = vec![0.0f32; n * x_cols];
            op.spmm(x.as_slice(), x_cols, &mut out);
            out
        });
        results.push(KernelResult {
            kernel: "spmm",
            shape,
            serial_ms: s,
            parallel_ms: p,
            bit_identical: ok,
        });
    }

    // Human-readable table.
    println!(
        "bench-kernels: host_threads={host_threads} amud_threads={par_budget} reps={reps}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<20} {:<34} {:>10} {:>10} {:>8}  bits",
        "kernel", "shape", "serial", "parallel", "speedup"
    );
    for r in &results {
        println!(
            "{:<20} {:<34} {:>8.3}ms {:>8.3}ms {:>7.2}x  {}",
            r.kernel,
            r.shape,
            r.serial_ms,
            r.parallel_ms,
            r.serial_ms / r.parallel_ms,
            if r.bit_identical { "identical" } else { "DIVERGED" }
        );
    }

    // Machine-readable JSON (hand-rendered: std-only workspace).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"amud_threads\": {par_budget},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \"speedup\": {:.4}, \"bit_identical\": {}}}{}\n",
            json_escape_free(r.kernel),
            json_escape_free(&r.shape),
            r.serial_ms,
            r.parallel_ms,
            r.serial_ms / r.parallel_ms,
            r.bit_identical,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    if results.iter().any(|r| !r.bit_identical) {
        eprintln!("error: a kernel diverged between serial and parallel runs");
        std::process::exit(1);
    }
}
