//! `bench-kernels` — serial vs parallel timings for the amud-par hot paths.
//!
//! Times every runtime-backed kernel (`matmul`, `matmul_transb`,
//! `matmul_transa`, `CsrMatrix::spmm`, and the elementwise/softmax layer)
//! at dataset-scale shapes, once with a 1-thread budget (exact serial
//! fallback) and once with the full `AMUD_THREADS` budget, and writes
//! machine-readable results to `BENCH_kernels.json`. Every pair is also
//! compared bitwise, so the report doubles as an equivalence check.
//!
//! ```text
//! cargo run --release -p amud-bench --bin bench-kernels             # full shapes
//! cargo run --release -p amud-bench --bin bench-kernels -- --smoke  # CI-sized
//! cargo run --release -p amud-bench --bin bench-kernels -- --out p.json
//! cargo run --release -p amud-bench --bin bench-kernels -- --smoke --check BENCH_kernels.json
//! ```
//!
//! Speedup expectations are hardware-gated: when the parallel budget
//! collapses to 1 thread the "parallel" run *is* the serial run (same
//! budget, same partition, same code), so each kernel is measured once and
//! the single number is reported for both columns; the `host_threads`
//! field records what the numbers were measured on.
//!
//! Throughput columns are derived from `serial_ms` with fixed per-kernel
//! formulas (documented on [`gemm_model`], [`stream_model`], and
//! [`spmm_model`]) — they are *algorithmic* flop/traffic counts, not
//! hardware counters, so they stay comparable across hosts and code
//! versions.
//!
//! `--check <baseline.json>` re-reads a previously committed report and
//! fails (exit 1) if any kernel/shape present in both runs regressed its
//! `serial_ms` by more than 10% plus a 0.25 ms absolute noise floor (the
//! floor absorbs host jitter on sub-millisecond kernels — observed at
//! ±0.2 ms between back-to-back runs on a shared 1-core host — while a
//! genuine 2× regression on any non-trivial shape still trips). Shapes
//! absent from the baseline (e.g. smoke-only shapes) are skipped.

use amud_graph::CsrMatrix;
use amud_nn::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

struct KernelResult {
    kernel: &'static str,
    shape: String,
    serial_ms: f64,
    parallel_ms: f64,
    /// Algorithmic flop count for the shape (0 for pure-movement kernels).
    flops: f64,
    /// Minimum memory traffic in bytes (each operand touched once).
    bytes: f64,
    bit_identical: bool,
}

impl KernelResult {
    fn gflops(&self) -> f64 {
        self.flops / (self.serial_ms * 1e-3) / 1e9
    }

    fn gbs(&self) -> f64 {
        self.bytes / (self.serial_ms * 1e-3) / 1e9
    }
}

/// Minimum wall-clock over `reps` runs (the standard noise filter for
/// micro-benchmarks: the minimum is the least-perturbed observation).
fn time_min<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    // TAINT-PURE(best): the minimum wall-clock is reported alongside the
    // closure's result; it is never fed back into a computed value.
    let mut best = f64::INFINITY;
    let mut out = f();
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn seeded(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

/// Synthetic propagation operator at node count `n`: average degree ~16
/// with a handful of high-degree hubs and a band of empty rows, mirroring
/// the skew of real citation/co-purchase graphs.
fn skewed_operator(n: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize, f32)> = Vec::new();
    for hub in 0..(n / 200).max(1) {
        for _ in 0..n / 4 {
            edges.push((hub, rng.gen_range(0..n as u64) as usize, rng.gen_range(0.0f32..1.0)));
        }
    }
    for r in (n / 200).max(1)..n {
        if r % 23 == 0 {
            continue; // empty rows
        }
        for _ in 0..16 {
            edges.push((r, rng.gen_range(0..n as u64) as usize, rng.gen_range(0.0f32..1.0)));
        }
    }
    match CsrMatrix::from_coo(n, n, edges) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: synthetic operator construction failed: {e:?}");
            std::process::exit(1);
        }
    }
}

fn run_pair(reps: usize, par_budget: usize, f: impl Fn() -> Vec<f32>) -> (f64, f64, bool) {
    let (serial_ms, serial_out) = amud_par::with_threads(1, || time_min(reps, &f));
    if par_budget <= 1 {
        // A 1-thread budget takes the identical code path as the serial
        // run (same partitioning, same fallback); timing it separately
        // would only sample scheduler noise and report it as a speedup or
        // a regression. Measure once, report the one number for both.
        return (serial_ms, serial_ms, true);
    }
    let (parallel_ms, parallel_out) = amud_par::with_threads(par_budget, || time_min(reps, &f));
    (serial_ms, parallel_ms, bits_equal(&serial_out, &parallel_out))
}

/// Throughput model for the GEMM family (`matmul`, `matmul_transb`,
/// `matmul_transa`) at `n×f×h`: `2·n·f·h` flops; minimum traffic reads
/// each operand once and writes the output once, `4·(n·f + f·h + n·h)`
/// bytes.
fn gemm_model(n: usize, f: usize, h: usize) -> (f64, f64) {
    ((2 * n * f * h) as f64, (4 * (n * f + f * h + n * h)) as f64)
}

/// Throughput model for streaming elementwise kernels over `elems`
/// elements: `flops_per_elem` ALU ops per element (transcendentals like
/// `exp` count as one — treat GFLOP/s as a relative index, not ALU
/// utilization) and one read plus one write per element, `2·4·elems`
/// bytes.
fn stream_model(elems: usize, flops_per_elem: usize) -> (f64, f64) {
    ((elems * flops_per_elem) as f64, (8 * elems) as f64)
}

/// Throughput model for `spmm` with `nnz` nonzeros against an `n×x_cols`
/// dense block: `2·nnz·x_cols` flops; traffic gathers one dense row per
/// nonzero plus the values, the `u32` column indices, and the output
/// write: `4·(2·nnz + nnz·x_cols + n·x_cols)` bytes.
fn spmm_model(n: usize, x_cols: usize, nnz: usize) -> (f64, f64) {
    ((2 * nnz * x_cols) as f64, (4 * (2 * nnz + nnz * x_cols + n * x_cols)) as f64)
}

/// Extracts the string value of `"key": "…"` from a single JSON-line `row`.
fn json_str_field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = row.find(&tag)? + tag.len();
    let end = row[start..].find('"')?;
    Some(&row[start..start + end])
}

/// Extracts the numeric value of `"key": <num>` from a single JSON-line
/// `row`.
fn json_num_field(row: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = row.find(&tag)? + tag.len();
    let num: String = row[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

/// Parses a previous `BENCH_kernels.json` into `(kernel, shape) →
/// serial_ms`. The format is this binary's own stable hand-rendered JSON:
/// one result object per line, so a line scan is exact.
fn parse_baseline(text: &str) -> Vec<((String, String), f64)> {
    text.lines()
        .filter_map(|row| {
            let kernel = json_str_field(row, "kernel")?;
            let shape = json_str_field(row, "shape")?;
            let serial = json_num_field(row, "serial_ms")?;
            Some(((kernel.to_string(), shape.to_string()), serial))
        })
        .collect()
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'), "labels stay escape-free");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let check_path = args.iter().position(|a| a == "--check").map(|i| match args.get(i + 1) {
        Some(p) => p.clone(),
        None => {
            eprintln!("error: --check requires a baseline path");
            std::process::exit(2);
        }
    });

    let par_budget = amud_par::max_threads();
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Same rep count in smoke mode: the min-of-reps noise filter is what
    // makes `--check` trustworthy, and the smoke shapes are cheap.
    let reps = 5;
    // (nodes, features, hidden): tiny replica, default replica cap, and a
    // full-scale shape whose k-extent crosses TRANSA_BLOCK_ROWS.
    let dense_shapes: &[(usize, usize, usize)] = if smoke {
        &[(256, 64, 32), (1200, 128, 64)]
    } else {
        &[(256, 64, 32), (1200, 128, 64), (4096, 256, 128)]
    };
    let spmm_shapes: &[(usize, usize)] =
        if smoke { &[(1200, 32)] } else { &[(1200, 64), (4096, 64), (16384, 64)] };

    let mut results: Vec<KernelResult> = Vec::new();

    for &(n, f, h) in dense_shapes {
        let a = seeded(n, f, 1);
        let b = seeded(f, h, 2);
        let bt = seeded(h, f, 3);
        let g = seeded(n, h, 4);
        let shape = format!("{n}x{f}x{h}");

        let (gemm_flops, gemm_bytes) = gemm_model(n, f, h);

        let (s, p, ok) = run_pair(reps, par_budget, || a.matmul(&b).as_slice().to_vec());
        results.push(KernelResult {
            kernel: "matmul",
            shape: shape.clone(),
            serial_ms: s,
            parallel_ms: p,
            flops: gemm_flops,
            bytes: gemm_bytes,
            bit_identical: ok,
        });

        let (s, p, ok) = run_pair(reps, par_budget, || a.matmul_transb(&bt).as_slice().to_vec());
        results.push(KernelResult {
            kernel: "matmul_transb",
            shape: shape.clone(),
            serial_ms: s,
            parallel_ms: p,
            flops: gemm_flops,
            bytes: gemm_bytes,
            bit_identical: ok,
        });

        // Pack once outside the timer: the pack is built per weight
        // matrix and amortized across every inference call against it.
        let packed = bt.pack_transb();
        let (s, p, ok) =
            run_pair(reps, par_budget, || a.matmul_transb_packed(&packed).as_slice().to_vec());
        results.push(KernelResult {
            kernel: "matmul_transb_packed",
            shape: shape.clone(),
            serial_ms: s,
            parallel_ms: p,
            flops: gemm_flops,
            bytes: gemm_bytes,
            bit_identical: ok,
        });

        let (s, p, ok) = run_pair(reps, par_budget, || a.matmul_transa(&g).as_slice().to_vec());
        results.push(KernelResult {
            kernel: "matmul_transa",
            shape: shape.clone(),
            serial_ms: s,
            parallel_ms: p,
            flops: gemm_flops,
            bytes: gemm_bytes,
            bit_identical: ok,
        });

        let (t_flops, t_bytes) = stream_model(n * f, 0);
        let (s, p, ok) = run_pair(reps, par_budget, || a.transpose().as_slice().to_vec());
        results.push(KernelResult {
            kernel: "transpose",
            shape: format!("{n}x{f}"),
            serial_ms: s,
            parallel_ms: p,
            flops: t_flops,
            bytes: t_bytes,
            bit_identical: ok,
        });

        let (s, p, ok) = run_pair(reps, par_budget, || {
            let mut m = a.map(|v| 1.0 / (1.0 + (-v).exp()));
            m.par_rows_mut(|_, row| {
                let mut max = f32::NEG_INFINITY;
                for &v in row.iter() {
                    max = max.max(v);
                }
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                }
                let sum = amud_par::lane_sum(row);
                for v in row.iter_mut() {
                    *v /= sum;
                }
            });
            m.as_slice().to_vec()
        });
        let (sm_flops, sm_bytes) = stream_model(n * f, 9);
        results.push(KernelResult {
            kernel: "elementwise_softmax",
            shape: format!("{n}x{f}"),
            serial_ms: s,
            parallel_ms: p,
            flops: sm_flops,
            bytes: sm_bytes,
            bit_identical: ok,
        });
    }

    for &(n, x_cols) in spmm_shapes {
        let op = skewed_operator(n, 7);
        let x = seeded(n, x_cols, 8);
        let shape = format!("{n}x{n} nnz={} X={n}x{x_cols}", op.nnz());
        let (s, p, ok) = run_pair(reps, par_budget, || {
            let mut out = vec![0.0f32; n * x_cols];
            op.spmm(x.as_slice(), x_cols, &mut out);
            out
        });
        let (sp_flops, sp_bytes) = spmm_model(n, x_cols, op.nnz());
        results.push(KernelResult {
            kernel: "spmm",
            shape,
            serial_ms: s,
            parallel_ms: p,
            flops: sp_flops,
            bytes: sp_bytes,
            bit_identical: ok,
        });
    }

    // Human-readable table.
    println!(
        "bench-kernels: host_threads={host_threads} amud_threads={par_budget} reps={reps}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<20} {:<34} {:>10} {:>10} {:>8} {:>8} {:>7}  bits",
        "kernel", "shape", "serial", "parallel", "speedup", "GFLOP/s", "GB/s"
    );
    for r in &results {
        println!(
            "{:<20} {:<34} {:>8.3}ms {:>8.3}ms {:>7.2}x {:>8.2} {:>7.2}  {}",
            r.kernel,
            r.shape,
            r.serial_ms,
            r.parallel_ms,
            r.serial_ms / r.parallel_ms,
            r.gflops(),
            r.gbs(),
            if r.bit_identical { "identical" } else { "DIVERGED" }
        );
    }

    // Machine-readable JSON (hand-rendered: std-only workspace).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"amud_threads\": {par_budget},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \"speedup\": {:.4}, \"gflops\": {:.4}, \"gbs\": {:.4}, \"bit_identical\": {}}}{}\n",
            json_escape_free(r.kernel),
            json_escape_free(&r.shape),
            r.serial_ms,
            r.parallel_ms,
            r.serial_ms / r.parallel_ms,
            r.gflops(),
            r.gbs(),
            r.bit_identical,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    if results.iter().any(|r| !r.bit_identical) {
        eprintln!("error: a kernel diverged between serial and parallel runs");
        std::process::exit(1);
    }

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            eprintln!("error: baseline {path} has no parseable result rows");
            std::process::exit(2);
        }
        let mut checked = 0usize;
        let mut regressed = 0usize;
        for r in &results {
            let Some((_, base_ms)) =
                baseline.iter().find(|((k, s), _)| *k == r.kernel && *s == r.shape)
            else {
                continue; // smoke-only shape, or a kernel the baseline predates
            };
            checked += 1;
            // 10% relative budget plus a 0.25 ms absolute floor so
            // sub-millisecond kernels are not gated on host jitter.
            let limit = base_ms * 1.10 + 0.25;
            if r.serial_ms > limit {
                regressed += 1;
                eprintln!(
                    "regression: {} {} serial {:.3}ms exceeds {:.3}ms (baseline {:.3}ms +10% +0.25ms)",
                    r.kernel, r.shape, r.serial_ms, limit, base_ms
                );
            }
        }
        println!("check vs {path}: {checked} kernel/shape pair(s) compared, {regressed} regressed");
        if regressed > 0 {
            std::process::exit(1);
        }
        if checked == 0 {
            eprintln!("error: no kernel/shape pair overlapped the baseline — nothing was gated");
            std::process::exit(2);
        }
    }
}
