//! Hyperparameter tuning demo — the reproduction's stand-in for the
//! paper's Optuna search (Sec. V-A): a deterministic grid search over
//! ADPA's propagation steps, classifier depth, dropout, learning rate and
//! convolution coefficient, selected on *validation* accuracy.
//!
//! ```sh
//! cargo run -p amud-bench --release --bin tune [dataset]
//! ```

use amud_bench::{env_scale, to_graph_data};
use amud_core::{Adpa, AdpaConfig};
use amud_datasets::replica;
use amud_train::{grid_search, train, HyperGrid, TrainConfig};

fn main() {
    let cache_before = amud_cache::stats();
    let dataset = std::env::args().nth(1).unwrap_or_else(|| "chameleon".to_string());
    let d = replica(&dataset, env_scale(), 42);
    let data = to_graph_data(&d);
    let (prepared, report, _) = amud_core::paradigm::prepare_topology(&data);
    println!("tuning ADPA on {dataset} (AMUD S = {:.3}, {:?})\n", report.score, report.decision);

    let grid = HyperGrid {
        k_steps: vec![1, 2, 3, 4],
        mlp_layers: vec![1, 2],
        dropout: vec![0.2, 0.4, 0.6],
        lr: vec![0.01, 0.001],
        conv_r: vec![0.0, 0.5],
    };
    let points = grid.points();
    println!("grid: {} candidates", points.len());

    let base = TrainConfig {
        epochs: 80,
        patience: 20,
        lr: 0.01,
        weight_decay: 5e-4,
        ..TrainConfig::default()
    };
    let report = grid_search(&points, |p| {
        let cfg = AdpaConfig {
            k_steps: p.k_steps,
            classifier_layers: p.mlp_layers,
            dropout: p.dropout,
            conv_r: p.conv_r,
            ..Default::default()
        };
        let mut model = Adpa::new(&prepared, cfg, 0)?;
        train(&mut model, &prepared, p.train_config(base), 0).map(|r| r.best_val_acc)
    })
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code())
    });

    if !report.failures.is_empty() {
        println!("\n{} candidate(s) diverged and were skipped:", report.failures.len());
        for f in &report.failures {
            println!("  K={} layers={} — {}", f.point.k_steps, f.point.mlp_layers, f.error);
        }
    }
    println!("\ntop 5 by validation accuracy:");
    for o in report.outcomes.iter().take(5) {
        println!(
            "  val {:.3}  K={} layers={} dropout={:.1} lr={} r={:.1}",
            o.score,
            o.point.k_steps,
            o.point.mlp_layers,
            o.point.dropout,
            o.point.lr,
            o.point.conv_r
        );
    }

    // Retrain the winner and report the test accuracy.
    let best = report.best().map(|o| o.point).unwrap_or_else(|| {
        eprintln!("error: every grid candidate diverged");
        std::process::exit(6)
    });
    let cfg = AdpaConfig {
        k_steps: best.k_steps,
        classifier_layers: best.mlp_layers,
        dropout: best.dropout,
        conv_r: best.conv_r,
        ..Default::default()
    };
    let mut model = Adpa::new(&prepared, cfg, 0).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code())
    });
    let result = train(
        &mut model,
        &prepared,
        best.train_config(TrainConfig { epochs: 200, patience: 30, ..base }),
        0,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code())
    });
    println!("\nbest config test accuracy: {:.3}", result.test_acc);
    println!("precompute cache: {}", amud_cache::stats().delta(&cache_before));
}
