//! Table VI — ADPA performance under different k-order DP operator
//! families (order 1..5, i.e. k = 2, 6, 14, 30, 62 operators).
//!
//! Higher orders materialise exponentially many operators, so this sweep
//! runs at a reduced scale regardless of `AMUD_SCALE` (the paper's finding
//! — 2-order usually wins, higher orders overfit — is scale-independent).

use amud_bench::{env_repeats, print_header, print_row, run_adpa, sweep_config, to_graph_data};
use amud_core::AdpaConfig;
use amud_datasets::{replica, ReplicaScale};

fn main() {
    let cfg = sweep_config();
    let repeats = env_repeats(3);
    let scale = ReplicaScale { node_cap: 400, feature_cap: 64, avg_degree_cap: 10.0 };
    let datasets = [
        "cora_ml",
        "citeseer",
        "actor",
        "tolokers",
        "amazon_rating",
        "amazon_computers",
        "texas",
        "cornell",
        "wisconsin",
        "chameleon",
        "squirrel",
        "roman_empire",
    ];
    println!("Table VI: ADPA accuracy under k-order DP operators (reduced scale)\n");
    print_header("Dataset", &["1-order", "2-order", "3-order", "4-order", "5-order"]);
    for name in datasets {
        let data = to_graph_data(&replica(name, scale, 42));
        let cells: Vec<String> = (1..=5)
            .map(|order| {
                let adpa_cfg = AdpaConfig { max_order: order, k_steps: 2, ..Default::default() };
                format!("{}", run_adpa(&data, adpa_cfg, cfg, repeats, 0))
            })
            .collect();
        print_row(name, &cells);
    }
    println!("\nExpected shape: 2-order best on most rows; 1-order underfits; 4/5-order overfit.");
}
