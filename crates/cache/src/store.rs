//! A small shared LRU map for cached artifacts.
//!
//! The precompute stores hold whole operator sets and K-step feature
//! tensors — tens of megabytes each at dataset scale — so an unbounded map
//! would let a long benchmark table pin every graph it ever touched.
//! [`SharedStore`] bounds each store to a fixed number of entries and
//! evicts the least-recently-used one; the cap is chosen per store by
//! `amud_core::precompute` (a table run revisits a handful of graphs, not
//! hundreds).
//!
//! Values are handed out as owned clones; callers store `Arc<T>` so a
//! "clone" is a reference-count bump and an evicted entry stays alive for
//! whoever still holds it.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

struct Slot<V> {
    value: V,
    stamp: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Slot<V>>,
    clock: u64,
}

/// Mutex-guarded LRU map with a fixed entry cap.
///
/// `get` refreshes recency; `insert` evicts the stalest entry when the
/// store is full. Lock poisoning is tolerated (the inner state is a plain
/// map — a panicking reader cannot leave it torn), so one panicked test
/// thread does not wedge the cache for the rest of the process.
pub struct SharedStore<K, V> {
    inner: Mutex<Inner<K, V>>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> SharedStore<K, V> {
    /// Empty store holding at most `capacity` entries (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        SharedStore { inner: Mutex::new(Inner { map: HashMap::new(), clock: 0 }), capacity }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<K, V>> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Clone of the cached value for `key`, refreshing its recency.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|slot| {
            slot.stamp = clock;
            slot.value.clone()
        })
    }

    /// Inserts (or replaces) `key → value`, evicting the least-recently
    /// used entry if the store is at capacity.
    pub fn insert(&self, key: K, value: V) {
        let mut inner = self.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(stalest) =
                inner.map.iter().min_by_key(|(_, slot)| slot.stamp).map(|(k, _)| k.clone())
            {
                inner.map.remove(&stalest);
            }
        }
        inner.map.insert(key, Slot { value, stamp });
    }

    /// Drops every entry (the `clear()` used by cold-start benchmarking).
    pub fn clear(&self) {
        self.lock().map.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_round_trips() {
        let store: SharedStore<u32, String> = SharedStore::new(4);
        assert!(store.get(&1).is_none());
        store.insert(1, "one".into());
        assert_eq!(store.get(&1).as_deref(), Some("one"));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let store: SharedStore<u32, u32> = SharedStore::new(2);
        store.insert(1, 10);
        store.insert(2, 20);
        store.get(&1); // refresh 1 → 2 becomes stalest
        store.insert(3, 30);
        assert_eq!(store.get(&1), Some(10));
        assert_eq!(store.get(&2), None);
        assert_eq!(store.get(&3), Some(30));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let store: SharedStore<u32, u32> = SharedStore::new(2);
        store.insert(1, 10);
        store.insert(2, 20);
        store.insert(1, 11);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&1), Some(11));
        assert_eq!(store.get(&2), Some(20));
    }

    #[test]
    fn clear_empties_the_store() {
        let store: SharedStore<u32, u32> = SharedStore::new(2);
        store.insert(1, 10);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.get(&1), None);
    }
}
