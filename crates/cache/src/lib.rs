//! # amud-cache — precompute cache primitives
//!
//! ADPA's decoupled design (Sec. IV-D) makes DP-operator construction and
//! K-step feature propagation a **one-time preprocessing cost per graph** —
//! but the experiment harness constructs models hundreds of times per
//! sweep (10 seeds × every grid hyperpoint × every table bin). This crate
//! supplies the substrate the `amud_core::precompute` store is built on:
//!
//! * [`fingerprint`] — content fingerprints (FNV-1a 64) for sparse and
//!   dense matrices, so cache keys address *values*, not identities;
//! * [`store`] — a small mutex-guarded LRU map ([`SharedStore`]) bounding
//!   what a long table run can pin in memory;
//! * [`stats`] — process-wide atomic hit/miss/extend counters, surfaced in
//!   `TrainResult` and the CLI alongside the kernel thread budget;
//! * the `AMUD_CACHE` gate — [`enabled`] reads the env var once; tests and
//!   the benchmark harness override it for a scope with [`with_cache`].
//!
//! ## Determinism contract
//!
//! The cache stores *results of deterministic computations keyed by the
//! full content of their inputs*, and consumers replay cache misses with
//! exactly the serial code path. A cached artifact is therefore
//! bit-identical to a freshly computed one, and `AMUD_CACHE=off` changes
//! wall-clock only — never a single output bit. The equivalence suite
//! (`crates/core/tests/precompute_equivalence.rs`) pins this.

pub mod fingerprint;
pub mod stats;
pub mod store;

pub use fingerprint::{
    fingerprint_bytes, fingerprint_csr, fingerprint_dense, fingerprint_qdense, Fnv1a,
};
pub use stats::{
    record_feat_extend, record_feat_hit, record_feat_miss, record_op_hit, record_op_miss,
    reset_stats, stats, CacheStats,
};
pub use store::SharedStore;

use std::cell::Cell;
use std::sync::OnceLock;

/// Whether `AMUD_CACHE` enables the precompute store: `off`, `0`, or
/// `false` (case-insensitive) disable it; anything else — including unset —
/// enables it. Read once, at first use.
fn env_enabled() -> bool {
    // TAINT-PURE(env_enabled): the gate only switches between the cached
    // and uncached code paths, which are bit-identical by the determinism
    // contract above (pinned by the precompute equivalence suite).
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("AMUD_CACHE") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Whether the precompute cache is in effect for the calling thread: the
/// innermost [`with_cache`] override if one is active, else the
/// process-wide `AMUD_CACHE` environment setting.
pub fn enabled() -> bool {
    OVERRIDE.get().unwrap_or_else(env_enabled)
}

/// Runs `f` with the calling thread's cache gate overridden to `on`. The
/// previous setting is restored when `f` returns — or unwinds, so a
/// failing assertion inside an equivalence test cannot leak its override
/// into the next case. This is how cached and uncached paths are compared
/// inside one process (tests, `bench-precompute`).
pub fn with_cache<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(OVERRIDE.replace(Some(on)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_nests_and_restores() {
        let outer = enabled();
        with_cache(false, || {
            assert!(!enabled());
            with_cache(true, || assert!(enabled()));
            assert!(!enabled());
        });
        assert_eq!(enabled(), outer);
    }

    #[test]
    fn override_restores_on_panic() {
        let outer = enabled();
        let result = std::panic::catch_unwind(|| with_cache(!outer, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(enabled(), outer);
    }
}
