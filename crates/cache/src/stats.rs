//! Process-wide cache instrumentation.
//!
//! Counters are monotonic `AtomicU64`s; callers take a [`CacheStats`]
//! snapshot before a region of interest and subtract with
//! [`CacheStats::delta`] afterwards. Monotonic-with-deltas is chosen over
//! resettable counters deliberately: a reset racing with a concurrent
//! sweep would silently corrupt both readers, while deltas are always
//! consistent per reader.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static OP_HITS: AtomicU64 = AtomicU64::new(0);
static OP_MISSES: AtomicU64 = AtomicU64::new(0);
static FEAT_HITS: AtomicU64 = AtomicU64::new(0);
static FEAT_MISSES: AtomicU64 = AtomicU64::new(0);
static FEAT_EXTENDS: AtomicU64 = AtomicU64::new(0);

/// Records an operator-set cache hit (normalized `PatternSet` reused).
pub fn record_op_hit() {
    OP_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records an operator-set cache miss (full sparse-product build ran).
pub fn record_op_miss() {
    OP_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Records a propagated-features hit (a cached K ≥ requested k served the
/// request as a prefix view, zero spmm calls).
pub fn record_feat_hit() {
    FEAT_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records a propagated-features miss (propagation ran from `X^(0)`).
pub fn record_feat_miss() {
    FEAT_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Records an incremental extension (cached K < requested k; propagation
/// resumed from the last cached step instead of restarting).
pub fn record_feat_extend() {
    FEAT_EXTENDS.fetch_add(1, Ordering::Relaxed);
}

/// Resets all counters to zero. Test-only escape hatch: production readers
/// use snapshot + [`CacheStats::delta`], which stays correct under
/// concurrency where a reset would not.
pub fn reset_stats() {
    OP_HITS.store(0, Ordering::Relaxed);
    OP_MISSES.store(0, Ordering::Relaxed);
    FEAT_HITS.store(0, Ordering::Relaxed);
    FEAT_MISSES.store(0, Ordering::Relaxed);
    FEAT_EXTENDS.store(0, Ordering::Relaxed);
}

/// Snapshot of the process-wide precompute-cache counters.
///
/// Values are cumulative since process start (or [`reset_stats`]); compare
/// two snapshots with [`CacheStats::delta`] to attribute activity to a
/// region (one training run, one grid search, one benchmark sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Normalized operator sets served from cache.
    pub op_hits: u64,
    /// Normalized operator sets built from scratch.
    pub op_misses: u64,
    /// Propagated-feature requests served entirely from cache.
    pub feat_hits: u64,
    /// Propagated-feature requests computed from `X^(0)`.
    pub feat_misses: u64,
    /// Propagated-feature requests served by extending a shorter cached K.
    pub feat_extends: u64,
}

impl CacheStats {
    /// Counter increments accumulated since the `earlier` snapshot.
    /// Saturating, so a test-only [`reset_stats`] between snapshots yields
    /// zeros rather than wrapping.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            op_hits: self.op_hits.saturating_sub(earlier.op_hits),
            op_misses: self.op_misses.saturating_sub(earlier.op_misses),
            feat_hits: self.feat_hits.saturating_sub(earlier.feat_hits),
            feat_misses: self.feat_misses.saturating_sub(earlier.feat_misses),
            feat_extends: self.feat_extends.saturating_sub(earlier.feat_extends),
        }
    }

    /// Total requests observed (hits + misses + extends across both
    /// stores); zero means the cache was never consulted in the window.
    pub fn total(&self) -> u64 {
        self.op_hits + self.op_misses + self.feat_hits + self.feat_misses + self.feat_extends
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ops {}h/{}m, features {}h/{}m/{}x",
            self.op_hits, self.op_misses, self.feat_hits, self.feat_misses, self.feat_extends
        )
    }
}

/// Current snapshot of the process-wide counters.
pub fn stats() -> CacheStats {
    CacheStats {
        op_hits: OP_HITS.load(Ordering::Relaxed),
        op_misses: OP_MISSES.load(Ordering::Relaxed),
        feat_hits: FEAT_HITS.load(Ordering::Relaxed),
        feat_misses: FEAT_MISSES.load(Ordering::Relaxed),
        feat_extends: FEAT_EXTENDS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_attributes_a_region() {
        let before = stats();
        record_op_hit();
        record_feat_miss();
        record_feat_extend();
        record_feat_extend();
        let d = stats().delta(&before);
        assert_eq!(d.op_hits, 1);
        assert_eq!(d.op_misses, 0);
        assert_eq!(d.feat_misses, 1);
        assert_eq!(d.feat_extends, 2);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn display_is_compact() {
        let s =
            CacheStats { op_hits: 9, op_misses: 1, feat_hits: 58, feat_misses: 2, feat_extends: 3 };
        assert_eq!(s.to_string(), "ops 9h/1m, features 58h/2m/3x");
    }
}
