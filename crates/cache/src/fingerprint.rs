//! Content fingerprints for cache keys.
//!
//! The precompute store is *content-addressed*: two `GraphData` instances
//! loaded from the same `.amud` file hash to the same key even though they
//! are distinct allocations, so every seed of a `repeat_runs` sweep and
//! every `grid_search` hyperpoint lands on the same cached artifact. FNV-1a
//! (64-bit) is used because it is tiny, std-only, and fast enough that
//! fingerprinting is negligible next to even one spmm — a fingerprint over
//! a 2M-entry feature matrix costs a single linear pass.
//!
//! Floats are hashed via [`f32::to_bits`], so the fingerprint distinguishes
//! exactly the inputs the deterministic kernels distinguish (including
//! `-0.0` vs `0.0` and NaN payloads): bit-equal inputs ⇒ equal keys, and a
//! single changed bit anywhere ⇒ a different key with probability
//! `1 − 2⁻⁶⁴` per the usual FNV collision behaviour.

use amud_graph::CsrMatrix;
use amud_nn::DenseMatrix;
use amud_quant::QMatrix;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher over byte and integer words.
///
/// Not a `std::hash::Hasher`: cache keys need a *stable* value across
/// processes and runs (the default `DefaultHasher` is randomly keyed), and
/// only a handful of input types, so a tiny purpose-built accumulator is
/// clearer than the trait dance.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorbs a `u64` as its 8 little-endian bytes (lengths, dims, bit
    /// patterns). Feeding lengths keeps the encoding prefix-free: `[1,2]`
    /// followed by `[3]` cannot collide with `[1]` followed by `[2,3]`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f32` by bit pattern (total: distinguishes NaNs, ±0).
    pub fn write_f32(&mut self, v: f32) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// Final 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a digest of a byte slice (length-prefixed).
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(bytes.len() as u64);
    h.write_bytes(bytes);
    h.finish()
}

/// Content fingerprint of a sparse matrix: shape, per-row structure, and
/// every stored value's bit pattern. Two CSR matrices fingerprint equal iff
/// they have identical shape, sparsity structure, and bit-identical values.
pub fn fingerprint_csr(m: &CsrMatrix) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(m.n_rows() as u64);
    h.write_u64(m.n_cols() as u64);
    h.write_u64(m.nnz() as u64);
    for r in 0..m.n_rows() {
        let cols = m.row_cols(r);
        h.write_u64(cols.len() as u64);
        for &c in cols {
            h.write_u64(u64::from(c));
        }
        for &v in m.row_values(r) {
            h.write_f32(v);
        }
    }
    h.finish()
}

/// Content fingerprint of a dense matrix: shape plus every entry's bit
/// pattern, in row-major order.
pub fn fingerprint_dense(m: &DenseMatrix) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(m.rows() as u64);
    h.write_u64(m.cols() as u64);
    for &v in m.as_slice() {
        h.write_f32(v);
    }
    h.finish()
}

/// Content fingerprint of a quantized matrix: a precision-specific domain
/// tag, the shape, the int8 scale (when present), and every stored
/// element's bit pattern.
///
/// The domain tag is the load-bearing part: an f32 tensor and any
/// quantization of it must **never** collide, even though they decode to
/// (nearly) the same values — a cache hit across precisions would hand a
/// quantized artifact to a caller expecting full precision. The tag
/// offsets the precision code away from the `fingerprint_dense` encoding
/// (which starts with a row count), so the two hash streams diverge at
/// byte 0.
pub fn fingerprint_qdense(m: &QMatrix) -> u64 {
    let mut h = Fnv1a::new();
    // Domain separator: "AMQ" ++ precision code, as one u64. A plain
    // dense fingerprint starts with `rows as u64`, which cannot equal
    // this constant for any realistic matrix (it would need ~4.6e18
    // rows).
    h.write_u64(0x414d_5100_0000_0000 | u64::from(m.precision().code()));
    match m {
        QMatrix::F32(d) => h.write_u64(fingerprint_dense(d)),
        QMatrix::F16 { rows, cols, bits } => {
            h.write_u64(*rows as u64);
            h.write_u64(*cols as u64);
            for &b in bits {
                h.write_bytes(&b.to_le_bytes());
            }
        }
        QMatrix::I8 { rows, cols, scale, q } => {
            h.write_u64(*rows as u64);
            h.write_u64(*cols as u64);
            h.write_f32(*scale);
            for &v in q {
                h.write_bytes(&[v as u8]);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 64 of the bytes "a" is the published test vector.
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn dense_fingerprint_is_content_addressed() {
        let a = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let b = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        assert_eq!(fingerprint_dense(&a), fingerprint_dense(&b));
        let mut c = b.clone();
        c.as_mut_slice()[5] += 1.0;
        assert_ne!(fingerprint_dense(&a), fingerprint_dense(&c));
    }

    #[test]
    fn dense_fingerprint_distinguishes_shape() {
        let a = DenseMatrix::zeros(2, 6);
        let b = DenseMatrix::zeros(3, 4);
        assert_ne!(fingerprint_dense(&a), fingerprint_dense(&b));
    }

    #[test]
    fn dense_fingerprint_distinguishes_signed_zero() {
        let a = DenseMatrix::from_fn(1, 1, |_, _| 0.0);
        let b = DenseMatrix::from_fn(1, 1, |_, _| -0.0);
        assert_ne!(fingerprint_dense(&a), fingerprint_dense(&b));
    }

    #[test]
    fn csr_fingerprint_tracks_structure_and_values() {
        let edges = vec![(0usize, 1usize, 1.0f32), (1, 2, 2.0), (2, 0, 3.0)];
        let a = CsrMatrix::from_coo(3, 3, edges.clone()).unwrap();
        let b = CsrMatrix::from_coo(3, 3, edges).unwrap();
        assert_eq!(fingerprint_csr(&a), fingerprint_csr(&b));

        let moved = CsrMatrix::from_coo(3, 3, vec![(0, 2, 1.0), (1, 2, 2.0), (2, 0, 3.0)]).unwrap();
        assert_ne!(fingerprint_csr(&a), fingerprint_csr(&moved));

        let revalued =
            CsrMatrix::from_coo(3, 3, vec![(0, 1, 9.0), (1, 2, 2.0), (2, 0, 3.0)]).unwrap();
        assert_ne!(fingerprint_csr(&a), fingerprint_csr(&revalued));
    }

    #[test]
    fn bytes_fingerprint_is_length_prefixed() {
        assert_ne!(fingerprint_bytes(b""), fingerprint_bytes(b"\0"));
    }

    #[test]
    fn quantized_fingerprints_never_collide_across_precisions() {
        use amud_quant::Precision;
        let m = DenseMatrix::from_fn(5, 7, |r, c| ((r * 7 + c) as f32 * 0.37).sin());
        let f32fp = fingerprint_dense(&m);
        let qf32 = fingerprint_qdense(&QMatrix::quantize(&m, Precision::F32));
        let qf16 = fingerprint_qdense(&QMatrix::quantize(&m, Precision::F16));
        let qi8 = fingerprint_qdense(&QMatrix::quantize(&m, Precision::I8));
        // Same source tensor, four distinct addresses: the raw dense hash
        // and each precision's domain-tagged hash.
        let all = [f32fp, qf32, qf16, qi8];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j], "i={i} j={j}");
            }
        }
    }

    #[test]
    fn quantized_fingerprint_is_content_addressed() {
        use amud_quant::Precision;
        let m = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5);
        let a = fingerprint_qdense(&QMatrix::quantize(&m, Precision::F16));
        let b = fingerprint_qdense(&QMatrix::quantize(&m, Precision::F16));
        assert_eq!(a, b);
        let mut changed = m.clone();
        changed.as_mut_slice()[2] += 1.0;
        assert_ne!(a, fingerprint_qdense(&QMatrix::quantize(&changed, Precision::F16)));
    }

    #[test]
    fn quantized_fingerprint_tracks_the_scale() {
        // Two int8 tensors with identical payloads but different scales
        // decode differently and must key differently.
        let a = QMatrix::try_i8(1, 3, 0.5, vec![1, 2, 3]).unwrap();
        let b = QMatrix::try_i8(1, 3, 0.25, vec![1, 2, 3]).unwrap();
        assert_ne!(fingerprint_qdense(&a), fingerprint_qdense(&b));
    }
}
