//! Property tests over the snapshot format's integrity guarantees
//! (DESIGN.md §13.2): for ANY byte-level damage — bit flips anywhere,
//! truncation at any point, arbitrary garbage — decoding either
//! reproduces the original snapshot exactly or fails with a typed
//! [`amud_serve::SnapshotError`]. There is no third outcome: no panic,
//! and never a silently different model.

use amud_quant::{Precision, QuantSpec};
use amud_serve::snapshot::{decode_snapshot, encode_snapshot, Snapshot};
use amud_serve::synthetic::synthetic_snapshot;
use proptest::prelude::*;

/// A mixed-precision (int8 features, f16 weights) snapshot — every
/// quantized payload layout in the v2 format at once.
fn quantized_fixture(seed: u64) -> Snapshot {
    synthetic_snapshot(seed, 6, 3, 2, 2, 4, 0)
        .requantized(QuantSpec { features: Precision::I8, weights: Precision::F16 })
}

proptest! {
    #[test]
    fn quantized_mutation_roundtrips_or_is_rejected(
        seed in 0u64..10_000,
        n_mut in 1usize..8,
    ) {
        let original = quantized_fixture(7);
        let bytes = encode_snapshot(&original);
        let corrupt = amud_train::faults::corrupt_binary(&bytes, seed, n_mut);
        match decode_snapshot(&corrupt) {
            Ok(s) => prop_assert_eq!(s, original),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn quantized_truncation_point_is_rejected(point in 0usize..1_000_000) {
        let bytes = encode_snapshot(&quantized_fixture(7));
        let keep = point % bytes.len(); // every strict prefix, uniformly
        let err = decode_snapshot(&bytes[..keep])
            .expect_err("a strict prefix can never carry a valid file seal");
        prop_assert!(!err.to_string().is_empty());
    }

    #[test]
    fn quantized_clean_bytes_always_roundtrip(
        seed in 0u64..1_000,
        n_nodes in 1usize..10,
        k_steps in 1usize..4,
        precision in 0usize..3,
    ) {
        let p = Precision::from_code(precision as u32).unwrap();
        let s = synthetic_snapshot(seed, n_nodes, 3, 2, k_steps, 4, 0)
            .requantized(QuantSpec::uniform(p));
        let decoded = decode_snapshot(&encode_snapshot(&s)).expect("clean bytes must decode");
        prop_assert_eq!(decoded, s);
    }
    #[test]
    fn any_byte_mutation_roundtrips_or_is_rejected(
        seed in 0u64..10_000,
        n_mut in 1usize..8,
    ) {
        let original = synthetic_snapshot(7, 6, 3, 2, 2, 4, 0);
        let bytes = encode_snapshot(&original);
        let corrupt = amud_train::faults::corrupt_binary(&bytes, seed, n_mut);
        match decode_snapshot(&corrupt) {
            // Mutations can collide and cancel out (same byte, same bit,
            // twice) — then the decode must reproduce the original.
            Ok(s) => prop_assert_eq!(s, original),
            // Otherwise: a typed rejection, never a different model. The
            // error must render (Display is part of the typed contract).
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn any_truncation_point_is_rejected(point in 0usize..1_000_000) {
        let bytes = encode_snapshot(&synthetic_snapshot(7, 6, 3, 2, 2, 4, 0));
        let keep = point % bytes.len(); // every strict prefix, uniformly
        let err = decode_snapshot(&bytes[..keep])
            .expect_err("a strict prefix can never carry a valid file seal");
        prop_assert!(!err.to_string().is_empty());
    }

    #[test]
    fn arbitrary_garbage_never_panics(words in prop::collection::vec(0u64..256, 0..512)) {
        let garbage: Vec<u8> = words.iter().map(|&w| w as u8).collect();
        // Typed error or (astronomically unlikely) a valid decode; the
        // point is that no input can panic the parser.
        let _ = decode_snapshot(&garbage);
    }

    #[test]
    fn clean_bytes_always_roundtrip(
        seed in 0u64..1_000,
        n_nodes in 1usize..10,
        k_steps in 1usize..4,
        variant in 0u64..5,
    ) {
        let s = synthetic_snapshot(seed, n_nodes, 3, 2, k_steps, 4, variant as u32);
        let decoded = decode_snapshot(&encode_snapshot(&s)).expect("clean bytes must decode");
        prop_assert_eq!(decoded, s);
    }
}
