//! Row-gather inference engine (DESIGN.md §13.2).
//!
//! ADPA's eval-mode forward pass is *row-local*: every op it uses —
//! `col_scale`, `add_bias`, `relu`, `leaky_relu`, `sigmoid`,
//! `row_softmax`, row-blocked `matmul`, `concat_cols`, `scale`, `add` —
//! computes output row `v` from input rows `v` only (the sparse topology
//! was consumed by the one-time Eq. 9 precompute). The engine exploits
//! this: to answer a request for nodes `{v₁…v_b}` it gathers those rows
//! from the propagated tensors (and `W_DP`), then replays the exact
//! scalar arithmetic of the tape's forward pass on the `b`-row slices.
//! The result is **bit-identical** to running the full-graph tape forward
//! and reading out the same rows — pinned by the `matches_tape_forward`
//! tests below across every attention variant.
//!
//! Dense kernels (`matmul`) ride `amud-par`'s worker pool and inherit its
//! bit-identity-at-any-thread-count contract; the elementwise glue here
//! runs serially (request batches are small next to training workloads).
//!
//! **Quantized snapshots** run the fused-dequant path: row gathers decode
//! f16/int8 rows on the fly ([`QMatrix::decode_row_into`]) and dense
//! layers go through [`amud_quant::matmul_deq`], which dequantizes inside
//! the lane kernels instead of materializing an f32 copy of the weights.
//! Because the decode is a single rounding shared by both paths, a
//! quantized engine is bit-identical to an f32 engine built from the
//! dequantized export — pinned by `quantized_engine_matches_dequantized`.

use crate::error::{ServeError, SnapshotError};
use crate::snapshot::Snapshot;
use amud_core::{DpAttention, QLinear, QuantizedExport};
use amud_nn::DenseMatrix;
use amud_quant::{matmul_deq, QMatrix};

/// One prediction in a reply.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The queried node id.
    pub node: usize,
    /// Argmax class.
    pub class: usize,
    /// Softmax probability of the argmax class.
    pub confidence: f32,
}

/// A validated, immutable model the server answers queries from. Built
/// once per snapshot (swap = build a new engine, then switch an `Arc`).
#[derive(Debug)]
pub struct Engine {
    tag: u64,
    export: QuantizedExport,
}

impl Engine {
    /// Validates the snapshot's cross-matrix shape invariants and wraps
    /// it. A snapshot that parsed but describes an inconsistent model —
    /// a fuse layer that does not match the operator family, propagated
    /// tensors of uneven shape — is rejected here with
    /// [`SnapshotError::Malformed`], which is what lets the hot-swap
    /// watcher keep serving last-good on a bad candidate.
    pub fn new(snapshot: Snapshot) -> Result<Self, ServeError> {
        let e = &snapshot.export;
        let malformed = |what: String| ServeError::Snapshot(SnapshotError::Malformed { what });
        let (n, f) = e.x0.shape();
        let k = e.pattern_names.len();
        if e.k_steps == 0 {
            return Err(malformed("k_steps must be ≥ 1".into()));
        }
        if e.steps.len() != e.k_steps {
            return Err(malformed(format!(
                "{} step tensors for k_steps={}",
                e.steps.len(),
                e.k_steps
            )));
        }
        for (l, per_step) in e.steps.iter().enumerate() {
            if per_step.len() != k {
                return Err(malformed(format!(
                    "step {} has {} operator tensors, expected {k}",
                    l + 1,
                    per_step.len()
                )));
            }
            for (g, m) in per_step.iter().enumerate() {
                if m.shape() != (n, f) {
                    return Err(malformed(format!(
                        "operator {g} step {} tensor is {:?}, expected ({n}, {f})",
                        l + 1,
                        m.shape()
                    )));
                }
            }
        }
        let fuse_in = match e.dp_attention {
            DpAttention::None => f,
            _ => (k + 1) * f,
        };
        if e.fuse.w.shape() != (fuse_in, e.hidden) || e.fuse.b.shape() != (1, e.hidden) {
            return Err(malformed(format!(
                "fuse layer is {:?}/{:?}, expected ({fuse_in}, {})",
                e.fuse.w.shape(),
                e.fuse.b.shape(),
                e.hidden
            )));
        }
        match e.dp_attention {
            DpAttention::Original => {
                let w = e
                    .w_dp
                    .as_ref()
                    .ok_or_else(|| malformed("Original attention needs W_DP".into()))?;
                if w.shape() != (n, k + 1) {
                    return Err(malformed(format!(
                        "W_DP is {:?}, expected ({n}, {})",
                        w.shape(),
                        k + 1
                    )));
                }
            }
            DpAttention::Gate | DpAttention::Recursive => {
                if e.op_scorers.len() != k + 1 {
                    return Err(malformed(format!(
                        "{} operator scorers, expected {}",
                        e.op_scorers.len(),
                        k + 1
                    )));
                }
                for s in &e.op_scorers {
                    if s.w.shape() != (f, 1) || s.b.shape() != (1, 1) {
                        return Err(malformed(format!(
                            "operator scorer is {:?}, expected ({f}, 1)",
                            s.w.shape()
                        )));
                    }
                }
            }
            DpAttention::Jk | DpAttention::None => {}
        }
        if let Some(hop) = &e.hop_scorer {
            let want = (e.k_steps * e.hidden, e.k_steps);
            if hop.w.shape() != want || hop.b.shape() != (1, e.k_steps) {
                return Err(malformed(format!(
                    "hop scorer is {:?}, expected {want:?}",
                    hop.w.shape()
                )));
            }
        }
        if e.classifier.is_empty() {
            return Err(malformed("classifier has no layers".into()));
        }
        let mut prev = e.hidden;
        for (i, l) in e.classifier.iter().enumerate() {
            if l.w.rows() != prev || l.b.shape() != (1, l.w.cols()) {
                return Err(malformed(format!(
                    "classifier layer {i} is {:?}, expected ({prev}, _)",
                    l.w.shape()
                )));
            }
            prev = l.w.cols();
        }
        if prev != e.n_classes {
            return Err(malformed(format!(
                "classifier ends at width {prev}, expected {} classes",
                e.n_classes
            )));
        }
        Ok(Self { tag: snapshot.tag, export: snapshot.export })
    }

    /// The writer-chosen tag of the snapshot this engine was built from.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Number of nodes the engine can answer for.
    pub fn n_nodes(&self) -> usize {
        self.export.x0.rows()
    }

    /// Number of classes in the classifier head.
    pub fn n_classes(&self) -> usize {
        self.export.n_classes
    }

    /// The `(features, weights)` storage precisions of the loaded model.
    pub fn spec(&self) -> amud_quant::QuantSpec {
        self.export.spec()
    }

    /// Resident bytes across every stored tensor of the loaded model.
    pub fn n_bytes(&self) -> usize {
        self.export.n_bytes()
    }

    /// Resident bytes of the per-node feature tensors — what a row-gather
    /// walks, and the numerator of `bench-serve`'s bytes-per-query.
    pub fn feature_bytes(&self) -> usize {
        self.export.feature_bytes()
    }

    /// Raw logits for the requested nodes (one row per node, in request
    /// order). Out-of-range ids are a typed [`ServeError::BadRequest`].
    pub fn logits(&self, nodes: &[usize]) -> Result<DenseMatrix, ServeError> {
        let n = self.n_nodes();
        if nodes.is_empty() {
            return Err(ServeError::bad_request("empty node list"));
        }
        if let Some(&bad) = nodes.iter().find(|&&v| v >= n) {
            return Err(ServeError::bad_request(format!(
                "node {bad} out of range (graph has {n} nodes)"
            )));
        }
        let e = &self.export;

        // Level 1: DP attention per step (Eq. 10), on gathered rows.
        let x0 = gather(&e.x0, nodes);
        let w_dp = e.w_dp.as_ref().map(|w| gather(w, nodes));
        let step_reprs: Vec<DenseMatrix> = (1..=e.k_steps)
            .map(|l| {
                let mut ops: Vec<DenseMatrix> = Vec::with_capacity(e.steps[l - 1].len() + 1);
                ops.push(x0.clone());
                for m in &e.steps[l - 1] {
                    ops.push(gather(m, nodes));
                }
                let fused_input = match e.dp_attention {
                    DpAttention::Original => {
                        let Some(w) = &w_dp else {
                            unreachable!("validated: Original attention has W_DP")
                        };
                        let weighted: Vec<DenseMatrix> =
                            ops.iter().enumerate().map(|(j, x)| col_scale(w, j, x)).collect();
                        concat(&weighted)
                    }
                    DpAttention::Gate => {
                        let weighted: Vec<DenseMatrix> = ops
                            .iter()
                            .zip(&e.op_scorers)
                            .map(|(x, scorer)| {
                                let mut logit = linear(x, scorer);
                                sigmoid(&mut logit);
                                col_scale(&logit, 0, x)
                            })
                            .collect();
                        concat(&weighted)
                    }
                    DpAttention::Recursive => {
                        let logits: Vec<DenseMatrix> = ops
                            .iter()
                            .zip(&e.op_scorers)
                            .map(|(x, scorer)| {
                                let mut v = linear(x, scorer);
                                leaky_relu(&mut v, 0.2);
                                v
                            })
                            .collect();
                        let mut w = concat(&logits);
                        row_softmax(&mut w);
                        let weighted: Vec<DenseMatrix> =
                            ops.iter().enumerate().map(|(j, x)| col_scale(&w, j, x)).collect();
                        concat(&weighted)
                    }
                    DpAttention::Jk => concat(&ops),
                    DpAttention::None => {
                        let mut acc = ops[0].clone();
                        for x in &ops[1..] {
                            add_assign(&mut acc, x);
                        }
                        scale(&mut acc, 1.0 / ops.len() as f32);
                        acc
                    }
                };
                let mut h = linear(&fused_input, &e.fuse);
                relu(&mut h);
                h
            })
            .collect();

        // Level 2: hop attention across steps (Eq. 11).
        let fused = if let Some(hop) = &e.hop_scorer {
            let refs: Vec<&DenseMatrix> = step_reprs.iter().collect();
            let stacked = DenseMatrix::concat_cols(&refs);
            let mut w = linear(&stacked, hop);
            leaky_relu(&mut w, 0.2);
            row_softmax(&mut w);
            let mut acc = col_scale(&w, 0, &step_reprs[0]);
            for (l, h) in step_reprs.iter().enumerate().skip(1) {
                let scaled = col_scale(&w, l, h);
                add_assign(&mut acc, &scaled);
            }
            acc
        } else {
            let mut acc = step_reprs[0].clone();
            for h in &step_reprs[1..] {
                add_assign(&mut acc, h);
            }
            scale(&mut acc, 1.0 / step_reprs.len() as f32);
            acc
        };

        // Classifier head: ReLU between layers, none after the last.
        let mut h = fused;
        let last = e.classifier.len() - 1;
        for (i, layer) in e.classifier.iter().enumerate() {
            h = linear(&h, layer);
            if i != last {
                relu(&mut h);
            }
        }
        Ok(h)
    }

    /// Predictions (argmax class + softmax confidence) for the requested
    /// nodes, in request order.
    pub fn predict(&self, nodes: &[usize]) -> Result<Vec<Prediction>, ServeError> {
        let mut logits = self.logits(nodes)?;
        let classes = logits.argmax_rows();
        row_softmax(&mut logits);
        Ok(nodes
            .iter()
            .zip(classes)
            .enumerate()
            .map(|(i, (&node, class))| Prediction { node, class, confidence: logits.get(i, class) })
            .collect())
    }
}

/// Gathers the requested rows of `m` into a `b × cols` f32 matrix,
/// decoding quantized rows on the fly (one rounding per element — the
/// same decode `dequantize` uses, so gathers are precision-agnostic).
fn gather(m: &QMatrix, nodes: &[usize]) -> DenseMatrix {
    let cols = m.cols();
    let mut out = DenseMatrix::zeros(nodes.len(), cols);
    for (i, &v) in nodes.iter().enumerate() {
        m.decode_row_into(v, out.row_mut(i));
    }
    out
}

/// `x · W + b` — the tape's `matmul` + `add_bias` pair. An f32 weight
/// runs the shared row-blocked kernel; a quantized one runs the fused
/// dequant GEMM (bitwise-pinned to decode-then-matmul). The bias add
/// replays `add_bias`'s per-row `+=` in the same element order.
fn linear(x: &DenseMatrix, l: &QLinear) -> DenseMatrix {
    let mut y = match &l.w {
        QMatrix::F32(w) => x.matmul(w),
        q => matmul_deq(x, q),
    };
    let bias = l.b.row(0);
    for r in 0..y.rows() {
        for (v, &b) in y.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
    y
}

/// The tape's `col_scale`: row `r` of `x` times `w[r, col]`.
fn col_scale(w: &DenseMatrix, col: usize, x: &DenseMatrix) -> DenseMatrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let factor = w.get(r, col);
        for v in out.row_mut(r) {
            *v *= factor;
        }
    }
    out
}

fn concat(parts: &[DenseMatrix]) -> DenseMatrix {
    let refs: Vec<&DenseMatrix> = parts.iter().collect();
    DenseMatrix::concat_cols(&refs)
}

fn relu(m: &mut DenseMatrix) {
    for v in m.as_mut_slice() {
        *v = v.max(0.0);
    }
}

fn leaky_relu(m: &mut DenseMatrix, alpha: f32) {
    for v in m.as_mut_slice() {
        *v = if *v > 0.0 { *v } else { alpha * *v };
    }
}

fn sigmoid(m: &mut DenseMatrix) {
    for v in m.as_mut_slice() {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

fn add_assign(a: &mut DenseMatrix, b: &DenseMatrix) {
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

fn scale(m: &mut DenseMatrix, s: f32) {
    for v in m.as_mut_slice() {
        *v *= s;
    }
}

/// The tape's `row_softmax` / `softmax_in_place`, replayed exactly:
/// max-shift, exp with the sum accumulated in element order, then a
/// guarded divide.
fn row_softmax(m: &mut DenseMatrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_snapshot;
    use amud_core::{Adpa, AdpaConfig};
    use amud_train::{GraphData, Model};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(name: &str, seed: u64) -> GraphData {
        let d = amud_datasets::replica(name, amud_datasets::ReplicaScale::tiny(), seed);
        GraphData::new(
            &d.graph,
            d.features.clone(),
            d.split.train.clone(),
            d.split.val.clone(),
            d.split.test.clone(),
        )
        .unwrap()
    }

    fn tape_logits(model: &Adpa, d: &GraphData) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = amud_nn::Tape::new();
        let out = model.forward(&mut tape, d, false, &mut rng);
        tape.value(out).clone()
    }

    #[test]
    fn matches_tape_forward_bit_for_bit_across_variants() {
        let d = data("texas", 11);
        for (variant, hop) in [
            (DpAttention::Original, true),
            (DpAttention::Original, false),
            (DpAttention::Gate, true),
            (DpAttention::Recursive, true),
            (DpAttention::Jk, true),
            (DpAttention::None, true),
        ] {
            let cfg =
                AdpaConfig { dp_attention: variant, hop_attention: hop, ..Default::default() };
            let model = Adpa::new(&d, cfg, 11).unwrap();
            let full = tape_logits(&model, &d);
            let engine =
                Engine::new(Snapshot::from_export(1, model.export())).expect("valid export");
            // Whole-graph query in one batch…
            let all: Vec<usize> = (0..d.n_nodes()).collect();
            let got = engine.logits(&all).unwrap();
            assert_eq!(got, full, "{variant:?} hop={hop}: engine must be bit-identical");
            // …and a scattered small batch must reproduce exactly those rows.
            let batch = [3usize, 0, 17 % d.n_nodes(), 5];
            let got = engine.logits(&batch).unwrap();
            for (i, &v) in batch.iter().enumerate() {
                assert_eq!(got.row(i), full.row(v), "{variant:?} row {v}");
            }
        }
    }

    #[test]
    fn quantized_engine_matches_dequantized_f32_engine_bit_for_bit() {
        use amud_quant::{Precision, QuantSpec};
        // The fused-dequant inference path must equal decode-then-serve
        // exactly: build one engine on the quantized snapshot and one on
        // its f32 expansion, and compare logits bitwise — per variant and
        // per precision, across batch shapes.
        for variant in 0..5u32 {
            let base = synthetic_snapshot(31 + u64::from(variant), 14, 6, 3, 2, 8, variant);
            for spec in [
                QuantSpec::uniform(Precision::F16),
                QuantSpec::uniform(Precision::I8),
                QuantSpec { features: Precision::F16, weights: Precision::I8 },
            ] {
                let q = base.requantized(spec);
                let f32_twin = Snapshot {
                    tag: q.tag,
                    export: amud_core::QuantizedExport::from_export(q.export.dequantize()),
                };
                let qe = Engine::new(q).expect("quantized snapshot must validate");
                assert_eq!(qe.spec(), spec);
                assert!(qe.n_bytes() < Engine::new(f32_twin.clone()).unwrap().n_bytes());
                let fe = Engine::new(f32_twin).unwrap();
                let all: Vec<usize> = (0..14).collect();
                for batch in [&all[..], &[0usize, 13, 7][..], &[5usize][..]] {
                    let got = qe.logits(batch).unwrap();
                    let want = fe.logits(batch).unwrap();
                    assert_eq!(got, want, "variant {variant} spec {spec:?} batch {batch:?}");
                }
            }
        }
    }

    #[test]
    fn predict_reports_argmax_and_confidence() {
        let snap = synthetic_snapshot(9, 10, 4, 2, 2, 8, 0);
        let engine = Engine::new(snap).unwrap();
        let preds = engine.predict(&[0, 5, 9]).unwrap();
        assert_eq!(preds.len(), 3);
        for p in &preds {
            assert!(p.class < engine.n_classes());
            assert!(p.confidence > 0.0 && p.confidence <= 1.0, "{p:?}");
        }
        assert_eq!(preds[1].node, 5);
        // Deterministic: same query, same answer.
        assert_eq!(engine.predict(&[0, 5, 9]).unwrap(), preds);
    }

    #[test]
    fn out_of_range_and_empty_requests_are_typed_errors() {
        let engine = Engine::new(synthetic_snapshot(2, 6, 4, 2, 2, 8, 0)).unwrap();
        assert!(matches!(engine.predict(&[6]), Err(ServeError::BadRequest { .. })));
        assert!(matches!(engine.predict(&[]), Err(ServeError::BadRequest { .. })));
    }

    #[test]
    fn inconsistent_shapes_are_rejected_at_build() {
        // Drop a step tensor: parses fine, but the engine must refuse it.
        let mut snap = synthetic_snapshot(3, 6, 4, 2, 2, 8, 0);
        snap.export.steps[1].pop();
        match Engine::new(snap) {
            Err(ServeError::Snapshot(SnapshotError::Malformed { what })) => {
                assert!(what.contains("operator tensors"), "{what}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Truncate W_DP.
        let mut snap = synthetic_snapshot(3, 6, 4, 2, 2, 8, 0);
        snap.export.w_dp = Some(QMatrix::F32(DenseMatrix::zeros(6, 2)));
        assert!(Engine::new(snap).is_err());
        // Classifier that ends at the wrong width.
        let mut snap = synthetic_snapshot(3, 6, 4, 2, 2, 8, 0);
        snap.export.classifier.pop();
        assert!(Engine::new(snap).is_err());
    }
}
