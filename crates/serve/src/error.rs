//! Typed error taxonomy for the serving stack (DESIGN.md §13).
//!
//! Serving failures split into two layers. [`SnapshotError`] covers the
//! artifact boundary — everything that can be wrong with a snapshot file
//! on disk (torn write, truncation, bit flip, version skew) — and is
//! produced only by the parser in [`crate::snapshot`], which validates
//! before it trusts a single byte. [`ServeError`] covers the service
//! itself: admission, deadlines, request validation, socket I/O. Both are
//! closed enums; public fallible functions in this crate never return
//! `String` or `Box<dyn Error>` (enforced by the `error-taxonomy`
//! workspace lint pass).
//!
//! Exit codes extend the CLI table (README): training owns 3–8, serving
//! owns 9–12. In particular a serve-side deadline is **not**
//! [`amud_train::TrainError::Timeout`] (exit 8, "the training wall-clock
//! budget ran out"): a request that missed its deadline is
//! [`ServeError::Deadline`] (exit 10), and the distinctness is pinned by
//! a test below so scripts can keep telling the two apart.

use std::fmt;

/// Everything that can be wrong with a snapshot artifact on disk.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed (read, write, rename).
    /// Possibly transient — the loader retries these with backoff.
    Io {
        /// Which operation failed (`"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The rendered OS error.
        message: String,
    },
    /// The file does not start with the snapshot magic — not a snapshot
    /// at all, or a torn write over the header.
    BadMagic,
    /// The format version is not one this build can read.
    UnsupportedVersion {
        /// The version the file claims.
        found: u32,
    },
    /// The file ends before the named section is complete (half-written
    /// artifact, truncated copy).
    Truncated {
        /// Which section (or framing element) was cut short.
        section: &'static str,
    },
    /// The named section's FNV fingerprint seal does not match its bytes
    /// (bit flip, partial overwrite).
    SealMismatch {
        /// Which section failed its integrity seal.
        section: &'static str,
    },
    /// The bytes parse but describe an impossible model (shape mismatch,
    /// unknown attention variant, zero-dimension matrix, trailing bytes).
    Malformed {
        /// What is inconsistent.
        what: String,
    },
}

impl SnapshotError {
    /// Whether retrying the load might succeed (filesystem races, a
    /// snapshot mid-replacement). Content errors are permanent: the same
    /// bytes will fail the same way.
    pub fn is_transient(&self) -> bool {
        matches!(self, SnapshotError::Io { .. })
    }

    /// Short machine-readable class name (stats endpoint, logs).
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotError::Io { .. } => "io",
            SnapshotError::BadMagic => "bad-magic",
            SnapshotError::UnsupportedVersion { .. } => "unsupported-version",
            SnapshotError::Truncated { .. } => "truncated",
            SnapshotError::SealMismatch { .. } => "seal-mismatch",
            SnapshotError::Malformed { .. } => "malformed",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { op, message } => write!(f, "snapshot {op} failed: {message}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated inside {section}")
            }
            SnapshotError::SealMismatch { section } => {
                write!(f, "snapshot integrity seal mismatch in {section}")
            }
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Everything that can go wrong while serving.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The snapshot artifact was rejected (see [`SnapshotError`]).
    Snapshot(SnapshotError),
    /// A request missed its deadline before (or while) its batch ran.
    /// Deliberately distinct from [`amud_train::TrainError::Timeout`]:
    /// that is a training-budget exhaustion, this is a per-request SLA.
    Deadline {
        /// How long the request waited before the server gave up on it.
        waited_ms: u64,
    },
    /// The bounded admission queue (or the connection budget) was full
    /// and the request was shed.
    Overload {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The request itself is invalid (unknown verb, node id out of
    /// range, unparsable deadline).
    BadRequest {
        /// What is wrong with the request.
        message: String,
    },
    /// A socket-level failure (bind, accept, read, write).
    Io {
        /// Which operation failed.
        op: &'static str,
        /// The rendered OS error.
        message: String,
    },
}

impl ServeError {
    /// Convenience constructor for [`ServeError::BadRequest`].
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError::BadRequest { message: message.into() }
    }

    /// Convenience constructor for [`ServeError::Io`].
    pub fn io(op: &'static str, e: &std::io::Error) -> Self {
        ServeError::Io { op, message: e.to_string() }
    }

    /// Short machine-readable class name (stats endpoint, logs).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Snapshot(_) => "snapshot",
            ServeError::Deadline { .. } => "deadline",
            ServeError::Overload { .. } => "overload",
            ServeError::BadRequest { .. } => "bad-request",
            ServeError::Io { .. } => "io",
        }
    }

    /// The process exit code the CLI maps this error onto. Training owns
    /// 3–8 (see [`amud_train::TrainError::exit_code`]); serving extends
    /// the table with 9–12. Generic I/O stays on the reserved 1.
    pub fn exit_code(&self) -> i32 {
        match self {
            ServeError::Io { .. } => 1,
            ServeError::Snapshot(_) => 9,
            ServeError::Deadline { .. } => 10,
            ServeError::Overload { .. } => 11,
            ServeError::BadRequest { .. } => 12,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Snapshot(e) => write!(f, "{e}"),
            ServeError::Deadline { waited_ms } => {
                write!(f, "request missed its deadline after {waited_ms}ms")
            }
            ServeError::Overload { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms}ms")
            }
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::Io { op, message } => write!(f, "{op} failed: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_train::TrainError;

    fn serve_errors() -> Vec<ServeError> {
        vec![
            ServeError::Snapshot(SnapshotError::BadMagic),
            ServeError::Deadline { waited_ms: 5 },
            ServeError::Overload { retry_after_ms: 50 },
            ServeError::bad_request("nope"),
        ]
    }

    #[test]
    fn serve_exit_codes_are_distinct_and_extend_the_train_table() {
        let train_codes: Vec<i32> = [
            TrainError::bad_input("x").exit_code(),
            TrainError::VerifierRejected { model: "X".into(), report: String::new() }.exit_code(),
            TrainError::NonFiniteLoss { epoch: 0, retries: 0 }.exit_code(),
            TrainError::GradientExplosion { epoch: 0, norm: 1.0, limit: 1.0, retries: 0 }
                .exit_code(),
            TrainError::Timeout { epoch: 0, elapsed_secs: 2.0, limit_secs: 1.0 }.exit_code(),
        ]
        .into();
        let serve_codes: Vec<i32> = serve_errors().iter().map(|e| e.exit_code()).collect();
        let mut all = train_codes.clone();
        all.extend(&serve_codes);
        all.extend([0, 1, 2, 4]); // success, generic I/O, usage, dataset parse
                                  // ServeError::Io deliberately shares the reserved generic-I/O 1,
                                  // so it is excluded from the uniqueness check above.
        assert_eq!(ServeError::io("bind", &std::io::Error::other("x")).exit_code(), 1);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "exit codes must not alias: {all:?}");
    }

    #[test]
    fn serve_deadline_is_not_train_timeout() {
        let train = TrainError::Timeout { epoch: 3, elapsed_secs: 2.0, limit_secs: 1.0 };
        let serve = ServeError::Deadline { waited_ms: 7 };
        assert_ne!(train.exit_code(), serve.exit_code());
        assert_eq!(train.exit_code(), 8, "training budget exhaustion stays on 8");
        assert_eq!(serve.exit_code(), 10, "request-deadline misses get their own code");
        assert_ne!(train.kind(), serve.kind());
    }

    #[test]
    fn snapshot_errors_convert_and_classify() {
        let e: ServeError = SnapshotError::Truncated { section: "WEIGHTS" }.into();
        assert_eq!(e.exit_code(), 9);
        assert!(e.to_string().contains("WEIGHTS"), "{e}");
        assert!(!SnapshotError::BadMagic.is_transient());
        assert!(SnapshotError::Io { op: "read", message: "gone".into() }.is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = ServeError::Overload { retry_after_ms: 75 };
        assert!(e.to_string().contains("75ms"), "{e}");
        assert_eq!(e.kind(), "overload");
        let s = SnapshotError::SealMismatch { section: "META" };
        assert!(s.to_string().contains("META"), "{s}");
        assert_eq!(s.kind(), "seal-mismatch");
    }
}
