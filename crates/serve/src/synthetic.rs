//! Deterministic synthetic snapshots for tests and benchmarks.
//!
//! Serving robustness must be testable without a dataset or a training
//! run: the admission queue, the snapshot parser, and the hot-swap path
//! care about *shapes and bytes*, not learned weights. This module builds
//! a structurally valid [`Snapshot`] from a seed using a self-contained
//! xorshift64* generator — the same snapshot for the same arguments,
//! byte-for-byte, on every platform. Real deployments produce snapshots
//! with `amud snapshot` (train → [`amud_core::Adpa::export`] →
//! [`crate::snapshot::write_snapshot`]); synthetic ones exist so a fault
//! harness can mint as many distinct valid artifacts as it needs in
//! microseconds.

use crate::snapshot::Snapshot;
use amud_core::{AdpaExport, DpAttention, LinearExport};
use amud_nn::DenseMatrix;

/// Number of classes every synthetic snapshot predicts over.
pub const SYNTHETIC_CLASSES: usize = 3;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn fill(state: &mut u64, rows: usize, cols: usize) -> DenseMatrix {
    DenseMatrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| (xorshift(state) % 2001) as f32 / 1000.0 - 1.0).collect(),
    )
}

fn linear(state: &mut u64, in_dim: usize, out_dim: usize) -> LinearExport {
    LinearExport { w: fill(state, in_dim, out_dim), b: fill(state, 1, out_dim) }
}

/// Builds a structurally valid snapshot with pseudo-random weights.
///
/// * `seed` — drives every weight; different seeds give byte-distinct
///   snapshots (useful for hot-swap tests that need "a new version").
/// * `n_nodes` / `n_features` — propagated-tensor shape.
/// * `n_patterns` — DP operator count `k`.
/// * `k_steps` — propagation depth `K` (≥ 1).
/// * `hidden` — fused representation width.
/// * `variant` — DP attention variant code (0 Original, 1 Gate,
///   2 Recursive, 3 Jk, 4 None; other values clamp to Original).
///
/// The classifier is a 2-layer MLP onto [`SYNTHETIC_CLASSES`] classes and
/// hop attention is always on, so every weight family in the format is
/// exercised.
pub fn synthetic_snapshot(
    seed: u64,
    n_nodes: usize,
    n_features: usize,
    n_patterns: usize,
    k_steps: usize,
    hidden: usize,
    variant: u32,
) -> Snapshot {
    let mut state = seed | 1;
    let dp_attention = match variant {
        1 => DpAttention::Gate,
        2 => DpAttention::Recursive,
        3 => DpAttention::Jk,
        4 => DpAttention::None,
        _ => DpAttention::Original,
    };
    let k = n_patterns;
    let fuse_in = match dp_attention {
        DpAttention::None => n_features,
        _ => (k + 1) * n_features,
    };
    let export = AdpaExport {
        dp_attention,
        k_steps,
        hidden,
        n_classes: SYNTHETIC_CLASSES,
        pattern_names: (0..k).map(|g| format!("G{g}")).collect(),
        w_dp: matches!(dp_attention, DpAttention::Original)
            .then(|| fill(&mut state, n_nodes, k + 1)),
        op_scorers: match dp_attention {
            DpAttention::Gate | DpAttention::Recursive => {
                (0..=k).map(|_| linear(&mut state, n_features, 1)).collect()
            }
            _ => Vec::new(),
        },
        fuse: linear(&mut state, fuse_in, hidden),
        hop_scorer: Some(linear(&mut state, k_steps * hidden, k_steps)),
        classifier: vec![
            linear(&mut state, hidden, hidden),
            linear(&mut state, hidden, SYNTHETIC_CLASSES),
        ],
        x0: fill(&mut state, n_nodes, n_features),
        steps: (0..k_steps)
            .map(|_| (0..k).map(|_| fill(&mut state, n_nodes, n_features)).collect())
            .collect(),
    };
    Snapshot::from_export(seed, export)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_seed_sensitive() {
        let a = synthetic_snapshot(1, 8, 4, 2, 2, 8, 0);
        let b = synthetic_snapshot(1, 8, 4, 2, 2, 8, 0);
        let c = synthetic_snapshot(2, 8, 4, 2, 2, 8, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_variants_build_consistent_shapes() {
        for v in 0..5u32 {
            let s = synthetic_snapshot(3, 8, 4, 2, 2, 8, v);
            crate::engine::Engine::new(s).expect("synthetic snapshot must validate");
        }
    }
}
