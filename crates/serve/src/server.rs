//! The TCP serving loop: admission, deadlines, batching, hot swap
//! (DESIGN.md §13.3–§13.4).
//!
//! ## Thread layout (all via [`amud_par::spawn_service`])
//!
//! * **accept** — owns the listener; enforces the connection budget
//!   (beyond it, clients get `BUSY retry_after_ms=…` and are closed).
//! * **one handler per connection** — parses the line protocol, admits
//!   `PREDICT`s into the bounded [`AdmissionQueue`], and relays the
//!   batcher's reply. A read timeout disconnects slow clients, so a
//!   trickling peer can hold a connection slot but never a buffer.
//! * **batcher** — the only thread that runs inference. It waits for
//!   work, drains up to `max_batch` requests, answers the expired ones
//!   with `TIMEOUT` (a late request never stalls the live ones), merges
//!   the rest into one engine call, and fans the rows back out. Engine
//!   swaps happen here, strictly *between* batches.
//! * **watcher** — polls the snapshot path; when the bytes change it
//!   validates the candidate end-to-end (parse, seals, shape check) and
//!   stages it for the batcher. A candidate that fails validation bumps
//!   the `degraded` counter and the server keeps answering from the
//!   last-good engine — graceful degradation, observable via `STATS` /
//!   `HEALTH`.
//!
//! ## Protocol (text lines over TCP)
//!
//! ```text
//! PREDICT <node> [<node>…] [DEADLINE <ms>]   → OK <node>:<class>:<conf> …
//!                                            | TIMEOUT waited_ms=<n>
//!                                            | SHED retry_after_ms=<n>
//!                                            | ERR <exit_code> <message>
//! STATS                                      → one-line JSON counters
//! HEALTH                                     → OK generation=… tag=… degraded_total=…
//! SHUTDOWN                                   → OK shutting-down (server exits)
//! QUIT                                       → closes the connection
//! ```

use crate::engine::Engine;
use crate::error::{ServeError, SnapshotError};
use crate::queue::{AdmissionQueue, Reply, Request};
use crate::snapshot::{decode_snapshot, Snapshot};
use amud_cache::fingerprint_bytes;
use amud_par::{spawn_service, ServiceHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Everything tunable about one server instance. Defaults are sized for
/// the replica-scale models this repo trains; tests shrink the queue and
/// inflate `batch_delay_ms` to make shedding and deadline misses
/// deterministic.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The snapshot artifact to serve (and to watch for hot swaps).
    pub snapshot_path: PathBuf,
    /// TCP port to bind on 127.0.0.1; `0` picks an ephemeral port
    /// (reported by [`Server::port`] and on stdout by the CLI).
    pub port: u16,
    /// Admission queue capacity; beyond it, requests are shed.
    pub queue_capacity: usize,
    /// Upper bound on requests merged into one engine call.
    pub max_batch: usize,
    /// Connection budget; beyond it, connections get `BUSY` and close.
    pub max_connections: usize,
    /// Deadline applied to `PREDICT`s that do not carry one.
    pub default_deadline_ms: u64,
    /// Snapshot watcher poll interval.
    pub watch_interval_ms: u64,
    /// Test hook: sleep this long between the batcher's wake-up and its
    /// drain, simulating slow inference (admitted requests keep their
    /// queue slots for the duration, so overload tests are exact).
    pub batch_delay_ms: u64,
    /// Attempts for the *initial* snapshot load (transient I/O errors
    /// only; content errors fail fast).
    pub load_retries: u32,
    /// Base backoff between initial-load attempts, doubled per retry.
    pub load_backoff_ms: u64,
    /// Per-connection read timeout; slow clients are disconnected.
    pub client_read_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            snapshot_path: PathBuf::from("model.snap"),
            port: 0,
            queue_capacity: 64,
            max_batch: 16,
            max_connections: 32,
            default_deadline_ms: 1_000,
            watch_interval_ms: 50,
            batch_delay_ms: 0,
            load_retries: 3,
            load_backoff_ms: 20,
            client_read_timeout_ms: 5_000,
        }
    }
}

/// Monotonic service counters, reported by `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Requests answered with predictions.
    pub served: u64,
    /// Requests shed (queue full) or connections rejected (budget full).
    pub shed: u64,
    /// Requests answered with `TIMEOUT`.
    pub timeouts: u64,
    /// Hot-swap candidates rejected by validation (served from last-good).
    pub degraded: u64,
    /// Successful engine swaps.
    pub swaps: u64,
}

struct State {
    engine: Arc<Engine>,
    /// A validated candidate engine, installed by the batcher between
    /// batches.
    staged: Option<Arc<Engine>>,
    /// Bumped on every successful swap; starts at 1.
    generation: u64,
    stats: Stats,
    /// Rendered error of the most recent rejected swap candidate.
    last_degraded: Option<String>,
    shutdown: bool,
    active_conns: usize,
}

struct Shared {
    cfg: ServerConfig,
    queue: AdmissionQueue,
    state: Mutex<State>,
    port: u16,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn retry_after_ms(&self) -> u64 {
        // If the batcher is artificially slowed, tell clients to come
        // back after roughly one batch; otherwise a small constant.
        self.cfg.batch_delay_ms.max(50)
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::stop`] (tests) or [`Server::wait`] (CLI).
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<ServiceHandle<()>>,
    batcher: Option<ServiceHandle<()>>,
    watcher: Option<ServiceHandle<()>>,
}

/// Loads the snapshot with bounded retry + exponential backoff on
/// *transient* errors (a file mid-replacement, a racing writer). Content
/// errors — bad magic, seal mismatch, malformed shapes — are permanent
/// and returned immediately. Also returns the byte fingerprint, which
/// seeds the watcher's change detection.
fn load_with_retry(cfg: &ServerConfig) -> Result<(Snapshot, u64), ServeError> {
    let mut backoff = cfg.load_backoff_ms;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let r = std::fs::read(&cfg.snapshot_path)
            .map_err(|e| SnapshotError::Io { op: "read", message: e.to_string() })
            .and_then(|bytes| {
                let fp = fingerprint_bytes(&bytes);
                decode_snapshot(&bytes).map(|s| (s, fp))
            });
        match r {
            Ok(ok) => return Ok(ok),
            Err(e) if e.is_transient() && attempt <= cfg.load_retries => {
                std::thread::sleep(Duration::from_millis(backoff));
                backoff = backoff.saturating_mul(2);
            }
            Err(e) => return Err(e.into()),
        }
    }
}

impl Server {
    /// Loads + validates the snapshot (with retry/backoff on transient
    /// I/O), binds the listener, and spawns the service threads. On
    /// success the server is accepting; the chosen port is
    /// [`Server::port`].
    pub fn start(cfg: ServerConfig) -> Result<Server, ServeError> {
        let (snapshot, fp) = load_with_retry(&cfg)?;
        let engine = Engine::new(snapshot)?;
        let listener =
            TcpListener::bind(("127.0.0.1", cfg.port)).map_err(|e| ServeError::io("bind", &e))?;
        let port = listener.local_addr().map_err(|e| ServeError::io("local_addr", &e))?.port();

        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            state: Mutex::new(State {
                engine: Arc::new(engine),
                staged: None,
                generation: 1,
                stats: Stats::default(),
                last_degraded: None,
                shutdown: false,
                active_conns: 0,
            }),
            port,
            cfg,
        });

        let accept = {
            let shared = Arc::clone(&shared);
            spawn_service("amud-serve-accept", move || accept_loop(listener, &shared))
                .map_err(|e| ServeError::io("spawn", &e))?
        };
        let batcher = {
            let shared = Arc::clone(&shared);
            spawn_service("amud-serve-batch", move || batcher_loop(&shared))
                .map_err(|e| ServeError::io("spawn", &e))?
        };
        let watcher = {
            let shared = Arc::clone(&shared);
            spawn_service("amud-serve-watch", move || watcher_loop(&shared, fp))
                .map_err(|e| ServeError::io("spawn", &e))?
        };

        Ok(Server { shared, accept: Some(accept), batcher: Some(batcher), watcher: Some(watcher) })
    }

    /// The bound port on 127.0.0.1.
    pub fn port(&self) -> u16 {
        self.shared.port
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> Stats {
        self.shared.lock().stats
    }

    /// Blocks until the server shuts down (via the `SHUTDOWN` command or
    /// [`Server::stop`] from another thread), then joins every service
    /// thread.
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Initiates shutdown and joins the service threads: in-flight
    /// requests are drained with a shed reply, new connections stop being
    /// accepted.
    pub fn stop(mut self) {
        request_shutdown(&self.shared);
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(h) = self.accept.take() {
            h.join();
        }
        if let Some(h) = self.batcher.take() {
            h.join();
        }
        if let Some(h) = self.watcher.take() {
            h.join();
        }
    }
}

/// Flags shutdown and pokes the accept loop awake with a throwaway
/// connection so it observes the flag promptly.
fn request_shutdown(shared: &Shared) {
    shared.lock().shutdown = true;
    let _ = TcpStream::connect(("127.0.0.1", shared.port));
}

// ---------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.lock().shutdown {
            break;
        }
        let Ok(stream) = stream else { continue };
        let admitted = {
            let mut st = shared.lock();
            if st.active_conns >= shared.cfg.max_connections {
                st.stats.shed += 1;
                false
            } else {
                st.active_conns += 1;
                true
            }
        };
        if !admitted {
            let mut s = stream;
            let _ = writeln!(s, "BUSY retry_after_ms={}", shared.retry_after_ms());
            continue;
        }
        let shared2 = Arc::clone(shared);
        let spawned = spawn_service("amud-serve-conn", move || {
            handle_connection(stream, &shared2);
        });
        if spawned.is_err() {
            // Could not spawn a handler (fd/thread exhaustion): release
            // the slot; the client sees a closed connection.
            shared.lock().active_conns -= 1;
        }
    }
}

// ---------------------------------------------------------------------
// Connection handler
// ---------------------------------------------------------------------

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Replies are one small line each — without TCP_NODELAY, Nagle +
    // delayed ACK turn every round-trip into a ~40–90 ms stall.
    let _ = stream.set_nodelay(true);
    let _ = stream
        .set_read_timeout(Some(Duration::from_millis(shared.cfg.client_read_timeout_ms.max(1))));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            shared.lock().active_conns -= 1;
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // The read timeout distinguishes two kinds of quiet peer:
        // *idle* (no bytes of a command yet — fine, keep waiting, a
        // connection between requests is healthy) and *trickling* (a
        // command started but never finished — the slow-client fault
        // mode, disconnected so it can hold a connection slot but never
        // a buffer or a handler). `read_line` appends whatever was read
        // before the timeout, so `line` tells them apart.
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) if !line.is_empty() => break,
            Ok(0) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.lock().shutdown {
                    break;
                }
                continue;
            }
            Err(_) => break,
            Ok(_) => {}
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        let (reply, close) = process_command(cmd, shared);
        if writeln!(writer, "{reply}").and_then(|()| writer.flush()).is_err() {
            break;
        }
        if close {
            break;
        }
    }
    shared.lock().active_conns -= 1;
}

/// Executes one protocol line; returns the reply and whether to close.
fn process_command(cmd: &str, shared: &Arc<Shared>) -> (String, bool) {
    let mut parts = cmd.split_whitespace();
    match parts.next() {
        Some("PREDICT") => (handle_predict(parts, shared), false),
        Some("STATS") => (render_stats(shared), false),
        Some("HEALTH") => (render_health(shared), false),
        Some("QUIT") => ("BYE".to_string(), true),
        Some("SHUTDOWN") => {
            request_shutdown(shared);
            ("OK shutting-down".to_string(), true)
        }
        _ => {
            let e = ServeError::bad_request(format!("unknown command {cmd:?}"));
            (format!("ERR {} {e}", e.exit_code()), false)
        }
    }
}

fn handle_predict(parts: std::str::SplitWhitespace<'_>, shared: &Arc<Shared>) -> String {
    // Parse: node ids until an optional `DEADLINE <ms>` suffix.
    let mut nodes = Vec::new();
    let mut deadline_ms = shared.cfg.default_deadline_ms;
    let mut parts = parts.peekable();
    while let Some(tok) = parts.next() {
        if tok == "DEADLINE" {
            match parts.next().and_then(|t| t.parse::<u64>().ok()) {
                Some(ms) => deadline_ms = ms,
                None => return err_reply(ServeError::bad_request("DEADLINE needs milliseconds")),
            }
            if parts.peek().is_some() {
                return err_reply(ServeError::bad_request("tokens after DEADLINE value"));
            }
            break;
        }
        match tok.parse::<usize>() {
            Ok(v) => nodes.push(v),
            Err(_) => return err_reply(ServeError::bad_request(format!("bad node id {tok:?}"))),
        }
    }
    if nodes.is_empty() {
        return err_reply(ServeError::bad_request("PREDICT needs at least one node id"));
    }
    // Validate against the *current* engine at admission, so bad ids are
    // rejected immediately instead of poisoning a batch.
    let n_nodes = shared.lock().engine.n_nodes();
    if let Some(&bad) = nodes.iter().find(|&&v| v >= n_nodes) {
        return err_reply(ServeError::bad_request(format!(
            "node {bad} out of range (graph has {n_nodes} nodes)"
        )));
    }

    let (reply_tx, reply_rx) = sync_channel(1);
    let enqueued_at = Instant::now();
    let req = Request {
        nodes,
        enqueued_at,
        deadline: enqueued_at + Duration::from_millis(deadline_ms),
        reply_tx,
    };
    if !shared.queue.try_push(req) {
        shared.lock().stats.shed += 1;
        return format!("SHED retry_after_ms={}", shared.retry_after_ms());
    }
    // The batcher always replies; the generous grace period only guards
    // against a wedged batcher, in which case the client still gets a
    // timeout line instead of a hang.
    let grace = Duration::from_millis(deadline_ms.saturating_add(10_000));
    match reply_rx.recv_timeout(grace) {
        Ok(Reply::Predictions(preds)) => {
            let mut out = String::from("OK");
            for p in preds {
                out.push_str(&format!(" {}:{}:{:.6}", p.node, p.class, p.confidence));
            }
            out
        }
        Ok(Reply::Timeout { waited_ms }) => format!("TIMEOUT waited_ms={waited_ms}"),
        Ok(Reply::Failed(e)) => err_reply(e),
        Err(_) => {
            shared.lock().stats.timeouts += 1;
            format!("TIMEOUT waited_ms={}", enqueued_at.elapsed().as_millis())
        }
    }
}

fn err_reply(e: ServeError) -> String {
    format!("ERR {} {e}", e.exit_code())
}

fn render_stats(shared: &Arc<Shared>) -> String {
    let st = shared.lock();
    let last = st.last_degraded.as_deref().unwrap_or("").replace('"', "'");
    format!(
        "{{\"generation\":{},\"tag\":{},\"n_nodes\":{},\"queue_depth\":{},\"served\":{},\
         \"shed\":{},\"timeouts\":{},\"degraded\":{},\"swaps\":{},\"last_degraded\":\"{last}\"}}",
        st.generation,
        st.engine.tag(),
        st.engine.n_nodes(),
        shared.queue.len(),
        st.stats.served,
        st.stats.shed,
        st.stats.timeouts,
        st.stats.degraded,
        st.stats.swaps,
    )
}

fn render_health(shared: &Arc<Shared>) -> String {
    let st = shared.lock();
    format!(
        "OK generation={} tag={} degraded_total={} last_degraded={}",
        st.generation,
        st.engine.tag(),
        st.stats.degraded,
        if st.last_degraded.is_some() { "yes" } else { "none" },
    )
}

// ---------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------

fn batcher_loop(shared: &Arc<Shared>) {
    loop {
        if shared.lock().shutdown {
            break;
        }
        if !shared.queue.wait_nonempty(Duration::from_millis(100)) {
            continue;
        }
        // Test hook / slow-inference simulation: admitted requests keep
        // their queue slots for the duration (see AdmissionQueue docs).
        if shared.cfg.batch_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.cfg.batch_delay_ms));
        }
        // Hot swap strictly between batches: install a staged engine
        // before draining the next batch.
        let engine = {
            let mut st = shared.lock();
            if let Some(new_engine) = st.staged.take() {
                st.engine = new_engine;
                st.generation += 1;
                st.stats.swaps += 1;
            }
            Arc::clone(&st.engine)
        };
        let batch = shared.queue.pop_batch(shared.cfg.max_batch);
        run_batch(&engine, batch, shared);
    }
    // Shutdown: every queued request gets an overload reply instead of a
    // silent hang.
    for req in shared.queue.drain_all() {
        let _ = req.reply_tx.try_send(Reply::Failed(ServeError::Overload {
            retry_after_ms: shared.retry_after_ms(),
        }));
    }
}

fn run_batch(engine: &Engine, batch: Vec<Request>, shared: &Arc<Shared>) {
    // Expired requests are answered without inference and never stall
    // the live ones.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for req in batch {
        if now >= req.deadline {
            shared.lock().stats.timeouts += 1;
            let waited_ms = now.duration_since(req.enqueued_at).as_millis() as u64;
            let _ = req.reply_tx.try_send(Reply::Timeout { waited_ms });
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        return;
    }
    // One merged engine call for the whole batch; on failure (e.g. a hot
    // swap shrank the graph between admission and execution) fall back to
    // per-request calls so one bad request cannot poison its batchmates.
    let merged: Vec<usize> = live.iter().flat_map(|r| r.nodes.iter().copied()).collect();
    match engine.predict(&merged) {
        Ok(all_preds) => {
            // Count before replying: a client that has its reply in hand
            // must see itself reflected in an immediate STATS read.
            shared.lock().stats.served += live.len() as u64;
            let mut offset = 0;
            for req in &live {
                let slice = all_preds[offset..offset + req.nodes.len()].to_vec();
                offset += req.nodes.len();
                let _ = req.reply_tx.try_send(Reply::Predictions(slice));
            }
        }
        Err(_) => {
            for req in &live {
                match engine.predict(&req.nodes) {
                    Ok(preds) => {
                        shared.lock().stats.served += 1;
                        let _ = req.reply_tx.try_send(Reply::Predictions(preds));
                    }
                    Err(e) => {
                        let _ = req.reply_tx.try_send(Reply::Failed(e));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot watcher
// ---------------------------------------------------------------------

fn watcher_loop(shared: &Arc<Shared>, initial_fp: u64) {
    let mut last_fp = initial_fp;
    loop {
        std::thread::sleep(Duration::from_millis(shared.cfg.watch_interval_ms.max(1)));
        if shared.lock().shutdown {
            break;
        }
        // A transient read failure (file mid-replacement) is retried on
        // the next tick — the poll interval *is* the backoff.
        let Ok(bytes) = std::fs::read(&shared.cfg.snapshot_path) else { continue };
        let fp = fingerprint_bytes(&bytes);
        if fp == last_fp {
            continue;
        }
        last_fp = fp;
        match decode_snapshot(&bytes).map_err(ServeError::from).and_then(Engine::new) {
            Ok(engine) => {
                let mut st = shared.lock();
                st.staged = Some(Arc::new(engine));
                st.last_degraded = None;
            }
            Err(e) => {
                // Keep serving last-good; record the degradation.
                let mut st = shared.lock();
                st.stats.degraded += 1;
                st.last_degraded = Some(e.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use crate::synthetic::synthetic_snapshot;

    fn tmp_snap(name: &str, seed: u64) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("amud-serve-server-{}-{name}.snap", std::process::id()));
        write_snapshot(&p, &synthetic_snapshot(seed, 12, 4, 2, 2, 8, 0)).unwrap();
        p
    }

    fn connect(port: u16) -> (BufReader<TcpStream>, TcpStream) {
        let s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        s.set_nodelay(true).unwrap();
        (BufReader::new(s.try_clone().unwrap()), s)
    }

    fn roundtrip(r: &mut BufReader<TcpStream>, w: &mut TcpStream, cmd: &str) -> String {
        writeln!(w, "{cmd}").unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        line.trim().to_string()
    }

    #[test]
    fn serves_predictions_and_stats() {
        let path = tmp_snap("basic", 1);
        let server =
            Server::start(ServerConfig { snapshot_path: path.clone(), ..Default::default() })
                .unwrap();
        let (mut r, mut w) = connect(server.port());
        let reply = roundtrip(&mut r, &mut w, "PREDICT 0 3 11");
        assert!(reply.starts_with("OK "), "{reply}");
        assert_eq!(reply.split_whitespace().count(), 4, "{reply}");
        let stats = roundtrip(&mut r, &mut w, "STATS");
        assert!(stats.contains("\"served\":1"), "{stats}");
        let health = roundtrip(&mut r, &mut w, "HEALTH");
        assert!(health.starts_with("OK generation=1"), "{health}");
        let bad = roundtrip(&mut r, &mut w, "PREDICT 999");
        assert!(bad.starts_with("ERR 12"), "{bad}");
        server.stop();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn expired_deadline_gets_timeout_without_stalling_the_batch() {
        let path = tmp_snap("deadline", 2);
        let server = Server::start(ServerConfig {
            snapshot_path: path.clone(),
            batch_delay_ms: 150,
            default_deadline_ms: 10_000,
            ..Default::default()
        })
        .unwrap();
        let (mut r, mut w) = connect(server.port());
        let reply = roundtrip(&mut r, &mut w, "PREDICT 0 DEADLINE 0");
        assert!(reply.starts_with("TIMEOUT"), "{reply}");
        // The next (live) request is still answered.
        let reply = roundtrip(&mut r, &mut w, "PREDICT 1");
        assert!(reply.starts_with("OK "), "{reply}");
        let stats = server.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.served, 1);
        server.stop();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overload_sheds_with_retry_after_while_admitted_requests_complete() {
        let path = tmp_snap("overload", 3);
        let server = Server::start(ServerConfig {
            snapshot_path: path.clone(),
            queue_capacity: 1,
            max_batch: 1,
            batch_delay_ms: 700,
            default_deadline_ms: 10_000,
            ..Default::default()
        })
        .unwrap();
        let (mut r1, mut w1) = connect(server.port());
        let (mut r2, mut w2) = connect(server.port());
        // First request occupies the only queue slot for batch_delay_ms.
        writeln!(w1, "PREDICT 0").unwrap();
        w1.flush().unwrap();
        std::thread::sleep(Duration::from_millis(150));
        // Second request arrives while the slot is held → shed.
        let shed = roundtrip(&mut r2, &mut w2, "PREDICT 1");
        assert!(shed.starts_with("SHED retry_after_ms="), "{shed}");
        // The admitted request still completes.
        let mut line = String::new();
        r1.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK "), "{line}");
        let stats = server.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.served, 1);
        server.stop();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_swap_candidate_degrades_gracefully_then_valid_one_swaps() {
        let path = tmp_snap("hotswap", 4);
        let server = Server::start(ServerConfig {
            snapshot_path: path.clone(),
            watch_interval_ms: 10,
            ..Default::default()
        })
        .unwrap();
        let (mut r, mut w) = connect(server.port());
        assert!(roundtrip(&mut r, &mut w, "PREDICT 0").starts_with("OK "));

        // Corrupt candidate: server must keep answering from last-good.
        std::fs::write(&path, b"garbage, not a snapshot").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().degraded == 0 {
            assert!(Instant::now() < deadline, "watcher never flagged the corrupt candidate");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(roundtrip(&mut r, &mut w, "PREDICT 1").starts_with("OK "), "last-good must serve");
        let health = roundtrip(&mut r, &mut w, "HEALTH");
        assert!(health.contains("degraded_total=1"), "{health}");

        // Valid candidate with a new tag: swaps in between batches.
        write_snapshot(&path, &synthetic_snapshot(99, 12, 4, 2, 2, 8, 0)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let reply = roundtrip(&mut r, &mut w, "STATS");
            if reply.contains("\"tag\":99") {
                assert!(reply.contains("\"swaps\":1"), "{reply}");
                break;
            }
            assert!(Instant::now() < deadline, "valid candidate never swapped in: {reply}");
            // Keep traffic flowing so the batcher has batch boundaries.
            assert!(roundtrip(&mut r, &mut w, "PREDICT 2").starts_with("OK "));
            std::thread::sleep(Duration::from_millis(10));
        }
        server.stop();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn connection_budget_rejects_with_busy() {
        let path = tmp_snap("busy", 5);
        let server = Server::start(ServerConfig {
            snapshot_path: path.clone(),
            max_connections: 1,
            ..Default::default()
        })
        .unwrap();
        let (mut r1, mut w1) = connect(server.port());
        assert!(roundtrip(&mut r1, &mut w1, "PREDICT 0").starts_with("OK "));
        let (mut r2, _w2) = connect(server.port());
        let mut line = String::new();
        r2.read_line(&mut line).unwrap();
        assert!(line.starts_with("BUSY retry_after_ms="), "{line}");
        server.stop();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_fails_start_with_typed_error_after_retries() {
        let cfg = ServerConfig {
            snapshot_path: PathBuf::from("/nonexistent/amud-model.snap"),
            load_retries: 1,
            load_backoff_ms: 1,
            ..Default::default()
        };
        match Server::start(cfg) {
            Err(ServeError::Snapshot(SnapshotError::Io { .. })) => {}
            Err(other) => panic!("expected transient snapshot I/O failure, got {other:?}"),
            Ok(_) => panic!("start must fail on a missing snapshot"),
        }
    }
}
