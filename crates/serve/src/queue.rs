//! Bounded admission queue (DESIGN.md §13.3).
//!
//! Backpressure in one place: every request the server accepts sits in
//! exactly one slot of this fixed-capacity queue until the batcher drains
//! it. Admission is non-blocking — a full queue sheds immediately
//! ([`AdmissionQueue::try_push`] returns `false`, the handler answers
//! `SHED retry_after_ms=…`) — so no component in the pipeline ever
//! buffers unboundedly on behalf of a slow consumer. The batcher blocks
//! on [`AdmissionQueue::wait_nonempty`] (condvar with a timeout so
//! shutdown is prompt) and then drains up to its batch budget with
//! [`AdmissionQueue::pop_batch`].
//!
//! The `Mutex`/`Condvar` pair here is sanctioned by the workspace
//! `concurrency-discipline` lint (serve is the third concurrency crate,
//! after `amud-par` and `amud-cache`): service threads are outside the
//! deterministic-kernel world, and this queue is their only rendezvous.

use crate::engine::Prediction;
use crate::error::ServeError;
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The batcher's answer to one request, delivered over the request's
/// single-slot reply channel.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The batch ran and these are the predictions, in request order.
    Predictions(Vec<Prediction>),
    /// The request's deadline passed before its batch ran.
    Timeout {
        /// How long the request waited in the queue.
        waited_ms: u64,
    },
    /// The request failed with a typed error (bad node id after a
    /// hot swap shrank the graph, server shutting down, …).
    Failed(ServeError),
}

/// One admitted request, waiting for the batcher.
#[derive(Debug)]
pub struct Request {
    /// The queried node ids (validated against the engine at admission).
    pub nodes: Vec<usize>,
    /// When the request was admitted.
    pub enqueued_at: Instant,
    /// Absolute deadline; the batcher answers [`Reply::Timeout`] if it
    /// pops the request after this instant.
    pub deadline: Instant,
    /// Single-slot reply channel back to the connection handler. The
    /// batcher uses `try_send`, so a vanished handler never blocks it.
    pub reply_tx: SyncSender<Reply>,
}

/// A fixed-capacity FIFO between connection handlers and the batcher.
pub struct AdmissionQueue {
    inner: Mutex<VecDeque<Request>>,
    nonempty: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` requests (≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (for the stats endpoint).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: `true` and a batcher wake-up if a slot was
    /// free, `false` (shed — the caller owns the reply) if full.
    pub fn try_push(&self, req: Request) -> bool {
        let mut q = self.lock();
        if q.len() >= self.capacity {
            return false;
        }
        q.push_back(req);
        drop(q);
        self.nonempty.notify_one();
        true
    }

    /// Blocks until the queue is non-empty or `timeout` elapses; returns
    /// whether work is available. Does **not** pop — the batcher may
    /// apply a batching delay between the wake-up and the drain, during
    /// which the queued requests still occupy their slots (so overload
    /// sheds deterministically while a batch is being formed).
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        let q = self.lock();
        if !q.is_empty() {
            return true;
        }
        let (q, _timed_out) = self
            .nonempty
            .wait_timeout(q, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        !q.is_empty()
    }

    /// Drains up to `max_batch` requests, FIFO. Non-blocking.
    pub fn pop_batch(&self, max_batch: usize) -> Vec<Request> {
        let mut q = self.lock();
        let n = max_batch.max(1).min(q.len());
        q.drain(..n).collect()
    }

    /// Drains everything (shutdown path).
    pub fn drain_all(&self) -> Vec<Request> {
        self.lock().drain(..).collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Request>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn req(nodes: Vec<usize>) -> (Request, std::sync::mpsc::Receiver<Reply>) {
        let (tx, rx) = sync_channel(1);
        let now = Instant::now();
        (
            Request {
                nodes,
                enqueued_at: now,
                deadline: now + Duration::from_secs(5),
                reply_tx: tx,
            },
            rx,
        )
    }

    #[test]
    fn capacity_bounds_admission() {
        let q = AdmissionQueue::new(2);
        let (a, _ra) = req(vec![0]);
        let (b, _rb) = req(vec![1]);
        let (c, _rc) = req(vec![2]);
        assert!(q.try_push(a));
        assert!(q.try_push(b));
        assert!(!q.try_push(c), "third request must be shed at capacity 2");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_is_fifo_and_bounded() {
        let q = AdmissionQueue::new(8);
        for i in 0..5 {
            let (r, rx) = req(vec![i]);
            std::mem::forget(rx);
            assert!(q.try_push(r));
        }
        let batch = q.pop_batch(3);
        assert_eq!(batch.iter().map(|r| r.nodes[0]).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
        let rest = q.drain_all();
        assert_eq!(rest.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn wait_nonempty_times_out_on_empty_queue() {
        let q = AdmissionQueue::new(1);
        let start = Instant::now();
        assert!(!q.wait_nonempty(Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn wait_nonempty_returns_immediately_with_work() {
        let q = AdmissionQueue::new(1);
        let (r, _rx) = req(vec![0]);
        assert!(q.try_push(r));
        assert!(q.wait_nonempty(Duration::from_millis(1)));
        // Waiting does not consume the slot: the queue still sheds.
        let (r2, _rx2) = req(vec![1]);
        assert!(!q.try_push(r2));
    }
}
