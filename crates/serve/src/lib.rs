//! `amud-serve` — a fault-tolerant online inference service for trained
//! ADPA models (DESIGN.md §13).
//!
//! The paper's decoupled design (Eq. 9 propagation as one-time
//! preprocessing, Eqs. 10–11 attention + MLP as row-local inference) is
//! what makes online serving cheap: a trained model exports to a
//! [`snapshot`] artifact bundling the propagated feature tensors with
//! the learned weights, and the [`engine`] answers per-node queries by
//! gathering rows and replaying the exact evaluation arithmetic of the
//! training tape — bit-identical to a full-graph forward pass.
//!
//! The robustness story is layered:
//!
//! * **Crash-safe artifacts** — snapshots are written temp-file +
//!   atomic-rename and sealed per section with FNV fingerprints;
//!   torn, truncated, or bit-flipped files are rejected with a typed
//!   [`SnapshotError`], never loaded ([`snapshot`]).
//! * **Bounded admission** — every accepted request occupies one slot of
//!   a fixed-capacity [`queue::AdmissionQueue`]; overload sheds with a
//!   `retry_after_ms` hint instead of buffering ([`queue`], [`server`]).
//! * **Deadlines** — requests carry deadlines; an expired request gets a
//!   timeout reply without stalling the rest of its batch ([`server`]).
//! * **Hot swap with graceful degradation** — a watcher stages validated
//!   new snapshots for atomic between-batch swaps and keeps serving the
//!   last-good engine (counting `degraded`) when a candidate is bad
//!   ([`server`]).
//!
//! Everything is `std`-only and deterministic where it matters: the
//! [`synthetic`] module mints structurally valid snapshots from a seed so
//! the fault harness and benchmarks need no dataset or training run.

pub mod engine;
pub mod error;
pub mod queue;
pub mod server;
pub mod snapshot;
pub mod synthetic;

pub use engine::{Engine, Prediction};
pub use error::{ServeError, SnapshotError};
pub use server::{Server, ServerConfig, Stats};
pub use snapshot::{decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, Snapshot};
pub use synthetic::synthetic_snapshot;
