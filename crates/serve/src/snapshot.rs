//! Crash-safe snapshot artifacts (DESIGN.md §13.1).
//!
//! A snapshot bundles everything [`crate::engine::Engine`] needs —
//! an [`AdpaExport`] plus a caller-chosen tag — into one versioned binary
//! file that is safe to read while writers crash around it:
//!
//! * **Atomic replacement.** [`write_snapshot`] writes to a temporary
//!   sibling, `sync_all`s it, and `rename`s it over the destination, so a
//!   reader never observes a half-written file at the published path.
//! * **Per-section integrity seals.** The three sections (META, WEIGHTS,
//!   FEATURES) each carry an FNV-1a fingerprint
//!   ([`amud_cache::fingerprint_bytes`]) of their payload; a whole-file
//!   seal covers the framing. Any bit flip, truncation, or splice fails a
//!   seal before a single payload byte is trusted.
//! * **Typed rejection.** Every failure mode is a [`SnapshotError`]
//!   variant — never a panic, never a silently partial model. The
//!   property tests mutate and truncate snapshots byte-by-byte and assert
//!   exactly this.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic    8 B   "AMUDSNP\n"
//! version  u32   2 (v1 files are still decoded; see below)
//! tag      u64   caller-chosen (seed, build id, …)
//! n_sect   u32   3
//! 3 × section:   tag u32 · len u64 · payload · seal u64 = fnv(payload)
//! file seal u64  fnv(everything above)
//! ```
//!
//! **Version 2** (quantized sections): every weight/feature matrix is
//! written as `precision u32 · rows u32 · cols u32 · payload`, where the
//! payload is raw f32 little-endian words (precision 0), binary16 bit
//! patterns (precision 1), or one f32 scale followed by raw int8 bytes
//! (precision 2). Biases are always f32. **Version 1** had no precision
//! prefix (all matrices f32); v1 files decode into the same
//! [`Snapshot`] with every matrix wrapped at f32, so pre-quantization
//! artifacts keep working. Writers always emit v2. Seals and framing are
//! identical across both versions.

use crate::error::SnapshotError;
use amud_cache::{fingerprint_bytes, Fnv1a};
use amud_core::{AdpaExport, DpAttention, QLinear, QuantizedExport};
use amud_nn::DenseMatrix;
use amud_quant::{Precision, QMatrix, QuantSpec};
use std::path::Path;

const MAGIC: &[u8; 8] = b"AMUDSNP\n";
const VERSION: u32 = 2;
const SECTION_META: u32 = 1;
const SECTION_WEIGHTS: u32 = 2;
const SECTION_FEATURES: u32 = 3;
const SECTION_NAMES: [&str; 3] = ["META", "WEIGHTS", "FEATURES"];

/// A decoded snapshot: the model export plus the writer's tag.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Caller-chosen identifier recorded at write time (training seed,
    /// build number, …); surfaced by the server's stats endpoint so a
    /// hot swap is observable.
    pub tag: u64,
    /// The model state (weights + propagated features), each matrix at
    /// its stored precision. An f32 artifact is the identity wrap.
    pub export: QuantizedExport,
}

impl Snapshot {
    /// Wraps a freshly exported f32 model (no quantization).
    pub fn from_export(tag: u64, export: AdpaExport) -> Self {
        Snapshot { tag, export: QuantizedExport::from_export(export) }
    }

    /// Re-quantizes this snapshot under `spec` (decode to f32, then
    /// quantize each tensor class). Exact when the source is f32 — the
    /// post-training quantization entry point for artifacts.
    pub fn requantized(&self, spec: QuantSpec) -> Snapshot {
        Snapshot {
            tag: self.tag,
            export: QuantizedExport::quantize(&self.export.dequantize(), spec),
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &DenseMatrix) {
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    for &v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// v2 matrix layout: `precision u32 · rows u32 · cols u32 · payload`.
/// I8 payloads carry their f32 scale before the raw bytes.
fn put_qmatrix(out: &mut Vec<u8>, m: &QMatrix) {
    put_u32(out, m.precision().code());
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    match m {
        QMatrix::F32(d) => {
            for &v in d.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        QMatrix::F16 { bits, .. } => {
            for &b in bits {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        QMatrix::I8 { scale, q, .. } => {
            out.extend_from_slice(&scale.to_le_bytes());
            for &v in q {
                out.push(v as u8);
            }
        }
    }
}

fn put_qlinear(out: &mut Vec<u8>, l: &QLinear) {
    put_qmatrix(out, &l.w);
    put_matrix(out, &l.b);
}

fn attention_code(a: DpAttention) -> u32 {
    match a {
        DpAttention::Original => 0,
        DpAttention::Gate => 1,
        DpAttention::Recursive => 2,
        DpAttention::Jk => 3,
        DpAttention::None => 4,
    }
}

fn encode_meta(s: &Snapshot) -> Vec<u8> {
    let e = &s.export;
    let mut out = Vec::new();
    put_u32(&mut out, attention_code(e.dp_attention));
    put_u32(&mut out, e.k_steps as u32);
    put_u32(&mut out, e.hidden as u32);
    put_u32(&mut out, e.n_classes as u32);
    put_u32(&mut out, e.pattern_names.len() as u32);
    for name in &e.pattern_names {
        put_str(&mut out, name);
    }
    out
}

fn encode_weights(s: &Snapshot) -> Vec<u8> {
    let e = &s.export;
    let mut out = Vec::new();
    put_u32(&mut out, u32::from(e.w_dp.is_some()));
    if let Some(w) = &e.w_dp {
        put_qmatrix(&mut out, w);
    }
    put_u32(&mut out, e.op_scorers.len() as u32);
    for l in &e.op_scorers {
        put_qlinear(&mut out, l);
    }
    put_qlinear(&mut out, &e.fuse);
    put_u32(&mut out, u32::from(e.hop_scorer.is_some()));
    if let Some(l) = &e.hop_scorer {
        put_qlinear(&mut out, l);
    }
    put_u32(&mut out, e.classifier.len() as u32);
    for l in &e.classifier {
        put_qlinear(&mut out, l);
    }
    out
}

fn encode_features(s: &Snapshot) -> Vec<u8> {
    let e = &s.export;
    let mut out = Vec::new();
    put_qmatrix(&mut out, &e.x0);
    put_u32(&mut out, e.steps.len() as u32);
    put_u32(&mut out, e.steps.first().map_or(0, Vec::len) as u32);
    for per_step in &e.steps {
        for m in per_step {
            put_qmatrix(&mut out, m);
        }
    }
    out
}

/// Serializes a snapshot to its on-disk byte layout (see module docs).
pub fn encode_snapshot(s: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, s.tag);
    put_u32(&mut out, 3);
    for (tag, payload) in [
        (SECTION_META, encode_meta(s)),
        (SECTION_WEIGHTS, encode_weights(s)),
        (SECTION_FEATURES, encode_features(s)),
    ] {
        put_u32(&mut out, tag);
        put_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        put_u64(&mut out, fingerprint_bytes(&payload));
    }
    let mut fnv = Fnv1a::new();
    fnv.write_bytes(&out);
    let file_seal = fnv.finish();
    put_u64(&mut out, file_seal);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader over one section payload. Every
/// read that would cross the end is a typed error naming the section.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self { buf, pos: 0, section }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated { section: self.section })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
            what: format!("non-UTF-8 string in {}", self.section),
        })
    }

    fn f32(&mut self) -> Result<f32, SnapshotError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Validated `rows × cols` shape with an overflow- and
    /// payload-bounded element count. Zero dimensions are rejected up
    /// front so no variant can smuggle in an empty tensor.
    fn shape(&mut self, elem_bytes: usize) -> Result<(usize, usize, usize, usize), SnapshotError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        if rows == 0 || cols == 0 {
            return Err(SnapshotError::Malformed {
                what: format!("zero-dimension matrix in {}", self.section),
            });
        }
        let n = rows.checked_mul(cols).ok_or_else(|| SnapshotError::Malformed {
            what: format!("matrix dimension overflow in {}", self.section),
        })?;
        // Bound the allocation by what the payload can actually hold.
        let bytes = n.checked_mul(elem_bytes).ok_or_else(|| SnapshotError::Malformed {
            what: format!("matrix byte-size overflow in {}", self.section),
        })?;
        Ok((rows, cols, n, bytes))
    }

    fn matrix(&mut self) -> Result<DenseMatrix, SnapshotError> {
        let (rows, cols, n, bytes) = self.shape(4)?;
        let raw = self.take(bytes)?;
        let mut data = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(DenseMatrix::from_vec(rows, cols, data))
    }

    /// A v2 precision-prefixed matrix; with `legacy` set, parses the v1
    /// f32 layout instead and wraps it at f32.
    fn qmatrix(&mut self, legacy: bool) -> Result<QMatrix, SnapshotError> {
        if legacy {
            return self.matrix().map(QMatrix::F32);
        }
        let code = self.u32()?;
        let precision = Precision::from_code(code).ok_or_else(|| SnapshotError::Malformed {
            what: format!("unknown precision code {code} in {}", self.section),
        })?;
        match precision {
            Precision::F32 => self.matrix().map(QMatrix::F32),
            Precision::F16 => {
                let (rows, cols, n, bytes) = self.shape(2)?;
                let raw = self.take(bytes)?;
                let mut bits = Vec::with_capacity(n);
                for chunk in raw.chunks_exact(2) {
                    bits.push(u16::from_le_bytes([chunk[0], chunk[1]]));
                }
                QMatrix::try_f16(rows, cols, bits).ok_or_else(|| SnapshotError::Malformed {
                    what: format!("invalid f16 matrix shape in {}", self.section),
                })
            }
            Precision::I8 => {
                let (rows, cols, n, bytes) = self.shape(1)?;
                let scale = self.f32()?;
                if !scale.is_finite() || scale <= 0.0 {
                    return Err(SnapshotError::Malformed {
                        what: format!("non-positive int8 scale in {}", self.section),
                    });
                }
                let raw = self.take(bytes)?;
                let mut q = Vec::with_capacity(n);
                for &b in raw {
                    q.push(b as i8);
                }
                QMatrix::try_i8(rows, cols, scale, q).ok_or_else(|| SnapshotError::Malformed {
                    what: format!("invalid int8 matrix shape in {}", self.section),
                })
            }
        }
    }

    fn qlinear(&mut self, legacy: bool) -> Result<QLinear, SnapshotError> {
        Ok(QLinear { w: self.qmatrix(legacy)?, b: self.matrix()? })
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Malformed {
                what: format!(
                    "{} bytes of trailing garbage in {}",
                    self.buf.len() - self.pos,
                    self.section
                ),
            });
        }
        Ok(())
    }
}

fn decode_attention(code: u32) -> Result<DpAttention, SnapshotError> {
    Ok(match code {
        0 => DpAttention::Original,
        1 => DpAttention::Gate,
        2 => DpAttention::Recursive,
        3 => DpAttention::Jk,
        4 => DpAttention::None,
        other => {
            return Err(SnapshotError::Malformed {
                what: format!("unknown DP attention variant {other}"),
            })
        }
    })
}

/// Hard ceilings on collection counts, so a sealed-but-absurd header
/// cannot drive a pathological allocation before shape validation.
const MAX_ITEMS: usize = 1 << 16;

fn checked_count(n: u32, what: &str, section: &'static str) -> Result<usize, SnapshotError> {
    let n = n as usize;
    if n > MAX_ITEMS {
        return Err(SnapshotError::Malformed {
            what: format!("{what} count {n} in {section} exceeds {MAX_ITEMS}"),
        });
    }
    Ok(n)
}

/// Parses and validates snapshot bytes. Every malformation — bad magic,
/// version skew, truncation, a failed integrity seal, impossible shapes —
/// is a typed [`SnapshotError`]; this function never panics on arbitrary
/// input (property-tested in `tests/snapshot_props.rs`).
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    // --- framing ------------------------------------------------------
    let mut hdr = Reader::new(bytes, "header");
    let magic = hdr.take(8)?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = hdr.u32()?;
    if version != 1 && version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    // v1 predates quantized sections: plain f32 matrices, no precision
    // prefix. Decoded as the f32 wrap of the same model.
    let legacy = version == 1;
    let tag = hdr.u64()?;
    let n_sections = hdr.u32()?;
    if n_sections != 3 {
        return Err(SnapshotError::Malformed {
            what: format!("expected 3 sections, found {n_sections}"),
        });
    }
    let mut pos = hdr.pos;

    let mut payloads: [&[u8]; 3] = [&[], &[], &[]];
    for (i, expect_tag) in [SECTION_META, SECTION_WEIGHTS, SECTION_FEATURES].iter().enumerate() {
        let section = SECTION_NAMES[i];
        let mut r = Reader { buf: bytes, pos, section };
        let tag = r.u32()?;
        if tag != *expect_tag {
            return Err(SnapshotError::Malformed {
                what: format!("section {i} has tag {tag}, expected {expect_tag}"),
            });
        }
        let len = r.u64()?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= bytes.len())
            .ok_or(SnapshotError::Truncated { section })?;
        let payload = r.take(len)?;
        let seal = r.u64()?;
        if seal != fingerprint_bytes(payload) {
            return Err(SnapshotError::SealMismatch { section });
        }
        payloads[i] = payload;
        pos = r.pos;
    }

    // Whole-file seal over everything before it, then nothing after.
    let mut tr = Reader { buf: bytes, pos, section: "trailer" };
    let file_seal = tr.u64()?;
    let mut fnv = Fnv1a::new();
    fnv.write_bytes(&bytes[..pos]);
    if file_seal != fnv.finish() {
        return Err(SnapshotError::SealMismatch { section: "trailer" });
    }
    if tr.pos != bytes.len() {
        return Err(SnapshotError::Malformed {
            what: format!("{} bytes of trailing garbage after trailer", bytes.len() - tr.pos),
        });
    }

    // --- META ---------------------------------------------------------
    let mut r = Reader::new(payloads[0], "META");
    let dp_attention = decode_attention(r.u32()?)?;
    let k_steps = r.u32()? as usize;
    let hidden = r.u32()? as usize;
    let n_classes = r.u32()? as usize;
    let n_names = checked_count(r.u32()?, "pattern-name", "META")?;
    let mut pattern_names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        pattern_names.push(r.string()?);
    }
    r.finish()?;

    // --- WEIGHTS ------------------------------------------------------
    let mut r = Reader::new(payloads[1], "WEIGHTS");
    let w_dp = if r.u32()? != 0 { Some(r.qmatrix(legacy)?) } else { None };
    let n_scorers = checked_count(r.u32()?, "op-scorer", "WEIGHTS")?;
    let mut op_scorers = Vec::with_capacity(n_scorers);
    for _ in 0..n_scorers {
        op_scorers.push(r.qlinear(legacy)?);
    }
    let fuse = r.qlinear(legacy)?;
    let hop_scorer = if r.u32()? != 0 { Some(r.qlinear(legacy)?) } else { None };
    let n_classifier = checked_count(r.u32()?, "classifier-layer", "WEIGHTS")?;
    let mut classifier = Vec::with_capacity(n_classifier);
    for _ in 0..n_classifier {
        classifier.push(r.qlinear(legacy)?);
    }
    r.finish()?;

    // --- FEATURES -----------------------------------------------------
    let mut r = Reader::new(payloads[2], "FEATURES");
    let x0 = r.qmatrix(legacy)?;
    let got_steps = checked_count(r.u32()?, "step", "FEATURES")?;
    let got_patterns = checked_count(r.u32()?, "operator", "FEATURES")?;
    let mut steps = Vec::with_capacity(got_steps);
    for _ in 0..got_steps {
        let mut per_step = Vec::with_capacity(got_patterns);
        for _ in 0..got_patterns {
            per_step.push(r.qmatrix(legacy)?);
        }
        steps.push(per_step);
    }
    r.finish()?;

    let export = QuantizedExport {
        dp_attention,
        k_steps,
        hidden,
        n_classes,
        pattern_names,
        w_dp,
        op_scorers,
        fuse,
        hop_scorer,
        classifier,
        x0,
        steps,
    };
    Ok(Snapshot { tag, export })
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

fn io_err(op: &'static str, e: std::io::Error) -> SnapshotError {
    SnapshotError::Io { op, message: e.to_string() }
}

/// Writes a snapshot crash-safely: encode → temp sibling → `sync_all` →
/// atomic `rename`. Readers of `path` either see the previous complete
/// snapshot or the new complete snapshot, never a torn file. Returns the
/// number of bytes written.
pub fn write_snapshot(path: &Path, snapshot: &Snapshot) -> Result<usize, SnapshotError> {
    let bytes = encode_snapshot(snapshot);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
        f.write_all(&bytes).map_err(|e| io_err("write", e))?;
        f.sync_all().map_err(|e| io_err("sync", e))?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        // Best effort: do not leave the temp file behind on failure.
        let _ = std::fs::remove_file(&tmp);
        return Err(io_err("rename", e));
    }
    Ok(bytes.len())
}

/// Reads and validates a snapshot from disk.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read", e))?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_snapshot;
    use amud_core::LinearExport;
    use amud_train::faults::{corrupt_binary, truncate_binary};

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("amud-serve-test-{}-{name}", std::process::id()));
        p
    }

    // --- test-only v1 encoder (the pre-quantization f32 layout) -------

    fn put_linear_v1(out: &mut Vec<u8>, l: &LinearExport) {
        put_matrix(out, &l.w);
        put_matrix(out, &l.b);
    }

    fn encode_snapshot_v1(s: &Snapshot) -> Vec<u8> {
        assert_eq!(s.export.spec(), QuantSpec::F32, "v1 files can only hold f32 models");
        let e = s.export.dequantize();
        let mut weights = Vec::new();
        put_u32(&mut weights, u32::from(e.w_dp.is_some()));
        if let Some(w) = &e.w_dp {
            put_matrix(&mut weights, w);
        }
        put_u32(&mut weights, e.op_scorers.len() as u32);
        for l in &e.op_scorers {
            put_linear_v1(&mut weights, l);
        }
        put_linear_v1(&mut weights, &e.fuse);
        put_u32(&mut weights, u32::from(e.hop_scorer.is_some()));
        if let Some(l) = &e.hop_scorer {
            put_linear_v1(&mut weights, l);
        }
        put_u32(&mut weights, e.classifier.len() as u32);
        for l in &e.classifier {
            put_linear_v1(&mut weights, l);
        }
        let mut features = Vec::new();
        put_matrix(&mut features, &e.x0);
        put_u32(&mut features, e.steps.len() as u32);
        put_u32(&mut features, e.steps.first().map_or(0, Vec::len) as u32);
        for per_step in &e.steps {
            for m in per_step {
                put_matrix(&mut features, m);
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, 1);
        put_u64(&mut out, s.tag);
        put_u32(&mut out, 3);
        for (tag, payload) in [
            (SECTION_META, encode_meta(s)),
            (SECTION_WEIGHTS, weights),
            (SECTION_FEATURES, features),
        ] {
            put_u32(&mut out, tag);
            put_u64(&mut out, payload.len() as u64);
            out.extend_from_slice(&payload);
            put_u64(&mut out, fingerprint_bytes(&payload));
        }
        let mut fnv = Fnv1a::new();
        fnv.write_bytes(&out);
        let file_seal = fnv.finish();
        put_u64(&mut out, file_seal);
        out
    }

    #[test]
    fn v1_files_still_decode_to_the_same_model() {
        for variant in 0..5u64 {
            let snap = synthetic_snapshot(11 + variant, 10, 4, 3, 2, 8, variant as u32);
            let v1_bytes = encode_snapshot_v1(&snap);
            let v2_bytes = encode_snapshot(&snap);
            assert_ne!(v1_bytes, v2_bytes, "v2 adds precision prefixes");
            let back = decode_snapshot(&v1_bytes).expect("v1 layout must stay decodable");
            assert_eq!(back, snap, "variant {variant}");
        }
    }

    #[test]
    fn quantized_snapshots_round_trip_by_precision() {
        let base = synthetic_snapshot(21, 10, 4, 3, 2, 8, 0);
        for spec in [
            QuantSpec::uniform(Precision::F16),
            QuantSpec::uniform(Precision::I8),
            QuantSpec { features: Precision::I8, weights: Precision::F16 },
        ] {
            let q = base.requantized(spec);
            assert_eq!(q.export.spec(), spec);
            let bytes = encode_snapshot(&q);
            let back = decode_snapshot(&bytes).expect("quantized encoding must decode");
            assert_eq!(back, q, "spec {:?}", spec);
        }
    }

    #[test]
    fn quantized_snapshots_shrink_on_the_wire() {
        let base = synthetic_snapshot(22, 32, 16, 3, 3, 8, 0);
        let f32_len = encode_snapshot(&base).len();
        let f16_len = encode_snapshot(&base.requantized(QuantSpec::uniform(Precision::F16))).len();
        let i8_len = encode_snapshot(&base.requantized(QuantSpec::uniform(Precision::I8))).len();
        let f16_ratio = f32_len as f64 / f16_len as f64;
        let i8_ratio = f32_len as f64 / i8_len as f64;
        assert!(f16_ratio >= 1.7, "f16 file ratio {f16_ratio:.2} < 1.7");
        assert!(i8_ratio >= 3.0, "int8 file ratio {i8_ratio:.2} < 3.0");
    }

    #[test]
    fn non_positive_int8_scale_is_rejected() {
        let q =
            synthetic_snapshot(23, 8, 4, 2, 1, 4, 0).requantized(QuantSpec::uniform(Precision::I8));
        let bytes = encode_snapshot(&q);
        // The FEATURES payload opens with x0: precision code u32 (=2),
        // rows u32, cols u32, then the f32 scale. Find the section start
        // from the framing rather than hardcoding weight sizes.
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap, q);
        // Direct reader-level check: a zero scale must be malformed.
        let mut payload = Vec::new();
        put_u32(&mut payload, Precision::I8.code());
        put_u32(&mut payload, 1);
        put_u32(&mut payload, 1);
        payload.extend_from_slice(&0.0f32.to_le_bytes());
        payload.push(0);
        let mut r = Reader::new(&payload, "FEATURES");
        match r.qmatrix(false) {
            Err(SnapshotError::Malformed { what }) => {
                assert!(what.contains("scale"), "{what}");
            }
            other => panic!("expected malformed scale, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for variant in 0..5u64 {
            let snap = synthetic_snapshot(7 + variant, 12, 4, 3, 2, 8, variant as u32);
            let bytes = encode_snapshot(&snap);
            let back = decode_snapshot(&bytes).expect("own encoding must decode");
            assert_eq!(back, snap, "variant {variant}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_snapshot(&synthetic_snapshot(1, 6, 3, 2, 1, 4, 0));
        bytes[0] ^= 0xFF;
        assert_eq!(decode_snapshot(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn version_skew_is_rejected() {
        let snap = synthetic_snapshot(1, 6, 3, 2, 1, 4, 0);
        let mut bytes = encode_snapshot(&snap);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(decode_snapshot(&bytes), Err(SnapshotError::UnsupportedVersion { found: 99 }));
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let bytes = encode_snapshot(&synthetic_snapshot(2, 6, 3, 2, 1, 4, 1));
        for keep in 0..bytes.len() {
            let r = decode_snapshot(&bytes[..keep]);
            assert!(r.is_err(), "prefix of {keep}/{} bytes must not decode", bytes.len());
        }
        // The fraction-based harness helper produces the same class of input.
        let half = truncate_binary(&bytes, 0.5);
        assert!(decode_snapshot(&half).is_err(), "half-written snapshot must be rejected");
    }

    #[test]
    fn bit_flips_never_decode_to_a_different_model() {
        let snap = synthetic_snapshot(3, 6, 3, 2, 1, 4, 2);
        let bytes = encode_snapshot(&snap);
        for seed in 0..200u64 {
            let bad = corrupt_binary(&bytes, seed, 3);
            if bad == bytes {
                continue; // the mutator may hit the same byte twice
            }
            match decode_snapshot(&bad) {
                Err(_) => {}
                Ok(decoded) => panic!(
                    "seed {seed}: corrupted snapshot decoded (as {} model)",
                    if decoded == snap { "the same" } else { "a DIFFERENT" }
                ),
            }
        }
    }

    #[test]
    fn seal_mismatch_names_the_section() {
        let snap = synthetic_snapshot(4, 6, 3, 2, 1, 4, 0);
        let bytes = encode_snapshot(&snap);
        // Flip one byte inside the first section's payload: the META seal
        // must catch it before any parsing happens.
        let mut bad = bytes.clone();
        let meta_payload_start = 8 + 4 + 8 + 4 + 4 + 8;
        bad[meta_payload_start] ^= 0x01;
        match decode_snapshot(&bad) {
            Err(SnapshotError::SealMismatch { section: "META" }) => {}
            other => panic!("expected META seal mismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_snapshot(&synthetic_snapshot(5, 6, 3, 2, 1, 4, 0));
        bytes.extend_from_slice(b"EXTRA");
        assert!(matches!(decode_snapshot(&bytes), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    fn write_is_atomic_and_read_round_trips() {
        let path = tmp_path("roundtrip.snap");
        let snap = synthetic_snapshot(6, 6, 3, 2, 1, 4, 3);
        let n = write_snapshot(&path, &snap).expect("write");
        assert_eq!(n, encode_snapshot(&snap).len());
        // No temp residue next to the published file.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "temp sibling must be renamed away");
        let back = read_snapshot(&path).expect("read");
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_transient_io() {
        let e = read_snapshot(Path::new("/nonexistent/amud.snap")).unwrap_err();
        assert!(e.is_transient(), "{e:?}");
        assert_eq!(e.kind(), "io");
    }
}
