//! # amud-quant — post-training quantized artifacts for the inference path
//!
//! Every hot kernel in this workspace is memory-bandwidth-bound
//! (`BENCH_kernels.json`), and ADPA's decoupled design makes inference a
//! tiny MLP over *precomputed* propagated features — so the cheapest
//! speedup is fewer bytes, not fewer FLOPs. This crate provides
//! post-training, per-tensor symmetric quantization of those stored
//! tensors to two compact formats:
//!
//! * **f16** — IEEE-754 binary16, encoded bit-level in std only (no
//!   unstable `f16` type) with round-to-nearest-even. Decode is *exact*
//!   (every binary16 value is representable in binary32), which is what
//!   makes the fused kernels bit-reproducible.
//! * **int8** — one symmetric scale per tensor (`scale = max|x| / 127`),
//!   saturating to `[-127, 127]`. Dequantized value is
//!   `(q as f32) * scale`, a single rounding.
//!
//! ## Determinism contract
//!
//! The fused-dequant GEMM [`matmul_deq`] mirrors
//! `DenseMatrix::matmul` structurally — same ikj orientation, same
//! k-block-of-4 [`amud_par::lanes`] axpy kernels (the `deq_*` variants
//! expand operands in-register), same zero-weight block skip, and the
//! *same* output-row partition policy
//! ([`amud_nn::matrix::output_row_parts`]). Because decode is a pure
//! per-element function, `matmul_deq(a, q)` is **bit-identical** to
//! `a.matmul(&q.dequantize())` at every `AMUD_THREADS` — pinned by tests
//! here and swept across thread counts by `bench-quant`.

use amud_nn::matrix::{output_row_parts, DenseMatrix};
use amud_par::lanes;

pub use amud_par::lanes::f16_to_f32;

/// IEEE-754 binary32 → binary16 encode with round-to-nearest-even.
///
/// Handles all binary32 inputs: overflow saturates to ±inf (the IEEE
/// behaviour for round-to-nearest), values below half the smallest
/// subnormal round to ±0, the subnormal window `[2^-24, 2^-14)` rounds
/// into the 10-bit subnormal mantissa, and NaNs stay NaN (quietened, top
/// payload bits preserved). Inverse of [`f16_to_f32`] on every value
/// binary16 can represent — round-tripping those is bit-exact
/// (property-tested exhaustively).
#[inline]
pub fn f16_from_f32(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf stays inf; NaN keeps its top payload bits and is quietened
        // so the result can never collapse to the inf encoding.
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7c00 | 0x0200 | ((man >> 13) & 0x1ff) as u16
        };
    }
    let e16 = exp - 127 + 15;
    if e16 >= 0x1f {
        // Above the finite range: round-to-nearest sends everything at or
        // beyond (65504 + 16) to infinity. Values between the largest
        // finite f16 and that midpoint have e16 == 0x1e and are handled
        // by the mantissa-carry path below.
        return sign | 0x7c00;
    }
    if e16 <= 0 {
        if e16 < -10 {
            // Below half the smallest subnormal (2^-25): rounds to ±0.
            return sign;
        }
        // Subnormal target: shift the (implicit-1) mantissa into the
        // 10-bit window and round the shifted-out remainder to nearest,
        // ties to even.
        let m = man | 0x0080_0000;
        let shift = (14 - e16) as u32;
        let base = (m >> shift) as u16;
        let rem = m & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round_up = rem > half || (rem == half && base & 1 == 1);
        return sign | if round_up { base + 1 } else { base };
    }
    // Normal target: rebias, truncate the mantissa 23 → 10 bits, round
    // the low 13 bits to nearest, ties to even. A mantissa carry ripples
    // into the exponent field naturally (including up to inf).
    let base = ((e16 as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && base & 1 == 1);
    sign | (if round_up { base + 1 } else { base }) as u16
}

/// Storage precision of one quantized tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Unquantized binary32 — the identity mode (4 bytes/element).
    F32,
    /// IEEE-754 binary16 (2 bytes/element), exact decode.
    F16,
    /// Symmetric per-tensor int8 (1 byte/element + one f32 scale).
    I8,
}

impl Precision {
    /// Stable on-disk code for the snapshot format (`0`/`1`/`2`).
    pub fn code(self) -> u32 {
        match self {
            Precision::F32 => 0,
            Precision::F16 => 1,
            Precision::I8 => 2,
        }
    }

    /// Inverse of [`Precision::code`]; `None` for unknown codes.
    pub fn from_code(code: u32) -> Option<Precision> {
        match code {
            0 => Some(Precision::F32),
            1 => Some(Precision::F16),
            2 => Some(Precision::I8),
            _ => None,
        }
    }

    /// Human-readable name (`"f32"`, `"f16"`, `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::I8 => "int8",
        }
    }

    /// Parses [`Precision::name`] spellings (plus `"i8"`).
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f32" => Some(Precision::F32),
            "f16" => Some(Precision::F16),
            "int8" | "i8" => Some(Precision::I8),
            _ => None,
        }
    }
}

/// Which precision each half of a model artifact is stored at: the big
/// propagated-feature tensors and the small MLP/attention weights can be
/// quantized independently (mixed-precision snapshots are first-class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantSpec {
    /// Precision for feature tensors (`x0`, propagation steps, `W_DP`).
    pub features: Precision,
    /// Precision for weight tensors (scorers, fuse, hop, classifier).
    pub weights: Precision,
}

impl QuantSpec {
    /// The identity spec: everything stays f32.
    pub const F32: QuantSpec = QuantSpec { features: Precision::F32, weights: Precision::F32 };

    /// Same precision for features and weights.
    pub fn uniform(p: Precision) -> QuantSpec {
        QuantSpec { features: p, weights: p }
    }

    /// Parses a spec: a single [`Precision::parse`] spelling applies
    /// uniformly (`"f16"`), and `"features:weights"` sets the two halves
    /// independently (`"int8:f16"`).
    pub fn parse(s: &str) -> Option<QuantSpec> {
        match s.split_once(':') {
            None => Precision::parse(s).map(QuantSpec::uniform),
            Some((f, w)) => {
                Some(QuantSpec { features: Precision::parse(f)?, weights: Precision::parse(w)? })
            }
        }
    }
}

/// A dense row-major matrix stored at one of the three [`Precision`]s.
///
/// The f32 variant wraps a [`DenseMatrix`] unchanged, so an all-f32
/// artifact round-trips bit-for-bit through this type (and the serving
/// engine's f32 path stays byte-identical to the pre-quantization code).
#[derive(Debug, Clone, PartialEq)]
pub enum QMatrix {
    /// Unquantized rows.
    F32(DenseMatrix),
    /// binary16 rows (bit patterns), row-major.
    F16 {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// `rows * cols` binary16 bit patterns, row-major.
        bits: Vec<u16>,
    },
    /// Symmetric int8 rows with one per-tensor scale.
    I8 {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Dequantization scale: value = `q as f32 * scale`.
        scale: f32,
        /// `rows * cols` quantized values, row-major.
        q: Vec<i8>,
    },
}

impl QMatrix {
    /// Quantizes `m` to precision `p` (post-training, per-tensor).
    ///
    /// int8 uses `scale = max|x| / 127` (`1.0` for an all-zero tensor so
    /// dequantization stays exact) and saturating round-to-nearest; the
    /// per-element dequantization error is bounded by `scale / 2`
    /// (property-tested).
    pub fn quantize(m: &DenseMatrix, p: Precision) -> QMatrix {
        match p {
            Precision::F32 => QMatrix::F32(m.clone()),
            Precision::F16 => QMatrix::F16 {
                rows: m.rows(),
                cols: m.cols(),
                bits: m.as_slice().iter().map(|&v| f16_from_f32(v)).collect(),
            },
            Precision::I8 => {
                let mut max_abs = 0.0f32;
                for &v in m.as_slice() {
                    let a = v.abs();
                    if a > max_abs {
                        max_abs = a;
                    }
                }
                let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
                let q = m
                    .as_slice()
                    .iter()
                    .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                QMatrix::I8 { rows: m.rows(), cols: m.cols(), scale, q }
            }
        }
    }

    /// Builds an f16 matrix from decoded parts, validating the buffer
    /// length against the shape (`None` on mismatch — snapshot decode
    /// must never panic).
    pub fn try_f16(rows: usize, cols: usize, bits: Vec<u16>) -> Option<QMatrix> {
        if rows.checked_mul(cols)? != bits.len() {
            return None;
        }
        Some(QMatrix::F16 { rows, cols, bits })
    }

    /// Builds an int8 matrix from decoded parts, validating the buffer
    /// length against the shape (`None` on mismatch).
    pub fn try_i8(rows: usize, cols: usize, scale: f32, q: Vec<i8>) -> Option<QMatrix> {
        if rows.checked_mul(cols)? != q.len() {
            return None;
        }
        Some(QMatrix::I8 { rows, cols, scale, q })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        match self {
            QMatrix::F32(m) => m.rows(),
            QMatrix::F16 { rows, .. } | QMatrix::I8 { rows, .. } => *rows,
        }
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        match self {
            QMatrix::F32(m) => m.cols(),
            QMatrix::F16 { cols, .. } | QMatrix::I8 { cols, .. } => *cols,
        }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Storage precision of this matrix.
    pub fn precision(&self) -> Precision {
        match self {
            QMatrix::F32(_) => Precision::F32,
            QMatrix::F16 { .. } => Precision::F16,
            QMatrix::I8 { .. } => Precision::I8,
        }
    }

    /// Resident payload bytes (element storage + int8 scale; excludes
    /// container overhead). The number `bench-quant` reports as
    /// "resident bytes".
    pub fn n_bytes(&self) -> usize {
        match self {
            QMatrix::F32(m) => m.as_slice().len() * 4,
            QMatrix::F16 { bits, .. } => bits.len() * 2,
            QMatrix::I8 { q, .. } => q.len() + 4,
        }
    }

    /// Expands back to f32. Exact for f32 (clone) and f16 (decode is
    /// exact); for int8 this is the canonical single-rounding
    /// `q as f32 * scale` the fused kernels reproduce bit-for-bit.
    pub fn dequantize(&self) -> DenseMatrix {
        match self {
            QMatrix::F32(m) => m.clone(),
            QMatrix::F16 { rows, cols, bits } => {
                DenseMatrix::from_vec(*rows, *cols, bits.iter().map(|&b| f16_to_f32(b)).collect())
            }
            QMatrix::I8 { rows, cols, scale, q } => {
                DenseMatrix::from_vec(*rows, *cols, q.iter().map(|&v| v as f32 * *scale).collect())
            }
        }
    }

    /// Decodes row `r` into `out` (over the common prefix of the row and
    /// `out`) — the row-gather primitive the serving engine uses. The
    /// per-element decode is identical to [`QMatrix::dequantize`], so a
    /// gathered row is bitwise the corresponding dequantized row.
    pub fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        match self {
            QMatrix::F32(m) => {
                let row = m.row(r);
                let n = row.len().min(out.len());
                out[..n].copy_from_slice(&row[..n]);
            }
            QMatrix::F16 { cols, bits, .. } => {
                // BOUNDS(bits, q): QMatrix payloads hold rows · cols encoded
                // entries; the serving gather contract passes r < rows.
                let row = &bits[r * cols..(r + 1) * cols];
                for (o, &b) in out.iter_mut().zip(row) {
                    *o = f16_to_f32(b);
                }
            }
            QMatrix::I8 { cols, scale, q, .. } => {
                let row = &q[r * cols..(r + 1) * cols];
                for (o, &v) in out.iter_mut().zip(row) {
                    *o = v as f32 * *scale;
                }
            }
        }
    }
}

/// `a · b` with `b` stored quantized — the fused-dequant GEMM.
///
/// Structurally `DenseMatrix::matmul` with the four streamed B rows
/// expanded in-register by the `deq_*` lane kernels: same ikj
/// orientation, same k-block of 4, same zero-weight block skip, same
/// output-row partition. Bit-identical to `a.matmul(&b.dequantize())` at
/// every thread count (decode is a pure per-element function and the
/// per-element FP op sequence is unchanged).
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_deq(a: &DenseMatrix, b: &QMatrix) -> DenseMatrix {
    match b {
        QMatrix::F32(m) => a.matmul(m),
        QMatrix::F16 { rows, cols, bits } => {
            assert_eq!(a.cols(), *rows, "matmul_deq: inner dimensions differ");
            let (n, k_extent, cols) = (a.rows(), a.cols(), *cols);
            let mut out = DenseMatrix::zeros(n, cols);
            if cols == 0 {
                return out;
            }
            let parts = output_row_parts(n, k_extent * cols);
            let k_main = k_extent - k_extent % 4;
            // BOUNDS(bits): the F16 payload holds rows · cols entries and
            // k < k_extent == rows (asserted), so row k stays inside it.
            let brow = |k: usize| &bits[k * cols..(k + 1) * cols];
            amud_par::par_row_blocks_mut(out.as_mut_slice(), cols, &parts, |_, rows, block| {
                for (out_row, i) in block.chunks_exact_mut(cols).zip(rows) {
                    let a_row = a.row(i);
                    for kb in 0..k_main / 4 {
                        let k = kb * 4;
                        let w = [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]];
                        if w == [0.0; 4] {
                            continue;
                        }
                        lanes::deq_f16_axpy4(
                            out_row,
                            w,
                            brow(k),
                            brow(k + 1),
                            brow(k + 2),
                            brow(k + 3),
                        );
                    }
                    for (k, &av) in a_row.iter().enumerate().skip(k_main) {
                        if av == 0.0 {
                            continue;
                        }
                        lanes::deq_f16_axpy(out_row, av, brow(k));
                    }
                }
            });
            out
        }
        QMatrix::I8 { rows, cols, scale, q } => {
            assert_eq!(a.cols(), *rows, "matmul_deq: inner dimensions differ");
            let (n, k_extent, cols, scale) = (a.rows(), a.cols(), *cols, *scale);
            let mut out = DenseMatrix::zeros(n, cols);
            if cols == 0 {
                return out;
            }
            let parts = output_row_parts(n, k_extent * cols);
            let k_main = k_extent - k_extent % 4;
            // BOUNDS(q): the I8 payload holds rows · cols entries and
            // k < k_extent == rows (asserted), so row k stays inside it.
            let brow = |k: usize| &q[k * cols..(k + 1) * cols];
            amud_par::par_row_blocks_mut(out.as_mut_slice(), cols, &parts, |_, rows, block| {
                for (out_row, i) in block.chunks_exact_mut(cols).zip(rows) {
                    let a_row = a.row(i);
                    for kb in 0..k_main / 4 {
                        let k = kb * 4;
                        let w = [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]];
                        if w == [0.0; 4] {
                            continue;
                        }
                        lanes::deq_i8_axpy4(
                            out_row,
                            w,
                            scale,
                            brow(k),
                            brow(k + 1),
                            brow(k + 2),
                            brow(k + 3),
                        );
                    }
                    for (k, &av) in a_row.iter().enumerate().skip(k_main) {
                        if av == 0.0 {
                            continue;
                        }
                        lanes::deq_i8_axpy(out_row, av, brow(k), scale);
                    }
                }
            });
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize, seed: f32) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17) as f32 * seed).sin() * 2.5)
    }

    #[test]
    fn f16_round_trip_is_bit_exact_for_every_representable_value() {
        // All 2^16 bit patterns: finite values and infinities must
        // round-trip exactly; NaNs must stay NaN.
        for b in 0..=u16::MAX {
            let v = f16_to_f32(b);
            if v.is_nan() {
                assert!(f16_to_f32(f16_from_f32(v)).is_nan(), "bits={b:#06x}");
            } else {
                assert_eq!(f16_from_f32(v), b, "bits={b:#06x} value={v}");
            }
        }
    }

    #[test]
    fn f16_encode_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 (even) and 1 + 2^-10:
        // ties to even ⇒ 1.0.
        assert_eq!(f16_from_f32(1.0 + 2f32.powi(-11)), 0x3c00);
        // 1 + 3·2^-11 is halfway between 1 + 2^-10 (odd) and 1 + 2^-9:
        // ties to even ⇒ up.
        assert_eq!(f16_from_f32(1.0 + 3.0 * 2f32.powi(-11)), 0x3c02);
        // Just above the tie rounds up.
        assert_eq!(f16_from_f32(1.0 + 2f32.powi(-11) + 2f32.powi(-20)), 0x3c01);
        // Overflow saturates to inf at/above the rounding midpoint 65520.
        assert_eq!(f16_from_f32(65519.99), 0x7bff);
        assert_eq!(f16_from_f32(65520.0), 0x7c00);
        assert_eq!(f16_from_f32(1e30), 0x7c00);
        assert_eq!(f16_from_f32(-1e30), 0xfc00);
        // Underflow: half the smallest subnormal ties to even (zero).
        assert_eq!(f16_from_f32(2f32.powi(-25)), 0x0000);
        assert_eq!(f16_from_f32(2f32.powi(-25) * 1.5), 0x0001);
    }

    #[test]
    fn int8_quantization_bounds_per_element_error_by_half_scale() {
        let m = sample(13, 9, 0.73);
        let q = QMatrix::quantize(&m, Precision::I8);
        let QMatrix::I8 { scale, .. } = &q else { panic!("expected I8") };
        let d = q.dequantize();
        for (x, y) in m.as_slice().iter().zip(d.as_slice()) {
            let err = (x - y).abs() as f64;
            assert!(err <= *scale as f64 * 0.5 * (1.0 + 1e-5), "x={x} y={y} scale={scale}");
        }
    }

    #[test]
    fn all_zero_tensor_quantizes_exactly_in_every_mode() {
        let m = DenseMatrix::zeros(4, 6);
        for p in [Precision::F32, Precision::F16, Precision::I8] {
            let q = QMatrix::quantize(&m, p);
            assert_eq!(q.dequantize(), m, "{}", p.name());
        }
    }

    #[test]
    fn resident_bytes_shrink_by_mode() {
        let m = sample(32, 48, 0.41);
        let f32b = QMatrix::quantize(&m, Precision::F32).n_bytes();
        let f16b = QMatrix::quantize(&m, Precision::F16).n_bytes();
        let i8b = QMatrix::quantize(&m, Precision::I8).n_bytes();
        assert_eq!(f32b, 32 * 48 * 4);
        assert_eq!(f16b, 32 * 48 * 2);
        assert_eq!(i8b, 32 * 48 + 4);
    }

    #[test]
    fn matmul_deq_is_bit_identical_to_dequantize_then_matmul() {
        for p in [Precision::F32, Precision::F16, Precision::I8] {
            for (m, k, n) in [(1, 1, 1), (3, 5, 2), (7, 4, 9), (16, 33, 12), (30, 64, 20)] {
                let a = sample(m, k, 0.59);
                let b = QMatrix::quantize(&sample(k, n, 0.37), p);
                let fused = matmul_deq(&a, &b);
                let reference = a.matmul(&b.dequantize());
                for (x, y) in fused.as_slice().iter().zip(reference.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{} m={m} k={k} n={n}", p.name());
                }
            }
        }
    }

    #[test]
    fn matmul_deq_handles_zero_weights_and_empty_shapes() {
        // Zero rows in `a` exercise the block-skip path against the same
        // skip in the reference matmul.
        let mut a = sample(6, 8, 0.59);
        for k in 0..8 {
            a.set(2, k, 0.0);
            if k % 2 == 0 {
                a.set(4, k, 0.0);
            }
        }
        for p in [Precision::F16, Precision::I8] {
            let b = QMatrix::quantize(&sample(8, 5, 0.37), p);
            assert_eq!(matmul_deq(&a, &b), a.matmul(&b.dequantize()), "{}", p.name());
            let empty = QMatrix::quantize(&DenseMatrix::zeros(8, 0), p);
            assert_eq!(matmul_deq(&a, &empty).shape(), (6, 0));
        }
    }

    #[test]
    fn matmul_deq_is_thread_count_invariant() {
        let a = sample(64, 48, 0.61);
        for p in [Precision::F16, Precision::I8] {
            let b = QMatrix::quantize(&sample(48, 40, 0.43), p);
            let reference = amud_par::with_threads(1, || matmul_deq(&a, &b));
            for threads in [2, 3, 8] {
                let got = amud_par::with_threads(threads, || matmul_deq(&a, &b));
                for (x, y) in got.as_slice().iter().zip(reference.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{} threads={threads}", p.name());
                }
            }
        }
    }

    #[test]
    fn decode_row_into_matches_dequantized_rows() {
        let m = sample(9, 14, 0.83);
        for p in [Precision::F32, Precision::F16, Precision::I8] {
            let q = QMatrix::quantize(&m, p);
            let d = q.dequantize();
            let mut row = vec![0.0f32; 14];
            for r in 0..9 {
                q.decode_row_into(r, &mut row);
                for (x, y) in row.iter().zip(d.row(r)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{} r={r}", p.name());
                }
            }
        }
    }

    #[test]
    fn try_constructors_reject_shape_mismatches() {
        assert!(QMatrix::try_f16(2, 3, vec![0; 6]).is_some());
        assert!(QMatrix::try_f16(2, 3, vec![0; 5]).is_none());
        assert!(QMatrix::try_i8(2, 3, 0.5, vec![0; 6]).is_some());
        assert!(QMatrix::try_i8(2, 3, 0.5, vec![0; 7]).is_none());
        assert!(QMatrix::try_f16(usize::MAX, 2, vec![0; 4]).is_none());
    }

    #[test]
    fn precision_codes_round_trip() {
        for p in [Precision::F32, Precision::F16, Precision::I8] {
            assert_eq!(Precision::from_code(p.code()), Some(p));
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::from_code(3), None);
        assert_eq!(QuantSpec::parse("int8"), Some(QuantSpec::uniform(Precision::I8)));
        assert_eq!(QuantSpec::parse("bogus"), None);
    }
}
