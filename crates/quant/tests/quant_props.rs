//! Property tests for the quantization error model (ISSUE 9 / DESIGN.md
//! §15): int8 error is bounded by half the per-tensor scale, f16 is exact
//! on everything binary16 can represent, and the encoder is idempotent
//! (encoding a decoded f16 value reproduces the same bits).

use amud_nn::matrix::DenseMatrix;
use amud_quant::{f16_from_f32, f16_to_f32, Precision, QMatrix};
use proptest::prelude::*;

/// Strategy: bounded finite f32 values with varied magnitudes.
fn finite_vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1000.0f32..1000.0, n)
}

proptest! {
    #[test]
    fn int8_error_is_bounded_by_half_scale(vals in finite_vals(64)) {
        let m = DenseMatrix::from_vec(8, 8, vals);
        let q = QMatrix::quantize(&m, Precision::I8);
        let QMatrix::I8 { scale, .. } = &q else { panic!("expected I8") };
        let d = q.dequantize();
        for (x, y) in m.as_slice().iter().zip(d.as_slice()) {
            // scale/2 in exact arithmetic; a hair of slack covers the two
            // f32 roundings (divide on encode, multiply on decode).
            let bound = *scale as f64 * 0.5 * (1.0 + 1e-5);
            prop_assert!(((x - y).abs() as f64) <= bound, "x={} y={} scale={}", x, y, scale);
        }
    }

    #[test]
    fn f16_is_exact_on_representable_values(bits in prop::collection::vec(0u64..65536, 32)) {
        // Values synthesized *from* f16 bit patterns are exactly
        // representable, so quantize→dequantize must be the identity on
        // them (bitwise, excluding NaNs).
        let vals: Vec<f32> = bits
            .iter()
            .map(|&b| f16_to_f32(b as u16))
            .map(|v| if v.is_nan() || v.is_infinite() { 0.0 } else { v })
            .collect();
        let m = DenseMatrix::from_vec(4, 8, vals);
        let q = QMatrix::quantize(&m, Precision::F16);
        let d = q.dequantize();
        for (x, y) in m.as_slice().iter().zip(d.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn f16_encode_is_idempotent(v in -1e38f32..1e38) {
        // Encoding any finite f32 and decoding it lands on a representable
        // value; re-encoding that value must reproduce the same bits.
        let once = f16_from_f32(v);
        let again = f16_from_f32(f16_to_f32(once));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn quantized_matmul_stays_pinned_to_reference(vals in finite_vals(48), p in 0usize..3) {
        let precision = Precision::from_code(p as u32).unwrap();
        let a = DenseMatrix::from_fn(5, 6, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let b = QMatrix::quantize(&DenseMatrix::from_vec(6, 8, vals), precision);
        let fused = amud_quant::matmul_deq(&a, &b);
        let reference = a.matmul(&b.dequantize());
        for (x, y) in fused.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
