//! Bitwise-equivalence properties for the precompute cache (DESIGN.md §10).
//!
//! The cache contract says `AMUD_CACHE` changes wall-clock only: a cached
//! artifact — whether served whole, as a prefix view of a deeper tensor,
//! or grown by incremental extension — is bit-identical to the uncached
//! computation. These properties generate random digraphs and feature
//! matrices, run every path under `AMUD_THREADS ∈ {1, 4}` (the cache must
//! compose with the deterministic parallel runtime), and compare outputs
//! *bitwise*, so even a last-ulp or sign-of-zero difference fails.
//!
//! The suite passes with the cache in either default state; `ci.sh` runs
//! it twice, with `AMUD_CACHE` unset and `AMUD_CACHE=off`, to pin both
//! process-wide defaults.

use amud_core::precompute;
use amud_core::{Adpa, AdpaConfig, PropagatedFeatures};
use amud_graph::{CsrMatrix, DiGraph, PatternSet};
use amud_nn::DenseMatrix;
use amud_train::GraphData;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Seeded random digraph: `n` nodes, ~`3n` edges, no isolated structure
/// guarantees — degenerate rows are part of the property.
fn seeded_adj(n: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize)> = (0..3 * n)
        .map(|_| (rng.gen_range(0..n as u64) as usize, rng.gen_range(0..n as u64) as usize))
        .filter(|(u, v)| u != v)
        .collect();
    CsrMatrix::from_edges(n, n, edges).expect("indices are in range by construction")
}

fn seeded_x(n: usize, f: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(n, f, |_, _| rng.gen_range(-1.5f32..1.5))
}

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Asserts two propagated tensors agree bitwise on every step and the
/// residual, for the first `k` steps.
fn assert_tensors_equal(
    a: &PropagatedFeatures,
    b: &PropagatedFeatures,
    k: usize,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(bits(a.x0()), bits(b.x0()), "{}: residual diverged", label);
    prop_assert_eq!(a.n_patterns(), b.n_patterns(), "{}: operator count diverged", label);
    for l in 1..=k {
        for g in 0..a.n_patterns() {
            prop_assert_eq!(
                bits(a.step(l, g)),
                bits(b.step(l, g)),
                "{}: step {} operator {} diverged",
                label,
                l,
                g
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cached vs uncached propagation: one request, same bits.
    #[test]
    fn cached_propagation_matches_uncached(
        n in 8usize..40,
        f in 1usize..8,
        k in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let adj = seeded_adj(n, seed);
        let x = seeded_x(n, f, seed ^ 0xfeed);
        for &threads in &THREAD_COUNTS {
            amud_par::with_threads(threads, || -> Result<(), TestCaseError> {
                let (set, key) = amud_cache::with_cache(true, || {
                    precompute::clear();
                    precompute::operators(&adj, 2, 0.5)
                }).unwrap();
                let cached = amud_cache::with_cache(true,
                    || precompute::propagated(&key, &set, &x, k)).unwrap();
                let uncached = amud_cache::with_cache(false,
                    || precompute::propagated(&key, &set, &x, k)).unwrap();
                assert_tensors_equal(&cached, &uncached, k, "cached-vs-uncached")?;
                // And the operator sets themselves match a direct build.
                let direct = PatternSet::build_normalized(
                    &adj,
                    amud_graph::DirectedPattern::enumerate_up_to(2),
                    0.5,
                ).unwrap();
                prop_assert_eq!(set.propagators(), direct.propagators());
                Ok(())
            })?;
        }
    }

    /// A prefix slice at k of a deeper cached tensor matches `compute(k)`.
    #[test]
    fn prefix_slice_matches_direct_compute(
        n in 8usize..40,
        f in 1usize..6,
        k in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let adj = seeded_adj(n, seed);
        let x = seeded_x(n, f, seed ^ 0xbeef);
        for &threads in &THREAD_COUNTS {
            amud_par::with_threads(threads, || -> Result<(), TestCaseError> {
                let set = PatternSet::up_to_order(&adj, 1).unwrap();
                let deep = PropagatedFeatures::compute(&set, &x, 5).unwrap();
                let view = deep.prefix(k).unwrap();
                let direct = PropagatedFeatures::compute(&set, &x, k).unwrap();
                prop_assert_eq!(view.k_steps(), k);
                assert_tensors_equal(&view, &direct, k, "prefix-vs-direct")?;
                Ok(())
            })?;
        }
    }

    /// Incremental extension K=2→5 matches a direct K=5 compute, both via
    /// the raw tensor API and through the cache store.
    #[test]
    fn incremental_extension_matches_direct_compute(
        n in 8usize..40,
        f in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let adj = seeded_adj(n, seed);
        let x = seeded_x(n, f, seed ^ 0xcafe);
        for &threads in &THREAD_COUNTS {
            amud_par::with_threads(threads, || -> Result<(), TestCaseError> {
                let set = PatternSet::up_to_order(&adj, 1).unwrap();
                let direct = PropagatedFeatures::compute(&set, &x, 5).unwrap();
                // Raw API.
                let mut grown = PropagatedFeatures::compute(&set, &x, 2).unwrap();
                grown.extend_to(&set, 5).unwrap();
                assert_tensors_equal(&grown, &direct, 5, "extend-vs-direct")?;
                // Through the store: request K=2, then K=5 (extend path).
                let via_store = amud_cache::with_cache(true, || {
                    precompute::clear();
                    let (set, key) = precompute::operators(&adj, 1, 0.0).unwrap();
                    let _ = precompute::propagated(&key, &set, &x, 2).unwrap();
                    precompute::propagated(&key, &set, &x, 5).unwrap()
                });
                assert_tensors_equal(&via_store, &direct, 5, "store-extend-vs-direct")?;
                Ok(())
            })?;
        }
    }
}

/// Labelled random graph bundle for end-to-end model-level equivalence.
fn bundle(n: usize, seed: u64) -> GraphData {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize)> = (0..4 * n)
        .map(|_| (rng.gen_range(0..n as u64) as usize, rng.gen_range(0..n as u64) as usize))
        .filter(|(u, v)| u != v)
        .collect();
    let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3u64) as usize).collect();
    let g = DiGraph::from_edges(n, edges).unwrap().with_labels(labels, 3).unwrap();
    let features = seeded_x(n, 8, seed ^ 0x51de);
    let ids: Vec<usize> = (0..n).collect();
    let (train, rest) = ids.split_at(n / 2);
    let (val, test) = rest.split_at(rest.len() / 2);
    GraphData::new(&g, features, train.to_vec(), val.to_vec(), test.to_vec()).unwrap()
}

/// Model-level equivalence: an `Adpa` built with the cache enabled (twice,
/// so the second construction is all hits) computes the same forward pass
/// as one built with the cache off.
#[test]
fn adpa_forward_is_cache_invariant() {
    let data = bundle(30, 9);
    let cfg = AdpaConfig { hidden: 8, k_steps: 3, ..Default::default() };
    let logits = |model: &Adpa| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = amud_nn::Tape::new();
        let out = amud_train::Model::forward(model, &mut tape, &data, false, &mut rng);
        bits(tape.value(out))
    };
    for &threads in &THREAD_COUNTS {
        amud_par::with_threads(threads, || {
            let uncached = amud_cache::with_cache(false, || Adpa::new(&data, cfg, 7).unwrap());
            let (cold, warm) = amud_cache::with_cache(true, || {
                precompute::clear();
                (Adpa::new(&data, cfg, 7).unwrap(), Adpa::new(&data, cfg, 7).unwrap())
            });
            assert_eq!(logits(&uncached), logits(&cold), "uncached vs cold diverged");
            assert_eq!(logits(&cold), logits(&warm), "cold vs warm diverged");
        });
    }
}

/// A seed whose model *construction* fails (bad conv_r) lands in the
/// failure manifest; the sweep's summary covers the surviving seeds.
#[test]
fn construction_failure_degrades_sweep_gracefully() {
    let data = bundle(24, 11);
    let cfg = amud_train::TrainConfig { epochs: 3, patience: 0, ..Default::default() };
    let out = amud_train::repeat_runs(
        |s| {
            let conv_r = if s == 101 { f32::NAN } else { 0.0 };
            Adpa::new(&data, AdpaConfig { hidden: 8, conv_r, ..Default::default() }, s)
        },
        &data,
        cfg,
        4,
        100,
    );
    assert_eq!(out.results.len(), 3, "three seeds must survive");
    assert_eq!(out.failures.len(), 1);
    assert_eq!(out.failures[0].seed, 101);
    assert!(
        matches!(&out.failures[0].error, amud_train::TrainError::BadInput { reason }
            if reason.contains("convolution coefficient")),
        "{:?}",
        out.failures[0].error
    );
    assert_eq!(out.summary.n_failed, 1);
}
