//! # amud-core
//!
//! The paper's two contributions, implemented over the `amud-graph` /
//! `amud-nn` substrates:
//!
//! * [`amud`] — **AMUD** (Adaptively Modeling the natural directed graphs as
//!   Undirected or Directed): the statistical guidance of Sec. III. It
//!   correlates each 2-order directed pattern with node profiles (Eq. 4–7),
//!   aggregates the disparities into the guidance score `S` (Eq. 8), and
//!   recommends keeping directed edges when `S > θ = 0.5`.
//! * [`adpa`] — **ADPA** (Adaptive Directed Pattern Aggregation, Sec. IV):
//!   weight-free K-step feature propagation over k-order DP operators
//!   (Eq. 9, [`propagation`]), node-wise DP attention (Eq. 10, four
//!   variants), node-wise hop attention (Eq. 11), and an MLP classifier.
//! * [`paradigm`] — the Fig. 1 workflow wiring the two together.
//!
//! ```
//! use amud_core::amud::{amud_score, AmudDecision};
//! use amud_graph::DiGraph;
//!
//! // Orientation carries no information on a symmetric graph, so AMUD
//! // recommends undirected modeling with a guidance score of exactly 0.
//! let g = DiGraph::from_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5), (5, 3), (2, 0)])
//!     .unwrap()
//!     .with_labels(vec![0, 0, 0, 1, 1, 1], 2)
//!     .unwrap()
//!     .to_undirected();
//! let report = amud_score(g.adjacency(), g.labels().unwrap(), 2);
//! assert_eq!(report.decision, AmudDecision::Undirected);
//! assert!(report.score < 1e-9);
//! ```

/// ADPA — the paper's adaptive directed-pattern-aggregation model (§IV).
pub mod adpa;

/// AMUD — the topological-guidance score and decision rule (§III).
pub mod amud;
/// Plain-data export of a trained ADPA model for serving (`amud-serve`).
pub mod export;
/// Paradigm selection: AMUD decision → undirected/directed pipeline.
pub mod paradigm;
/// Content-addressed precompute cache for operators and propagation.
pub mod precompute;
/// k-order directed-pattern propagation operators (Eq. 7–9).
pub mod propagation;

pub use adpa::{Adpa, AdpaConfig, DpAttention};
pub use amud::{amud_score, AmudDecision, AmudReport, PatternCorrelation};
pub use export::{AdpaExport, LinearExport, QLinear, QuantizedExport};
pub use paradigm::{prepare_topology, Paradigm};
pub use precompute::QuantizedFeatures;
pub use propagation::PropagatedFeatures;
