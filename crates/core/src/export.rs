//! Plain-data export of a trained ADPA model for serving.
//!
//! The decoupled design (Sec. IV-D) makes inference topology-free: once
//! Eq. 9 propagation has run, predicting node `v` needs only row `v` of
//! the propagated tensors, row `v` of `W_DP`, and the shared dense
//! weights. [`AdpaExport`] is exactly that closure of state — every
//! matrix a serving process needs, copied out of the [`crate::Adpa`]
//! parameter bank into owned [`DenseMatrix`] values with no tape, bank,
//! or graph attached. `amud-serve` serializes this struct into crash-safe
//! snapshot artifacts and rebuilds its row-gather inference engine from
//! it; the round trip is bit-exact because every field is raw `f32` data.

use crate::adpa::{Adpa, DpAttention};
use crate::propagation::PropagatedFeatures;
use amud_nn::{DenseMatrix, Linear, ParamBank};
use amud_quant::{Precision, QMatrix, QuantSpec};

/// A dense layer's weights, copied out of the parameter bank:
/// `w` is `in × out`, `b` is `1 × out` (the tape's `x·W + b` convention).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearExport {
    /// The weight matrix (`in_dim × out_dim`).
    pub w: DenseMatrix,
    /// The bias row (`1 × out_dim`).
    pub b: DenseMatrix,
}

impl LinearExport {
    fn from_linear(bank: &ParamBank, lin: &Linear) -> Self {
        Self { w: bank.value(lin.w).clone(), b: bank.value(lin.b).clone() }
    }
}

/// Everything a serving process needs to reproduce ADPA's eval-mode
/// forward pass, as plain owned matrices. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdpaExport {
    /// The DP attention variant the weights were trained under.
    pub dp_attention: DpAttention,
    /// Propagation depth `K`.
    pub k_steps: usize,
    /// Hidden width of the fused representations.
    pub hidden: usize,
    /// Number of classes (the classifier's output width).
    pub n_classes: usize,
    /// Names of the DP operators in use (after selection), for reporting.
    pub pattern_names: Vec<String>,
    /// `W_DP` (`n × (k+1)`) when `dp_attention` is [`DpAttention::Original`].
    pub w_dp: Option<DenseMatrix>,
    /// Per-operator scorers (`f → 1` each) for Gate / Recursive.
    pub op_scorers: Vec<LinearExport>,
    /// The fuse layer (`fuse_in → hidden`).
    pub fuse: LinearExport,
    /// The hop-attention scorer (`K·hidden → K`) when hop attention is on.
    pub hop_scorer: Option<LinearExport>,
    /// The classifier MLP layers (ReLU between, none after the last).
    pub classifier: Vec<LinearExport>,
    /// The propagated features: `x0` plus `steps[l-1][g]` for step `l` and
    /// operator `g` — each `n × f`.
    pub x0: DenseMatrix,
    /// `steps[l-1][g]`: the step-`l` output of operator `g` (`n × f`).
    pub steps: Vec<Vec<DenseMatrix>>,
}

impl AdpaExport {
    /// Number of nodes the export can answer queries for.
    pub fn n_nodes(&self) -> usize {
        self.x0.rows()
    }

    /// Feature width of the propagated tensors.
    pub fn n_features(&self) -> usize {
        self.x0.cols()
    }

    /// Number of DP operators `k` in the (selected) family.
    pub fn n_patterns(&self) -> usize {
        self.pattern_names.len()
    }

    /// Total `f32` scalars across all matrices (a size/report helper).
    pub fn n_floats(&self) -> usize {
        let lin = |l: &LinearExport| l.w.as_slice().len() + l.b.as_slice().len();
        self.w_dp.as_ref().map_or(0, |m| m.as_slice().len())
            + self.op_scorers.iter().map(&lin).sum::<usize>()
            + lin(&self.fuse)
            + self.hop_scorer.as_ref().map_or(0, &lin)
            + self.classifier.iter().map(&lin).sum::<usize>()
            + self.x0.as_slice().len()
            + self.steps.iter().flatten().map(|m| m.as_slice().len()).sum::<usize>()
    }
}

/// A dense layer with the weight matrix stored at any [`Precision`].
///
/// The bias stays f32: it is `1 × out` (negligible bytes) and its add is
/// the last op before an activation, where quantization noise is least
/// welcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QLinear {
    /// The (possibly quantized) weight matrix (`in_dim × out_dim`).
    pub w: QMatrix,
    /// The f32 bias row (`1 × out_dim`).
    pub b: DenseMatrix,
}

impl QLinear {
    fn quantize(l: &LinearExport, p: Precision) -> Self {
        QLinear { w: QMatrix::quantize(&l.w, p), b: l.b.clone() }
    }

    fn wrap(l: LinearExport) -> Self {
        QLinear { w: QMatrix::F32(l.w), b: l.b }
    }

    fn dequantize(&self) -> LinearExport {
        LinearExport { w: self.w.dequantize(), b: self.b.clone() }
    }

    fn n_bytes(&self) -> usize {
        self.w.n_bytes() + self.b.as_slice().len() * 4
    }
}

/// [`AdpaExport`] with every matrix stored at a [`QuantSpec`]-chosen
/// precision: feature tensors (`x0`, `steps`, `W_DP`) under
/// `spec.features`, weight tensors (scorers, fuse, hop, classifier) under
/// `spec.weights`. This is the in-memory form of a snapshot — the serving
/// engine gathers rows and runs the fused-dequant kernels directly on it,
/// so the byte reduction is resident, not just on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedExport {
    /// The DP attention variant the weights were trained under.
    pub dp_attention: DpAttention,
    /// Propagation depth `K`.
    pub k_steps: usize,
    /// Hidden width of the fused representations.
    pub hidden: usize,
    /// Number of classes (the classifier's output width).
    pub n_classes: usize,
    /// Names of the DP operators in use (after selection), for reporting.
    pub pattern_names: Vec<String>,
    /// `W_DP` (`n × (k+1)`) when `dp_attention` is [`DpAttention::Original`].
    pub w_dp: Option<QMatrix>,
    /// Per-operator scorers (`f → 1` each) for Gate / Recursive.
    pub op_scorers: Vec<QLinear>,
    /// The fuse layer (`fuse_in → hidden`).
    pub fuse: QLinear,
    /// The hop-attention scorer (`K·hidden → K`) when hop attention is on.
    pub hop_scorer: Option<QLinear>,
    /// The classifier MLP layers (ReLU between, none after the last).
    pub classifier: Vec<QLinear>,
    /// The quantized input features `X^(0)` (`n × f`).
    pub x0: QMatrix,
    /// `steps[l-1][g]`: the step-`l` output of operator `g` (`n × f`).
    pub steps: Vec<Vec<QMatrix>>,
}

impl QuantizedExport {
    /// Wraps an f32 export without quantizing (every matrix moves into a
    /// [`QMatrix::F32`]) — the identity embedding, bit-exact both ways.
    pub fn from_export(e: AdpaExport) -> Self {
        QuantizedExport {
            dp_attention: e.dp_attention,
            k_steps: e.k_steps,
            hidden: e.hidden,
            n_classes: e.n_classes,
            pattern_names: e.pattern_names,
            w_dp: e.w_dp.map(QMatrix::F32),
            op_scorers: e.op_scorers.into_iter().map(QLinear::wrap).collect(),
            fuse: QLinear::wrap(e.fuse),
            hop_scorer: e.hop_scorer.map(QLinear::wrap),
            classifier: e.classifier.into_iter().map(QLinear::wrap).collect(),
            x0: QMatrix::F32(e.x0),
            steps: e.steps.into_iter().map(|r| r.into_iter().map(QMatrix::F32).collect()).collect(),
        }
    }

    /// Post-training quantization of an export under `spec`.
    pub fn quantize(e: &AdpaExport, spec: QuantSpec) -> Self {
        let (fp, wp) = (spec.features, spec.weights);
        QuantizedExport {
            dp_attention: e.dp_attention,
            k_steps: e.k_steps,
            hidden: e.hidden,
            n_classes: e.n_classes,
            pattern_names: e.pattern_names.clone(),
            w_dp: e.w_dp.as_ref().map(|m| QMatrix::quantize(m, fp)),
            op_scorers: e.op_scorers.iter().map(|l| QLinear::quantize(l, wp)).collect(),
            fuse: QLinear::quantize(&e.fuse, wp),
            hop_scorer: e.hop_scorer.as_ref().map(|l| QLinear::quantize(l, wp)),
            classifier: e.classifier.iter().map(|l| QLinear::quantize(l, wp)).collect(),
            x0: QMatrix::quantize(&e.x0, fp),
            steps: e
                .steps
                .iter()
                .map(|r| r.iter().map(|m| QMatrix::quantize(m, fp)).collect())
                .collect(),
        }
    }

    /// Expands every matrix back to f32 (the canonical single-rounding
    /// decode). For a [`QuantizedExport::from_export`] wrap this is the
    /// exact inverse.
    pub fn dequantize(&self) -> AdpaExport {
        AdpaExport {
            dp_attention: self.dp_attention,
            k_steps: self.k_steps,
            hidden: self.hidden,
            n_classes: self.n_classes,
            pattern_names: self.pattern_names.clone(),
            w_dp: self.w_dp.as_ref().map(QMatrix::dequantize),
            op_scorers: self.op_scorers.iter().map(QLinear::dequantize).collect(),
            fuse: self.fuse.dequantize(),
            hop_scorer: self.hop_scorer.as_ref().map(QLinear::dequantize),
            classifier: self.classifier.iter().map(QLinear::dequantize).collect(),
            x0: self.x0.dequantize(),
            steps: self.steps.iter().map(|r| r.iter().map(QMatrix::dequantize).collect()).collect(),
        }
    }

    /// Number of nodes the export can answer queries for.
    pub fn n_nodes(&self) -> usize {
        self.x0.rows()
    }

    /// Feature width of the propagated tensors.
    pub fn n_features(&self) -> usize {
        self.x0.cols()
    }

    /// Number of DP operators `k` in the (selected) family.
    pub fn n_patterns(&self) -> usize {
        self.pattern_names.len()
    }

    /// Resident bytes of the per-node feature tensors (`x0`, `steps`,
    /// `W_DP`) — the part of the artifact a row-gather touches, and the
    /// numerator of `bench-serve`'s bytes-per-query.
    pub fn feature_bytes(&self) -> usize {
        self.x0.n_bytes()
            + self.steps.iter().flat_map(|r| r.iter().map(QMatrix::n_bytes)).sum::<usize>()
            + self.w_dp.as_ref().map_or(0, QMatrix::n_bytes)
    }

    /// Resident bytes of the shared weight tensors (scorers, fuse, hop,
    /// classifier, including f32 biases).
    pub fn weight_bytes(&self) -> usize {
        self.op_scorers.iter().map(QLinear::n_bytes).sum::<usize>()
            + self.fuse.n_bytes()
            + self.hop_scorer.as_ref().map_or(0, QLinear::n_bytes)
            + self.classifier.iter().map(QLinear::n_bytes).sum::<usize>()
    }

    /// Total resident payload bytes across every stored matrix.
    pub fn n_bytes(&self) -> usize {
        self.feature_bytes() + self.weight_bytes()
    }

    /// The `(features, weights)` precisions this export is stored at,
    /// read off the representative tensors.
    pub fn spec(&self) -> QuantSpec {
        QuantSpec { features: self.x0.precision(), weights: self.fuse.w.precision() }
    }
}

impl Adpa {
    /// Copies the trained weights and the propagated features out of the
    /// model into a self-contained [`AdpaExport`] (see the module docs).
    pub fn export(&self) -> AdpaExport {
        let bank = &self.bank;
        let cfg = self.config();
        let propagated: &PropagatedFeatures = &self.propagated;
        let steps = (1..=propagated.k_steps())
            .map(|l| (0..propagated.n_patterns()).map(|g| propagated.step(l, g).clone()).collect())
            .collect();
        AdpaExport {
            dp_attention: cfg.dp_attention,
            k_steps: cfg.k_steps,
            hidden: cfg.hidden,
            n_classes: self.classifier.out_dim(),
            pattern_names: self.pattern_names().to_vec(),
            w_dp: self.w_dp.map(|id| bank.value(id).clone()),
            op_scorers: self
                .op_scorers
                .iter()
                .map(|l| LinearExport::from_linear(bank, l))
                .collect(),
            fuse: LinearExport::from_linear(bank, &self.fuse),
            hop_scorer: self.hop_scorer.as_ref().map(|l| LinearExport::from_linear(bank, l)),
            classifier: self
                .classifier
                .layers
                .iter()
                .map(|l| LinearExport::from_linear(bank, l))
                .collect(),
            x0: propagated.x0().clone(),
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpa::AdpaConfig;
    use amud_datasets::{replica, ReplicaScale};
    use amud_train::GraphData;

    fn data(name: &str, seed: u64) -> GraphData {
        let d = replica(name, ReplicaScale::tiny(), seed);
        GraphData::new(
            &d.graph,
            d.features.clone(),
            d.split.train.clone(),
            d.split.val.clone(),
            d.split.test.clone(),
        )
        .unwrap()
    }

    #[test]
    fn export_shapes_are_consistent() {
        let d = data("texas", 0);
        let model = Adpa::new(&d, AdpaConfig::default(), 0).unwrap();
        let e = model.export();
        let k = e.n_patterns();
        assert_eq!(e.n_nodes(), d.n_nodes());
        assert_eq!(e.steps.len(), e.k_steps);
        for per_step in &e.steps {
            assert_eq!(per_step.len(), k);
            for m in per_step {
                assert_eq!(m.shape(), (e.n_nodes(), e.n_features()));
            }
        }
        let w_dp = e.w_dp.as_ref().expect("Original attention exports W_DP");
        assert_eq!(w_dp.shape(), (e.n_nodes(), k + 1));
        assert_eq!(e.fuse.w.shape(), ((k + 1) * e.n_features(), e.hidden));
        let hop = e.hop_scorer.as_ref().expect("hop attention on by default");
        assert_eq!(hop.w.shape(), (e.k_steps * e.hidden, e.k_steps));
        assert_eq!(e.classifier.last().unwrap().w.cols(), e.n_classes);
        assert!(e.n_floats() > 0);
    }

    #[test]
    fn export_is_deterministic() {
        let d = data("texas", 1);
        let model = Adpa::new(&d, AdpaConfig::default(), 1).unwrap();
        assert_eq!(model.export(), model.export());
    }

    #[test]
    fn f32_wrap_round_trips_bit_exactly() {
        let d = data("texas", 2);
        let model = Adpa::new(&d, AdpaConfig::default(), 2).unwrap();
        let e = model.export();
        let wrapped = QuantizedExport::from_export(e.clone());
        assert_eq!(wrapped.spec(), QuantSpec::F32);
        assert_eq!(wrapped.dequantize(), e);
        assert_eq!(wrapped.n_bytes(), e.n_floats() * 4);
    }

    #[test]
    fn quantized_export_shrinks_and_keeps_shapes() {
        let d = data("texas", 3);
        let model = Adpa::new(&d, AdpaConfig::default(), 3).unwrap();
        let e = model.export();
        let f32_bytes = e.n_floats() * 4;
        for (p, min_ratio) in [(Precision::F16, 1.7), (Precision::I8, 3.0)] {
            let q = QuantizedExport::quantize(&e, QuantSpec::uniform(p));
            assert_eq!(q.spec(), QuantSpec::uniform(p));
            assert_eq!(q.n_nodes(), e.n_nodes());
            assert_eq!(q.n_features(), e.n_features());
            let ratio = f32_bytes as f64 / q.n_bytes() as f64;
            assert!(ratio >= min_ratio, "{}: ratio {ratio:.2} < {min_ratio}", p.name());
            let back = q.dequantize();
            assert_eq!(back.k_steps, e.k_steps);
            assert_eq!(back.x0.shape(), e.x0.shape());
        }
        // Mixed precision: features and weights quantize independently.
        let mixed = QuantizedExport::quantize(
            &e,
            QuantSpec { features: Precision::I8, weights: Precision::F16 },
        );
        assert_eq!(mixed.x0.precision(), Precision::I8);
        assert_eq!(mixed.fuse.w.precision(), Precision::F16);
        assert_eq!(mixed.classifier.last().unwrap().w.precision(), Precision::F16);
    }
}
