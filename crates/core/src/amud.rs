//! AMUD: statistical guidance for directed-vs-undirected modeling
//! (Sec. III, Eq. 4–8).
//!
//! # Interpretation of the correlation
//!
//! Eq. 4–7 of the paper define a Pearson correlation `r(G_d, N)` between a
//! pairwise topology variable and node profiles. We realise it, as the
//! authors' implementation does, as the **phi coefficient** between two
//! binary variables over ordered node pairs `(u, v)`, `u ≠ v`, restricted
//! to labelled nodes:
//!
//! * `G(u, v) = 1` iff `(u, v)` is an edge of the DP operator,
//! * `Y(u, v) = 1` iff `y_u = y_v`.
//!
//! For binary variables Pearson's r has the closed form
//!
//! ```text
//! r = (T·n₁₁ − n_G·n_Y) / sqrt(n_G (T − n_G) · n_Y (T − n_Y))
//! ```
//!
//! with `T` the number of ordered labelled pairs, `n_G` the operator's edge
//! count among them, `n_Y` the number of same-label pairs, and `n₁₁` the
//! overlap — all computable in `O(nnz(G))` without materialising `n²`
//! pairs.
//!
//! # Guidance score
//!
//! Eq. 8 aggregates the disparities between the four 2-order DP
//! coefficients of determination. We implement it as the max-normalised
//! root-mean-square pairwise disparity
//!
//! ```text
//! S = (1 / max_i R²_i) · sqrt( mean_{i<j} (R²_i − R²_j)² )
//! ```
//!
//! which is Eq. 8 with the `C(4,2)` pair-count normalisation moved inside
//! the square root (the printed formula is ambiguous on this point; this
//! placement makes `S` scale-free and lands the benchmark datasets on the
//! paper's side of the θ = 0.5 threshold). `S = 0` exactly when all four
//! patterns correlate identically with the labels — which is forced when
//! the graph is symmetric — and `S` grows as orientation separates
//! homophilous from heterophilous 2-hop contexts.

use amud_graph::patterns::DirectedPattern;
use amud_graph::CsrMatrix;
use amud_nn::DenseMatrix;
use rand::Rng;
use rand::SeedableRng;

/// AMUD's modeling recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmudDecision {
    /// `S ≤ θ`: apply the coarse undirected transformation (Paradigm I).
    Undirected,
    /// `S > θ`: retain directed edges (Paradigm II).
    Directed,
}

/// Correlation of one DP operator with the node labels.
#[derive(Debug, Clone)]
pub struct PatternCorrelation {
    pub pattern: DirectedPattern,
    /// Phi coefficient `r(G_d, N)` (Eq. 7).
    pub r: f64,
    /// Coefficient of determination `R² = r²`.
    pub r_squared: f64,
    /// Number of operator edges among labelled pairs (the sample size the
    /// phi coefficient was estimated from).
    pub support: f64,
    /// Profile-combined coefficient of determination: the support-weighted
    /// blend of the label-R² and (when features are supplied) feature-R².
    /// This is the value the guidance score compares across patterns.
    pub r_squared_combined: f64,
    /// The pattern's sampling-noise floor `λ / effective support` — the R²
    /// magnitude a finite sample produces under label-independent wiring
    /// (`support · R²` is ~χ²(1) under the null, and graph-generation
    /// variance is of the same order). The guidance score's normaliser
    /// absorbs it so pure noise can never trip the θ threshold.
    pub noise_floor: f64,
}

/// The full AMUD report for a digraph.
#[derive(Debug, Clone)]
pub struct AmudReport {
    pub correlations: Vec<PatternCorrelation>,
    /// Guidance score `S` (Eq. 8).
    pub score: f64,
    pub decision: AmudDecision,
    /// Threshold used (`θ = 0.5` per the paper).
    pub theta: f64,
}

/// The paper's decision threshold.
pub const THETA: f64 = 0.5;

/// Debiasing strictness: a pattern's R² must exceed `LAMBDA / support`
/// before any of it counts toward the guidance score. Under the null
/// hypothesis `support · R²` is ~χ²(1) *and* the graph-generation process
/// itself contributes comparable variance, so the χ² mean (λ = 1) is too
/// permissive — λ = 2 sits at roughly the one-sided 84th percentile,
/// zeroing pure-noise patterns while preserving genuinely oriented ones.
pub const LAMBDA: f64 = 2.0;

/// Phi coefficient between a DP operator's edges and label agreement over
/// ordered pairs of labelled nodes.
///
/// `labelled` restricts the computation to a subset of nodes (the paper
/// computes DP selection "under the assumption of known labels for part of
/// nodes", Sec. IV-B); pass `None` to use every node.
pub fn pattern_label_correlation(
    operator: &CsrMatrix,
    labels: &[usize],
    n_classes: usize,
    labelled: Option<&[usize]>,
) -> f64 {
    pattern_label_correlation_with_support(operator, labels, n_classes, labelled).0
}

/// Like [`pattern_label_correlation`] but also returns the support (the
/// number of operator edges among labelled pairs), which calibrates the
/// sampling-noise floor of the correlation estimate.
pub fn pattern_label_correlation_with_support(
    operator: &CsrMatrix,
    labels: &[usize],
    n_classes: usize,
    labelled: Option<&[usize]>,
) -> (f64, f64) {
    let n = labels.len();
    assert_eq!(operator.n_rows(), n, "operator size must match labels");
    let in_set: Option<Vec<bool>> = labelled.map(|set| {
        let mut mask = vec![false; n];
        for &v in set {
            mask[v] = true;
        }
        mask
    });
    let is_in = |v: usize| in_set.as_ref().is_none_or(|m| m[v]);

    let n_labelled = match &in_set {
        Some(m) => m.iter().filter(|&&b| b).count(),
        None => n,
    };
    if n_labelled < 2 {
        return (0.0, 0.0);
    }
    let total_pairs = (n_labelled * (n_labelled - 1)) as f64;

    // Class counts among labelled nodes → same-label pair count.
    let mut class_counts = vec![0usize; n_classes];
    for (v, &y) in labels.iter().enumerate() {
        if is_in(v) {
            class_counts[y] += 1;
        }
    }
    let same_label_pairs: f64 =
        class_counts.iter().map(|&c| (c * (c.saturating_sub(1))) as f64).sum();

    // Operator edges among labelled pairs, and their same-label overlap.
    let mut n_g = 0f64;
    let mut n_11 = 0f64;
    for (u, v, _) in operator.iter() {
        if u == v || !is_in(u) || !is_in(v) {
            continue;
        }
        n_g += 1.0;
        if labels[u] == labels[v] {
            n_11 += 1.0;
        }
    }

    let denom_sq = n_g * (total_pairs - n_g) * same_label_pairs * (total_pairs - same_label_pairs);
    if denom_sq <= 0.0 {
        return (0.0, n_g);
    }
    ((total_pairs * n_11 - n_g * same_label_pairs) / denom_sq.sqrt(), n_g)
}

/// Phi-style correlation between a DP operator's edges and *feature*
/// similarity over node pairs (the paper's `N` covers "features or
/// labels", Eq. 4). Returns `(r, support)` where support is the operator's
/// off-diagonal edge count.
///
/// For a binary pair variable `G` with density `p` and a continuous pair
/// variable `S` (cosine similarity of L2-normalised feature rows), Pearson
/// reduces to `r = sqrt(p/(1−p)) · (E[S|edge] − E[S]) / σ_S`. `E[S|edge]`
/// is computed exactly over the operator's edges; the unconditional
/// moments are estimated from `n_samples` seeded random pairs, so the
/// result is deterministic.
pub fn pattern_feature_correlation_with_support(
    operator: &CsrMatrix,
    features: &DenseMatrix,
    n_samples: usize,
    seed: u64,
) -> (f64, f64) {
    let n = features.rows();
    assert_eq!(operator.n_rows(), n, "operator size must match features");
    if n < 2 {
        return (0.0, 0.0);
    }
    let x = features.l2_normalize_rows();
    let dot = |u: usize, v: usize| -> f64 {
        x.row(u).iter().zip(x.row(v)).map(|(&a, &b)| (a as f64) * (b as f64)).sum()
    };
    // Exact conditional mean over operator edges.
    let mut n_g = 0f64;
    let mut mean_edge = 0f64;
    for (u, v, _) in operator.iter() {
        if u == v {
            continue;
        }
        n_g += 1.0;
        mean_edge += dot(u, v);
    }
    if n_g == 0.0 {
        return (0.0, 0.0);
    }
    mean_edge /= n_g;
    // Sampled unconditional moments.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sum = 0f64;
    let mut sum_sq = 0f64;
    let mut taken = 0usize;
    while taken < n_samples {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let s = dot(u, v);
        sum += s;
        sum_sq += s * s;
        taken += 1;
    }
    let mean_all = sum / taken as f64;
    let var_all = (sum_sq / taken as f64 - mean_all * mean_all).max(1e-12);
    let total_pairs = (n * (n - 1)) as f64;
    let p = (n_g / total_pairs).clamp(1e-12, 1.0 - 1e-12);
    let r = (p / (1.0 - p)).sqrt() * (mean_edge - mean_all) / var_all.sqrt();
    (r.clamp(-1.0, 1.0), n_g)
}

/// Computes the AMUD report for a directed adjacency matrix using the four
/// 2-order DP operators (the paper's efficiency choice, Sec. III-C).
pub fn amud_score(adj: &CsrMatrix, labels: &[usize], n_classes: usize) -> AmudReport {
    amud_score_with(adj, labels, n_classes, None, THETA)
}

/// Full-control variant: label subset and threshold.
pub fn amud_score_with(
    adj: &CsrMatrix,
    labels: &[usize],
    n_classes: usize,
    labelled: Option<&[usize]>,
    theta: f64,
) -> AmudReport {
    amud_score_profiles(adj, labels, n_classes, labelled, None, theta)
}

/// The complete Eq. 4–8 pipeline over both kinds of node profiles: labels
/// (restricted to the `labelled` subset when given) and, when provided,
/// node features (always fully observed). Each pattern's coefficient of
/// determination is the support-weighted combination of the two debiased
/// R² estimates, which keeps the guidance stable even when few labels are
/// known — the situation the semi-supervised paradigm actually faces.
pub fn amud_score_profiles(
    adj: &CsrMatrix,
    labels: &[usize],
    n_classes: usize,
    labelled: Option<&[usize]>,
    features: Option<&DenseMatrix>,
    theta: f64,
) -> AmudReport {
    amud_score_patterns(
        adj,
        labels,
        n_classes,
        labelled,
        features,
        DirectedPattern::two_order(),
        theta,
    )
}

/// Higher-order AMUD — the extension the paper sketches in Sec. III-C
/// ("R² can be extended by considering higher-order relationships G_d"):
/// scores the full order-`order` pattern family (`2^order` operators)
/// instead of the four 2-order ones. Costs grow exponentially in `order`;
/// `order = 2` recovers [`amud_score_profiles`] exactly.
pub fn amud_score_order(
    adj: &CsrMatrix,
    labels: &[usize],
    n_classes: usize,
    labelled: Option<&[usize]>,
    features: Option<&DenseMatrix>,
    order: usize,
    theta: f64,
) -> AmudReport {
    amud_score_patterns(
        adj,
        labels,
        n_classes,
        labelled,
        features,
        DirectedPattern::enumerate_order(order),
        theta,
    )
}

/// Shared Eq. 4–8 core over an arbitrary pattern family.
fn amud_score_patterns(
    adj: &CsrMatrix,
    labels: &[usize],
    n_classes: usize,
    labelled: Option<&[usize]>,
    features: Option<&DenseMatrix>,
    patterns: Vec<DirectedPattern>,
    theta: f64,
) -> AmudReport {
    debug_assert_eq!(adj.n_rows(), adj.n_cols(), "AMUD runs on a square adjacency");
    let correlations: Vec<PatternCorrelation> = patterns
        .into_iter()
        .map(|p| {
            let op = match p.materialize(adj) {
                Ok(op) => op,
                // materialize only fails on a bool_matmul dimension
                // mismatch, impossible for a square adjacency.
                Err(_) => unreachable!("square adjacency materialises every pattern"),
            };
            let (r, support) =
                pattern_label_correlation_with_support(&op, labels, n_classes, labelled);
            let r_squared = r * r;
            // Support-weighted blend of the label and feature profiles:
            // labels see only labelled pairs, features all pairs, so each
            // profile's evidence is weighted by its sample size.
            let (r_squared_combined, eff_support) = match features {
                None => (r_squared, support),
                Some(x) => {
                    let (rf, sup_f) =
                        pattern_feature_correlation_with_support(&op, x, 200_000, 0x5EED);
                    let (w_l, w_f) = (support.max(0.0), sup_f.max(0.0));
                    if w_l + w_f > 0.0 {
                        ((w_l * r_squared + w_f * rf * rf) / (w_l + w_f), w_l + w_f)
                    } else {
                        (0.0, 0.0)
                    }
                }
            };
            let noise_floor = if eff_support > 0.0 { LAMBDA / eff_support } else { f64::MAX };
            PatternCorrelation {
                pattern: p,
                r,
                r_squared,
                support,
                r_squared_combined,
                noise_floor,
            }
        })
        .collect();
    let values: Vec<f64> = correlations.iter().map(|c| c.r_squared_combined).collect();
    let floors: Vec<f64> = correlations.iter().map(|c| c.noise_floor).collect();
    let score = guidance_score_regularized(&values, &floors);
    let decision = if score > theta { AmudDecision::Directed } else { AmudDecision::Undirected };
    AmudReport { correlations, score, decision, theta }
}

/// Noise-regularised Eq. 8: RMS pairwise disparity of the (combined) R²
/// values, normalised by the largest value *plus* the mean noise floor.
/// Differences are floor-invariant (a common bias cancels), so the floor
/// only has to keep the normaliser honest: when every pattern sits at the
/// noise level, `S ≤ RMS(noise) / (λ·floor) < θ`.
pub fn guidance_score_regularized(r_squared: &[f64], floors: &[f64]) -> f64 {
    assert_eq!(r_squared.len(), floors.len(), "one floor per pattern");
    assert!(r_squared.len() >= 2, "guidance score needs at least two patterns");
    let max = r_squared.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
    let mean_floor = floors.iter().sum::<f64>() / floors.len() as f64;
    let denom = max + mean_floor;
    if denom <= 1e-15 {
        return 0.0;
    }
    let mut sum_sq = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..r_squared.len() {
        for j in (i + 1)..r_squared.len() {
            sum_sq += (r_squared[i] - r_squared[j]).powi(2);
            pairs += 1;
        }
    }
    (sum_sq / pairs as f64).sqrt() / denom
}

/// Eq. 8 without noise regularisation: max-normalised RMS pairwise
/// disparity of the R² values (the floor-free limit of
/// [`guidance_score_regularized`]).
pub fn guidance_score(r_squared: &[f64]) -> f64 {
    assert!(r_squared.len() >= 2, "guidance score needs at least two patterns");
    let max = r_squared.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max <= 1e-12 {
        return 0.0;
    }
    let mut sum_sq = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..r_squared.len() {
        for j in (i + 1)..r_squared.len() {
            sum_sq += (r_squared[i] - r_squared[j]).powi(2);
            pairs += 1;
        }
    }
    (sum_sq / pairs as f64).sqrt() / max
}

/// Ranks DP operators of a [`amud_graph::PatternSet`] by their label
/// correlation, descending — the DP-selection rule of Sec. IV-B ("select
/// G_d with a higher value of r").
pub fn rank_patterns(
    operators: &[CsrMatrix],
    labels: &[usize],
    n_classes: usize,
    labelled: Option<&[usize]>,
) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = operators
        .iter()
        .enumerate()
        .map(|(i, op)| (i, pattern_label_correlation(op, labels, n_classes, labelled)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amud::amud_score_order;
    use amud_datasets::{replica, ReplicaScale};
    use amud_graph::DiGraph;

    /// A digraph where orientation fully determines classes: class c points
    /// at class (c+1) mod C. `A·Aᵀ` is then purely homophilous while `A·A`
    /// is purely heterophilous — maximal disparity.
    fn oriented_graph() -> DiGraph {
        use amud_datasets::{DsbmConfig, InterClassStructure};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        DsbmConfig::new(300, 2400, 3)
            .with_homophily(0.05)
            .with_direction_informativeness(1.0)
            .with_structure(InterClassStructure::Cyclic)
            .generate(&mut rng)
    }

    /// Same statistics but orientation is a coin flip.
    fn unoriented_graph() -> DiGraph {
        use amud_datasets::{DsbmConfig, InterClassStructure};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        DsbmConfig::new(300, 2400, 3)
            .with_homophily(0.05)
            .with_direction_informativeness(0.0)
            .with_structure(InterClassStructure::Uniform)
            .generate(&mut rng)
    }

    #[test]
    fn phi_is_positive_for_homophilous_operator() {
        let g = oriented_graph();
        // A·Aᵀ on a fully oriented cyclic digraph connects same-class nodes.
        let aat = DirectedPattern::two_order()[1].clone(); // A·Aᵀ
        assert_eq!(aat.name(), "A·Aᵀ");
        let op = aat.materialize(g.adjacency()).unwrap();
        let r = pattern_label_correlation(&op, g.labels().unwrap(), 3, None);
        assert!(r > 0.3, "co-citation phi should be strongly positive, got {r}");
    }

    #[test]
    fn phi_is_negative_for_heterophilous_operator() {
        let g = oriented_graph();
        let aa = DirectedPattern::two_order()[0].clone(); // A·A
        assert_eq!(aa.name(), "A·A");
        let op = aa.materialize(g.adjacency()).unwrap();
        let r = pattern_label_correlation(&op, g.labels().unwrap(), 3, None);
        assert!(r < 0.0, "two-hop forward phi should be negative, got {r}");
    }

    #[test]
    fn oriented_graph_scores_directed() {
        let g = oriented_graph();
        let report = amud_score(g.adjacency(), g.labels().unwrap(), 3);
        assert_eq!(report.decision, AmudDecision::Directed, "S = {}", report.score);
        assert!(report.score > 0.5);
    }

    #[test]
    fn unoriented_graph_scores_undirected() {
        let g = unoriented_graph();
        let report = amud_score(g.adjacency(), g.labels().unwrap(), 3);
        assert_eq!(report.decision, AmudDecision::Undirected, "S = {}", report.score);
    }

    #[test]
    fn symmetric_graph_scores_zero() {
        let g = oriented_graph().to_undirected();
        let report = amud_score(g.adjacency(), g.labels().unwrap(), 3);
        // On a symmetric adjacency all four 2-order operators coincide,
        // so every pairwise disparity vanishes.
        assert!(report.score < 1e-9, "S = {}", report.score);
        assert_eq!(report.decision, AmudDecision::Undirected);
    }

    #[test]
    fn score_invariant_to_node_relabelling() {
        let g = oriented_graph();
        let labels = g.labels().unwrap().to_vec();
        let n = g.n_nodes();
        // Apply permutation v -> (v * 7 + 3) mod n (7 coprime with 300).
        let perm: Vec<usize> = (0..n).map(|v| (v * 7 + 3) % n).collect();
        let edges: Vec<(usize, usize)> = g.edges().map(|(u, v)| (perm[u], perm[v])).collect();
        let mut new_labels = vec![0usize; n];
        for v in 0..n {
            new_labels[perm[v]] = labels[v];
        }
        let g2 = DiGraph::from_edges(n, edges).unwrap().with_labels(new_labels, 3).unwrap();
        let s1 = amud_score(g.adjacency(), g.labels().unwrap(), 3).score;
        let s2 = amud_score(g2.adjacency(), g2.labels().unwrap(), 3).score;
        assert!((s1 - s2).abs() < 1e-9, "{s1} vs {s2}");
    }

    #[test]
    fn guidance_score_edge_cases() {
        assert_eq!(guidance_score(&[0.0, 0.0, 0.0, 0.0]), 0.0);
        assert_eq!(guidance_score(&[0.3, 0.3, 0.3, 0.3]), 0.0);
        let high = guidance_score(&[0.5, 0.5, 0.01, 0.01]);
        assert!(high > 0.5, "disparate R² should exceed θ, got {high}");
    }

    #[test]
    fn labelled_subset_changes_support() {
        let g = oriented_graph();
        let labels = g.labels().unwrap();
        let subset: Vec<usize> = (0..150).collect();
        let op = DirectedPattern::two_order()[1].materialize(g.adjacency()).unwrap();
        let r_full = pattern_label_correlation(&op, labels, 3, None);
        let r_half = pattern_label_correlation(&op, labels, 3, Some(&subset));
        // Same sign, both meaningful.
        assert!(r_full * r_half > 0.0, "full {r_full}, half {r_half}");
    }

    #[test]
    fn rank_patterns_puts_homophilous_first_on_oriented_graph() {
        let g = oriented_graph();
        let pats = DirectedPattern::two_order();
        let ops: Vec<CsrMatrix> =
            pats.iter().map(|p| p.materialize(g.adjacency()).unwrap()).collect();
        let ranked = rank_patterns(&ops, g.labels().unwrap(), 3, None);
        // A·Aᵀ (index 1) and Aᵀ·A (index 2) carry homophily here.
        assert!(ranked[0].0 == 1 || ranked[0].0 == 2, "ranked {ranked:?}");
        assert!(ranked[0].1 > ranked[3].1);
    }

    #[test]
    fn benchmark_replicas_match_paper_regimes() {
        for spec_name in ["cora_ml", "citeseer", "texas", "chameleon", "actor"] {
            let d = replica(spec_name, ReplicaScale::default(), 3);
            let report = amud_score(d.graph.adjacency(), d.labels(), d.n_classes());
            let expected = match d.spec.regime {
                amud_datasets::registry::AmudRegime::Directed => AmudDecision::Directed,
                amud_datasets::registry::AmudRegime::Undirected => AmudDecision::Undirected,
            };
            assert_eq!(
                report.decision, expected,
                "{spec_name}: S = {:.3}, expected {:?}",
                report.score, d.spec.regime
            );
        }
    }

    #[test]
    fn higher_order_amud_agrees_on_clear_cases() {
        let g = oriented_graph();
        let labels = g.labels().unwrap();
        let order2 = amud_score(g.adjacency(), labels, 3);
        let order3 = amud_score_order(g.adjacency(), labels, 3, None, None, 3, THETA);
        assert_eq!(order3.correlations.len(), 8, "order 3 has 2³ patterns");
        assert_eq!(order2.decision, order3.decision);
        let u = g.to_undirected();
        let sym3 = amud_score_order(u.adjacency(), u.labels().unwrap(), 3, None, None, 3, THETA);
        assert!(sym3.score < 1e-9, "symmetric graphs collapse at any order");
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        // No edges at all.
        let g = DiGraph::from_edges(5, Vec::<(usize, usize)>::new())
            .unwrap()
            .with_labels(vec![0, 1, 0, 1, 0], 2)
            .unwrap();
        let report = amud_score(g.adjacency(), g.labels().unwrap(), 2);
        assert_eq!(report.score, 0.0);
        assert_eq!(report.decision, AmudDecision::Undirected);
    }
}
