//! Content-addressed precompute store for ADPA's graph-level artifacts
//! (DESIGN.md §10).
//!
//! ADPA's complexity claim (Sec. IV-D) rests on DP operator construction
//! and K-step propagation (Eq. 9) being **one-time preprocessing** — yet
//! the experiment harness constructs a model per seed (×10 in
//! `repeat_runs`), per grid hyperpoint (which sweeps `k_steps` and
//! `conv_r` against a *fixed* graph), and per benchmark table bin. This
//! module makes the one-time claim true end-to-end by caching, keyed on
//! content fingerprints of the inputs:
//!
//! * **Raw operator sets** — the boolean pattern matrices for the full
//!   order-≤N family, keyed by `(graph fingerprint, max_order)`. Built via
//!   [`amud_graph::DirectedPattern::materialize_all`], so `A·A`, `A·Aᵀ`,
//!   `Aᵀ·A`, `Aᵀ·Aᵀ` (and every longer prefix) are each computed once per
//!   graph; every `conv_r` a sweep visits re-normalises these in `O(nnz)`
//!   instead of re-running sparse products.
//! * **Normalised operator sets** — `Arc<PatternSet>` keyed additionally
//!   by the `conv_r` bit pattern.
//! * **Propagated features** — [`PropagatedFeatures`] keyed by the full
//!   [`OpSetKey`] (graph, order, `conv_r`, and the exact post-selection
//!   operator list) plus the feature-matrix fingerprint. A cached `K = 5`
//!   tensor serves any `k ≤ 5` via `Arc` prefix views; a request beyond
//!   the cached depth extends incrementally from the last cached step.
//!
//! ## Determinism
//!
//! Every cached artifact is the output of a deterministic function of
//! content that is fully encoded in its key, and cache misses run exactly
//! the code the uncached path runs. Prefix views share the very buffers a
//! direct compute would have produced, and extension resumes the Eq. 9
//! recurrence whose step `l` depends only on step `l-1` — so cached,
//! extended, and uncached results are bit-identical, and `AMUD_CACHE=off`
//! (or [`amud_cache::with_cache`]) changes wall-clock only. The
//! equivalence proptests in `tests/precompute_equivalence.rs` pin this at
//! `AMUD_THREADS ∈ {1, 4}`.

use crate::propagation::PropagatedFeatures;
use amud_cache::{fingerprint_csr, fingerprint_dense, fingerprint_qdense, Fnv1a, SharedStore};
use amud_graph::{CsrMatrix, DirectedPattern, PatternSet};
use amud_nn::DenseMatrix;
use amud_quant::{Precision, QMatrix};
use amud_train::TrainError;
use std::sync::{Arc, OnceLock};

/// Raw-set entries a table run can pin: one per distinct `(graph, order)`.
const RAW_CAP: usize = 8;
/// Normalised sets: `RAW_CAP` graphs × a few `conv_r` values.
const NORM_CAP: usize = 24;
/// Propagated tensors: the dominant memory cost, still a handful per
/// graph (one per distinct post-selection operator list × feature matrix).
const FEAT_CAP: usize = 32;
/// Quantized propagated tensors: each entry is 2–4× smaller than its f32
/// source, so the same RAM budget holds more of them — this is the
/// "cache reach" the quantized layer buys.
const QFEAT_CAP: usize = 64;

/// Identity of a normalised, selection-resolved DP operator set — the
/// cache key propagated features are stored under.
///
/// The `selection` field records the exact operator indices (into the full
/// enumerated order-≤N family) that survived duplicate-collapse and
/// DP-selection, *in order*: two models whose selections differ — or even
/// merely reorder the same operators — propagate different tensors and
/// must not share a cache line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpSetKey {
    graph_fp: u64,
    max_order: usize,
    conv_r_bits: u32,
    selection: Vec<usize>,
}

impl OpSetKey {
    /// Narrows the key after a `PatternSet::select(keep)`: indices in
    /// `keep` address the *current* selection, so composition maps them
    /// back through it onto the full-family indices.
    pub fn with_selection(&self, keep: &[usize]) -> Self {
        Self {
            graph_fp: self.graph_fp,
            max_order: self.max_order,
            conv_r_bits: self.conv_r_bits,
            selection: keep.iter().map(|&i| self.selection[i]).collect(),
        }
    }
}

/// Full order-≤N family, materialised once per graph and shared across
/// every `conv_r` (normalisation is per-entry scaling, not sparse
/// products).
struct RawOps {
    patterns: Vec<DirectedPattern>,
    operators: Vec<CsrMatrix>,
}

fn raw_store() -> &'static SharedStore<(u64, usize), Arc<RawOps>> {
    static STORE: OnceLock<SharedStore<(u64, usize), Arc<RawOps>>> = OnceLock::new();
    STORE.get_or_init(|| SharedStore::new(RAW_CAP))
}

fn norm_store() -> &'static SharedStore<(u64, usize, u32), Arc<PatternSet>> {
    static STORE: OnceLock<SharedStore<(u64, usize, u32), Arc<PatternSet>>> = OnceLock::new();
    STORE.get_or_init(|| SharedStore::new(NORM_CAP))
}

fn feat_store() -> &'static SharedStore<(OpSetKey, u64), PropagatedFeatures> {
    static STORE: OnceLock<SharedStore<(OpSetKey, u64), PropagatedFeatures>> = OnceLock::new();
    STORE.get_or_init(|| SharedStore::new(FEAT_CAP))
}

/// Quantized-tensor store. The key extends the f32 feature key with the
/// exact depth and the precision code: quantized entries are whole
/// artifacts (no prefix views or in-place extension — requantizing from
/// the f32 layer is cheaper than managing partial quantized state), and
/// the precision code keeps a quantized tensor from ever colliding with
/// its f32 source or a sibling precision.
type QFeatKey = (OpSetKey, u64, usize, u32);

fn qfeat_store() -> &'static SharedStore<QFeatKey, Arc<QuantizedFeatures>> {
    static STORE: OnceLock<SharedStore<QFeatKey, Arc<QuantizedFeatures>>> = OnceLock::new();
    STORE.get_or_init(|| SharedStore::new(QFEAT_CAP))
}

/// A [`PropagatedFeatures`] tensor quantized to one [`Precision`]:
/// `X^(0)` plus every `(step, operator)` slice, each with its own
/// per-tensor scale. The compact artifact `amud-serve` snapshots embed
/// and `bench-quant` measures.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedFeatures {
    precision: Precision,
    x0: QMatrix,
    /// `steps[l-1][g]` = quantized propagation step `l` under operator `g`.
    steps: Vec<Vec<QMatrix>>,
}

impl QuantizedFeatures {
    /// Quantizes every tensor of `pf` (including `X^(0)`) to `precision`.
    pub fn from_propagated(pf: &PropagatedFeatures, precision: Precision) -> Self {
        let x0 = QMatrix::quantize(pf.x0(), precision);
        let steps = (1..=pf.k_steps())
            .map(|l| {
                (0..pf.n_patterns()).map(|g| QMatrix::quantize(pf.step(l, g), precision)).collect()
            })
            .collect();
        QuantizedFeatures { precision, x0, steps }
    }

    /// The precision every tensor in this artifact is stored at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Propagation depth `K`.
    pub fn k_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of DP operators `G`.
    pub fn n_patterns(&self) -> usize {
        self.steps.first().map_or(0, Vec::len)
    }

    /// The quantized input features `X^(0)`.
    pub fn x0(&self) -> &QMatrix {
        &self.x0
    }

    /// Quantized step `l ∈ [1, K]` under operator `g` (same indexing as
    /// [`PropagatedFeatures::step`]).
    pub fn step(&self, l: usize, g: usize) -> &QMatrix {
        &self.steps[l - 1][g]
    }

    /// Total resident payload bytes across every stored tensor.
    pub fn n_bytes(&self) -> usize {
        self.x0.n_bytes()
            + self.steps.iter().flat_map(|row| row.iter().map(QMatrix::n_bytes)).sum::<usize>()
    }

    /// Content fingerprint of the whole artifact: precision, shape, and
    /// every tensor's [`fingerprint_qdense`] — the identity `bench-quant`
    /// compares across `AMUD_THREADS` to pin quantization determinism.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(self.precision.code()));
        h.write_u64(self.k_steps() as u64);
        h.write_u64(self.n_patterns() as u64);
        h.write_u64(fingerprint_qdense(&self.x0));
        for row in &self.steps {
            for q in row {
                h.write_u64(fingerprint_qdense(q));
            }
        }
        h.finish()
    }
}

/// The normalised DP operator set for `(adj, max_order, conv_r)`, served
/// from the store when an identical request was seen before, plus the
/// [`OpSetKey`] addressing it (initially selecting the full family).
///
/// On a miss, the raw boolean family is looked up — or materialised with
/// shared-prefix memoisation — and re-normalised for this `conv_r`. With
/// the cache disabled this is exactly [`PatternSet::build_normalized`].
pub fn operators(
    adj: &CsrMatrix,
    max_order: usize,
    conv_r: f32,
) -> Result<(Arc<PatternSet>, OpSetKey), TrainError> {
    let graph_fp = fingerprint_csr(adj);
    let conv_r_bits = conv_r.to_bits();
    let family = DirectedPattern::enumerate_up_to(max_order);
    let key = OpSetKey { graph_fp, max_order, conv_r_bits, selection: (0..family.len()).collect() };

    if !amud_cache::enabled() {
        let set = PatternSet::build_normalized(adj, family, conv_r)?;
        return Ok((Arc::new(set), key));
    }

    let norm_key = (graph_fp, max_order, conv_r_bits);
    if let Some(set) = norm_store().get(&norm_key) {
        amud_cache::record_op_hit();
        return Ok((set, key));
    }
    amud_cache::record_op_miss();
    let raw_key = (graph_fp, max_order);
    let raw = match raw_store().get(&raw_key) {
        Some(raw) => raw,
        None => {
            let operators = DirectedPattern::materialize_all(adj, &family)?;
            let raw = Arc::new(RawOps { patterns: family, operators });
            raw_store().insert(raw_key, Arc::clone(&raw));
            raw
        }
    };
    let set =
        Arc::new(PatternSet::from_parts(raw.patterns.clone(), raw.operators.clone(), conv_r)?);
    norm_store().insert(norm_key, Arc::clone(&set));
    Ok((set, key))
}

/// K-step propagated features for `(key, x, k_steps)`: a cached tensor of
/// depth ≥ `k_steps` is served as a prefix view (zero spmm calls); a
/// shallower one is extended incrementally from its last step; a miss
/// computes from `X^(0)` and populates the store. With the cache disabled
/// this is exactly [`PropagatedFeatures::compute`]. `patterns` must be the
/// operator set `key` describes (in `Adpa::new` both come from
/// [`operators`] plus the same recorded selections).
pub fn propagated(
    key: &OpSetKey,
    patterns: &PatternSet,
    x: &DenseMatrix,
    k_steps: usize,
) -> Result<PropagatedFeatures, TrainError> {
    if !amud_cache::enabled() {
        return PropagatedFeatures::compute(patterns, x, k_steps);
    }
    // KEY-EXEMPT(patterns): `key` fully determines the operator set — both
    // come from the same `operators()` call (see the contract above), so
    // keying on `patterns` again would be redundant.
    // KEY-EXEMPT(k_steps): depth is not identity — a cached tensor of depth
    // ≥ k serves any k as a prefix view, and a shallower entry is extended
    // in place, so one entry per (key, x) covers every depth.
    let feat_key = (key.clone(), fingerprint_dense(x));
    match feat_store().get(&feat_key) {
        Some(cached) if cached.k_steps() >= k_steps => {
            amud_cache::record_feat_hit();
            cached.prefix(k_steps)
        }
        Some(mut shallow) => {
            amud_cache::record_feat_extend();
            shallow.extend_to(patterns, k_steps)?;
            feat_store().insert(feat_key, shallow.clone());
            Ok(shallow)
        }
        None => {
            amud_cache::record_feat_miss();
            let computed = PropagatedFeatures::compute(patterns, x, k_steps)?;
            feat_store().insert(feat_key, computed.clone());
            Ok(computed)
        }
    }
}

/// Quantized K-step propagated features for
/// `(key, x, k_steps, precision)`: served from the quantized store when
/// an identical request (same operator-set identity, same feature
/// content, same depth, same precision) was seen before; a miss runs the
/// f32 [`propagated`] pipeline (which has its own cache layers and
/// counters) and quantizes its output. With the cache disabled this is
/// exactly compute-then-quantize.
///
/// The quantized layer records no counters of its own: a miss surfaces
/// through the underlying f32 layer's hit/miss/extend counters, and a
/// quantized hit touches no store the counters watch.
pub fn propagated_quantized(
    key: &OpSetKey,
    patterns: &PatternSet,
    x: &DenseMatrix,
    k_steps: usize,
    precision: Precision,
) -> Result<Arc<QuantizedFeatures>, TrainError> {
    if !amud_cache::enabled() {
        let pf = PropagatedFeatures::compute(patterns, x, k_steps)?;
        return Ok(Arc::new(QuantizedFeatures::from_propagated(&pf, precision)));
    }
    // KEY-EXEMPT(patterns): `key` fully determines the operator set — both
    // come from the same `operators()` call (see the `propagated`
    // contract), so keying on `patterns` again would be redundant.
    let qfeat_key = (key.clone(), fingerprint_dense(x), k_steps, precision.code());
    if let Some(cached) = qfeat_store().get(&qfeat_key) {
        return Ok(cached);
    }
    let pf = propagated(key, patterns, x, k_steps)?;
    let quantized = Arc::new(QuantizedFeatures::from_propagated(&pf, precision));
    qfeat_store().insert(qfeat_key, Arc::clone(&quantized));
    Ok(quantized)
}

/// Drops every cached artifact — the cold-start reset used by
/// `bench-precompute` (and tests) to measure first-touch cost. Counters
/// are *not* reset; readers attribute work via snapshot deltas.
pub fn clear() {
    raw_store().clear();
    norm_store().clear();
    feat_store().clear();
    qfeat_store().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_graph::spmm_calls;

    fn toy_adj() -> CsrMatrix {
        CsrMatrix::from_edges(
            6,
            6,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3), (2, 5)],
        )
        .unwrap()
    }

    fn toy_x() -> DenseMatrix {
        DenseMatrix::from_fn(6, 3, |r, c| ((r + 1) * (c + 2)) as f32 * 0.21)
    }

    #[test]
    fn operator_requests_share_one_build() {
        amud_cache::with_cache(true, || {
            clear();
            let adj = toy_adj();
            let before = amud_cache::stats();
            let (a, key_a) = operators(&adj, 2, 0.0).unwrap();
            let (b, key_b) = operators(&adj, 2, 0.0).unwrap();
            assert_eq!(key_a, key_b);
            assert!(Arc::ptr_eq(&a, &b), "second request must reuse the stored Arc");
            let d = amud_cache::stats().delta(&before);
            assert_eq!((d.op_misses, d.op_hits), (1, 1));
        });
    }

    #[test]
    fn conv_r_variants_share_raw_products() {
        amud_cache::with_cache(true, || {
            clear();
            let adj = toy_adj();
            let (a, _) = operators(&adj, 2, 0.0).unwrap();
            let (b, _) = operators(&adj, 2, 0.5).unwrap();
            // Distinct normalisations over the same boolean operators.
            assert_eq!(a.operators(), b.operators());
            assert_ne!(a.propagators(), b.propagators());
            // And both bitwise-match an uncached direct build.
            let direct =
                PatternSet::build_normalized(&adj, DirectedPattern::enumerate_up_to(2), 0.5)
                    .unwrap();
            assert_eq!(b.propagators(), direct.propagators());
        });
    }

    #[test]
    fn propagated_hits_cost_zero_spmm() {
        amud_cache::with_cache(true, || {
            clear();
            let adj = toy_adj();
            let x = toy_x();
            let (set, key) = operators(&adj, 1, 0.0).unwrap();
            let first = propagated(&key, &set, &x, 3).unwrap();
            let spmm_before = spmm_calls();
            let again = propagated(&key, &set, &x, 3).unwrap();
            let shallower = propagated(&key, &set, &x, 2).unwrap();
            assert_eq!(spmm_calls(), spmm_before, "prefix hits must not run spmm");
            assert_eq!(again.step(3, 0), first.step(3, 0));
            assert_eq!(shallower.k_steps(), 2);
            assert_eq!(shallower.step(2, 1), first.step(2, 1));
        });
    }

    #[test]
    fn extension_only_pays_missing_steps() {
        amud_cache::with_cache(true, || {
            clear();
            let adj = toy_adj();
            let x = toy_x();
            let (set, key) = operators(&adj, 1, 0.0).unwrap();
            let before = amud_cache::stats();
            let _ = propagated(&key, &set, &x, 2).unwrap();
            let spmm_mid = spmm_calls();
            let grown = propagated(&key, &set, &x, 5).unwrap();
            // 2 operators × 3 missing steps.
            assert_eq!(spmm_calls() - spmm_mid, 6);
            let d = amud_cache::stats().delta(&before);
            assert_eq!((d.feat_misses, d.feat_extends, d.feat_hits), (1, 1, 0));
            // Extended tensor is bit-identical to a cold direct compute.
            let direct = amud_cache::with_cache(false, || propagated(&key, &set, &x, 5).unwrap());
            for l in 1..=5 {
                for g in 0..set.len() {
                    assert_eq!(grown.step(l, g).as_slice(), direct.step(l, g).as_slice());
                }
            }
        });
    }

    #[test]
    fn distinct_selections_do_not_collide() {
        amud_cache::with_cache(true, || {
            clear();
            let adj = toy_adj();
            let x = toy_x();
            let (set, key) = operators(&adj, 1, 0.0).unwrap();
            let sub = set.select(&[1]);
            let sub_key = key.with_selection(&[1]);
            assert_ne!(key, sub_key);
            let full = propagated(&key, &set, &x, 2).unwrap();
            let narrow = propagated(&sub_key, &sub, &x, 2).unwrap();
            assert_eq!(narrow.n_patterns(), 1);
            // The single kept operator is the full set's g = 1.
            assert_eq!(narrow.step(2, 0), full.step(2, 1));
        });
    }

    #[test]
    fn selection_composition_maps_through() {
        let key =
            OpSetKey { graph_fp: 7, max_order: 2, conv_r_bits: 0, selection: vec![0, 1, 2, 3] };
        let first = key.with_selection(&[0, 2, 3]);
        assert_eq!(first.selection, vec![0, 2, 3]);
        let second = first.with_selection(&[1, 2]);
        assert_eq!(second.selection, vec![2, 3], "indices compose through prior selection");
    }

    #[test]
    fn quantized_requests_share_one_artifact_per_precision() {
        amud_cache::with_cache(true, || {
            clear();
            let adj = toy_adj();
            let x = toy_x();
            let (set, key) = operators(&adj, 1, 0.0).unwrap();
            let a = propagated_quantized(&key, &set, &x, 2, Precision::F16).unwrap();
            let b = propagated_quantized(&key, &set, &x, 2, Precision::F16).unwrap();
            assert!(Arc::ptr_eq(&a, &b), "second request must reuse the stored Arc");
            // A sibling precision of the same request is a distinct entry…
            let i8 = propagated_quantized(&key, &set, &x, 2, Precision::I8).unwrap();
            assert!(!Arc::ptr_eq(&a, &i8));
            assert_ne!(a.fingerprint(), i8.fingerprint());
            // …and the artifact matches quantizing the f32 tensor directly.
            let pf = propagated(&key, &set, &x, 2).unwrap();
            assert_eq!(*a, QuantizedFeatures::from_propagated(&pf, Precision::F16));
            assert_eq!(a.k_steps(), 2);
            assert_eq!(a.n_patterns(), set.len());
            assert!(a.n_bytes() < pf.n_floats() * 4, "f16 artifact must be smaller than f32");
        });
    }

    #[test]
    fn quantized_depths_key_separately() {
        amud_cache::with_cache(true, || {
            clear();
            let adj = toy_adj();
            let x = toy_x();
            let (set, key) = operators(&adj, 1, 0.0).unwrap();
            let deep = propagated_quantized(&key, &set, &x, 3, Precision::I8).unwrap();
            let shallow = propagated_quantized(&key, &set, &x, 2, Precision::I8).unwrap();
            assert_eq!(deep.k_steps(), 3);
            assert_eq!(shallow.k_steps(), 2);
            // Shared prefix content: step tensors agree where depths overlap.
            for l in 1..=2 {
                for g in 0..set.len() {
                    assert_eq!(deep.step(l, g), shallow.step(l, g), "l={l} g={g}");
                }
            }
        });
    }

    #[test]
    fn quantized_disabled_cache_bypasses_stores() {
        amud_cache::with_cache(false, || {
            clear();
            let adj = toy_adj();
            let x = toy_x();
            let before = amud_cache::stats();
            let (set, key) = operators(&adj, 1, 0.0).unwrap();
            let q = propagated_quantized(&key, &set, &x, 2, Precision::F16).unwrap();
            let d = amud_cache::stats().delta(&before);
            assert_eq!(d.total(), 0, "disabled cache must not touch counters");
            // Bypass still produces the exact artifact the cached path does.
            let again = propagated_quantized(&key, &set, &x, 2, Precision::F16).unwrap();
            assert_eq!(*q, *again);
            assert!(!Arc::ptr_eq(&q, &again), "disabled cache must not share state");
        });
    }

    #[test]
    fn disabled_cache_bypasses_stores() {
        amud_cache::with_cache(false, || {
            clear();
            let adj = toy_adj();
            let x = toy_x();
            let before = amud_cache::stats();
            let (set, key) = operators(&adj, 1, 0.0).unwrap();
            let _ = propagated(&key, &set, &x, 2).unwrap();
            let d = amud_cache::stats().delta(&before);
            assert_eq!(d.total(), 0, "disabled cache must not touch counters");
        });
    }
}
