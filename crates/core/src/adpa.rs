//! ADPA: Adaptive Directed Pattern Aggregation (Sec. IV).
//!
//! The model is the composition of four pieces:
//!
//! 1. **DP-guided feature propagation** (Eq. 9) — precomputed once at
//!    construction via [`crate::propagation::PropagatedFeatures`]; training
//!    never touches the sparse topology again (decoupled design, Sec. IV-D).
//! 2. **Node-wise DP attention** (Eq. 10) — at every propagation step `l`,
//!    the `k` operator features plus the initial residual are weighted
//!    *per node* and fused to a hidden representation. Four interchangeable
//!    variants reproduce the Table VII ablation:
//!    [`DpAttention::Original`] (free node-adaptive weights, the paper's
//!    Eq. 10), [`DpAttention::Gate`] (sigmoid gates computed from the
//!    features), [`DpAttention::Recursive`] (softmax attention logits from
//!    per-operator projections), [`DpAttention::Jk`] (plain jumping-
//!    knowledge concatenation), and [`DpAttention::None`] (unweighted mean;
//!    the "w/o DP attention" row).
//! 3. **Node-wise hop attention** (Eq. 11) — a per-node softmax over the
//!    `K` step representations; disabling it falls back to a mean (the
//!    "w/o Hop attention" row).
//! 4. An MLP classifier head.
//!
//! Optionally, ADPA applies the Sec. IV-B **DP selection** rule: operators
//! are ranked by their label correlation `r(G_d, N)` on the *training*
//! labels and only the top `r` are kept.

use crate::amud::rank_patterns;
use crate::propagation::PropagatedFeatures;
use amud_graph::PatternSet;
use amud_nn::{
    linear::dropout_mask, Activation, DenseMatrix, Linear, Mlp, NodeId, ParamBank, ParamId, Tape,
};
use amud_train::{GraphData, Model, TrainError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The node-wise DP attention variant (Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpAttention {
    /// Eq. 10: free node-adaptive weights `W_DP ∈ R^{n×(k+1)}`.
    Original,
    /// Sigmoid gates computed from each operator's features.
    Gate,
    /// Softmax attention over per-operator projections.
    Recursive,
    /// Jumping-knowledge: plain concatenation, no weighting.
    Jk,
    /// Ablation: unweighted mean of operator features.
    None,
}

/// ADPA hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdpaConfig {
    /// Maximum DP order `N`; the operator family has `k = 2¹+…+2ᴺ` members.
    pub max_order: usize,
    /// Propagation steps `K`.
    pub k_steps: usize,
    /// Hidden width of the fused representations.
    pub hidden: usize,
    /// Depth of the classifier MLP (≥ 1).
    pub classifier_layers: usize,
    pub dropout: f32,
    pub dp_attention: DpAttention,
    /// Disable for the "w/o Hop Attention" ablation.
    pub hop_attention: bool,
    /// Keep only the top-`r` operators by training-label correlation
    /// (Sec. IV-B DP selection). `None` keeps all.
    pub dp_select: Option<usize>,
    /// Eq. 1 convolution kernel coefficient `r ∈ [0, 1]` applied to every
    /// DP propagation operator (the paper tunes this in 0..1; 0 =
    /// row-stochastic, 0.5 = symmetric).
    pub conv_r: f32,
}

impl Default for AdpaConfig {
    fn default() -> Self {
        Self {
            max_order: 2,
            // Fig. 6 sweeps K per dataset; K = 2 is the strongest setting at
            // replica scale on both paradigms (deeper propagation oversmooths
            // and adds data-starved W_DP columns on small graphs).
            k_steps: 2,
            hidden: 64,
            classifier_layers: 2,
            dropout: 0.4,
            dp_attention: DpAttention::Original,
            hop_attention: true,
            dp_select: None,
            conv_r: 0.0,
        }
    }
}

/// The ADPA model, bound to one graph.
pub struct Adpa {
    pub(crate) bank: ParamBank,
    cfg: AdpaConfig,
    /// Cached Eq. 9 output.
    pub(crate) propagated: PropagatedFeatures,
    /// Names of the operators actually in use (after DP selection).
    pattern_names: Vec<String>,
    /// `W_DP` for [`DpAttention::Original`].
    pub(crate) w_dp: Option<ParamId>,
    /// Per-operator scorers for Gate / Recursive.
    pub(crate) op_scorers: Vec<Linear>,
    /// Fuses the (weighted) concatenation of operators to `hidden` dims.
    pub(crate) fuse: Linear,
    /// Hop-attention scorer: `K·hidden → K`.
    pub(crate) hop_scorer: Option<Linear>,
    pub(crate) classifier: Mlp,
}

impl Adpa {
    /// Builds ADPA for a graph: materialises the DP operators, optionally
    /// selects them by training-label correlation, runs Eq. 9, and
    /// initialises all parameters.
    ///
    /// Operator construction and propagation go through the
    /// [`crate::precompute`] store, so repeated constructions over the same
    /// graph — every seed of a sweep, every `k_steps`/`conv_r` grid point —
    /// reuse one materialisation and one propagation (bit-identically;
    /// `AMUD_CACHE=off` disables the reuse without changing any output).
    /// A malformed configuration or operator/feature mismatch is a typed
    /// [`TrainError`], so one bad hyperpoint degrades to a recorded failure
    /// instead of aborting a sweep.
    pub fn new(data: &GraphData, cfg: AdpaConfig, seed: u64) -> Result<Self, TrainError> {
        if cfg.max_order < 1 {
            return Err(TrainError::bad_input("need at least order-1 patterns"));
        }
        if cfg.classifier_layers < 1 {
            return Err(TrainError::bad_input("classifier needs at least one layer"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let (full, mut key) = crate::precompute::operators(&data.adj, cfg.max_order, cfg.conv_r)?;
        let mut patterns: PatternSet = (*full).clone();
        // On symmetric inputs (Paradigm I) the pattern family collapses —
        // A = Aᵀ makes all same-order operators identical. Keep one
        // representative per distinct sparsity pattern so the DP attention
        // is not spread across redundant copies.
        {
            let mut keep: Vec<usize> = Vec::new();
            for (i, op) in patterns.operators().iter().enumerate() {
                let duplicate = keep.iter().any(|&j| patterns.operators()[j].same_pattern(op));
                if !duplicate {
                    keep.push(i);
                }
            }
            if keep.len() < patterns.len() {
                patterns = patterns.select(&keep);
                key = key.with_selection(&keep);
            }
        }
        if let Some(r) = cfg.dp_select {
            let ranked = rank_patterns(
                patterns.operators(),
                &data.labels,
                data.n_classes,
                Some(&data.train),
            );
            let keep: Vec<usize> =
                ranked.iter().take(r.max(1).min(patterns.len())).map(|&(i, _)| i).collect();
            patterns = patterns.select(&keep);
            key = key.with_selection(&keep);
        }
        let pattern_names = patterns.patterns().iter().map(|p| p.name()).collect();
        let propagated =
            crate::precompute::propagated(&key, &patterns, &data.features, cfg.k_steps)?;

        let n = data.n_nodes();
        let f = data.n_features();
        let k = patterns.len();
        let mut bank = ParamBank::new();

        let w_dp = matches!(cfg.dp_attention, DpAttention::Original)
            .then(|| bank.add(DenseMatrix::ones(n, k + 1)));
        let op_scorers = match cfg.dp_attention {
            DpAttention::Gate | DpAttention::Recursive => {
                (0..=k).map(|_| Linear::new(&mut bank, f, 1, &mut rng)).collect()
            }
            _ => Vec::new(),
        };
        let fuse_in = match cfg.dp_attention {
            DpAttention::None => f,
            _ => (k + 1) * f,
        };
        let fuse = Linear::new(&mut bank, fuse_in, cfg.hidden, &mut rng);
        let hop_scorer = cfg
            .hop_attention
            .then(|| Linear::new(&mut bank, cfg.k_steps * cfg.hidden, cfg.k_steps, &mut rng));
        let mut dims = vec![cfg.hidden];
        for _ in 1..cfg.classifier_layers {
            dims.push(cfg.hidden);
        }
        dims.push(data.n_classes);
        let classifier = Mlp::new(&mut bank, &dims, Activation::Relu, cfg.dropout, &mut rng);

        Ok(Self {
            bank,
            cfg,
            propagated,
            pattern_names,
            w_dp,
            op_scorers,
            fuse,
            hop_scorer,
            classifier,
        })
    }

    /// The DP operator names in use (after selection), e.g. `["A", "Aᵀ",
    /// "A·A", …]`.
    pub fn pattern_names(&self) -> &[String] {
        &self.pattern_names
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &AdpaConfig {
        &self.cfg
    }

    /// Records the Eq. 10 fusion for step `l`, returning the `n × hidden`
    /// representation.
    fn fuse_step(&self, tape: &mut Tape, l: usize, training: bool, rng: &mut StdRng) -> NodeId {
        let op_feats = self.propagated.step_with_residual(l);
        let inputs: Vec<NodeId> = op_feats.iter().map(|m| tape.constant((*m).clone())).collect();

        let fused_input = match self.cfg.dp_attention {
            DpAttention::Original => {
                let Some(w_dp) = self.w_dp else {
                    unreachable!("Adpa::new allocates W_DP whenever dp_attention is Original")
                };
                let w = tape.param(&self.bank, w_dp);
                let weighted: Vec<NodeId> =
                    inputs.iter().enumerate().map(|(j, &x)| tape.col_scale(w, j, x)).collect();
                tape.concat_cols(&weighted)
            }
            DpAttention::Gate => {
                let weighted: Vec<NodeId> = inputs
                    .iter()
                    .zip(&self.op_scorers)
                    .map(|(&x, scorer)| {
                        let logit = scorer.forward(tape, &self.bank, x);
                        let gate = tape.sigmoid(logit);
                        tape.col_scale(gate, 0, x)
                    })
                    .collect();
                tape.concat_cols(&weighted)
            }
            DpAttention::Recursive => {
                let logits: Vec<NodeId> = inputs
                    .iter()
                    .zip(&self.op_scorers)
                    .map(|(&x, scorer)| {
                        let e = scorer.forward(tape, &self.bank, x);
                        tape.leaky_relu(e, 0.2)
                    })
                    .collect();
                let e = tape.concat_cols(&logits);
                let w = tape.row_softmax(e);
                let weighted: Vec<NodeId> =
                    inputs.iter().enumerate().map(|(j, &x)| tape.col_scale(w, j, x)).collect();
                tape.concat_cols(&weighted)
            }
            DpAttention::Jk => tape.concat_cols(&inputs),
            DpAttention::None => {
                // Unweighted mean of all operator features.
                let mut acc = inputs[0];
                for &x in &inputs[1..] {
                    acc = tape.add(acc, x);
                }
                tape.scale(acc, 1.0 / inputs.len() as f32)
            }
        };

        let mut h = fused_input;
        if training && self.cfg.dropout > 0.0 {
            let (r, c) = tape.value(h).shape();
            let mask = dropout_mask(rng, r, c, self.cfg.dropout);
            h = tape.dropout(h, mask);
        }
        let lin = self.fuse.forward(tape, &self.bank, h);
        tape.relu(lin)
    }
}

impl Model for Adpa {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }

    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }

    fn forward(
        &self,
        tape: &mut Tape,
        _data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        // Level 1: DP attention per step (Eq. 10).
        let step_reprs: Vec<NodeId> =
            (1..=self.cfg.k_steps).map(|l| self.fuse_step(tape, l, training, rng)).collect();

        // Level 2: hop attention across steps (Eq. 11).
        let fused = if let Some(hop) = &self.hop_scorer {
            let stacked = tape.concat_cols(&step_reprs);
            let e = hop.forward(tape, &self.bank, stacked);
            let act = tape.leaky_relu(e, 0.2);
            let w = tape.row_softmax(act);
            // K ≥ 1 is validated at construction, so step_reprs is
            // non-empty; fold in the same op order the Option loop used.
            let mut acc = tape.col_scale(w, 0, step_reprs[0]);
            for (l, &h) in step_reprs.iter().enumerate().skip(1) {
                let scaled = tape.col_scale(w, l, h);
                acc = tape.add(acc, scaled);
            }
            acc
        } else {
            let mut acc = step_reprs[0];
            for &h in &step_reprs[1..] {
                acc = tape.add(acc, h);
            }
            tape.scale(acc, 1.0 / step_reprs.len() as f32)
        };

        // Classifier head.
        self.classifier.forward(tape, &self.bank, fused, training, rng)
    }

    fn name(&self) -> &'static str {
        "ADPA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_datasets::{replica, ReplicaScale};
    use amud_train::{train, TrainConfig};

    fn data(name: &str, seed: u64) -> GraphData {
        let d = replica(name, ReplicaScale::tiny(), seed);
        GraphData::new(
            &d.graph,
            d.features.clone(),
            d.split.train.clone(),
            d.split.val.clone(),
            d.split.test.clone(),
        )
        .unwrap()
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig { epochs: 60, patience: 0, lr: 0.01, weight_decay: 5e-4, ..Default::default() }
    }

    #[test]
    fn adpa_operator_count_matches_paper() {
        let d = data("cora_ml", 0);
        let adpa = Adpa::new(&d, AdpaConfig { max_order: 2, ..Default::default() }, 0).unwrap();
        assert_eq!(adpa.pattern_names().len(), 6, "order 2 → k = 6");
        let adpa1 = Adpa::new(&d, AdpaConfig { max_order: 1, ..Default::default() }, 0).unwrap();
        assert_eq!(adpa1.pattern_names().len(), 2, "order 1 → k = 2");
    }

    #[test]
    fn undirected_input_collapses_pattern_family() {
        // On a symmetric adjacency A = Aᵀ: the six order-≤2 operators
        // reduce to two distinct ones ({A} and {A·A}).
        let d = data("cora_ml", 0).to_undirected();
        let adpa = Adpa::new(&d, AdpaConfig { max_order: 2, ..Default::default() }, 0).unwrap();
        assert_eq!(adpa.pattern_names().len(), 2, "{:?}", adpa.pattern_names());
    }

    #[test]
    fn adpa_beats_chance_on_homophilous_replica() {
        let d = data("cora_ml", 1);
        let mut model = Adpa::new(&d, AdpaConfig::default(), 1).unwrap();
        let result = train(&mut model, &d, quick_cfg(), 1).unwrap();
        // 7 classes → chance ≈ 14%.
        assert!(result.test_acc > 0.4, "test accuracy {}", result.test_acc);
    }

    #[test]
    fn adpa_beats_chance_on_heterophilous_directed_replica() {
        let d = data("chameleon", 2);
        let mut model = Adpa::new(&d, AdpaConfig::default(), 2).unwrap();
        let result = train(&mut model, &d, quick_cfg(), 2).unwrap();
        // 5 classes → chance 20%; weak features mean the directed topology
        // must be exploited to clear it.
        assert!(result.test_acc > 0.3, "test accuracy {}", result.test_acc);
    }

    #[test]
    fn all_attention_variants_train() {
        let d = data("texas", 3);
        for variant in [
            DpAttention::Original,
            DpAttention::Gate,
            DpAttention::Recursive,
            DpAttention::Jk,
            DpAttention::None,
        ] {
            let cfg = AdpaConfig { dp_attention: variant, k_steps: 2, ..Default::default() };
            let mut model = Adpa::new(&d, cfg, 3).unwrap();
            let result = train(&mut model, &d, quick_cfg(), 3).unwrap();
            assert!(result.test_acc > 0.2, "{variant:?} accuracy {}", result.test_acc);
        }
    }

    #[test]
    fn hop_attention_off_still_trains() {
        let d = data("texas", 4);
        let cfg = AdpaConfig { hop_attention: false, ..Default::default() };
        let mut model = Adpa::new(&d, cfg, 4).unwrap();
        let result = train(&mut model, &d, quick_cfg(), 4).unwrap();
        assert!(result.test_acc > 0.2);
    }

    #[test]
    fn conv_coefficient_changes_propagation() {
        let d = data("chameleon", 8);
        let row = Adpa::new(&d, AdpaConfig { conv_r: 0.0, ..Default::default() }, 8).unwrap();
        let sym = Adpa::new(&d, AdpaConfig { conv_r: 0.5, ..Default::default() }, 8).unwrap();
        // Same architecture, different propagation — both train fine.
        let mut rng = StdRng::seed_from_u64(0);
        let mut t1 = Tape::new();
        let l1 = row.forward(&mut t1, &d, false, &mut rng);
        let mut t2 = Tape::new();
        let l2 = sym.forward(&mut t2, &d, false, &mut rng);
        assert_ne!(t1.value(l1), t2.value(l2), "conv_r must alter the forward pass");
    }

    #[test]
    fn dp_selection_reduces_operator_set() {
        let d = data("chameleon", 5);
        let cfg = AdpaConfig { dp_select: Some(3), ..Default::default() };
        let model = Adpa::new(&d, cfg, 5).unwrap();
        assert_eq!(model.pattern_names().len(), 3);
    }

    #[test]
    fn eval_forward_is_deterministic() {
        let d = data("citeseer", 6);
        let model = Adpa::new(&d, AdpaConfig::default(), 6).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let run = |rng: &mut StdRng| {
            let mut tape = Tape::new();
            let logits = model.forward(&mut tape, &d, false, rng);
            tape.value(logits).clone()
        };
        assert_eq!(run(&mut rng), run(&mut rng));
    }

    #[test]
    fn parameter_count_grows_with_order() {
        let d = data("texas", 7);
        let p1 = Adpa::new(&d, AdpaConfig { max_order: 1, ..Default::default() }, 7)
            .unwrap()
            .n_parameters();
        let p2 = Adpa::new(&d, AdpaConfig { max_order: 2, ..Default::default() }, 7)
            .unwrap()
            .n_parameters();
        assert!(p2 > p1, "order-2 ADPA must have more parameters ({p1} vs {p2})");
    }
}
