//! Directed-pattern guided K-step feature propagation (Eq. 9).
//!
//! The propagation is **weight-free** and independent of training — ADPA's
//! decoupled design (Sec. IV-A/IV-D). For each DP operator `G_g` (row
//! normalised) and each step `l = 1..K`:
//!
//! ```text
//! X_g^(l) = G_g · X_g^(l-1),       X_g^(0) = X
//! ```
//!
//! The whole tensor `{X_g^(l)}` plus the initial residual `X^(0)` is
//! computed once per graph (`O(k·K·m·f)`) and cached; training then only
//! touches dense matrices.

use amud_graph::PatternSet;
use amud_nn::DenseMatrix;

/// The cached result of Eq. 9.
#[derive(Debug, Clone)]
pub struct PropagatedFeatures {
    /// `X^(0)` — the initial residual.
    x0: DenseMatrix,
    /// `steps[l-1][g]` = `X_{G_g}^{(l)}` for `l = 1..=K`.
    steps: Vec<Vec<DenseMatrix>>,
}

impl PropagatedFeatures {
    /// Runs the propagation for every operator in the set over `k_steps`.
    ///
    /// # Panics
    /// Panics if `k_steps == 0` or the operator/feature shapes disagree.
    pub fn compute(patterns: &PatternSet, x: &DenseMatrix, k_steps: usize) -> Self {
        assert!(k_steps >= 1, "propagation needs at least one step");
        let n = x.rows();
        let f = x.cols();
        let mut steps: Vec<Vec<DenseMatrix>> = Vec::with_capacity(k_steps);
        // Current state per operator, advanced in lockstep.
        let mut current: Vec<DenseMatrix> = vec![x.clone(); patterns.len()];
        for _ in 0..k_steps {
            let mut this_step = Vec::with_capacity(patterns.len());
            for (g, prop) in patterns.propagators().iter().enumerate() {
                assert_eq!(prop.n_cols(), n, "operator shape mismatch");
                let mut next = DenseMatrix::zeros(n, f);
                prop.spmm(current[g].as_slice(), f, next.as_mut_slice());
                current[g] = next.clone();
                this_step.push(next);
            }
            steps.push(this_step);
        }
        Self { x0: x.clone(), steps }
    }

    /// Number of propagation steps `K`.
    pub fn k_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of DP operators `k`.
    pub fn n_patterns(&self) -> usize {
        self.steps.first().map_or(0, Vec::len)
    }

    /// The initial residual `X^(0)`.
    pub fn x0(&self) -> &DenseMatrix {
        &self.x0
    }

    /// `X_{G_g}^{(l)}` for step `l ∈ 1..=K` and operator index `g`.
    pub fn step(&self, l: usize, g: usize) -> &DenseMatrix {
        assert!(l >= 1 && l <= self.steps.len(), "step {l} out of 1..=K");
        &self.steps[l - 1][g]
    }

    /// All operator features at step `l`, ordered `[X^(0), X_{G_1}^{(l)},
    /// …, X_{G_k}^{(l)}]` — the concatenation layout of Eq. 9/10.
    pub fn step_with_residual(&self, l: usize) -> Vec<&DenseMatrix> {
        let mut out = Vec::with_capacity(self.n_patterns() + 1);
        out.push(&self.x0);
        out.extend(self.steps[l - 1].iter());
        out
    }

    /// Memory footprint in floats (diagnostics).
    pub fn n_floats(&self) -> usize {
        let per = self.x0.rows() * self.x0.cols();
        per * (1 + self.n_patterns() * self.k_steps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_graph::{CsrMatrix, PatternSet};

    fn cycle_patterns() -> PatternSet {
        // 4-cycle digraph: deterministic propagation.
        let a = CsrMatrix::from_edges(4, 4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        PatternSet::up_to_order(&a, 1).unwrap()
    }

    #[test]
    fn one_step_is_one_spmm() {
        let ps = cycle_patterns();
        let x = DenseMatrix::from_fn(4, 2, |r, _| r as f32);
        let pf = PropagatedFeatures::compute(&ps, &x, 1);
        assert_eq!(pf.k_steps(), 1);
        assert_eq!(pf.n_patterns(), 2);
        // Operator 0 is row-normalised A: node v takes its out-neighbour's
        // features; on a cycle X^(1)[v] = X[v+1 mod 4].
        let fwd = pf.step(1, 0);
        assert_eq!(fwd.get(0, 0), 1.0);
        assert_eq!(fwd.get(3, 0), 0.0);
        // Operator 1 is Aᵀ: node v takes its in-neighbour's features.
        let rev = pf.step(1, 1);
        assert_eq!(rev.get(0, 0), 3.0);
        assert_eq!(rev.get(1, 0), 0.0);
    }

    #[test]
    fn k_steps_compose() {
        let ps = cycle_patterns();
        let x = DenseMatrix::from_fn(4, 1, |r, _| r as f32);
        let pf = PropagatedFeatures::compute(&ps, &x, 4);
        // Four steps around a 4-cycle returns to the start.
        for v in 0..4 {
            assert_eq!(pf.step(4, 0).get(v, 0), x.get(v, 0));
        }
        // Two steps forward = X[v+2 mod 4].
        assert_eq!(pf.step(2, 0).get(0, 0), 2.0);
    }

    #[test]
    fn constant_features_are_preserved_by_row_normalised_operators() {
        let a = CsrMatrix::from_edges(
            5,
            5,
            vec![(0, 1), (0, 2), (1, 3), (2, 4), (3, 0), (4, 1), (1, 2)],
        )
        .unwrap();
        let ps = PatternSet::up_to_order(&a, 2).unwrap();
        let x = DenseMatrix::ones(5, 3);
        let pf = PropagatedFeatures::compute(&ps, &x, 3);
        for l in 1..=3 {
            for g in 0..ps.len() {
                for v in 0..5 {
                    let val = pf.step(l, g).get(v, 0);
                    assert!(
                        val == 0.0 || (val - 1.0).abs() < 1e-5,
                        "row-normalised propagation of constants must stay 0/1, got {val}"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_is_original_features() {
        let ps = cycle_patterns();
        let x = DenseMatrix::from_fn(4, 2, |r, c| (r + c) as f32);
        let pf = PropagatedFeatures::compute(&ps, &x, 2);
        assert_eq!(pf.x0(), &x);
        let with_res = pf.step_with_residual(1);
        assert_eq!(with_res.len(), 3);
        assert_eq!(with_res[0], &x);
    }

    #[test]
    fn n_floats_accounts_for_everything() {
        let ps = cycle_patterns();
        let x = DenseMatrix::zeros(4, 3);
        let pf = PropagatedFeatures::compute(&ps, &x, 2);
        // (1 residual + 2 ops × 2 steps) × 12 floats
        assert_eq!(pf.n_floats(), 5 * 12);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let ps = cycle_patterns();
        let x = DenseMatrix::zeros(4, 1);
        let _ = PropagatedFeatures::compute(&ps, &x, 0);
    }
}
