//! Directed-pattern guided K-step feature propagation (Eq. 9).
//!
//! The propagation is **weight-free** and independent of training — ADPA's
//! decoupled design (Sec. IV-A/IV-D). For each DP operator `G_g` (row
//! normalised) and each step `l = 1..K`:
//!
//! ```text
//! X_g^(l) = G_g · X_g^(l-1),       X_g^(0) = X
//! ```
//!
//! The whole tensor `{X_g^(l)}` plus the initial residual `X^(0)` is
//! computed once per graph (`O(k·K·m·f)`) and cached; training then only
//! touches dense matrices.
//!
//! Step matrices are stored behind [`Arc`], so a clone of the tensor — or
//! a [`PropagatedFeatures::prefix`] view at a smaller k — is a handful of
//! reference-count bumps, never a copy of `n×f` float data. That is what
//! lets the [`crate::precompute`] store share one propagation across every
//! seed of a sweep, and serve a `k_steps = 3` request from a cached
//! `K = 5` tensor for free. [`PropagatedFeatures::extend_to`] resumes the
//! recurrence from the last stored step, so growing a cached `K = 2` to
//! `K = 5` costs exactly the three missing steps; because step `l` depends
//! only on step `l-1`, the extended tensor is bit-identical to a direct
//! `compute(·, ·, 5)`.

use amud_graph::PatternSet;
use amud_nn::DenseMatrix;
use amud_train::TrainError;
use std::sync::Arc;

/// The cached result of Eq. 9.
#[derive(Debug, Clone)]
pub struct PropagatedFeatures {
    /// `X^(0)` — the initial residual.
    x0: Arc<DenseMatrix>,
    /// `steps[l-1][g]` = `X_{G_g}^{(l)}` for `l = 1..=K`.
    steps: Vec<Vec<Arc<DenseMatrix>>>,
}

impl PropagatedFeatures {
    /// Runs the propagation for every operator in the set over `k_steps`,
    /// or reports a typed [`TrainError::BadInput`] when `k_steps == 0` or
    /// the operator/feature shapes disagree (a malformed operator must
    /// land in a sweep's failure manifest, not abort the process).
    pub fn compute(
        patterns: &PatternSet,
        x: &DenseMatrix,
        k_steps: usize,
    ) -> Result<Self, TrainError> {
        if k_steps == 0 {
            return Err(TrainError::bad_input("propagation needs at least one step"));
        }
        let mut out = Self { x0: Arc::new(x.clone()), steps: Vec::with_capacity(k_steps) };
        out.extend_to(patterns, k_steps)?;
        Ok(out)
    }

    /// Extends the tensor in place to `k_steps` steps by resuming the
    /// Eq. 9 recurrence from the last stored step (no-op when already at
    /// or beyond `k_steps`). `patterns` must be the operator set the
    /// existing steps were propagated with — checked structurally (same
    /// operator count and shapes); the precompute store guarantees it
    /// semantically by keying features on the operator-set key.
    pub fn extend_to(&mut self, patterns: &PatternSet, k_steps: usize) -> Result<(), TrainError> {
        let n = self.x0.rows();
        let f = self.x0.cols();
        if !self.steps.is_empty() && self.n_patterns() != patterns.len() {
            return Err(TrainError::bad_input(format!(
                "operator count changed between propagation steps: tensor has {}, set has {}",
                self.n_patterns(),
                patterns.len()
            )));
        }
        for prop in patterns.propagators() {
            if prop.n_rows() != n || prop.n_cols() != n {
                return Err(TrainError::bad_input(format!(
                    "operator shape mismatch: propagator is {}x{}, features have {n} rows",
                    prop.n_rows(),
                    prop.n_cols()
                )));
            }
        }
        for l in self.steps.len()..k_steps {
            let mut this_step = Vec::with_capacity(patterns.len());
            for (g, prop) in patterns.propagators().iter().enumerate() {
                let prev: &DenseMatrix = if l == 0 { &self.x0 } else { &self.steps[l - 1][g] };
                // Each step matrix is allocated and written exactly once —
                // spmm writes straight into its final home.
                let mut next = DenseMatrix::zeros(n, f);
                prop.spmm(prev.as_slice(), f, next.as_mut_slice());
                this_step.push(Arc::new(next));
            }
            self.steps.push(this_step);
        }
        Ok(())
    }

    /// A view of the first `k_steps` steps — reference-count bumps only,
    /// no float data is copied. This is how one cached `K = 5` tensor
    /// serves every request with `k ≤ 5`. Errors when `k_steps == 0` or
    /// exceeds the stored depth.
    pub fn prefix(&self, k_steps: usize) -> Result<Self, TrainError> {
        if k_steps == 0 {
            return Err(TrainError::bad_input("propagation needs at least one step"));
        }
        if k_steps > self.steps.len() {
            return Err(TrainError::bad_input(format!(
                "prefix of {k_steps} steps requested from a {}-step tensor",
                self.steps.len()
            )));
        }
        Ok(Self { x0: Arc::clone(&self.x0), steps: self.steps[..k_steps].to_vec() })
    }

    /// Number of propagation steps `K`.
    pub fn k_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of DP operators `k`.
    pub fn n_patterns(&self) -> usize {
        self.steps.first().map_or(0, Vec::len)
    }

    /// The initial residual `X^(0)`.
    pub fn x0(&self) -> &DenseMatrix {
        &self.x0
    }

    /// `X_{G_g}^{(l)}` for step `l ∈ 1..=K` and operator index `g`.
    pub fn step(&self, l: usize, g: usize) -> &DenseMatrix {
        assert!(l >= 1 && l <= self.steps.len(), "step {l} out of 1..=K");
        &self.steps[l - 1][g]
    }

    /// All operator features at step `l`, ordered `[X^(0), X_{G_1}^{(l)},
    /// …, X_{G_k}^{(l)}]` — the concatenation layout of Eq. 9/10.
    pub fn step_with_residual(&self, l: usize) -> Vec<&DenseMatrix> {
        let mut out = Vec::with_capacity(self.n_patterns() + 1);
        out.push(self.x0.as_ref());
        out.extend(self.steps[l - 1].iter().map(Arc::as_ref));
        out
    }

    /// Memory footprint in floats (diagnostics). Counts logical floats;
    /// `Arc` sharing means several tensors can reference the same buffers.
    pub fn n_floats(&self) -> usize {
        let per = self.x0.rows() * self.x0.cols();
        per * (1 + self.n_patterns() * self.k_steps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_graph::{CsrMatrix, PatternSet};

    fn cycle_patterns() -> PatternSet {
        // 4-cycle digraph: deterministic propagation.
        let a = CsrMatrix::from_edges(4, 4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        PatternSet::up_to_order(&a, 1).unwrap()
    }

    #[test]
    fn one_step_is_one_spmm() {
        let ps = cycle_patterns();
        let x = DenseMatrix::from_fn(4, 2, |r, _| r as f32);
        let pf = PropagatedFeatures::compute(&ps, &x, 1).unwrap();
        assert_eq!(pf.k_steps(), 1);
        assert_eq!(pf.n_patterns(), 2);
        // Operator 0 is row-normalised A: node v takes its out-neighbour's
        // features; on a cycle X^(1)[v] = X[v+1 mod 4].
        let fwd = pf.step(1, 0);
        assert_eq!(fwd.get(0, 0), 1.0);
        assert_eq!(fwd.get(3, 0), 0.0);
        // Operator 1 is Aᵀ: node v takes its in-neighbour's features.
        let rev = pf.step(1, 1);
        assert_eq!(rev.get(0, 0), 3.0);
        assert_eq!(rev.get(1, 0), 0.0);
    }

    #[test]
    fn k_steps_compose() {
        let ps = cycle_patterns();
        let x = DenseMatrix::from_fn(4, 1, |r, _| r as f32);
        let pf = PropagatedFeatures::compute(&ps, &x, 4).unwrap();
        // Four steps around a 4-cycle returns to the start.
        for v in 0..4 {
            assert_eq!(pf.step(4, 0).get(v, 0), x.get(v, 0));
        }
        // Two steps forward = X[v+2 mod 4].
        assert_eq!(pf.step(2, 0).get(0, 0), 2.0);
    }

    #[test]
    fn constant_features_are_preserved_by_row_normalised_operators() {
        let a = CsrMatrix::from_edges(
            5,
            5,
            vec![(0, 1), (0, 2), (1, 3), (2, 4), (3, 0), (4, 1), (1, 2)],
        )
        .unwrap();
        let ps = PatternSet::up_to_order(&a, 2).unwrap();
        let x = DenseMatrix::ones(5, 3);
        let pf = PropagatedFeatures::compute(&ps, &x, 3).unwrap();
        for l in 1..=3 {
            for g in 0..ps.len() {
                for v in 0..5 {
                    let val = pf.step(l, g).get(v, 0);
                    assert!(
                        val == 0.0 || (val - 1.0).abs() < 1e-5,
                        "row-normalised propagation of constants must stay 0/1, got {val}"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_is_original_features() {
        let ps = cycle_patterns();
        let x = DenseMatrix::from_fn(4, 2, |r, c| (r + c) as f32);
        let pf = PropagatedFeatures::compute(&ps, &x, 2).unwrap();
        assert_eq!(pf.x0(), &x);
        let with_res = pf.step_with_residual(1);
        assert_eq!(with_res.len(), 3);
        assert_eq!(with_res[0], &x);
    }

    #[test]
    fn n_floats_accounts_for_everything() {
        let ps = cycle_patterns();
        let x = DenseMatrix::zeros(4, 3);
        let pf = PropagatedFeatures::compute(&ps, &x, 2).unwrap();
        // (1 residual + 2 ops × 2 steps) × 12 floats
        assert_eq!(pf.n_floats(), 5 * 12);
    }

    #[test]
    fn zero_steps_is_a_typed_error() {
        let ps = cycle_patterns();
        let x = DenseMatrix::zeros(4, 1);
        let err = PropagatedFeatures::compute(&ps, &x, 0).unwrap_err();
        assert!(matches!(err, TrainError::BadInput { .. }), "{err:?}");
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let ps = cycle_patterns(); // 4-node operators
        let x = DenseMatrix::zeros(5, 2); // 5-row features
        let err = PropagatedFeatures::compute(&ps, &x, 1).unwrap_err();
        assert!(
            matches!(&err, TrainError::BadInput { reason } if reason.contains("shape mismatch")),
            "{err:?}"
        );
    }

    #[test]
    fn prefix_is_bitwise_equal_to_direct_compute() {
        let ps = cycle_patterns();
        let x = DenseMatrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.37);
        let full = PropagatedFeatures::compute(&ps, &x, 5).unwrap();
        for k in 1..=5 {
            let direct = PropagatedFeatures::compute(&ps, &x, k).unwrap();
            let view = full.prefix(k).unwrap();
            assert_eq!(view.k_steps(), k);
            for l in 1..=k {
                for g in 0..ps.len() {
                    assert_eq!(view.step(l, g), direct.step(l, g));
                }
            }
        }
        assert!(full.prefix(0).is_err());
        assert!(full.prefix(6).is_err());
    }

    #[test]
    fn extension_is_bitwise_equal_to_direct_compute() {
        let ps = cycle_patterns();
        let x = DenseMatrix::from_fn(4, 2, |r, c| 1.0 / (1.0 + (r + c) as f32));
        let mut grown = PropagatedFeatures::compute(&ps, &x, 2).unwrap();
        grown.extend_to(&ps, 5).unwrap();
        let direct = PropagatedFeatures::compute(&ps, &x, 5).unwrap();
        assert_eq!(grown.k_steps(), 5);
        for l in 1..=5 {
            for g in 0..ps.len() {
                assert_eq!(grown.step(l, g).as_slice(), direct.step(l, g).as_slice());
            }
        }
        // Shrinking is a no-op, not a truncation.
        grown.extend_to(&ps, 1).unwrap();
        assert_eq!(grown.k_steps(), 5);
    }
}
