//! The Fig. 1 workflow: AMUD guidance → Paradigm I/II dispatch.
//!
//! Newly collected digraphs flow through [`decide`]: AMUD scores the
//! correlation between 2-order DPs and labels; graphs below the threshold
//! are undirected-transformed (Paradigm I, handled by undirected GNNs or
//! ADPA), graphs above it retain their directed edges (Paradigm II, handled
//! by directed GNNs — ADPA being the paradigm instance the paper proposes).

use crate::amud::{amud_score_profiles, AmudDecision, AmudReport, THETA};
use amud_train::GraphData;

/// Which learning paradigm the AMUD output feeds (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Paradigm {
    /// AMUndirected → undirected GNNs.
    I,
    /// AMDirected → directed GNNs.
    II,
}

impl Paradigm {
    /// Maps the AMUD decision onto the matching learning paradigm.
    pub fn from_decision(d: AmudDecision) -> Paradigm {
        match d {
            AmudDecision::Undirected => Paradigm::I,
            AmudDecision::Directed => Paradigm::II,
        }
    }
}

/// Scores the bundle's topology with AMUD. Node profiles are the labels
/// known at modeling time (training + validation nodes — never test
/// labels) together with the node features, which are fully observed.
pub fn decide(data: &GraphData) -> (AmudReport, Paradigm) {
    let known: Vec<usize> = data.train.iter().chain(data.val.iter()).copied().collect();
    let report = amud_score_profiles(
        &data.adj,
        &data.labels,
        data.n_classes,
        Some(&known),
        Some(&data.features),
        THETA,
    );
    let paradigm = Paradigm::from_decision(report.decision);
    (report, paradigm)
}

/// Applies the AMUD guidance to the topology: undirected transformation for
/// Paradigm I, identity for Paradigm II. Returns the prepared bundle and
/// the report.
pub fn prepare_topology(data: &GraphData) -> (GraphData, AmudReport, Paradigm) {
    let (report, paradigm) = decide(data);
    let prepared = match paradigm {
        Paradigm::I => data.to_undirected(),
        Paradigm::II => data.clone(),
    };
    (prepared, report, paradigm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amud_datasets::{replica, ReplicaScale};

    fn bundle(name: &str) -> GraphData {
        let d = replica(name, ReplicaScale::default(), 0);
        GraphData::new(
            &d.graph,
            d.features.clone(),
            d.split.train.clone(),
            d.split.val.clone(),
            d.split.test.clone(),
        )
        .unwrap()
    }

    #[test]
    fn homophilous_replica_goes_paradigm_one() {
        let d = bundle("cora_ml");
        let (prepared, report, paradigm) = prepare_topology(&d);
        assert_eq!(paradigm, Paradigm::I, "S = {}", report.score);
        assert!(prepared.is_undirected());
    }

    #[test]
    fn oriented_heterophilous_replica_goes_paradigm_two() {
        let d = bundle("texas");
        let (prepared, report, paradigm) = prepare_topology(&d);
        assert_eq!(paradigm, Paradigm::II, "S = {}", report.score);
        assert!(!prepared.is_undirected());
        assert_eq!(prepared.adj.nnz(), d.adj.nnz(), "Paradigm II must not touch edges");
    }

    #[test]
    fn abnormal_heterophilous_replica_goes_paradigm_one() {
        // Actor: heterophilous by the classic measures, but orientation is
        // uninformative — AMUD must override the conventional labelling
        // (the Table V phenomenon).
        let d = bundle("actor");
        let (report, paradigm) = decide(&d);
        assert_eq!(paradigm, Paradigm::I, "S = {}", report.score);
    }
}
