//! Property-based gradient verification: for random shapes, values and op
//! chains, the analytic gradient must match central finite differences.
//! This complements the fixed-case gradchecks in `src/tape.rs` by fuzzing
//! the shape/value space.

use amud_graph::CsrMatrix;
use amud_nn::{DenseMatrix, ParamBank, ParamId, SparseOp, Tape};
use proptest::prelude::*;

/// Builds a parameter with bounded values (keeps activations in the
/// well-conditioned regime for finite differences).
fn param_matrix(rows: usize, cols: usize, values: &[f32]) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |r, c| values[(r * cols + c) % values.len()].clamp(-2.0, 2.0))
}

/// Central finite-difference check for a scalar-valued function of the
/// parameter at `pid`.
fn check_grads(
    bank: &mut ParamBank,
    pid: ParamId,
    mut f: impl FnMut(&ParamBank) -> (f32, DenseMatrix),
) -> Result<(), TestCaseError> {
    let (_, analytic) = f(bank);
    let eps = 1e-2f32;
    let (rows, cols) = bank.value(pid).shape();
    for r in 0..rows {
        for c in 0..cols {
            let orig = bank.value(pid).get(r, c);
            bank.value_mut(pid).set(r, c, orig + eps);
            let (lp, _) = f(bank);
            bank.value_mut(pid).set(r, c, orig - eps);
            let (lm, _) = f(bank);
            bank.value_mut(pid).set(r, c, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let got = analytic.get(r, c);
            prop_assert!(
                (numeric - got).abs() < 5e-2 * (1.0 + numeric.abs().max(got.abs())),
                "grad mismatch at ({}, {}): numeric {}, analytic {}",
                r,
                c,
                numeric,
                got
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_tanh_chain(
        m in 1usize..4,
        k in 1usize..4,
        n in 1usize..4,
        vals in prop::collection::vec(-1.5f32..1.5, 16),
    ) {
        let mut bank = ParamBank::new();
        let pid = bank.add(param_matrix(k, n, &vals));
        let x = param_matrix(m, k, &vals);
        check_grads(&mut bank, pid, |bank| {
            let mut tape = Tape::new();
            let p = tape.param(bank, pid);
            let xn = tape.constant(x.clone());
            let y = tape.matmul(xn, p);
            let t = tape.tanh(y);
            let loss = tape.mean_all(t);
            tape.backward(loss);
            (tape.value(loss).get(0, 0), tape.grad(p))
        })?;
    }

    #[test]
    fn spmm_sigmoid_chain(
        edges in prop::collection::vec((0usize..5, 0usize..5, -1.0f32..1.0), 1..12),
        cols in 1usize..3,
        vals in prop::collection::vec(-1.5f32..1.5, 16),
    ) {
        let mat = CsrMatrix::from_coo(5, 5, edges).unwrap();
        let op = SparseOp::new(mat);
        let mut bank = ParamBank::new();
        let pid = bank.add(param_matrix(5, cols, &vals));
        check_grads(&mut bank, pid, |bank| {
            let mut tape = Tape::new();
            let p = tape.param(bank, pid);
            let y = tape.spmm(&op, p);
            let s = tape.sigmoid(y);
            let loss = tape.mean_all(s);
            tape.backward(loss);
            (tape.value(loss).get(0, 0), tape.grad(p))
        })?;
    }

    #[test]
    fn softmax_colscale_chain(
        rows in 2usize..5,
        k in 1usize..3,
        vals in prop::collection::vec(-1.0f32..1.0, 24),
    ) {
        let mut bank = ParamBank::new();
        let pid = bank.add(param_matrix(rows, k, &vals));
        let x = param_matrix(rows, 3, &vals);
        check_grads(&mut bank, pid, |bank| {
            let mut tape = Tape::new();
            let p = tape.param(bank, pid);
            let w = tape.row_softmax(p);
            let xn = tape.constant(x.clone());
            let y = tape.col_scale(w, 0, xn);
            let loss = tape.mean_all(y);
            tape.backward(loss);
            (tape.value(loss).get(0, 0), tape.grad(p))
        })?;
    }

    #[test]
    fn concat_relu_bias_chain(
        rows in 1usize..4,
        cols in 1usize..4,
        vals in prop::collection::vec(-1.5f32..1.5, 16),
    ) {
        let mut bank = ParamBank::new();
        let pid = bank.add(param_matrix(rows, cols, &vals));
        let bias = param_matrix(1, 2 * cols, &vals);
        check_grads(&mut bank, pid, |bank| {
            let mut tape = Tape::new();
            let p = tape.param(bank, pid);
            let cat = tape.concat_cols(&[p, p]);
            let bn = tape.constant(bias.clone());
            let shifted = tape.add_bias(cat, bn);
            // leaky_relu avoids the kink's nondifferentiability dominating.
            let act = tape.leaky_relu(shifted, 0.1);
            let loss = tape.mean_all(act);
            tape.backward(loss);
            (tape.value(loss).get(0, 0), tape.grad(p))
        })?;
    }

    #[test]
    fn cross_entropy_is_bounded_and_differentiable(
        rows in 2usize..5,
        classes in 2usize..4,
        vals in prop::collection::vec(-2.0f32..2.0, 24),
    ) {
        let mut bank = ParamBank::new();
        let pid = bank.add(param_matrix(rows, classes, &vals));
        let labels = std::rc::Rc::new((0..rows).map(|r| r % classes).collect::<Vec<_>>());
        let mask = std::rc::Rc::new((0..rows).collect::<Vec<_>>());
        let mut tape = Tape::new();
        let p = tape.param(&bank, pid);
        let loss = tape.masked_cross_entropy(p, labels, mask);
        let value = tape.value(loss).get(0, 0);
        prop_assert!(value >= 0.0, "CE must be non-negative, got {}", value);
        tape.backward(loss);
        let g = tape.grad(p);
        // CE gradient rows sum to zero (softmax minus one-hot).
        for r in 0..rows {
            let s: f32 = g.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {} grad sums to {}", r, s);
        }
    }
}
