//! Bit-identity properties for the parallel dense kernels (DESIGN.md §9).
//!
//! The `amud-par` determinism contract says a kernel's output is a pure
//! function of its inputs — never of the thread count. These properties
//! run every dense hot path at `AMUD_THREADS ∈ {1, 2, 3, 8}` (via the
//! in-process override) and compare outputs *bitwise*, so even a sign-of-
//! zero or last-ulp difference fails. Shapes straddle the serial-fallback
//! thresholds, include degenerate single-row/single-column cases, and go
//! past `TRANSA_BLOCK_ROWS` to exercise the multi-block reduction.

use amud_nn::{DenseMatrix, ParamBank, SparseOp, Tape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Seeded pseudo-random matrix with a few exact zeros (the matmul kernels
/// have a zero-skip fast path worth hitting) and negative values.
fn seeded(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| {
        if rng.gen_range(0.0f32..1.0) < 0.1 {
            0.0
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` under every thread count and asserts all results are
/// bit-identical to the single-threaded run.
fn assert_thread_invariant(label: &str, f: impl Fn() -> DenseMatrix) -> Result<(), TestCaseError> {
    let baseline = amud_par::with_threads(1, &f);
    for &t in &THREAD_COUNTS[1..] {
        let got = amud_par::with_threads(t, &f);
        prop_assert_eq!(
            bits(&baseline),
            bits(&got),
            "{} diverged between 1 and {} threads",
            label,
            t
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_is_thread_invariant(
        dims in (1usize..48, 1usize..48, 1usize..40),
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 0x9e37);
        assert_thread_invariant("matmul", || a.matmul(&b))?;
    }

    #[test]
    fn matmul_transb_is_thread_invariant(
        dims in (1usize..48, 1usize..48, 1usize..40),
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let a = seeded(m, k, seed);
        let b = seeded(n, k, seed ^ 0x85eb);
        assert_thread_invariant("matmul_transb", || a.matmul_transb(&b))?;
    }

    #[test]
    fn matmul_transa_is_thread_invariant(
        dims in (1usize..64, 1usize..24, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let (k, m, n) = dims;
        let a = seeded(k, m, seed);
        let b = seeded(k, n, seed ^ 0xc2b2);
        assert_thread_invariant("matmul_transa", || a.matmul_transa(&b))?;
    }

    #[test]
    fn transpose_and_elementwise_are_thread_invariant(
        dims in (1usize..96, 1usize..96),
        seed in 0u64..1_000_000,
    ) {
        let (m, n) = dims;
        let a = seeded(m, n, seed);
        let b = seeded(m, n, seed ^ 0x27d4);
        assert_thread_invariant("transpose", || a.transpose())?;
        assert_thread_invariant("map", || a.map(|v| (v * 1.7).tanh()))?;
        assert_thread_invariant("hadamard", || a.hadamard(&b))?;
        assert_thread_invariant("add_scaled_assign", || {
            let mut c = a.clone();
            c.add_scaled_assign(&b, 0.3);
            c
        })?;
        assert_thread_invariant("l2_normalize_rows", || a.l2_normalize_rows())?;
    }

    #[test]
    fn argmax_rows_is_thread_invariant(
        dims in (1usize..80, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let (m, n) = dims;
        let a = seeded(m, n, seed);
        let baseline = amud_par::with_threads(1, || a.argmax_rows());
        for &t in &THREAD_COUNTS[1..] {
            let got = amud_par::with_threads(t, || a.argmax_rows());
            prop_assert_eq!(&baseline, &got, "argmax_rows diverged at {} threads", t);
        }
    }

    #[test]
    fn tape_forward_backward_is_thread_invariant(
        dims in (2usize..40, 1usize..16, 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        let (n, f, h) = dims;
        // End-to-end: a small model touching every parallelised tape op
        // (spmm, matmul, bias, activations, dropout, softmax, masked CE)
        // must produce bit-identical loss AND gradients at any thread count.
        let x = seeded(n, f, seed);
        let w1 = seeded(f, h, seed ^ 0x1111);
        let w2 = seeded(h, 3, seed ^ 0x2222);
        let bias = seeded(1, h, seed ^ 0x3333);
        let op = SparseOp::new(
            amud_graph::CsrMatrix::from_edges(
                n,
                n,
                (0..n).map(|i| (i, (i * 7 + 1) % n)),
            )
            .expect("ring edges are in bounds"),
        );
        let mask_vals: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x4444);
            (0..n * h).map(|_| if rng.gen_range(0.0f32..1.0) < 0.3 { 0.0 } else { 2.0 }).collect()
        };
        let labels = Rc::new((0..n).map(|i| i % 3).collect::<Vec<_>>());
        let train_mask = Rc::new((0..n).step_by(2).collect::<Vec<_>>());

        let run = || {
            let mut bank = ParamBank::new();
            let p1 = bank.add(w1.clone());
            let p2 = bank.add(w2.clone());
            let pb = bank.add(bias.clone());
            let mut tape = Tape::new();
            let xn = tape.constant(x.clone());
            let agg = tape.spmm(&op, xn);
            let w1n = tape.param(&bank, p1);
            let h1 = tape.matmul(agg, w1n);
            let bn = tape.param(&bank, pb);
            let h1b = tape.add_bias(h1, bn);
            let act = tape.relu(h1b);
            let drop = tape.dropout(act, Rc::new(mask_vals.clone()));
            let sm = tape.row_softmax(drop);
            let w2n = tape.param(&bank, p2);
            let logits = tape.matmul(sm, w2n);
            let loss =
                tape.masked_cross_entropy(logits, Rc::clone(&labels), Rc::clone(&train_mask));
            tape.backward(loss);
            tape.apply_grads(&mut bank);
            let mut flat = vec![tape.value(loss).get(0, 0)];
            for pid in [p1, p2, pb] {
                flat.extend_from_slice(bank.grad(pid).as_slice());
            }
            DenseMatrix::from_vec(1, flat.len(), flat)
        };
        assert_thread_invariant("tape forward+backward", run)?;
    }
}

/// `TRANSA_BLOCK_ROWS` is 2048: a k-extent beyond it splits the gradient
/// scatter into multiple fixed partial blocks. The fold order is block-
/// ascending regardless of scheduling, so the result must still be
/// bit-identical at every thread count.
#[test]
fn transa_multi_block_regime_is_thread_invariant() {
    let k = 2500;
    let a = seeded(k, 5, 77);
    let b = seeded(k, 4, 78);
    let baseline = amud_par::with_threads(1, || a.matmul_transa(&b));
    for &t in &THREAD_COUNTS[1..] {
        let got = amud_par::with_threads(t, || a.matmul_transa(&b));
        assert_eq!(bits(&baseline), bits(&got), "multi-block transa diverged at {t} threads");
    }
}

/// Shapes big enough to clear every serial-fallback threshold, so the
/// parallel path (not the inline fallback) is what's being compared. The
/// streaming helpers (map, per-row softmax/normalise) now carry a much
/// higher per-part floor (2^18 elements) than the matmul family, so their
/// shapes here are correspondingly larger.
#[test]
fn above_threshold_shapes_are_thread_invariant() {
    let a = seeded(160, 128, 99);
    let b = seeded(128, 96, 100);
    let big = seeded(768, 700, 101); // 537k elems ≥ 2 streaming parts
    for &t in &THREAD_COUNTS[1..] {
        let serial = amud_par::with_threads(1, || a.matmul(&b));
        let parallel = amud_par::with_threads(t, || a.matmul(&b));
        assert_eq!(bits(&serial), bits(&parallel), "matmul diverged at {t} threads");
        let serial = amud_par::with_threads(1, || big.map(|v| v.exp().min(10.0)));
        let parallel = amud_par::with_threads(t, || big.map(|v| v.exp().min(10.0)));
        assert_eq!(bits(&serial), bits(&parallel), "map diverged at {t} threads");
        let serial = amud_par::with_threads(1, || big.l2_normalize_rows());
        let parallel = amud_par::with_threads(t, || big.l2_normalize_rows());
        assert_eq!(bits(&serial), bits(&parallel), "l2_normalize_rows diverged at {t} threads");
    }
}

/// Lane-tail coverage: k-extents ≡ 1 and 7 (mod LANE_WIDTH) force every
/// microkernel through its scalar-tail path (and, at k < 4, through the
/// j/k-block tails too). Each shape is checked for thread invariance AND
/// pinned to the canonical order: `matmul`/`matmul_transa` must match the
/// legacy ascending-k scalar loop bitwise (the lane blocking is
/// order-preserving by construction), and every `matmul_transb` output
/// element must equal `amud_par::lane_dot` of its two rows bitwise
/// (whether it was produced by the 4-wide block or the tail).
#[test]
fn lane_tail_shapes_match_the_canonical_order() {
    for k in [1usize, 2, 3, 5, 7, 8, 9, 15, 17, 23, 25, 63, 65, 71] {
        let m = 13;
        let n = 11;
        let a = seeded(m, k, 1000 + k as u64);
        let b = seeded(k, n, 2000 + k as u64);
        let bt = seeded(n, k, 3000 + k as u64);

        // matmul: bitwise == legacy ikj scalar loop (ascending k, zero-skip).
        let got = a.matmul(&b);
        let mut want = DenseMatrix::zeros(m, n);
        for i in 0..m {
            for (kk, &av) in a.row(i).iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let w = want.get(i, j) + av * b.get(kk, j);
                    want.set(i, j, w);
                }
            }
        }
        assert_eq!(bits(&got), bits(&want), "matmul k={k} diverged from the scalar reference");

        // matmul_transb: bitwise == lane_dot per element.
        let got = a.matmul_transb(&bt);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(
                    got.get(i, j).to_bits(),
                    amud_par::lane_dot(a.row(i), bt.row(j)).to_bits(),
                    "transb k={k} ({i},{j}) diverged from lane_dot"
                );
            }
        }

        // matmul_transa (single-block regime): bitwise == legacy scalar
        // scatter in ascending k.
        let a2 = seeded(k, m, 4000 + k as u64);
        let b2 = seeded(k, n, 5000 + k as u64);
        let got = a2.matmul_transa(&b2);
        let mut want = DenseMatrix::zeros(m, n);
        for kk in 0..k {
            for i in 0..m {
                let av = a2.get(kk, i);
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let w = want.get(i, j) + av * b2.get(kk, j);
                    want.set(i, j, w);
                }
            }
        }
        assert_eq!(bits(&got), bits(&want), "transa k={k} diverged from the scalar reference");

        // And all of the above are thread-invariant at the tail shapes.
        for &t in &THREAD_COUNTS[1..] {
            let s = amud_par::with_threads(1, || a.matmul_transb(&bt));
            let p = amud_par::with_threads(t, || a.matmul_transb(&bt));
            assert_eq!(bits(&s), bits(&p), "transb k={k} diverged at {t} threads");
        }
    }
}

/// The satellite regression shape: a 1200×128 row softmax must stay on
/// the serial path (sub-threshold) yet remain bit-identical at any budget,
/// and an above-threshold softmax must fan out and still match serial.
#[test]
fn row_softmax_granularity_is_thread_invariant() {
    for (rows, cols) in [(1200usize, 128usize), (2200, 256)] {
        let m = seeded(rows, cols, 7000 + rows as u64);
        let softmax = |x: &DenseMatrix| {
            let mut out = x.clone();
            out.par_rows_mut(|_, row| {
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            });
            out
        };
        let baseline = amud_par::with_threads(1, || softmax(&m));
        for &t in &THREAD_COUNTS[1..] {
            let got = amud_par::with_threads(t, || softmax(&m));
            assert_eq!(
                bits(&baseline),
                bits(&got),
                "row softmax {rows}x{cols} diverged at {t} threads"
            );
        }
    }
}
