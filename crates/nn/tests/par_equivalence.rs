//! Bit-identity properties for the parallel dense kernels (DESIGN.md §9).
//!
//! The `amud-par` determinism contract says a kernel's output is a pure
//! function of its inputs — never of the thread count. These properties
//! run every dense hot path at `AMUD_THREADS ∈ {1, 2, 3, 8}` (via the
//! in-process override) and compare outputs *bitwise*, so even a sign-of-
//! zero or last-ulp difference fails. Shapes straddle the serial-fallback
//! thresholds, include degenerate single-row/single-column cases, and go
//! past `TRANSA_BLOCK_ROWS` to exercise the multi-block reduction.

use amud_nn::{DenseMatrix, ParamBank, SparseOp, Tape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Seeded pseudo-random matrix with a few exact zeros (the matmul kernels
/// have a zero-skip fast path worth hitting) and negative values.
fn seeded(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, |_, _| {
        if rng.gen_range(0.0f32..1.0) < 0.1 {
            0.0
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

fn bits(m: &DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` under every thread count and asserts all results are
/// bit-identical to the single-threaded run.
fn assert_thread_invariant(label: &str, f: impl Fn() -> DenseMatrix) -> Result<(), TestCaseError> {
    let baseline = amud_par::with_threads(1, &f);
    for &t in &THREAD_COUNTS[1..] {
        let got = amud_par::with_threads(t, &f);
        prop_assert_eq!(
            bits(&baseline),
            bits(&got),
            "{} diverged between 1 and {} threads",
            label,
            t
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_is_thread_invariant(
        dims in (1usize..48, 1usize..48, 1usize..40),
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 0x9e37);
        assert_thread_invariant("matmul", || a.matmul(&b))?;
    }

    #[test]
    fn matmul_transb_is_thread_invariant(
        dims in (1usize..48, 1usize..48, 1usize..40),
        seed in 0u64..1_000_000,
    ) {
        let (m, k, n) = dims;
        let a = seeded(m, k, seed);
        let b = seeded(n, k, seed ^ 0x85eb);
        assert_thread_invariant("matmul_transb", || a.matmul_transb(&b))?;
    }

    #[test]
    fn matmul_transa_is_thread_invariant(
        dims in (1usize..64, 1usize..24, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let (k, m, n) = dims;
        let a = seeded(k, m, seed);
        let b = seeded(k, n, seed ^ 0xc2b2);
        assert_thread_invariant("matmul_transa", || a.matmul_transa(&b))?;
    }

    #[test]
    fn transpose_and_elementwise_are_thread_invariant(
        dims in (1usize..96, 1usize..96),
        seed in 0u64..1_000_000,
    ) {
        let (m, n) = dims;
        let a = seeded(m, n, seed);
        let b = seeded(m, n, seed ^ 0x27d4);
        assert_thread_invariant("transpose", || a.transpose())?;
        assert_thread_invariant("map", || a.map(|v| (v * 1.7).tanh()))?;
        assert_thread_invariant("hadamard", || a.hadamard(&b))?;
        assert_thread_invariant("add_scaled_assign", || {
            let mut c = a.clone();
            c.add_scaled_assign(&b, 0.3);
            c
        })?;
        assert_thread_invariant("l2_normalize_rows", || a.l2_normalize_rows())?;
    }

    #[test]
    fn argmax_rows_is_thread_invariant(
        dims in (1usize..80, 1usize..24),
        seed in 0u64..1_000_000,
    ) {
        let (m, n) = dims;
        let a = seeded(m, n, seed);
        let baseline = amud_par::with_threads(1, || a.argmax_rows());
        for &t in &THREAD_COUNTS[1..] {
            let got = amud_par::with_threads(t, || a.argmax_rows());
            prop_assert_eq!(&baseline, &got, "argmax_rows diverged at {} threads", t);
        }
    }

    #[test]
    fn tape_forward_backward_is_thread_invariant(
        dims in (2usize..40, 1usize..16, 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        let (n, f, h) = dims;
        // End-to-end: a small model touching every parallelised tape op
        // (spmm, matmul, bias, activations, dropout, softmax, masked CE)
        // must produce bit-identical loss AND gradients at any thread count.
        let x = seeded(n, f, seed);
        let w1 = seeded(f, h, seed ^ 0x1111);
        let w2 = seeded(h, 3, seed ^ 0x2222);
        let bias = seeded(1, h, seed ^ 0x3333);
        let op = SparseOp::new(
            amud_graph::CsrMatrix::from_edges(
                n,
                n,
                (0..n).map(|i| (i, (i * 7 + 1) % n)),
            )
            .expect("ring edges are in bounds"),
        );
        let mask_vals: Vec<f32> = {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x4444);
            (0..n * h).map(|_| if rng.gen_range(0.0f32..1.0) < 0.3 { 0.0 } else { 2.0 }).collect()
        };
        let labels = Rc::new((0..n).map(|i| i % 3).collect::<Vec<_>>());
        let train_mask = Rc::new((0..n).step_by(2).collect::<Vec<_>>());

        let run = || {
            let mut bank = ParamBank::new();
            let p1 = bank.add(w1.clone());
            let p2 = bank.add(w2.clone());
            let pb = bank.add(bias.clone());
            let mut tape = Tape::new();
            let xn = tape.constant(x.clone());
            let agg = tape.spmm(&op, xn);
            let w1n = tape.param(&bank, p1);
            let h1 = tape.matmul(agg, w1n);
            let bn = tape.param(&bank, pb);
            let h1b = tape.add_bias(h1, bn);
            let act = tape.relu(h1b);
            let drop = tape.dropout(act, Rc::new(mask_vals.clone()));
            let sm = tape.row_softmax(drop);
            let w2n = tape.param(&bank, p2);
            let logits = tape.matmul(sm, w2n);
            let loss =
                tape.masked_cross_entropy(logits, Rc::clone(&labels), Rc::clone(&train_mask));
            tape.backward(loss);
            tape.apply_grads(&mut bank);
            let mut flat = vec![tape.value(loss).get(0, 0)];
            for pid in [p1, p2, pb] {
                flat.extend_from_slice(bank.grad(pid).as_slice());
            }
            DenseMatrix::from_vec(1, flat.len(), flat)
        };
        assert_thread_invariant("tape forward+backward", run)?;
    }
}

/// `TRANSA_BLOCK_ROWS` is 2048: a k-extent beyond it splits the gradient
/// scatter into multiple fixed partial blocks. The fold order is block-
/// ascending regardless of scheduling, so the result must still be
/// bit-identical at every thread count.
#[test]
fn transa_multi_block_regime_is_thread_invariant() {
    let k = 2500;
    let a = seeded(k, 5, 77);
    let b = seeded(k, 4, 78);
    let baseline = amud_par::with_threads(1, || a.matmul_transa(&b));
    for &t in &THREAD_COUNTS[1..] {
        let got = amud_par::with_threads(t, || a.matmul_transa(&b));
        assert_eq!(bits(&baseline), bits(&got), "multi-block transa diverged at {t} threads");
    }
}

/// Shapes big enough to clear every serial-fallback threshold, so the
/// parallel path (not the inline fallback) is what's being compared.
#[test]
fn above_threshold_shapes_are_thread_invariant() {
    let a = seeded(160, 128, 99);
    let b = seeded(128, 96, 100);
    let big = seeded(128, 96, 101);
    for &t in &THREAD_COUNTS[1..] {
        let serial = amud_par::with_threads(1, || a.matmul(&b));
        let parallel = amud_par::with_threads(t, || a.matmul(&b));
        assert_eq!(bits(&serial), bits(&parallel), "matmul diverged at {t} threads");
        let serial = amud_par::with_threads(1, || big.map(|v| v.exp().min(10.0)));
        let parallel = amud_par::with_threads(t, || big.map(|v| v.exp().min(10.0)));
        assert_eq!(bits(&serial), bits(&parallel), "map diverged at {t} threads");
    }
}
