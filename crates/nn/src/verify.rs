//! Static verification of recorded tapes.
//!
//! A [`crate::Tape`] is rebuilt every training step, so a malformed graph —
//! an operand with incompatible shape, a parameter that never reaches the
//! loss, a node nothing consumes — either panics deep inside a kernel or
//! silently trains the wrong model. [`TapeVerifier`] walks the op graph
//! *before* optimisation and reports every problem it can find as a
//! structured [`Diagnostic`] instead of panicking:
//!
//! * **shape inference** — recomputes the output shape of every op from its
//!   operand shapes and compares against what the tape recorded;
//! * **gradient-flow analysis** — every parameter leaf must be an ancestor
//!   of the loss root, otherwise its gradient is identically zero and the
//!   parameter silently never trains;
//! * **dangling nodes** — a non-root node with no consumer is recorded work
//!   that cannot influence the loss;
//! * **duplicate edges** — the same operand wired twice into one op (e.g.
//!   `sub(x, x)`, which is constantly zero);
//! * **finite values** (opt-in) — NaN/Inf anywhere in a forward value.
//!
//! The structural checks run on a [`GraphSpec`] — a value-free export of the
//! tape ([`crate::Tape::export_spec`]) — so tests can hand-build defective
//! graphs that the eager tape-recording API would reject up front.

use crate::optim::ParamId;
use crate::tape::NodeId;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but plausibly intentional.
    Info,
    /// Almost certainly a modelling mistake; training still runs.
    Warning,
    /// The graph is wrong; executing it panics or trains garbage.
    Error,
}

/// Which rule produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// An op's operand shapes are incompatible, or the recorded output
    /// shape disagrees with shape inference.
    ShapeMismatch,
    /// A parameter leaf is not an ancestor of the verification root: its
    /// gradient is identically zero.
    UnreachableParam,
    /// A non-root node no other op consumes.
    DanglingNode,
    /// One op lists the same operand more than once.
    DuplicateEdge,
    /// A forward value contains NaN or ±Inf.
    NonFinite,
    /// The graph structure itself is broken (forward reference, bad root).
    MalformedGraph,
}

impl Rule {
    /// Stable kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::ShapeMismatch => "shape-mismatch",
            Rule::UnreachableParam => "unreachable-param",
            Rule::DanglingNode => "dangling-node",
            Rule::DuplicateEdge => "duplicate-edge",
            Rule::NonFinite => "non-finite",
            Rule::MalformedGraph => "malformed-graph",
        }
    }
}

/// One finding of the verifier.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The tape node the finding is anchored to.
    pub op_id: NodeId,
    pub severity: Severity,
    pub rule: Rule,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "[{sev}] node {}: {} — {}", self.op_id, self.rule.name(), self.message)
    }
}

/// True if any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders diagnostics one per line (empty string when clean).
pub fn render(diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
}

/// Value-free structural description of one tape op, sufficient for shape
/// inference. Operand node ids live in [`NodeSpec::inputs`], ordered as the
/// op consumes them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Constant or parameter leaf.
    Leaf,
    /// `a · b` — inputs `[a, b]`.
    MatMul,
    /// `a · bᵀ` — inputs `[a, b]`.
    MatMulTransB,
    /// Constant sparse operator of the given shape times input `[x]`.
    SpMM { op_rows: usize, op_cols: usize },
    /// Elementwise `a + b`.
    Add,
    /// Elementwise `a - b`.
    Sub,
    /// Elementwise `a ⊙ b`.
    Mul,
    /// Broadcast `1 × cols` bias over rows — inputs `[x, bias]`.
    AddBias,
    /// Constant scalar multiple of `[x]`.
    Scale,
    /// `w[0, idx] * x` — inputs `[x, w]`.
    ScalarScale { idx: usize },
    /// `diag(w[:, col]) · x` — inputs `[x, w]`.
    ColScale { col: usize },
    /// Elementwise activation of `[x]` (ReLU, sigmoid, tanh, …).
    Activation,
    /// Inverted dropout by a fixed mask of `mask_len` entries.
    Dropout { mask_len: usize },
    /// Horizontal concatenation of all inputs.
    ConcatCols,
    /// Columns `[start, end)` of `[x]`.
    SliceCols { start: usize, end: usize },
    /// Per-row softmax of `[x]`.
    RowSoftmax,
    /// Mean over all entries of `[x]` — output is `1 × 1`.
    MeanAll,
    /// GAT aggregation over an `n × n` adjacency — inputs
    /// `[src_scores, dst_scores, h]`.
    GatAttention { n: usize },
    /// Masked softmax cross-entropy over input `[logits]` — output `1 × 1`.
    MaskedCrossEntropy { n_labels: usize, mask_len: usize, mask_max: usize },
}

/// One node of a [`GraphSpec`].
#[derive(Debug, Clone)]
pub struct NodeSpec {
    pub op: OpKind,
    /// Operand node ids, in op order.
    pub inputs: Vec<NodeId>,
    /// Recorded output shape `(rows, cols)`.
    pub shape: (usize, usize),
    /// Set when this is a parameter leaf.
    pub param: Option<ParamId>,
}

/// A value-free export of a tape's op graph, in recording order (which is a
/// topological order on a well-formed tape).
#[derive(Debug, Clone, Default)]
pub struct GraphSpec {
    pub nodes: Vec<NodeSpec>,
}

/// Static analyser for tape graphs. See the module docs for the rule set.
#[derive(Debug, Clone, Copy, Default)]
pub struct TapeVerifier {
    check_values: bool,
}

impl TapeVerifier {
    /// Structural verification only (shape inference, gradient flow,
    /// dangling nodes, duplicate edges).
    pub fn new() -> Self {
        Self::default()
    }

    /// Additionally scan every forward value for NaN/±Inf when verifying a
    /// live tape.
    pub fn with_value_check(mut self) -> Self {
        self.check_values = true;
        self
    }

    /// Verifies a live tape whose loss (or output) node is `root`.
    pub fn verify(&self, tape: &crate::Tape, root: NodeId) -> Vec<Diagnostic> {
        let mut diags = self.verify_spec(&tape.export_spec(), root);
        if self.check_values {
            for id in 0..tape.len() {
                let v = tape.value(id);
                let bad = v.as_slice().iter().filter(|x| !x.is_finite()).count();
                if bad > 0 {
                    diags.push(Diagnostic {
                        op_id: id,
                        severity: Severity::Error,
                        rule: Rule::NonFinite,
                        message: format!(
                            "{bad} non-finite entr{} in a {} × {} value",
                            if bad == 1 { "y" } else { "ies" },
                            v.rows(),
                            v.cols()
                        ),
                    });
                }
            }
        }
        diags
    }

    /// Verifies an exported (or hand-built) graph description against the
    /// structural rules. `root` is the node gradients would flow back from.
    pub fn verify_spec(&self, spec: &GraphSpec, root: NodeId) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let n = spec.nodes.len();
        if root >= n {
            diags.push(Diagnostic {
                op_id: root,
                severity: Severity::Error,
                rule: Rule::MalformedGraph,
                message: format!("root {root} out of range (graph has {n} nodes)"),
            });
            return diags;
        }

        // Pass 1: local structure — operand ordering, duplicate edges,
        // shape inference.
        for (id, node) in spec.nodes.iter().enumerate() {
            let mut ordered = true;
            for &input in &node.inputs {
                if input >= id {
                    ordered = false;
                    diags.push(Diagnostic {
                        op_id: id,
                        severity: Severity::Error,
                        rule: Rule::MalformedGraph,
                        message: format!(
                            "operand {input} does not precede the op (creation order must be topological)"
                        ),
                    });
                }
            }
            if !ordered {
                continue; // shapes of later nodes are meaningless here
            }
            self.check_duplicates(id, node, &mut diags);
            self.check_shapes(spec, id, node, &mut diags);
        }

        // Pass 2: gradient flow — ancestors of the root.
        let mut reachable = vec![false; n];
        reachable[root] = true;
        for id in (0..=root).rev() {
            if reachable[id] {
                for &input in &spec.nodes[id].inputs {
                    if input < n {
                        reachable[input] = true;
                    }
                }
            }
        }
        for (id, node) in spec.nodes.iter().enumerate() {
            if let Some(pid) = node.param {
                if !reachable[id] {
                    diags.push(Diagnostic {
                        op_id: id,
                        severity: Severity::Warning,
                        rule: Rule::UnreachableParam,
                        message: format!(
                            "parameter {pid:?} never reaches the root: its gradient is identically zero"
                        ),
                    });
                }
            }
        }

        // Pass 3: dangling nodes — anything (except the root) no op consumes.
        let mut consumed = vec![false; n];
        for node in &spec.nodes {
            for &input in &node.inputs {
                if input < n {
                    consumed[input] = true;
                }
            }
        }
        for (id, &used) in consumed.iter().enumerate() {
            if id != root && !used {
                diags.push(Diagnostic {
                    op_id: id,
                    severity: Severity::Warning,
                    rule: Rule::DanglingNode,
                    message: "no op consumes this node and it is not the root".into(),
                });
            }
        }

        diags
    }

    fn check_duplicates(&self, id: NodeId, node: &NodeSpec, diags: &mut Vec<Diagnostic>) {
        let mut seen = node.inputs.clone();
        seen.sort_unstable();
        let has_dup = seen.windows(2).any(|w| w[0] == w[1]);
        if !has_dup {
            return;
        }
        // sub(x, x) is constantly zero — almost certainly a bug. Other
        // repeats (x ⊙ x, concat of the same block) are plausible idioms.
        let severity = if node.op == OpKind::Sub { Severity::Warning } else { Severity::Info };
        let detail = if node.op == OpKind::Sub {
            "sub(x, x) is constantly zero"
        } else {
            "the same operand is wired in more than once"
        };
        diags.push(Diagnostic {
            op_id: id,
            severity,
            rule: Rule::DuplicateEdge,
            message: detail.into(),
        });
    }

    fn check_shapes(
        &self,
        spec: &GraphSpec,
        id: NodeId,
        node: &NodeSpec,
        diags: &mut Vec<Diagnostic>,
    ) {
        let shape_of = |i: NodeId| spec.nodes[i].shape;
        let mut fail = |msg: String| {
            diags.push(Diagnostic {
                op_id: id,
                severity: Severity::Error,
                rule: Rule::ShapeMismatch,
                message: msg,
            });
        };
        let ins = &node.inputs;
        let arity = |want: usize| ins.len() == want;

        // Infer the output shape; `None` means the operands themselves are
        // already incompatible (reported inside the match).
        let inferred: Option<(usize, usize)> = match &node.op {
            OpKind::Leaf => {
                if !ins.is_empty() {
                    fail(format!("leaf must have no operands, has {}", ins.len()));
                }
                Some(node.shape)
            }
            OpKind::MatMul => {
                if !arity(2) {
                    fail(format!("matmul needs 2 operands, has {}", ins.len()));
                    return;
                }
                let (a, b) = (shape_of(ins[0]), shape_of(ins[1]));
                if a.1 != b.0 {
                    fail(format!(
                        "matmul inner dimensions differ: {} × {} by {} × {}",
                        a.0, a.1, b.0, b.1
                    ));
                    None
                } else {
                    Some((a.0, b.1))
                }
            }
            OpKind::MatMulTransB => {
                if !arity(2) {
                    fail(format!("matmul_transb needs 2 operands, has {}", ins.len()));
                    return;
                }
                let (a, b) = (shape_of(ins[0]), shape_of(ins[1]));
                if a.1 != b.1 {
                    fail(format!(
                        "matmul_transb column counts differ: {} × {} by ({} × {})ᵀ",
                        a.0, a.1, b.0, b.1
                    ));
                    None
                } else {
                    Some((a.0, b.0))
                }
            }
            OpKind::SpMM { op_rows, op_cols } => {
                if !arity(1) {
                    fail(format!("spmm needs 1 dense operand, has {}", ins.len()));
                    return;
                }
                let x = shape_of(ins[0]);
                if *op_cols != x.0 {
                    fail(format!("spmm operator is {op_rows} × {op_cols} but x has {} rows", x.0));
                    None
                } else {
                    Some((*op_rows, x.1))
                }
            }
            OpKind::Add | OpKind::Sub | OpKind::Mul => {
                if !arity(2) {
                    fail(format!("elementwise op needs 2 operands, has {}", ins.len()));
                    return;
                }
                let (a, b) = (shape_of(ins[0]), shape_of(ins[1]));
                if a != b {
                    fail(format!(
                        "elementwise operands differ: {} × {} vs {} × {}",
                        a.0, a.1, b.0, b.1
                    ));
                    None
                } else {
                    Some(a)
                }
            }
            OpKind::AddBias => {
                if !arity(2) {
                    fail(format!("add_bias needs [x, bias], has {}", ins.len()));
                    return;
                }
                let (x, b) = (shape_of(ins[0]), shape_of(ins[1]));
                if b.0 != 1 || b.1 != x.1 {
                    fail(format!(
                        "bias must be 1 × {} to broadcast over {} × {}, got {} × {}",
                        x.1, x.0, x.1, b.0, b.1
                    ));
                    None
                } else {
                    Some(x)
                }
            }
            OpKind::Scale | OpKind::Activation | OpKind::RowSoftmax => {
                if !arity(1) {
                    fail(format!("unary op needs 1 operand, has {}", ins.len()));
                    return;
                }
                Some(shape_of(ins[0]))
            }
            OpKind::ScalarScale { idx } => {
                if !arity(2) {
                    fail(format!("scalar_scale needs [x, w], has {}", ins.len()));
                    return;
                }
                let (x, w) = (shape_of(ins[0]), shape_of(ins[1]));
                if w.0 != 1 {
                    fail(format!("scalar_scale weight must be 1 × k, got {} × {}", w.0, w.1));
                    None
                } else if *idx >= w.1 {
                    fail(format!("scalar_scale index {idx} out of range for 1 × {}", w.1));
                    None
                } else {
                    Some(x)
                }
            }
            OpKind::ColScale { col } => {
                if !arity(2) {
                    fail(format!("col_scale needs [x, w], has {}", ins.len()));
                    return;
                }
                let (x, w) = (shape_of(ins[0]), shape_of(ins[1]));
                if w.0 != x.0 {
                    fail(format!("col_scale weight rows ({}) must match x rows ({})", w.0, x.0));
                    None
                } else if *col >= w.1 {
                    fail(format!("col_scale column {col} out of range for {} × {}", w.0, w.1));
                    None
                } else {
                    Some(x)
                }
            }
            OpKind::Dropout { mask_len } => {
                if !arity(1) {
                    fail(format!("dropout needs 1 operand, has {}", ins.len()));
                    return;
                }
                let x = shape_of(ins[0]);
                if *mask_len != x.0 * x.1 {
                    fail(format!(
                        "dropout mask has {mask_len} entries for a {} × {} input",
                        x.0, x.1
                    ));
                    None
                } else {
                    Some(x)
                }
            }
            OpKind::ConcatCols => {
                if ins.is_empty() {
                    fail("concat_cols needs at least one operand".into());
                    return;
                }
                let rows = shape_of(ins[0]).0;
                let mut cols = 0;
                let mut ok = true;
                for &p in ins {
                    let s = shape_of(p);
                    if s.0 != rows {
                        fail(format!("concat_cols operands disagree on rows: {} vs {}", rows, s.0));
                        ok = false;
                        break;
                    }
                    cols += s.1;
                }
                ok.then_some((rows, cols))
            }
            OpKind::SliceCols { start, end } => {
                if !arity(1) {
                    fail(format!("slice_cols needs 1 operand, has {}", ins.len()));
                    return;
                }
                let x = shape_of(ins[0]);
                if start >= end || *end > x.1 {
                    fail(format!("slice [{start}, {end}) invalid for {} columns", x.1));
                    None
                } else {
                    Some((x.0, end - start))
                }
            }
            OpKind::MeanAll => {
                if !arity(1) {
                    fail(format!("mean_all needs 1 operand, has {}", ins.len()));
                    return;
                }
                Some((1, 1))
            }
            OpKind::GatAttention { n } => {
                if !arity(3) {
                    fail(format!(
                        "gat_attention needs [src_scores, dst_scores, h], has {}",
                        ins.len()
                    ));
                    return;
                }
                let (s, d, h) = (shape_of(ins[0]), shape_of(ins[1]), shape_of(ins[2]));
                let mut ok = true;
                if s != (*n, 1) {
                    fail(format!("src_scores must be {n} × 1, got {} × {}", s.0, s.1));
                    ok = false;
                }
                if d != (*n, 1) {
                    fail(format!("dst_scores must be {n} × 1, got {} × {}", d.0, d.1));
                    ok = false;
                }
                if h.0 != *n {
                    fail(format!("h must have {n} rows, got {}", h.0));
                    ok = false;
                }
                ok.then_some((*n, h.1))
            }
            OpKind::MaskedCrossEntropy { n_labels, mask_len, mask_max } => {
                if !arity(1) {
                    fail(format!("cross-entropy needs [logits], has {}", ins.len()));
                    return;
                }
                let l = shape_of(ins[0]);
                let mut ok = true;
                if *n_labels != l.0 {
                    fail(format!("{n_labels} labels for {} logit rows", l.0));
                    ok = false;
                }
                if *mask_len == 0 {
                    fail("cross-entropy mask is empty".into());
                    ok = false;
                }
                if *mask_len > 0 && *mask_max >= l.0 {
                    fail(format!("mask refers to row {mask_max} but logits have {} rows", l.0));
                    ok = false;
                }
                ok.then_some((1, 1))
            }
        };

        if let Some(want) = inferred {
            if want != node.shape {
                fail(format!(
                    "recorded shape {} × {} but shape inference gives {} × {}",
                    node.shape.0, node.shape.1, want.0, want.1
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMatrix;
    use crate::optim::ParamBank;
    use crate::Tape;

    fn leaf(rows: usize, cols: usize) -> NodeSpec {
        NodeSpec { op: OpKind::Leaf, inputs: vec![], shape: (rows, cols), param: None }
    }

    fn param_leaf(rows: usize, cols: usize, bank: &mut ParamBank) -> NodeSpec {
        let pid = bank.add(DenseMatrix::zeros(rows, cols));
        NodeSpec { op: OpKind::Leaf, inputs: vec![], shape: (rows, cols), param: Some(pid) }
    }

    fn only_rule(diags: &[Diagnostic], rule: Rule) -> &Diagnostic {
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == rule).collect();
        assert_eq!(hits.len(), 1, "expected exactly one {rule:?}, got: {}", render(diags));
        hits[0]
    }

    #[test]
    fn detects_shape_mismatched_matmul() {
        // (2 × 3) · (4 × 5): the tape API would assert; the spec records it.
        let spec = GraphSpec {
            nodes: vec![
                leaf(2, 3),
                leaf(4, 5),
                NodeSpec { op: OpKind::MatMul, inputs: vec![0, 1], shape: (2, 5), param: None },
            ],
        };
        let diags = TapeVerifier::new().verify_spec(&spec, 2);
        let d = only_rule(&diags, Rule::ShapeMismatch);
        assert_eq!(d.op_id, 2);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("inner dimensions"), "{}", d.message);
        assert!(has_errors(&diags));
    }

    #[test]
    fn detects_recorded_shape_disagreeing_with_inference() {
        let spec = GraphSpec {
            nodes: vec![
                leaf(2, 3),
                leaf(3, 5),
                // Valid operands, but the recorded output shape lies.
                NodeSpec { op: OpKind::MatMul, inputs: vec![0, 1], shape: (5, 2), param: None },
            ],
        };
        let diags = TapeVerifier::new().verify_spec(&spec, 2);
        let d = only_rule(&diags, Rule::ShapeMismatch);
        assert_eq!(d.op_id, 2);
        assert!(d.message.contains("shape inference gives 2 × 5"), "{}", d.message);
    }

    #[test]
    fn detects_unreachable_parameter() {
        let mut bank = ParamBank::new();
        let spec = GraphSpec {
            nodes: vec![
                leaf(1, 1),
                param_leaf(1, 1, &mut bank), // never consumed by the root chain
                NodeSpec { op: OpKind::MeanAll, inputs: vec![0], shape: (1, 1), param: None },
            ],
        };
        let diags = TapeVerifier::new().verify_spec(&spec, 2);
        let d = only_rule(&diags, Rule::UnreachableParam);
        assert_eq!(d.op_id, 1);
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("identically zero"), "{}", d.message);
        // The same node is also dangling; both findings must appear.
        assert_eq!(only_rule(&diags, Rule::DanglingNode).op_id, 1);
        assert!(!has_errors(&diags), "reachability findings are warnings");
    }

    #[test]
    fn detects_dangling_node() {
        let spec = GraphSpec {
            nodes: vec![
                leaf(2, 2),
                NodeSpec { op: OpKind::Activation, inputs: vec![0], shape: (2, 2), param: None },
                // Node 1 is consumed by nothing; the root chain is 0 → 2.
                NodeSpec { op: OpKind::MeanAll, inputs: vec![0], shape: (1, 1), param: None },
            ],
        };
        let diags = TapeVerifier::new().verify_spec(&spec, 2);
        let d = only_rule(&diags, Rule::DanglingNode);
        assert_eq!(d.op_id, 1);
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn detects_duplicate_edge_in_sub() {
        let spec = GraphSpec {
            nodes: vec![
                leaf(2, 2),
                NodeSpec { op: OpKind::Sub, inputs: vec![0, 0], shape: (2, 2), param: None },
                NodeSpec { op: OpKind::MeanAll, inputs: vec![1], shape: (1, 1), param: None },
            ],
        };
        let diags = TapeVerifier::new().verify_spec(&spec, 2);
        let d = only_rule(&diags, Rule::DuplicateEdge);
        assert_eq!(d.op_id, 1);
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("constantly zero"), "{}", d.message);
    }

    #[test]
    fn duplicate_edge_elsewhere_is_only_informational() {
        let spec = GraphSpec {
            nodes: vec![
                leaf(2, 2),
                NodeSpec { op: OpKind::Mul, inputs: vec![0, 0], shape: (2, 2), param: None },
                NodeSpec { op: OpKind::MeanAll, inputs: vec![1], shape: (1, 1), param: None },
            ],
        };
        let diags = TapeVerifier::new().verify_spec(&spec, 2);
        assert_eq!(only_rule(&diags, Rule::DuplicateEdge).severity, Severity::Info);
    }

    #[test]
    fn detects_forward_reference_and_bad_root() {
        let spec = GraphSpec {
            nodes: vec![NodeSpec {
                op: OpKind::Activation,
                inputs: vec![1], // refers to a node recorded after itself
                shape: (2, 2),
                param: None,
            }],
        };
        let diags = TapeVerifier::new().verify_spec(&spec, 0);
        assert_eq!(only_rule(&diags, Rule::MalformedGraph).op_id, 0);

        let diags = TapeVerifier::new().verify_spec(&GraphSpec::default(), 3);
        assert_eq!(only_rule(&diags, Rule::MalformedGraph).rule, Rule::MalformedGraph);
    }

    #[test]
    fn clean_tape_produces_no_diagnostics() {
        let mut bank = ParamBank::new();
        let w = bank.add(DenseMatrix::ones(3, 2));
        let mut tape = Tape::new();
        let x = tape.constant(DenseMatrix::ones(4, 3));
        let wn = tape.param(&bank, w);
        let y = tape.matmul(x, wn);
        let a = tape.relu(y);
        let loss = tape.mean_all(a);
        let diags = TapeVerifier::new().with_value_check().verify(&tape, loss);
        assert!(diags.is_empty(), "{}", render(&diags));
    }

    #[test]
    fn live_tape_with_unused_param_is_flagged() {
        let mut bank = ParamBank::new();
        let used = bank.add(DenseMatrix::ones(3, 2));
        let orphan = bank.add(DenseMatrix::ones(2, 2));
        let mut tape = Tape::new();
        let x = tape.constant(DenseMatrix::ones(4, 3));
        let wn = tape.param(&bank, used);
        let _orphan_node = tape.param(&bank, orphan);
        let y = tape.matmul(x, wn);
        let loss = tape.mean_all(y);
        let diags = TapeVerifier::new().verify(&tape, loss);
        assert_eq!(only_rule(&diags, Rule::UnreachableParam).op_id, 2);
        assert_eq!(only_rule(&diags, Rule::DanglingNode).op_id, 2);
    }

    #[test]
    fn value_check_reports_non_finite_entries() {
        let mut tape = Tape::new();
        let x = tape.constant(DenseMatrix::from_vec(1, 2, vec![f32::NAN, 1.0]));
        let loss = tape.mean_all(x);
        let diags = TapeVerifier::new().with_value_check().verify(&tape, loss);
        // NaN propagates through the mean: both nodes are flagged.
        let hits: Vec<_> = diags.iter().filter(|d| d.rule == Rule::NonFinite).collect();
        assert_eq!(hits.len(), 2, "{}", render(&diags));
        assert!(has_errors(&diags));
        // Structural-only verification stays quiet.
        assert!(TapeVerifier::new().verify(&tape, loss).is_empty());
    }

    #[test]
    fn diagnostics_render_with_rule_names() {
        let spec = GraphSpec {
            nodes: vec![
                leaf(2, 3),
                leaf(4, 5),
                NodeSpec { op: OpKind::MatMul, inputs: vec![0, 1], shape: (2, 5), param: None },
            ],
        };
        let diags = TapeVerifier::new().verify_spec(&spec, 2);
        let text = render(&diags);
        assert!(text.contains("[error] node 2: shape-mismatch"), "{text}");
    }
}
