//! # amud-nn
//!
//! A small, self-contained neural-network substrate: row-major dense
//! matrices ([`matrix::DenseMatrix`]), a reverse-mode autodiff tape
//! ([`tape::Tape`]) with the operations graph learning needs (including a
//! sparse×dense product against constant CSR operators), Adam optimisation
//! ([`optim`]), MLP building blocks ([`linear`]), and complex-matrix helpers
//! for magnetic-Laplacian models ([`complex`]).
//!
//! Design: the tape is rebuilt every training step (define-by-run). Model
//! parameters live in a [`optim::ParamBank`] outside the tape; a forward
//! pass copies parameter values into leaf nodes tagged with their
//! [`optim::ParamId`], and after `backward` the accumulated gradients are
//! flushed back with [`tape::Tape::apply_grads`]. Everything is
//! deterministic given the caller's RNG.
//!
//! ```
//! use amud_nn::{Adam, DenseMatrix, ParamBank, Tape};
//!
//! // One gradient step on loss = mean((x · w)²).
//! let mut bank = ParamBank::new();
//! let w = bank.add(DenseMatrix::ones(2, 1));
//! let mut tape = Tape::new();
//! let x = tape.constant(DenseMatrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
//! let wn = tape.param(&bank, w);
//! let y = tape.matmul(x, wn);
//! let sq = tape.mul(y, y);
//! let loss = tape.mean_all(sq);
//! tape.backward(loss);
//! tape.apply_grads(&mut bank);
//! assert!(bank.grad(w).frobenius_norm() > 0.0);
//! Adam::new(0.01).step(&mut bank);
//! ```

pub mod complex;
pub mod linear;
pub mod matrix;
pub mod optim;
pub mod tape;
pub mod verify;

pub use linear::{Activation, Linear, Mlp};
pub use matrix::DenseMatrix;
pub use optim::{Adam, Param, ParamBank, ParamId};
pub use tape::{NodeId, SparseOp, Tape};
pub use verify::{Diagnostic, GraphSpec, Rule, Severity, TapeVerifier};
