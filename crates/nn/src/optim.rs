//! Parameters and the Adam optimiser.
//!
//! Parameters live outside the tape in a [`ParamBank`]; a tape records
//! leaves tagged with [`ParamId`] and flushes gradients back after the
//! backward pass. [`Adam`] then applies one update per step and the
//! gradients are zeroed for the next iteration. This mirrors the
//! PyTorch-style training loop the paper's experiments use, without any
//! shared mutable state.

use crate::matrix::DenseMatrix;

/// Handle to a parameter in a [`ParamBank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// One trainable parameter with its gradient buffer and Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    value: DenseMatrix,
    grad: DenseMatrix,
    m: DenseMatrix,
    v: DenseMatrix,
}

impl Param {
    fn new(value: DenseMatrix) -> Self {
        let (r, c) = value.shape();
        Self {
            value,
            grad: DenseMatrix::zeros(r, c),
            m: DenseMatrix::zeros(r, c),
            v: DenseMatrix::zeros(r, c),
        }
    }
}

/// Storage for all parameters of a model.
#[derive(Debug, Default, Clone)]
pub struct ParamBank {
    params: Vec<Param>,
}

impl ParamBank {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, value: DenseMatrix) -> ParamId {
        self.params.push(Param::new(value));
        ParamId(self.params.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters (model size diagnostics).
    pub fn n_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.rows() * p.value.cols()).sum()
    }

    pub fn value(&self, id: ParamId) -> &DenseMatrix {
        &self.params[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut DenseMatrix {
        &mut self.params[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &DenseMatrix {
        &self.params[id.0].grad
    }

    /// Adds `delta` into the parameter's gradient buffer.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &DenseMatrix) {
        self.params[id.0].grad.add_scaled_assign(delta, 1.0);
    }

    /// Zeroes every gradient buffer.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.as_mut_slice().fill(0.0);
        }
    }

    /// Multiplies every gradient buffer by `factor` (fault injection and
    /// manual loss scaling; `NaN` poisons every gradient).
    pub fn scale_grads(&mut self, factor: f32) {
        for p in &mut self.params {
            for g in p.grad.as_mut_slice() {
                *g *= factor;
            }
        }
    }

    /// Whether every parameter *value* is finite (post-update health check).
    pub fn values_finite(&self) -> bool {
        self.params.iter().all(|p| p.value.as_slice().iter().all(|v| v.is_finite()))
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let n = p.grad.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    fn iter_mut(&mut self) -> impl Iterator<Item = &mut Param> {
        self.params.iter_mut()
    }
}

/// Adam with decoupled weight decay and optional global-norm clipping.
#[derive(Debug, Clone, Copy)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay.
    pub weight_decay: f32,
    /// If set, gradients are scaled down when the global norm exceeds this.
    pub clip_norm: Option<f32>,
    /// Step counter for bias correction.
    t: u64,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, clip_norm: None, t: 0 }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    pub fn with_clip_norm(mut self, clip: f32) -> Self {
        self.clip_norm = Some(clip);
        self
    }

    /// Applies one Adam step to every parameter using the bank's accumulated
    /// gradients, then zeroes the gradients.
    pub fn step(&mut self, bank: &mut ParamBank) {
        self.t += 1;
        let clip_scale = match self.clip_norm {
            Some(limit) => {
                let norm = bank.grad_norm();
                if norm > limit {
                    limit / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in bank.iter_mut() {
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_mut_slice();
            let m = p.m.as_mut_slice();
            let v = p.v.as_mut_slice();
            for i in 0..value.len() {
                let g = grad[i] * clip_scale;
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                value[i] -=
                    self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * value[i]);
                grad[i] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimise f(w) = (w - 3)²; gradient = 2(w - 3)
        let mut bank = ParamBank::new();
        let pid = bank.add(DenseMatrix::zeros(1, 1));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let w = bank.value(pid).get(0, 0);
            let g = DenseMatrix::from_vec(1, 1, vec![2.0 * (w - 3.0)]);
            bank.accumulate_grad(pid, &g);
            adam.step(&mut bank);
        }
        let w = bank.value(pid).get(0, 0);
        assert!((w - 3.0).abs() < 1e-2, "converged to {w}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut bank = ParamBank::new();
        let pid = bank.add(DenseMatrix::ones(1, 1).scale(10.0));
        let mut adam = Adam::new(0.1).with_weight_decay(0.1);
        for _ in 0..200 {
            // zero task gradient: only decay acts
            adam.step(&mut bank);
        }
        assert!(bank.value(pid).get(0, 0).abs() < 2.0);
    }

    #[test]
    fn clipping_caps_update_magnitude() {
        let mut bank = ParamBank::new();
        let pid = bank.add(DenseMatrix::zeros(1, 1));
        let mut adam = Adam::new(1.0).with_clip_norm(1e-3);
        let huge = DenseMatrix::from_vec(1, 1, vec![1e6]);
        bank.accumulate_grad(pid, &huge);
        adam.step(&mut bank);
        // Even with lr=1, the clipped, normalised step stays bounded by lr.
        assert!(bank.value(pid).get(0, 0).abs() <= 1.0 + 1e-6);
    }

    #[test]
    fn grads_zeroed_after_step() {
        let mut bank = ParamBank::new();
        let pid = bank.add(DenseMatrix::zeros(2, 2));
        bank.accumulate_grad(pid, &DenseMatrix::ones(2, 2));
        let mut adam = Adam::new(0.01);
        adam.step(&mut bank);
        assert_eq!(bank.grad(pid).sum(), 0.0);
    }

    #[test]
    fn n_scalars_counts_all() {
        let mut bank = ParamBank::new();
        bank.add(DenseMatrix::zeros(3, 4));
        bank.add(DenseMatrix::zeros(1, 5));
        assert_eq!(bank.n_scalars(), 17);
    }
}
