//! Linear layers and MLPs — the building blocks every model in the paper
//! shares (Eq. 3's `MLP(·)`, the classifier head of ADPA, the encoders of
//! LINKX/A2DUG, ...).

use crate::matrix::DenseMatrix;
use crate::optim::{ParamBank, ParamId};
use crate::tape::{NodeId, Tape};
use rand::Rng;
use std::rc::Rc;

/// Activation functions used across the baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Relu,
    /// Leaky ReLU with slope 0.01.
    LeakyRelu,
    Sigmoid,
    Tanh,
    /// No activation (final layers).
    Identity,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, tape: &mut Tape, x: NodeId) -> NodeId {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu => tape.leaky_relu(x, 0.01),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Identity => x,
        }
    }
}

/// Samples an inverted-dropout mask: entries are `0` with probability `p`,
/// else `1/(1-p)`.
pub fn dropout_mask<R: Rng>(rng: &mut R, rows: usize, cols: usize, p: f32) -> Rc<Vec<f32>> {
    assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
    let keep = 1.0 - p;
    let scale = 1.0 / keep;
    Rc::new((0..rows * cols).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }).collect())
}

/// A fully connected layer `x · W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// Registers Xavier-initialised weights and a zero bias in `bank`.
    pub fn new<R: Rng>(bank: &mut ParamBank, in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let w = bank.add(DenseMatrix::xavier_uniform(in_dim, out_dim, rng));
        let b = bank.add(DenseMatrix::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// Records the layer on the tape.
    pub fn forward(&self, tape: &mut Tape, bank: &ParamBank, x: NodeId) -> NodeId {
        let w = tape.param(bank, self.w);
        let b = tape.param(bank, self.b);
        let xw = tape.matmul(x, w);
        tape.add_bias(xw, b)
    }
}

/// A multi-layer perceptron with dropout between layers.
///
/// `dims = [in, h1, ..., out]`; activations and dropout are applied after
/// every layer except the last.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub layers: Vec<Linear>,
    pub activation: Activation,
    pub dropout: f32,
}

impl Mlp {
    pub fn new<R: Rng>(
        bank: &mut ParamBank,
        dims: &[usize],
        activation: Activation,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims.windows(2).map(|w| Linear::new(bank, w[0], w[1], rng)).collect();
        Self { layers, activation, dropout }
    }

    /// Records the MLP on the tape. When `training` and `dropout > 0`, a
    /// fresh mask is sampled from `rng` per hidden layer.
    pub fn forward<R: Rng>(
        &self,
        tape: &mut Tape,
        bank: &ParamBank,
        x: NodeId,
        training: bool,
        rng: &mut R,
    ) -> NodeId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            if training && self.dropout > 0.0 {
                let (r, c) = tape.value(h).shape();
                let mask = dropout_mask(rng, r, c, self.dropout);
                h = tape.dropout(h, mask);
            }
            h = layer.forward(tape, bank, h);
            if i != last {
                h = self.activation.apply(tape, h);
            }
        }
        h
    }

    pub fn out_dim(&self) -> usize {
        match self.layers.last() {
            Some(layer) => layer.out_dim,
            // `MLP::new` asserts `dims.len() >= 2`, so the stack holds at
            // least one layer for the lifetime of the value.
            None => unreachable!("MLP construction requires at least one layer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut bank = ParamBank::new();
        let layer = Linear::new(&mut bank, 3, 5, &mut rng);
        // Set bias to a known value and weights to zero.
        *bank.value_mut(layer.w) = DenseMatrix::zeros(3, 5);
        *bank.value_mut(layer.b) = DenseMatrix::ones(1, 5);
        let mut tape = Tape::new();
        let x = tape.constant(DenseMatrix::ones(4, 3));
        let y = layer.forward(&mut tape, &bank, x);
        assert_eq!(tape.value(y).shape(), (4, 5));
        assert!(tape.value(y).as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn mlp_learns_xor_like_separation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut bank = ParamBank::new();
        let mlp = Mlp::new(&mut bank, &[2, 16, 2], Activation::Relu, 0.0, &mut rng);
        let xs = DenseMatrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let labels = Rc::new(vec![0usize, 1, 1, 0]);
        let mask = Rc::new(vec![0usize, 1, 2, 3]);
        let mut adam = crate::optim::Adam::new(0.01);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            let mut tape = Tape::new();
            let x = tape.constant(xs.clone());
            let logits = mlp.forward(&mut tape, &bank, x, true, &mut rng);
            let loss = tape.masked_cross_entropy(logits, Rc::clone(&labels), Rc::clone(&mask));
            final_loss = tape.value(loss).get(0, 0);
            tape.backward(loss);
            tape.apply_grads(&mut bank);
            adam.step(&mut bank);
        }
        assert!(final_loss < 0.1, "XOR loss should vanish, got {final_loss}");
        // Check predictions.
        let mut tape = Tape::new();
        let x = tape.constant(xs);
        let logits = mlp.forward(&mut tape, &bank, x, false, &mut rng);
        assert_eq!(tape.value(logits).argmax_rows(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn dropout_mask_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mask = dropout_mask(&mut rng, 100, 100, 0.4);
        let zeros = mask.iter().filter(|&&m| m == 0.0).count();
        let frac = zeros as f64 / mask.len() as f64;
        assert!((frac - 0.4).abs() < 0.03, "dropout fraction {frac}");
        // Kept entries carry the inverse-keep scaling.
        assert!(mask.iter().all(|&m| m == 0.0 || (m - 1.0 / 0.6).abs() < 1e-6));
    }

    #[test]
    fn mlp_eval_mode_is_deterministic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut bank = ParamBank::new();
        let mlp = Mlp::new(&mut bank, &[4, 8, 3], Activation::Tanh, 0.5, &mut rng);
        let x = DenseMatrix::from_fn(5, 4, |r, c| (r + c) as f32 * 0.1);
        let run = |rng: &mut rand::rngs::StdRng| {
            let mut tape = Tape::new();
            let xn = tape.constant(x.clone());
            let y = mlp.forward(&mut tape, &bank, xn, false, rng);
            tape.value(y).clone()
        };
        let y1 = run(&mut rng);
        let y2 = run(&mut rng);
        assert_eq!(y1, y2, "eval mode must not consume RNG");
    }
}
