//! Reverse-mode autodiff over dense matrices.
//!
//! A [`Tape`] is a define-by-run computation graph, rebuilt every training
//! step. Forward values are computed eagerly as ops are recorded; calling
//! [`Tape::backward`] walks the nodes in reverse creation order (creation
//! order *is* a topological order, because operands must exist before an op
//! referencing them) and accumulates gradients.
//!
//! The op set is exactly what the paper's sixteen models need — in
//! particular:
//!
//! * [`Tape::spmm`] — constant sparse operator × variable dense matrix,
//!   the message-passing primitive (gradient: `Sᵀ · ∂out`);
//! * [`Tape::col_scale`] — per-node scalar weights applied to a feature
//!   matrix, the primitive behind node-wise hop attention (Eq. 11);
//! * [`Tape::scalar_scale`] — a single learnable scalar (one entry of a
//!   parameter vector) scaling a matrix, the primitive behind GPR-style
//!   learnable propagation weights;
//! * [`Tape::masked_cross_entropy`] — softmax cross-entropy restricted to
//!   the labelled training nodes (semi-supervised objective).

use crate::matrix::DenseMatrix;
use crate::optim::{ParamBank, ParamId};
use amud_graph::CsrMatrix;
use std::rc::Rc;

/// Handle to a node on the tape.
pub type NodeId = usize;

/// A constant sparse operator prepared for repeated use on tapes: the matrix
/// and its transpose (needed by the backward pass), both built once.
#[derive(Debug, Clone)]
pub struct SparseOp {
    mat: Rc<CsrMatrix>,
    mat_t: Rc<CsrMatrix>,
}

impl SparseOp {
    pub fn new(mat: CsrMatrix) -> Self {
        let mat_t = Rc::new(mat.transpose());
        Self { mat: Rc::new(mat), mat_t }
    }

    pub fn matrix(&self) -> &CsrMatrix {
        &self.mat
    }

    pub fn n_rows(&self) -> usize {
        self.mat.n_rows()
    }

    pub fn n_cols(&self) -> usize {
        self.mat.n_cols()
    }
}

enum Op {
    /// Constant or parameter leaf. If `param` is set, `apply_grads` flushes
    /// the accumulated gradient back to the bank.
    Leaf {
        param: Option<ParamId>,
    },
    MatMul(NodeId, NodeId),
    /// `a · bᵀ` — used by models that build dense similarity matrices.
    MatMulTransB(NodeId, NodeId),
    SpMM {
        op: SparseOp,
        x: NodeId,
    },
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    /// Broadcast a `1 × cols` bias over every row of `x`.
    AddBias {
        x: NodeId,
        bias: NodeId,
    },
    Scale(NodeId, f32),
    /// `out = w[0, idx] * x` — one learnable scalar from a `1 × k` vector.
    ScalarScale {
        x: NodeId,
        w: NodeId,
        idx: usize,
    },
    /// `out[r, :] = w[r, col] * x[r, :]` — per-row scalar from column `col`
    /// of an `n × k` weight matrix.
    ColScale {
        x: NodeId,
        w: NodeId,
        col: usize,
    },
    Relu(NodeId),
    LeakyRelu(NodeId, f32),
    Sigmoid(NodeId),
    Tanh(NodeId),
    /// Elementwise multiply by a fixed mask (inverted-dropout style).
    Dropout {
        x: NodeId,
        mask: Rc<Vec<f32>>,
    },
    ConcatCols(Vec<NodeId>),
    SliceCols {
        x: NodeId,
        start: usize,
        end: usize,
    },
    /// Softmax across columns, independently per row.
    RowSoftmax(NodeId),
    /// Mean of all entries (scalar output).
    MeanAll(NodeId),
    /// Graph attention aggregation (GAT-style): per-edge logits
    /// `e_ij = LeakyReLU(s_src[i] + s_dst[j])`, per-row softmax over the
    /// neighbourhood, then `out[i] = Σ_j α_ij · h[j]`. Caches the edge
    /// attention weights (aligned with the CSR edge order) for backward.
    GatAttention {
        adj: Rc<CsrMatrix>,
        src_scores: NodeId,
        dst_scores: NodeId,
        h: NodeId,
        slope: f32,
        alpha: Vec<f32>,
        pre_activation: Vec<f32>,
    },
    /// Masked softmax cross-entropy; caches per-row softmax for backward.
    MaskedCrossEntropy {
        logits: NodeId,
        labels: Rc<Vec<usize>>,
        mask: Rc<Vec<usize>>,
        softmax: DenseMatrix,
    },
}

struct Node {
    value: DenseMatrix,
    grad: Option<DenseMatrix>,
    op: Op,
    /// Whether any parameter feeds this node; gradient propagation skips
    /// constant subtrees entirely.
    needs_grad: bool,
}

/// A define-by-run autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// When set, every recorded op's output is scanned for NaN/±Inf under
    /// `debug_assertions` (see [`Tape::enable_finite_monitor`]).
    finite_monitor: bool,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    /// Opt-in finiteness monitor: after this call, recording an op whose
    /// output contains NaN or ±Inf trips a `debug_assert!` naming the node
    /// — catching the *first* op that goes non-finite instead of a loss
    /// that is mysteriously NaN hundreds of nodes later. Free in release
    /// builds.
    pub fn enable_finite_monitor(&mut self) {
        self.finite_monitor = true;
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &DenseMatrix {
        &self.nodes[id].value
    }

    /// The gradient of a node (zero matrix if it never received one).
    /// Only meaningful after [`Tape::backward`].
    pub fn grad(&self, id: NodeId) -> DenseMatrix {
        let n = &self.nodes[id];
        n.grad.clone().unwrap_or_else(|| DenseMatrix::zeros(n.value.rows(), n.value.cols()))
    }

    fn push(&mut self, value: DenseMatrix, op: Op, needs_grad: bool) -> NodeId {
        if self.finite_monitor && cfg!(debug_assertions) {
            let bad = value.as_slice().iter().filter(|v| !v.is_finite()).count();
            debug_assert!(
                bad == 0,
                "finite monitor: node {} has {bad} non-finite entries in a {} × {} output",
                self.nodes.len(),
                value.rows(),
                value.cols()
            );
        }
        self.nodes.push(Node { value, grad: None, op, needs_grad });
        self.nodes.len() - 1
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id].needs_grad
    }

    /// Records a constant leaf (no gradient).
    pub fn constant(&mut self, value: DenseMatrix) -> NodeId {
        self.push(value, Op::Leaf { param: None }, false)
    }

    /// Records a parameter leaf: copies the current value from the bank and
    /// remembers the id so [`Tape::apply_grads`] can flush the gradient.
    pub fn param(&mut self, bank: &ParamBank, id: ParamId) -> NodeId {
        self.push(bank.value(id).clone(), Op::Leaf { param: Some(id) }, true)
    }

    /// `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a].value.matmul(&self.nodes[b].value);
        let needs = self.needs(a) || self.needs(b);
        self.push(value, Op::MatMul(a, b), needs)
    }

    /// `a · bᵀ`.
    pub fn matmul_transb(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a].value.matmul_transb(&self.nodes[b].value);
        let needs = self.needs(a) || self.needs(b);
        self.push(value, Op::MatMulTransB(a, b), needs)
    }

    /// Constant sparse operator times dense node: `op.matrix() · x`.
    pub fn spmm(&mut self, op: &SparseOp, x: NodeId) -> NodeId {
        let xv = &self.nodes[x].value;
        assert_eq!(op.n_cols(), xv.rows(), "spmm: operator cols != x rows");
        let mut out = DenseMatrix::zeros(op.n_rows(), xv.cols());
        op.mat.spmm(xv.as_slice(), xv.cols(), out.as_mut_slice());
        let needs = self.needs(x);
        self.push(out, Op::SpMM { op: op.clone(), x }, needs)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a].value.add(&self.nodes[b].value);
        let needs = self.needs(a) || self.needs(b);
        self.push(value, Op::Add(a, b), needs)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut value = self.nodes[a].value.clone();
        value.add_scaled_assign(&self.nodes[b].value, -1.0);
        let needs = self.needs(a) || self.needs(b);
        self.push(value, Op::Sub(a, b), needs)
    }

    /// Elementwise `a ⊙ b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.nodes[a].value.hadamard(&self.nodes[b].value);
        let needs = self.needs(a) || self.needs(b);
        self.push(value, Op::Mul(a, b), needs)
    }

    /// Adds a `1 × cols` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let xv = &self.nodes[x].value;
        let bv = &self.nodes[bias].value;
        assert_eq!(bv.rows(), 1, "bias must be a single row");
        assert_eq!(bv.cols(), xv.cols(), "bias width must match x");
        let mut value = xv.clone();
        let bias_row = bv.row(0);
        value.par_rows_mut(|_, row| {
            for (o, &b) in row.iter_mut().zip(bias_row) {
                *o += b;
            }
        });
        let needs = self.needs(x) || self.needs(bias);
        self.push(value, Op::AddBias { x, bias }, needs)
    }

    /// `alpha * x` for a compile-time-constant alpha.
    pub fn scale(&mut self, x: NodeId, alpha: f32) -> NodeId {
        let value = self.nodes[x].value.scale(alpha);
        let needs = self.needs(x);
        self.push(value, Op::Scale(x, alpha), needs)
    }

    /// `w[0, idx] * x` where `w` is a `1 × k` learnable vector.
    pub fn scalar_scale(&mut self, w: NodeId, idx: usize, x: NodeId) -> NodeId {
        let wv = &self.nodes[w].value;
        assert_eq!(wv.rows(), 1, "scalar_scale: w must be 1 × k");
        assert!(idx < wv.cols(), "scalar_scale: index out of range");
        let value = self.nodes[x].value.scale(wv.get(0, idx));
        let needs = self.needs(x) || self.needs(w);
        self.push(value, Op::ScalarScale { x, w, idx }, needs)
    }

    /// `diag(w[:, col]) · x` where `w` is `n × k` and `x` is `n × f`.
    pub fn col_scale(&mut self, w: NodeId, col: usize, x: NodeId) -> NodeId {
        let wv = &self.nodes[w].value;
        let xv = &self.nodes[x].value;
        assert_eq!(wv.rows(), xv.rows(), "col_scale: row counts differ");
        assert!(col < wv.cols(), "col_scale: column out of range");
        let mut value = xv.clone();
        for r in 0..value.rows() {
            let s = wv.get(r, col);
            for o in value.row_mut(r) {
                *o *= s;
            }
        }
        let needs = self.needs(x) || self.needs(w);
        self.push(value, Op::ColScale { x, w, col }, needs)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let value = self.nodes[x].value.map(|v| v.max(0.0));
        let needs = self.needs(x);
        self.push(value, Op::Relu(x), needs)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, x: NodeId, alpha: f32) -> NodeId {
        let value = self.nodes[x].value.map(|v| if v > 0.0 { v } else { alpha * v });
        let needs = self.needs(x);
        self.push(value, Op::LeakyRelu(x, alpha), needs)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let value = self.nodes[x].value.map(|v| 1.0 / (1.0 + (-v).exp()));
        let needs = self.needs(x);
        self.push(value, Op::Sigmoid(x), needs)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let value = self.nodes[x].value.map(f32::tanh);
        let needs = self.needs(x);
        self.push(value, Op::Tanh(x), needs)
    }

    /// Inverted dropout: multiplies by a caller-supplied mask whose kept
    /// entries already include the `1/(1-p)` scaling. Passing the mask in
    /// keeps the tape deterministic and RNG-free.
    pub fn dropout(&mut self, x: NodeId, mask: Rc<Vec<f32>>) -> NodeId {
        let xv = &self.nodes[x].value;
        assert_eq!(mask.len(), xv.rows() * xv.cols(), "dropout: mask length mismatch");
        let mut value = xv.clone();
        value.par_zip_assign(&mask, |o, m| *o *= m);
        let needs = self.needs(x);
        self.push(value, Op::Dropout { x, mask }, needs)
    }

    /// Horizontal concatenation of nodes.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        let mats: Vec<&DenseMatrix> = parts.iter().map(|&p| &self.nodes[p].value).collect();
        let value = DenseMatrix::concat_cols(&mats);
        let needs = parts.iter().any(|&p| self.needs(p));
        self.push(value, Op::ConcatCols(parts.to_vec()), needs)
    }

    /// Copies columns `[start, end)`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, end: usize) -> NodeId {
        let value = self.nodes[x].value.slice_cols(start, end);
        let needs = self.needs(x);
        self.push(value, Op::SliceCols { x, start, end }, needs)
    }

    /// Softmax across columns per row.
    pub fn row_softmax(&mut self, x: NodeId) -> NodeId {
        let xv = &self.nodes[x].value;
        let mut value = xv.clone();
        value.par_rows_mut(|_, row| softmax_in_place(row));
        let needs = self.needs(x);
        self.push(value, Op::RowSoftmax(x), needs)
    }

    /// Mean over all entries — returns a `1 × 1` node.
    pub fn mean_all(&mut self, x: NodeId) -> NodeId {
        let xv = &self.nodes[x].value;
        let mean = xv.sum() / (xv.rows() * xv.cols()) as f32;
        let needs = self.needs(x);
        self.push(DenseMatrix::from_vec(1, 1, vec![mean]), Op::MeanAll(x), needs)
    }

    /// GAT-style attention aggregation over the edges of `adj` (values are
    /// ignored; only the sparsity pattern matters). `src_scores` and
    /// `dst_scores` are `n × 1` per-node attention terms, `h` is `n × f`;
    /// the output is `n × f` with rows of isolated nodes left at zero.
    pub fn gat_attention(
        &mut self,
        adj: &Rc<CsrMatrix>,
        src_scores: NodeId,
        dst_scores: NodeId,
        h: NodeId,
        slope: f32,
    ) -> NodeId {
        let n = adj.n_rows();
        let hv = &self.nodes[h].value;
        let sv = &self.nodes[src_scores].value;
        let dv = &self.nodes[dst_scores].value;
        assert_eq!(adj.n_cols(), n, "gat: adjacency must be square");
        assert_eq!(hv.rows(), n, "gat: h rows must equal node count");
        assert_eq!(sv.shape(), (n, 1), "gat: src_scores must be n × 1");
        assert_eq!(dv.shape(), (n, 1), "gat: dst_scores must be n × 1");
        let f = hv.cols();
        let mut alpha = vec![0.0f32; adj.nnz()];
        let mut pre_activation = vec![0.0f32; adj.nnz()];
        let mut out = DenseMatrix::zeros(n, f);
        let mut offset = 0usize;
        for i in 0..n {
            let cols = adj.row_cols(i);
            if cols.is_empty() {
                continue;
            }
            let row_range = offset..offset + cols.len();
            // Logits with the numerically stable softmax shift.
            let mut max_e = f32::NEG_INFINITY;
            for (slot, &j) in row_range.clone().zip(cols) {
                let pre = sv.get(i, 0) + dv.get(j as usize, 0);
                pre_activation[slot] = pre;
                let e = if pre > 0.0 { pre } else { slope * pre };
                alpha[slot] = e;
                max_e = max_e.max(e);
            }
            let mut sum = 0.0f32;
            for slot in row_range.clone() {
                alpha[slot] = (alpha[slot] - max_e).exp();
                sum += alpha[slot];
            }
            let out_row = out.row_mut(i);
            for (slot, &j) in row_range.zip(cols) {
                alpha[slot] /= sum;
                let a = alpha[slot];
                for (o, &x) in out_row.iter_mut().zip(hv.row(j as usize)) {
                    *o += a * x;
                }
            }
            offset += cols.len();
        }
        let needs = self.needs(h) || self.needs(src_scores) || self.needs(dst_scores);
        self.push(
            out,
            Op::GatAttention {
                adj: Rc::clone(adj),
                src_scores,
                dst_scores,
                h,
                slope,
                alpha,
                pre_activation,
            },
            needs,
        )
    }

    /// Masked softmax cross-entropy: mean over `mask` rows of
    /// `−log softmax(logits)[row, labels[row]]`. Returns a `1 × 1` loss node.
    pub fn masked_cross_entropy(
        &mut self,
        logits: NodeId,
        labels: Rc<Vec<usize>>,
        mask: Rc<Vec<usize>>,
    ) -> NodeId {
        let lv = &self.nodes[logits].value;
        assert!(!mask.is_empty(), "cross-entropy mask must not be empty");
        assert_eq!(labels.len(), lv.rows(), "labels length must equal logits rows");
        let mut softmax = lv.clone();
        softmax.par_rows_mut(|_, row| softmax_in_place(row));
        let mut loss = 0.0f32;
        for &r in mask.iter() {
            let p = softmax.get(r, labels[r]).max(1e-12);
            loss -= p.ln();
        }
        loss /= mask.len() as f32;
        let needs = self.needs(logits);
        self.push(
            DenseMatrix::from_vec(1, 1, vec![loss]),
            Op::MaskedCrossEntropy { logits, labels, mask, softmax },
            needs,
        )
    }

    /// Runs the backward pass from `root` (which must be `1 × 1`), filling
    /// gradients for every node that (transitively) depends on a parameter.
    pub fn backward(&mut self, root: NodeId) {
        {
            let rv = &self.nodes[root].value;
            assert_eq!(rv.shape(), (1, 1), "backward root must be scalar");
        }
        self.nodes[root].grad = Some(DenseMatrix::ones(1, 1));
        for id in (0..=root).rev() {
            if !self.nodes[id].needs_grad {
                continue;
            }
            let Some(grad) = self.nodes[id].grad.take() else { continue };
            self.propagate(id, &grad);
            self.nodes[id].grad = Some(grad);
        }
    }

    fn accumulate(&mut self, id: NodeId, delta: DenseMatrix) {
        if !self.nodes[id].needs_grad {
            return;
        }
        match &mut self.nodes[id].grad {
            Some(g) => g.add_scaled_assign(&delta, 1.0),
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, id: NodeId, grad: &DenseMatrix) {
        // Temporarily take the op out of the node so the match can borrow it
        // while `accumulate` mutates sibling nodes.
        let op = std::mem::replace(&mut self.nodes[id].op, Op::Leaf { param: None });
        self.propagate_op(id, &op, grad);
        self.nodes[id].op = op;
    }

    fn propagate_op(&mut self, id: NodeId, op: &Op, grad: &DenseMatrix) {
        match op {
            Op::Leaf { .. } => {}
            Op::MatMul(a, b) => {
                let (a, b) = (*a, *b);
                let da = grad.matmul_transb(&self.nodes[b].value);
                let db = self.nodes[a].value.matmul_transa(grad);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::MatMulTransB(a, b) => {
                // out = A·Bᵀ ⇒ dA = G·B, dB = Gᵀ·A.
                let (a, b) = (*a, *b);
                let da = grad.matmul(&self.nodes[b].value);
                let db = grad.matmul_transa(&self.nodes[a].value);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::SpMM { op, x } => {
                let x = *x;
                let mut dx = DenseMatrix::zeros(op.n_cols(), grad.cols());
                op.mat_t.spmm(grad.as_slice(), grad.cols(), dx.as_mut_slice());
                self.accumulate(x, dx);
            }
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, grad.clone());
                self.accumulate(b, grad.clone());
            }
            Op::Sub(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, grad.clone());
                self.accumulate(b, grad.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let (a, b) = (*a, *b);
                let da = grad.hadamard(&self.nodes[b].value);
                let db = grad.hadamard(&self.nodes[a].value);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::AddBias { x, bias } => {
                let (x, bias) = (*x, *bias);
                let mut db = DenseMatrix::zeros(1, grad.cols());
                for r in 0..grad.rows() {
                    for (o, &g) in db.row_mut(0).iter_mut().zip(grad.row(r)) {
                        *o += g;
                    }
                }
                self.accumulate(x, grad.clone());
                self.accumulate(bias, db);
            }
            Op::Scale(x, alpha) => {
                let (x, alpha) = (*x, *alpha);
                self.accumulate(x, grad.scale(alpha));
            }
            Op::ScalarScale { x, w, idx } => {
                let (x, w, idx) = (*x, *w, *idx);
                let s = self.nodes[w].value.get(0, idx);
                let dx = grad.scale(s);
                let dw_entry = amud_par::lane_dot(grad.as_slice(), self.nodes[x].value.as_slice());
                let mut dw = DenseMatrix::zeros(1, self.nodes[w].value.cols());
                dw.set(0, idx, dw_entry);
                self.accumulate(x, dx);
                self.accumulate(w, dw);
            }
            Op::ColScale { x, w, col } => {
                let (x, w, col) = (*x, *w, *col);
                let wv = &self.nodes[w].value;
                let xv = &self.nodes[x].value;
                let mut dx = grad.clone();
                let mut dw = DenseMatrix::zeros(wv.rows(), wv.cols());
                for r in 0..grad.rows() {
                    let s = wv.get(r, col);
                    let mut acc = 0.0f32;
                    for (dxe, (&g, &xe)) in
                        dx.row_mut(r).iter_mut().zip(grad.row(r).iter().zip(xv.row(r)))
                    {
                        *dxe = g * s;
                        acc += g * xe;
                    }
                    dw.set(r, col, acc);
                }
                self.accumulate(x, dx);
                self.accumulate(w, dw);
            }
            Op::Relu(x) => {
                let x = *x;
                let mut dx = grad.clone();
                dx.par_zip_assign(self.nodes[x].value.as_slice(), |d, v| {
                    if v <= 0.0 {
                        *d = 0.0;
                    }
                });
                self.accumulate(x, dx);
            }
            Op::LeakyRelu(x, alpha) => {
                let (x, alpha) = (*x, *alpha);
                let mut dx = grad.clone();
                dx.par_zip_assign(self.nodes[x].value.as_slice(), move |d, v| {
                    if v <= 0.0 {
                        *d *= alpha;
                    }
                });
                self.accumulate(x, dx);
            }
            Op::Sigmoid(x) => {
                let x = *x;
                let mut dx = grad.clone();
                dx.par_zip_assign(self.nodes[id].value.as_slice(), |d, s| *d *= s * (1.0 - s));
                self.accumulate(x, dx);
            }
            Op::Tanh(x) => {
                let x = *x;
                let mut dx = grad.clone();
                dx.par_zip_assign(self.nodes[id].value.as_slice(), |d, t| *d *= 1.0 - t * t);
                self.accumulate(x, dx);
            }
            Op::Dropout { x, mask } => {
                let x = *x;
                let mask = Rc::clone(mask);
                let mut dx = grad.clone();
                dx.par_zip_assign(&mask, |d, m| *d *= m);
                self.accumulate(x, dx);
            }
            Op::ConcatCols(parts) => {
                let parts = parts.clone();
                let mut offset = 0;
                for p in parts {
                    let w = self.nodes[p].value.cols();
                    let dp = grad.slice_cols(offset, offset + w);
                    offset += w;
                    self.accumulate(p, dp);
                }
            }
            Op::SliceCols { x, start, end } => {
                let (x, start, end) = (*x, *start, *end);
                let xv = &self.nodes[x].value;
                let mut dx = DenseMatrix::zeros(xv.rows(), xv.cols());
                for r in 0..dx.rows() {
                    dx.row_mut(r)[start..end].copy_from_slice(grad.row(r));
                }
                self.accumulate(x, dx);
            }
            Op::RowSoftmax(x) => {
                let x = *x;
                let y = &self.nodes[id].value;
                let mut dx = DenseMatrix::zeros(y.rows(), y.cols());
                dx.par_rows_mut(|r, drow| {
                    let yr = y.row(r);
                    let gr = grad.row(r);
                    let dot = amud_par::lane_dot(yr, gr);
                    for ((d, &s), &g) in drow.iter_mut().zip(yr).zip(gr) {
                        *d = s * (g - dot);
                    }
                });
                self.accumulate(x, dx);
            }
            Op::MeanAll(x) => {
                let x = *x;
                let xv = &self.nodes[x].value;
                let scale = grad.get(0, 0) / (xv.rows() * xv.cols()) as f32;
                let dx = DenseMatrix::from_fn(xv.rows(), xv.cols(), |_, _| scale);
                self.accumulate(x, dx);
            }
            Op::GatAttention { adj, src_scores, dst_scores, h, slope, alpha, pre_activation } => {
                let (src_scores, dst_scores, h, slope) = (*src_scores, *dst_scores, *h, *slope);
                let hv = &self.nodes[h].value;
                let n = adj.n_rows();
                let f = hv.cols();
                let mut dh = DenseMatrix::zeros(n, f);
                let mut ds = DenseMatrix::zeros(n, 1);
                let mut dd = DenseMatrix::zeros(n, 1);
                let mut offset = 0usize;
                for i in 0..n {
                    let cols = adj.row_cols(i);
                    if cols.is_empty() {
                        continue;
                    }
                    let g_row = grad.row(i);
                    // dα_ij = G[i] · h[j]; softmax backward needs the
                    // row-wise weighted mean Σ_k α_ik dα_ik.
                    let mut dalpha = Vec::with_capacity(cols.len());
                    let mut weighted_mean = 0.0f32;
                    for (slot, &j) in (offset..).zip(cols) {
                        let da = amud_par::lane_dot(g_row, hv.row(j as usize));
                        dalpha.push(da);
                        weighted_mean += alpha[slot] * da;
                    }
                    for (idx, &j) in cols.iter().enumerate() {
                        let slot = offset + idx;
                        let a = alpha[slot];
                        // dh[j] += α_ij · G[i]
                        amud_par::lanes::lane_axpy(dh.row_mut(j as usize), a, g_row);
                        let de = a * (dalpha[idx] - weighted_mean);
                        let dpre = if pre_activation[slot] > 0.0 { de } else { slope * de };
                        ds.set(i, 0, ds.get(i, 0) + dpre);
                        dd.set(j as usize, 0, dd.get(j as usize, 0) + dpre);
                    }
                    offset += cols.len();
                }
                self.accumulate(h, dh);
                self.accumulate(src_scores, ds);
                self.accumulate(dst_scores, dd);
            }
            Op::MaskedCrossEntropy { logits, labels, mask, softmax } => {
                let logits = *logits;
                let labels = Rc::clone(labels);
                let mask = Rc::clone(mask);
                let scale = grad.get(0, 0) / mask.len() as f32;
                let mut dx = DenseMatrix::zeros(softmax.rows(), softmax.cols());
                for &r in mask.iter() {
                    let sr = softmax.row(r).to_vec();
                    let dr = dx.row_mut(r);
                    for (c, (&s, d)) in sr.iter().zip(dr.iter_mut()).enumerate() {
                        let target = if c == labels[r] { 1.0 } else { 0.0 };
                        *d = scale * (s - target);
                    }
                }
                self.accumulate(logits, dx);
            }
        }
    }

    /// Exports the op graph as a value-free [`crate::verify::GraphSpec`] for
    /// static analysis by [`crate::verify::TapeVerifier`]. Node ids in the
    /// spec are the tape's own [`NodeId`]s.
    pub fn export_spec(&self) -> crate::verify::GraphSpec {
        use crate::verify::{GraphSpec, NodeSpec, OpKind};
        let nodes = self
            .nodes
            .iter()
            .map(|node| {
                let (op, inputs, param) = match &node.op {
                    Op::Leaf { param } => (OpKind::Leaf, vec![], *param),
                    Op::MatMul(a, b) => (OpKind::MatMul, vec![*a, *b], None),
                    Op::MatMulTransB(a, b) => (OpKind::MatMulTransB, vec![*a, *b], None),
                    Op::SpMM { op, x } => (
                        OpKind::SpMM { op_rows: op.n_rows(), op_cols: op.n_cols() },
                        vec![*x],
                        None,
                    ),
                    Op::Add(a, b) => (OpKind::Add, vec![*a, *b], None),
                    Op::Sub(a, b) => (OpKind::Sub, vec![*a, *b], None),
                    Op::Mul(a, b) => (OpKind::Mul, vec![*a, *b], None),
                    Op::AddBias { x, bias } => (OpKind::AddBias, vec![*x, *bias], None),
                    Op::Scale(x, _) => (OpKind::Scale, vec![*x], None),
                    Op::ScalarScale { x, w, idx } => {
                        (OpKind::ScalarScale { idx: *idx }, vec![*x, *w], None)
                    }
                    Op::ColScale { x, w, col } => {
                        (OpKind::ColScale { col: *col }, vec![*x, *w], None)
                    }
                    Op::Relu(x) | Op::LeakyRelu(x, _) | Op::Sigmoid(x) | Op::Tanh(x) => {
                        (OpKind::Activation, vec![*x], None)
                    }
                    Op::Dropout { x, mask } => {
                        (OpKind::Dropout { mask_len: mask.len() }, vec![*x], None)
                    }
                    Op::ConcatCols(parts) => (OpKind::ConcatCols, parts.clone(), None),
                    Op::SliceCols { x, start, end } => {
                        (OpKind::SliceCols { start: *start, end: *end }, vec![*x], None)
                    }
                    Op::RowSoftmax(x) => (OpKind::RowSoftmax, vec![*x], None),
                    Op::MeanAll(x) => (OpKind::MeanAll, vec![*x], None),
                    Op::GatAttention { adj, src_scores, dst_scores, h, .. } => (
                        OpKind::GatAttention { n: adj.n_rows() },
                        vec![*src_scores, *dst_scores, *h],
                        None,
                    ),
                    Op::MaskedCrossEntropy { logits, labels, mask, .. } => (
                        OpKind::MaskedCrossEntropy {
                            n_labels: labels.len(),
                            mask_len: mask.len(),
                            mask_max: mask.iter().copied().max().unwrap_or(0),
                        },
                        vec![*logits],
                        None,
                    ),
                };
                NodeSpec { op, inputs, shape: node.value.shape(), param }
            })
            .collect();
        GraphSpec { nodes }
    }

    /// After `backward`, flushes every parameter leaf's accumulated gradient
    /// into the bank's gradient buffers (summing across multiple uses of the
    /// same parameter).
    pub fn apply_grads(&self, bank: &mut ParamBank) {
        for node in &self.nodes {
            if let (Op::Leaf { param: Some(pid) }, Some(grad)) = (&node.op, &node.grad) {
                bank.accumulate_grad(*pid, grad);
            }
        }
    }
}

/// Numerically stable in-place softmax of a row.
fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::ParamBank;
    use amud_graph::CsrMatrix;
    use rand::SeedableRng;

    /// Central finite-difference check: perturbs each entry of the parameter
    /// at `pid`, re-runs `f` (which must rebuild the graph and return the
    /// scalar loss), and compares against the analytic gradient.
    fn grad_check(
        bank: &mut ParamBank,
        pid: crate::optim::ParamId,
        mut f: impl FnMut(&ParamBank) -> (f32, DenseMatrix),
    ) {
        let (_, analytic) = f(bank);
        let eps = 1e-3f32;
        let (rows, cols) = bank.value(pid).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = bank.value(pid).get(r, c);
                bank.value_mut(pid).set(r, c, orig + eps);
                let (lp, _) = f(bank);
                bank.value_mut(pid).set(r, c, orig - eps);
                let (lm, _) = f(bank);
                bank.value_mut(pid).set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                let got = analytic.get(r, c);
                assert!(
                    (numeric - got).abs() < 2e-2 * (1.0 + numeric.abs().max(got.abs())),
                    "grad mismatch at ({r},{c}): numeric {numeric}, analytic {got}"
                );
            }
        }
    }

    fn run_loss(
        bank: &ParamBank,
        pid: crate::optim::ParamId,
        build: impl Fn(&mut Tape, NodeId) -> NodeId,
    ) -> (f32, DenseMatrix) {
        let mut tape = Tape::new();
        let p = tape.param(bank, pid);
        let out = build(&mut tape, p);
        let loss = tape.mean_all(out);
        tape.backward(loss);
        (tape.value(loss).get(0, 0), tape.grad(p))
    }

    fn seeded_param(
        bank: &mut ParamBank,
        rows: usize,
        cols: usize,
        seed: u64,
    ) -> crate::optim::ParamId {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        bank.add(DenseMatrix::xavier_uniform(rows, cols, &mut rng))
    }

    #[test]
    fn matmul_gradient_matches_finite_differences() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 3, 4, 1);
        let x = DenseMatrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.3 - 0.5);
        grad_check(&mut bank, pid, |bank| {
            run_loss(bank, pid, |tape, p| {
                let xn = tape.constant(x.clone());
                let y = tape.matmul(xn, p);
                tape.tanh(y)
            })
        });
    }

    #[test]
    fn matmul_transb_gradient_matches_finite_differences() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 3, 4, 21);
        let other = DenseMatrix::from_fn(5, 4, |r, c| 0.2 * (r as f32 - c as f32));
        grad_check(&mut bank, pid, |bank| {
            run_loss(bank, pid, |tape, p| {
                let o = tape.constant(other.clone());
                let y = tape.matmul_transb(p, o);
                tape.tanh(y)
            })
        });
        // Also check the gradient flowing into the transposed operand.
        let pid2 = seeded_param(&mut bank, 5, 4, 22);
        let left = DenseMatrix::from_fn(3, 4, |r, c| 0.1 * (r + c) as f32 - 0.2);
        grad_check(&mut bank, pid2, |bank| {
            run_loss(bank, pid2, |tape, p| {
                let l = tape.constant(left.clone());
                let y = tape.matmul_transb(l, p);
                tape.sigmoid(y)
            })
        });
    }

    #[test]
    fn spmm_gradient_matches_finite_differences() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 4, 3, 2);
        let s = SparseOp::new(
            CsrMatrix::from_coo(4, 4, vec![(0, 1, 0.5), (1, 2, 1.5), (2, 0, -1.0), (3, 3, 2.0)])
                .unwrap(),
        );
        grad_check(&mut bank, pid, |bank| {
            run_loss(bank, pid, |tape, p| {
                let y = tape.spmm(&s, p);
                tape.sigmoid(y)
            })
        });
    }

    #[test]
    fn elementwise_chain_gradients() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 2, 3, 3);
        let other = DenseMatrix::from_fn(2, 3, |r, c| 0.1 * (r as f32 + 1.0) * (c as f32 - 1.0));
        grad_check(&mut bank, pid, |bank| {
            run_loss(bank, pid, |tape, p| {
                let o = tape.constant(other.clone());
                let prod = tape.mul(p, o);
                let diff = tape.sub(prod, p);
                let act = tape.leaky_relu(diff, 0.2);
                tape.scale(act, 1.7)
            })
        });
    }

    #[test]
    fn add_bias_gradient() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 1, 4, 4);
        let x = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        grad_check(&mut bank, pid, |bank| {
            run_loss(bank, pid, |tape, p| {
                let xn = tape.constant(x.clone());
                let y = tape.add_bias(xn, p);
                tape.relu(y)
            })
        });
    }

    #[test]
    fn scalar_scale_gradient() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 1, 3, 5);
        let x = DenseMatrix::from_fn(2, 2, |r, c| (r + 2 * c) as f32 * 0.4 - 0.3);
        grad_check(&mut bank, pid, |bank| {
            run_loss(bank, pid, |tape, p| {
                let xn = tape.constant(x.clone());
                let a = tape.scalar_scale(p, 0, xn);
                let b = tape.scalar_scale(p, 2, xn);
                tape.add(a, b)
            })
        });
    }

    #[test]
    fn col_scale_gradient() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 3, 2, 6);
        let x = DenseMatrix::from_fn(3, 4, |r, c| ((r * c) as f32).sin());
        grad_check(&mut bank, pid, |bank| {
            run_loss(bank, pid, |tape, p| {
                let xn = tape.constant(x.clone());
                let y0 = tape.col_scale(p, 0, xn);
                let y1 = tape.col_scale(p, 1, xn);
                tape.add(y0, y1)
            })
        });
    }

    #[test]
    fn row_softmax_gradient() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 3, 4, 7);
        grad_check(&mut bank, pid, |bank| run_loss(bank, pid, |tape, p| tape.row_softmax(p)));
    }

    #[test]
    fn concat_slice_gradients() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 2, 3, 8);
        grad_check(&mut bank, pid, |bank| {
            run_loss(bank, pid, |tape, p| {
                let cat = tape.concat_cols(&[p, p]);
                tape.slice_cols(cat, 2, 5)
            })
        });
    }

    #[test]
    fn gat_attention_gradient() {
        let adj = Rc::new(
            CsrMatrix::from_edges(4, 4, vec![(0, 1), (0, 2), (1, 2), (2, 3), (3, 0), (3, 2)])
                .unwrap(),
        );
        // Check gradients through h, src and dst scores in turn.
        for target in 0..3 {
            let mut bank = ParamBank::new();
            let pid = match target {
                0 => seeded_param(&mut bank, 4, 3, 31), // h
                _ => seeded_param(&mut bank, 4, 1, 32 + target as u64),
            };
            let h_const = DenseMatrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.4);
            let s_const = DenseMatrix::from_fn(4, 1, |r, _| 0.3 * r as f32 - 0.5);
            let adj2 = Rc::clone(&adj);
            grad_check(&mut bank, pid, |bank| {
                let mut tape = Tape::new();
                let p = tape.param(bank, pid);
                let (h, s, d) = match target {
                    0 => (p, tape.constant(s_const.clone()), tape.constant(s_const.clone())),
                    1 => (tape.constant(h_const.clone()), p, tape.constant(s_const.clone())),
                    _ => (tape.constant(h_const.clone()), tape.constant(s_const.clone()), p),
                };
                let y = tape.gat_attention(&adj2, s, d, h, 0.2);
                let t = tape.tanh(y);
                let loss = tape.mean_all(t);
                tape.backward(loss);
                (tape.value(loss).get(0, 0), tape.grad(p))
            });
        }
    }

    #[test]
    fn gat_attention_rows_are_convex_combinations() {
        // With uniform scores, attention is a uniform average of
        // neighbours' features.
        let adj = Rc::new(CsrMatrix::from_edges(3, 3, vec![(0, 1), (0, 2)]).unwrap());
        let mut tape = Tape::new();
        let h = tape.constant(DenseMatrix::from_vec(3, 1, vec![0.0, 2.0, 4.0]));
        let z = tape.constant(DenseMatrix::zeros(3, 1));
        let y = tape.gat_attention(&adj, z, z, h, 0.2);
        assert!((tape.value(y).get(0, 0) - 3.0).abs() < 1e-6);
        // Isolated nodes (rows 1, 2) stay zero.
        assert_eq!(tape.value(y).get(1, 0), 0.0);
        assert_eq!(tape.value(y).get(2, 0), 0.0);
    }

    #[test]
    fn cross_entropy_gradient() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 4, 3, 9);
        let labels = Rc::new(vec![0usize, 2, 1, 0]);
        let mask = Rc::new(vec![0usize, 1, 3]);
        let (_, analytic) = {
            let mut tape = Tape::new();
            let p = tape.param(&bank, pid);
            let loss = tape.masked_cross_entropy(p, Rc::clone(&labels), Rc::clone(&mask));
            tape.backward(loss);
            (tape.value(loss).get(0, 0), tape.grad(p))
        };
        let eps = 1e-3f32;
        for r in 0..4 {
            for c in 0..3 {
                let orig = bank.value(pid).get(r, c);
                let eval = |bank: &ParamBank| {
                    let mut tape = Tape::new();
                    let p = tape.param(bank, pid);
                    let loss = tape.masked_cross_entropy(p, Rc::clone(&labels), Rc::clone(&mask));
                    tape.value(loss).get(0, 0)
                };
                bank.value_mut(pid).set(r, c, orig + eps);
                let lp = eval(&bank);
                bank.value_mut(pid).set(r, c, orig - eps);
                let lm = eval(&bank);
                bank.value_mut(pid).set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < 1e-2,
                    "CE grad mismatch at ({r},{c})"
                );
            }
        }
        // Unmasked row 2 must receive zero gradient.
        assert_eq!(analytic.row(2), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn dropout_zeroes_gradient_where_masked() {
        let mut bank = ParamBank::new();
        let pid = seeded_param(&mut bank, 2, 2, 10);
        let mask = Rc::new(vec![2.0f32, 0.0, 2.0, 0.0]);
        let mut tape = Tape::new();
        let p = tape.param(&bank, pid);
        let d = tape.dropout(p, Rc::clone(&mask));
        let loss = tape.mean_all(d);
        tape.backward(loss);
        let g = tape.grad(p);
        assert_eq!(g.get(0, 1), 0.0);
        assert_eq!(g.get(1, 1), 0.0);
        assert!(g.get(0, 0) > 0.0);
    }

    #[test]
    fn constant_subtrees_receive_no_gradient() {
        let bank = ParamBank::new();
        let mut tape = Tape::new();
        let c1 = tape.constant(DenseMatrix::ones(2, 2));
        let c2 = tape.constant(DenseMatrix::ones(2, 2));
        let s = tape.add(c1, c2);
        let loss = tape.mean_all(s);
        tape.backward(loss);
        assert_eq!(tape.grad(c1).sum(), 0.0);
        let _ = bank;
    }

    #[test]
    fn param_used_twice_accumulates_in_bank() {
        let mut bank = ParamBank::new();
        let pid = bank.add(DenseMatrix::ones(1, 1));
        let mut tape = Tape::new();
        let p1 = tape.param(&bank, pid);
        let p2 = tape.param(&bank, pid);
        let s = tape.add(p1, p2);
        let loss = tape.mean_all(s);
        tape.backward(loss);
        tape.apply_grads(&mut bank);
        // d(mean(p + p))/dp = 2
        assert!((bank.grad(pid).get(0, 0) - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "backward root must be scalar")]
    fn backward_requires_scalar_root() {
        let mut tape = Tape::new();
        let c = tape.constant(DenseMatrix::ones(2, 2));
        tape.backward(c);
    }
}
