//! Complex-matrix helpers for magnetic-Laplacian models (MagNet, Sec. II-C).
//!
//! The magnetic Laplacian is a complex Hermitian operator
//! `H = Â_s ⊙ exp(iΘ)` with `Θ = 2πq (A − Aᵀ)`. Rather than adding a
//! complex dtype to the autodiff engine, complex tensors are represented as
//! `(re, im)` pairs of real nodes and the complex products are composed
//! from real ops — the gradients then fall out of the real tape for free.

use crate::tape::{NodeId, SparseOp, Tape};
use amud_graph::CsrMatrix;

/// A complex sparse operator split into real and imaginary parts, each
/// prepared for tape use.
#[derive(Debug, Clone)]
pub struct ComplexSparseOp {
    pub re: SparseOp,
    pub im: SparseOp,
}

impl ComplexSparseOp {
    pub fn new(re: CsrMatrix, im: CsrMatrix) -> Self {
        assert_eq!(
            (re.n_rows(), re.n_cols()),
            (im.n_rows(), im.n_cols()),
            "re/im parts must share a shape"
        );
        Self { re: SparseOp::new(re), im: SparseOp::new(im) }
    }

    /// Builds the normalised magnetic adjacency
    /// `H = D_s^{-1/2} Â_s D_s^{-1/2} ⊙ exp(i 2πq (A − Aᵀ))`,
    /// where `Â_s = ½(A + Aᵀ)` with self-loops. `q ∈ [0, 0.25]` is the
    /// charge parameter: `q = 0` recovers the symmetrised real operator.
    pub fn magnetic(a: &CsrMatrix, q: f32) -> Self {
        assert_eq!(a.n_rows(), a.n_cols(), "magnetic: adjacency must be square");
        let at = a.transpose();
        let sym = match a.add_scaled(0.5, &at, 0.5) {
            Ok(m) => m.with_self_loops(1.0).sym_normalized(),
            // `a` is square (asserted above), so the transpose shares its
            // shape exactly and add_scaled cannot reject it.
            Err(_) => unreachable!("square A and Aᵀ share a shape"),
        };
        let theta_base = std::f32::consts::TAU * q;
        // Phase per entry: 2πq * (A(u,v) − A(v,u)).
        let mut re_triplets = Vec::with_capacity(sym.nnz());
        let mut im_triplets = Vec::with_capacity(sym.nnz());
        for (u, v, w) in sym.iter() {
            let diff = a.get(u, v) - a.get(v, u);
            let theta = theta_base * diff;
            re_triplets.push((u, v, w * theta.cos()));
            let im_val = w * theta.sin();
            if im_val != 0.0 {
                im_triplets.push((u, v, im_val));
            }
        }
        let n = sym.n_rows();
        let Ok(re_mat) = CsrMatrix::from_coo(n, n, re_triplets) else {
            // Every triplet came from `sym.iter()`, which yields u, v < n.
            unreachable!("triplets gathered from sym.iter() are in bounds")
        };
        let im_mat = if im_triplets.is_empty() {
            CsrMatrix::zeros(n, n)
        } else {
            match CsrMatrix::from_coo(n, n, im_triplets) {
                Ok(m) => m,
                // Same provenance as re_triplets: u, v < n from sym.iter().
                Err(_) => unreachable!("triplets gathered from sym.iter() are in bounds"),
            }
        };
        Self::new(re_mat, im_mat)
    }
}

/// A complex tape value: a pair of real nodes.
#[derive(Debug, Clone, Copy)]
pub struct ComplexNode {
    pub re: NodeId,
    pub im: NodeId,
}

/// Complex SpMM: `(re + i·im)(x_re + i·x_im)` expanded into four real
/// products.
pub fn complex_spmm(tape: &mut Tape, op: &ComplexSparseOp, x: ComplexNode) -> ComplexNode {
    let rr = tape.spmm(&op.re, x.re);
    let ii = tape.spmm(&op.im, x.im);
    let ri = tape.spmm(&op.re, x.im);
    let ir = tape.spmm(&op.im, x.re);
    ComplexNode { re: tape.sub(rr, ii), im: tape.add(ri, ir) }
}

/// Complex addition.
pub fn complex_add(tape: &mut Tape, a: ComplexNode, b: ComplexNode) -> ComplexNode {
    ComplexNode { re: tape.add(a.re, b.re), im: tape.add(a.im, b.im) }
}

/// Scales both parts by a real constant.
pub fn complex_scale(tape: &mut Tape, a: ComplexNode, alpha: f32) -> ComplexNode {
    ComplexNode { re: tape.scale(a.re, alpha), im: tape.scale(a.im, alpha) }
}

/// Applies a *real* linear map (shared across parts, as MagNet does with
/// independent weights per part composed at the call site).
pub fn complex_apply(
    tape: &mut Tape,
    a: ComplexNode,
    mut f: impl FnMut(&mut Tape, NodeId) -> NodeId,
) -> ComplexNode {
    ComplexNode { re: f(tape, a.re), im: f(tape, a.im) }
}

/// "Unwinds" a complex node into a real feature matrix by concatenating the
/// real and imaginary parts column-wise (MagNet's final unwind layer).
pub fn complex_unwind(tape: &mut Tape, a: ComplexNode) -> NodeId {
    tape.concat_cols(&[a.re, a.im])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMatrix;

    fn toy_digraph() -> CsrMatrix {
        CsrMatrix::from_edges(4, 4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap()
    }

    #[test]
    fn magnetic_q0_is_real() {
        let a = toy_digraph();
        let h = ComplexSparseOp::magnetic(&a, 0.0);
        assert_eq!(h.im.matrix().nnz(), 0, "q=0 must have no imaginary part");
        // Real part is the symmetric normalised operator: symmetric.
        let re = h.re.matrix();
        for (u, v, w) in re.iter() {
            assert!((re.get(v, u) - w).abs() < 1e-5);
        }
    }

    #[test]
    fn magnetic_is_hermitian() {
        let a = toy_digraph();
        let h = ComplexSparseOp::magnetic(&a, 0.25);
        let (re, im) = (h.re.matrix(), h.im.matrix());
        for (u, v, w) in re.iter() {
            assert!((re.get(v, u) - w).abs() < 1e-5, "re must be symmetric");
        }
        for (u, v, w) in im.iter() {
            assert!((im.get(v, u) + w).abs() < 1e-5, "im must be antisymmetric");
        }
    }

    #[test]
    fn magnetic_phase_only_on_asymmetric_edges() {
        // Mutual pair (0,1)/(1,0) should have zero phase; one-way (1,2) not.
        let a = CsrMatrix::from_edges(3, 3, vec![(0, 1), (1, 0), (1, 2)]).unwrap();
        let h = ComplexSparseOp::magnetic(&a, 0.25);
        assert_eq!(h.im.matrix().get(0, 1), 0.0);
        assert!(h.im.matrix().get(1, 2).abs() > 1e-6);
    }

    #[test]
    fn complex_spmm_matches_manual_expansion() {
        let a = toy_digraph();
        let h = ComplexSparseOp::magnetic(&a, 0.1);
        let mut tape = Tape::new();
        let xr = DenseMatrix::from_fn(4, 2, |r, c| (r + c) as f32 * 0.5);
        let xi = DenseMatrix::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.3);
        let x = ComplexNode { re: tape.constant(xr.clone()), im: tape.constant(xi.clone()) };
        let y = complex_spmm(&mut tape, &h, x);
        // Manual: y_re = Hre·xr − Him·xi
        let mut hr_xr = DenseMatrix::zeros(4, 2);
        h.re.matrix().spmm(xr.as_slice(), 2, hr_xr.as_mut_slice());
        let mut hi_xi = DenseMatrix::zeros(4, 2);
        h.im.matrix().spmm(xi.as_slice(), 2, hi_xi.as_mut_slice());
        let mut expected = hr_xr.clone();
        expected.add_scaled_assign(&hi_xi, -1.0);
        for (got, want) in tape.value(y.re).as_slice().iter().zip(expected.as_slice()) {
            assert!((got - want).abs() < 1e-5);
        }
    }

    #[test]
    fn unwind_concatenates() {
        let mut tape = Tape::new();
        let x = ComplexNode {
            re: tape.constant(DenseMatrix::ones(2, 3)),
            im: tape.constant(DenseMatrix::zeros(2, 3)),
        };
        let u = complex_unwind(&mut tape, x);
        assert_eq!(tape.value(u).shape(), (2, 6));
    }
}
