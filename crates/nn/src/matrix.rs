//! Row-major dense `f32` matrices.
//!
//! This is deliberately a plain struct over `Vec<f32>`: all shapes in the
//! reproduction are known at runtime only, and the hot kernels (matmul in
//! its three transposition flavours, elementwise maps) are hand-written
//! loops arranged for cache-friendly row streaming, per the Rust
//! performance-book guidance (no bounds checks in inner loops thanks to
//! slice windows, no allocation inside kernels).

use rand::Rng;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// All-one matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Self { rows, cols, data }
    }

    /// Builds elementwise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Glorot/Xavier uniform initialisation: `U(−a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`. The standard initialisation for
    /// the linear layers of every model in the paper.
    pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` — the classic ikj loop: streams `other` row-wise so the
    /// inner loop is a contiguous axpy.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions differ");
        debug_assert!(self.data.iter().all(|v| v.is_finite()), "matmul: non-finite lhs entry");
        debug_assert!(other.data.iter().all(|v| v.is_finite()), "matmul: non-finite rhs entry");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` — inner loop is a dot product of two contiguous rows.
    pub fn matmul_transb(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.cols, "matmul_transb: inner dimensions differ");
        debug_assert!(
            self.data.iter().chain(&other.data).all(|v| v.is_finite()),
            "matmul_transb: non-finite operand entry"
        );
        let mut out = DenseMatrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` — accumulates rank-1 updates row by row.
    pub fn matmul_transa(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows, "matmul_transa: inner dimensions differ");
        debug_assert!(
            self.data.iter().chain(&other.data).all(|v| v.is_finite()),
            "matmul_transa: non-finite operand entry"
        );
        let mut out = DenseMatrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `self += alpha * other` (same shape).
    pub fn add_scaled_assign(&mut self, other: &DenseMatrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise sum of two matrices.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let mut out = self.clone();
        out.add_scaled_assign(other, 1.0);
        out
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "hadamard: shape mismatch");
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// Scales all entries by `alpha`.
    pub fn scale(&self, alpha: f32) -> DenseMatrix {
        self.map(|x| alpha * x)
    }

    /// Horizontally concatenates matrices (all must share a row count).
    ///
    /// # Panics
    /// Panics on an empty list or mismatched row counts.
    pub fn concat_cols(parts: &[&DenseMatrix]) -> DenseMatrix {
        assert!(!parts.is_empty(), "concat_cols needs at least one matrix");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "concat_cols: all parts must share a row count"
        );
        let total_cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = DenseMatrix::zeros(rows, total_cols);
        for r in 0..rows {
            let out_row = out.row_mut(r);
            let mut offset = 0;
            for p in parts {
                out_row[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> DenseMatrix {
        assert!(start <= end && end <= self.cols, "slice_cols: bad range");
        let mut out = DenseMatrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Per-row index of the maximum entry — the predicted class per node.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits must not be NaN"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Row-wise L2 normalisation (zero rows stay zero).
    pub fn l2_normalize_rows(&self) -> DenseMatrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_mut(r);
            let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for x in row {
                    *x /= norm;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn a() -> DenseMatrix {
        DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> DenseMatrix {
        DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b());
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let bt = b().transpose();
        let via_transb = a().matmul_transb(&bt);
        let direct = a().matmul(&b());
        assert_eq!(via_transb.as_slice(), direct.as_slice());
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let explicit = a().transpose().matmul(&a());
        let fused = a().matmul_transa(&a());
        assert_eq!(explicit.as_slice(), fused.as_slice());
    }

    #[test]
    fn transpose_roundtrip() {
        assert_eq!(a().transpose().transpose(), a());
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let m = a();
        let cat = DenseMatrix::concat_cols(&[&m, &m]);
        assert_eq!(cat.cols(), 6);
        assert_eq!(cat.slice_cols(0, 3), m);
        assert_eq!(cat.slice_cols(3, 6), m);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let m = DenseMatrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 2.0, -1.0, 0.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = DenseMatrix::xavier_uniform(10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(m.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let m = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        let n = m.l2_normalize_rows();
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn hadamard_and_scale() {
        let m = a();
        assert_eq!(m.hadamard(&m).as_slice(), &[1.0, 4.0, 9.0, 16.0, 25.0, 36.0]);
        assert_eq!(m.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        let _ = a().matmul(&a());
    }
}
