//! Row-major dense `f32` matrices.
//!
//! This is deliberately a plain struct over `Vec<f32>`: all shapes in the
//! reproduction are known at runtime only, and the hot kernels (matmul in
//! its three transposition flavours, elementwise maps) are hand-written
//! loops arranged for cache-friendly row streaming, per the Rust
//! performance-book guidance (no bounds checks in inner loops thanks to
//! slice windows, no allocation inside kernels).
//!
//! The hot kernels are register-blocked lane microkernels from
//! `amud_par::lanes` running on the `amud-par` runtime (DESIGN.md §9, §14):
//!
//! * `matmul` keeps the classic ikj axpy orientation but blocks `k` by 4
//!   ([`lanes::lane_axpy4`]): the output row stays register-resident
//!   across four weighted input rows. Per output element the
//!   floating-point op sequence is *unchanged* (ascending `k`, one
//!   `+=`-fused multiply-add per term), so the blocking is bitwise inert.
//! * `matmul_transb` reduces each output element through the canonical
//!   lane-fold order (`amud_par::lane_dot`, computed four outputs at a
//!   time by [`lanes::lane_dot4`]) — the one kernel whose reduction order
//!   changed when the microkernels landed, because the legacy scalar dot
//!   was a single serial FP dependency chain the hardware could not
//!   pipeline. The lane order is a pure function of the k-extent, so it
//!   is still identical across thread counts.
//! * `matmul_transa` (the gradient path) scatters along its `k` loop, so
//!   it is computed as per-block partial products over a **fixed** k-block
//!   structure ([`TRANSA_BLOCK_ROWS`] rows per block, independent of the
//!   thread count) folded in ascending block order; inside a block the
//!   scatter is the same 4-way `lane_axpy4` as `matmul`, ascending `k`
//!   per element — deterministic at any thread count, and bit-identical
//!   to the legacy serial kernel.
//! * the elementwise helpers (`map`, `par_zip_assign`, `par_rows_mut`)
//!   split on fixed element/row boundaries; per-element work is
//!   order-free, so they are bit-identical to serial.
//!
//! Small inputs skip the pool entirely via *per-part* work thresholds: a
//! shape fans out into `p` parts only if every part carries at least the
//! threshold's worth of work, so sub-threshold shapes (e.g. a 1200×128
//! row softmax) run the serial path instead of paying pool handoff for
//! microsecond-scale row loops. The part count is a pure function of
//! (shape, thread budget), so the serial/parallel decision is itself
//! deterministic — and by the bit-identity contract the choice is
//! unobservable in the output bits.

use amud_par::lanes;
use rand::Rng;
use std::ops::Range;

/// Minimum multiply-adds *per part* before a matmul-family kernel fans
/// out: a part below ~32k mul-adds finishes in single-digit microseconds,
/// comparable to the pool handoff itself.
const PAR_MIN_FLOPS_PER_PART: usize = 1 << 15;
/// Minimum elements *per part* for the streaming helpers (elementwise
/// maps, row softmax/normalise, argmax). These are memory-bound single
/// passes — far cheaper per element than a matmul flop — so the bar for
/// fanning out is correspondingly higher (256k elements ≈ 1 MiB per
/// part). This is what keeps a 1200×128 softmax on the serial path.
const PAR_MIN_STREAM_ELEMS_PER_PART: usize = 1 << 18;
/// Fixed k-extent of one `matmul_transa` reduction block. Chosen above the
/// default replica node cap (1200) so every tier-1 training shape stays in
/// the single-block regime and reproduces the legacy serial kernel bit for
/// bit; large (full-scale) shapes split into at most [`TRANSA_MAX_BLOCKS`]
/// blocks regardless of thread count.
const TRANSA_BLOCK_ROWS: usize = 2048;
/// Cap on `matmul_transa` partial buffers (bounds scratch memory).
const TRANSA_MAX_BLOCKS: usize = 64;

/// Part count for `work` total units under a `min_per_part` granularity
/// floor: as many parts as the thread budget allows while keeping every
/// part at or above the floor. Purely (shape, budget)-driven.
fn bounded_parts(work: usize, min_per_part: usize) -> usize {
    amud_par::current_threads().min(work / min_per_part.max(1)).max(1)
}

/// Output-row partition for the matmul-family kernels: up to one range
/// per participating thread, fewer when rows are scarce or each part
/// would fall under [`PAR_MIN_FLOPS_PER_PART`]. Purely shape-driven.
///
/// Public so sibling crates that implement matmul-shaped kernels over
/// non-f32 operands (`amud-quant`'s fused dequant GEMM) partition with
/// the *same* policy and inherit the same serial/parallel decision.
pub fn output_row_parts(n_rows: usize, flops_per_row: usize) -> Vec<Range<usize>> {
    let parts = bounded_parts(n_rows.saturating_mul(flops_per_row), PAR_MIN_FLOPS_PER_PART)
        .min(n_rows.max(1));
    if parts <= 1 {
        std::iter::once(0..n_rows).collect()
    } else {
        amud_par::split_even(n_rows, parts)
    }
}

/// Row partition for the streaming per-row helpers (softmax, normalise,
/// argmax): same policy as [`output_row_parts`] under the higher
/// [`PAR_MIN_STREAM_ELEMS_PER_PART`] granularity floor.
fn stream_row_parts(n_rows: usize, elems_per_row: usize) -> Vec<Range<usize>> {
    let parts = bounded_parts(n_rows.saturating_mul(elems_per_row), PAR_MIN_STREAM_ELEMS_PER_PART)
        .min(n_rows.max(1));
    if parts <= 1 {
        std::iter::once(0..n_rows).collect()
    } else {
        amud_par::split_even(n_rows, parts)
    }
}

/// Element partition for the elementwise helpers (streaming policy).
fn elem_parts(len: usize) -> Vec<Range<usize>> {
    let parts = bounded_parts(len, PAR_MIN_STREAM_ELEMS_PER_PART).min(len.max(1));
    if parts <= 1 {
        std::iter::once(0..len).collect()
    } else {
        amud_par::split_even(len, parts)
    }
}

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// All-one matrix.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Self { rows, cols, data }
    }

    /// Builds elementwise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Glorot/Xavier uniform initialisation: `U(−a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`. The standard initialisation for
    /// the linear layers of every model in the paper.
    pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        // BOUNDS(data): row-major invariant — data.len() == rows · cols;
        // callers pass r < rows and c < cols.
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        // BOUNDS(data): row-major invariant — data.len() == rows · cols;
        // callers pass r < rows and c < cols.
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        // BOUNDS(data): row-major invariant — data.len() == rows · cols and
        // callers pass r < rows.
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        // BOUNDS(data): row-major invariant — data.len() == rows · cols and
        // callers pass r < rows.
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` — the classic ikj orientation, k-blocked by 4 so one
    /// [`lanes::lane_axpy4`] call streams four rows of `other` into a
    /// register-resident window of the output row. Output rows are computed
    /// in parallel blocks.
    ///
    /// Bit-identical to the legacy scalar ikj loop (and therefore across
    /// thread counts): every output element still accumulates its terms in
    /// ascending `k` order, one fused `+= a·b` per term. Zero weights are
    /// skipped a block at a time; adding a `±0.0` term is exact-identity
    /// here because an accumulator that starts at `+0.0` can never become
    /// `-0.0`, so skipping or including such terms cannot change a bit.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions differ");
        debug_assert!(self.data.iter().all(|v| v.is_finite()), "matmul: non-finite lhs entry");
        debug_assert!(other.data.iter().all(|v| v.is_finite()), "matmul: non-finite rhs entry");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        if other.cols == 0 {
            return out;
        }
        let parts = output_row_parts(self.rows, self.cols * other.cols);
        let k_main = self.cols - self.cols % 4;
        amud_par::par_row_blocks_mut(&mut out.data, other.cols, &parts, |_, rows, block| {
            for (out_row, i) in block.chunks_exact_mut(other.cols).zip(rows) {
                let a_row = self.row(i);
                for kb in 0..k_main / 4 {
                    let k = kb * 4;
                    let w = [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]];
                    if w == [0.0; 4] {
                        continue;
                    }
                    lanes::lane_axpy4(
                        out_row,
                        w,
                        other.row(k),
                        other.row(k + 1),
                        other.row(k + 2),
                        other.row(k + 3),
                    );
                }
                for (k, &a) in a_row.iter().enumerate().skip(k_main) {
                    if a == 0.0 {
                        continue;
                    }
                    lanes::lane_axpy(out_row, a, other.row(k));
                }
            }
        });
        out
    }

    /// `self · otherᵀ` — each output element is a dot of two contiguous
    /// rows, reduced in the canonical lane-fold order
    /// ([`amud_par::lane_dot`]) and computed four outputs at a time by
    /// [`lanes::lane_dot4`] so the loads of `self`'s row are shared across
    /// four independent accumulator chains. The legacy scalar dot was a
    /// single serial FP-add dependency chain (~4 cycles per element); the
    /// lane fold runs eight chains wide and is the reason this kernel now
    /// tracks `matmul`'s throughput instead of trailing it 4×.
    ///
    /// The reduction tree depends only on the k-extent, so the result is
    /// bit-identical at any thread count (tail outputs — `j ≥ 4·⌊n/4⌋` —
    /// go through `lane_dot` directly, which `lane_dot4` matches bitwise).
    pub fn matmul_transb(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.cols, "matmul_transb: inner dimensions differ");
        debug_assert!(
            self.data.iter().chain(&other.data).all(|v| v.is_finite()),
            "matmul_transb: non-finite operand entry"
        );
        let mut out = DenseMatrix::zeros(self.rows, other.rows);
        if other.rows == 0 {
            return out;
        }
        let parts = output_row_parts(self.rows, self.cols * other.rows);
        let j_main = other.rows - other.rows % 4;
        amud_par::par_row_blocks_mut(&mut out.data, other.rows, &parts, |_, rows, block| {
            for (out_row, i) in block.chunks_exact_mut(other.rows).zip(rows) {
                let a_row = self.row(i);
                for jb in 0..j_main / 4 {
                    let j = jb * 4;
                    let d = lanes::lane_dot4(
                        a_row,
                        other.row(j),
                        other.row(j + 1),
                        other.row(j + 2),
                        other.row(j + 3),
                    );
                    out_row[j..j + 4].copy_from_slice(&d);
                }
                for (j, o) in out_row.iter_mut().enumerate().skip(j_main) {
                    *o = amud_par::lane_dot(a_row, other.row(j));
                }
            }
        });
        out
    }

    /// Builds a one-time interleaved pack of `self` for repeated
    /// [`DenseMatrix::matmul_transb_packed`] multiplies against it.
    ///
    /// `matmul_transb` streams four strided rows of B per output block;
    /// when the *same* B is multiplied many times (per-epoch weight
    /// gradients, per-query scorer weights) that stride cost is paid on
    /// every call. The pack pays it once: the cache-blocked
    /// [`DenseMatrix::transpose`] does the heavy reordering, then a
    /// sequential copy interleaves each aligned group of four B rows into
    /// one contiguous stream (`blocks[jb][k*4 + m] = B[4jb+m][k]`).
    /// Leftover rows (`rows % 4`) stay row-major and take the `lane_dot`
    /// tail path unchanged.
    pub fn pack_transb(&self) -> PackedTransB {
        let j_main = self.rows - self.rows % 4;
        let bt = self.transpose();
        let mut blocks = Vec::with_capacity(j_main * self.cols);
        // BOUNDS(row, data): bt = transpose() swaps dims, so bt.row(k) has
        // self.rows ≥ j_main elements; j_main ≤ rows keeps the tail start
        // inside data.
        for jb in 0..j_main / 4 {
            for k in 0..self.cols {
                blocks.extend_from_slice(&bt.row(k)[jb * 4..jb * 4 + 4]);
            }
        }
        let tail = self.data[j_main * self.cols..].to_vec();
        PackedTransB { n_rows: self.rows, cols: self.cols, blocks, tail }
    }

    /// `self · Bᵀ` against a pre-packed B — bit-identical to
    /// [`DenseMatrix::matmul_transb`] on the matrix the pack was built
    /// from.
    ///
    /// Same output-row partition, and per output the identical reduction:
    /// packed blocks run [`lanes::lane_dot4_interleaved`] (pinned bitwise
    /// to `lane_dot4`, which is pinned to `lane_dot`), tail outputs run
    /// `lane_dot` on the row-major tail rows.
    pub fn matmul_transb_packed(&self, packed: &PackedTransB) -> DenseMatrix {
        assert_eq!(self.cols, packed.cols, "matmul_transb_packed: inner dimensions differ");
        let mut out = DenseMatrix::zeros(self.rows, packed.n_rows);
        if packed.n_rows == 0 {
            return out;
        }
        let parts = output_row_parts(self.rows, self.cols * packed.n_rows);
        let j_main = packed.n_rows - packed.n_rows % 4;
        let block_len = packed.cols * 4;
        amud_par::par_row_blocks_mut(&mut out.data, packed.n_rows, &parts, |_, rows, block| {
            for (out_row, i) in block.chunks_exact_mut(packed.n_rows).zip(rows) {
                let a_row = self.row(i);
                // BOUNDS(blocks, tail): PackedTransB invariant — blocks
                // holds j_main/4 interleaved blocks of cols · 4 entries and
                // tail the remaining n_rows − j_main rows row-major.
                for jb in 0..j_main / 4 {
                    let b4 = &packed.blocks[jb * block_len..(jb + 1) * block_len];
                    let d = lanes::lane_dot4_interleaved(a_row, b4);
                    out_row[jb * 4..jb * 4 + 4].copy_from_slice(&d);
                }
                for (j, o) in out_row.iter_mut().enumerate().skip(j_main) {
                    let t =
                        &packed.tail[(j - j_main) * packed.cols..(j - j_main + 1) * packed.cols];
                    *o = amud_par::lane_dot(a_row, t);
                }
            }
        });
        out
    }

    /// `selfᵀ · other` — accumulates rank-1 updates row by row.
    ///
    /// The scatter runs over a *fixed* k-block structure: `self.rows` is cut
    /// into `ceil(rows / TRANSA_BLOCK_ROWS)` blocks (capped at
    /// [`TRANSA_MAX_BLOCKS`]) that depend only on the shape, each block's
    /// partial product is computed independently (in parallel), and the
    /// partials are folded in ascending block order on one thread. One
    /// block ⇒ the fold degenerates to the legacy serial kernel, which is
    /// the case for every default-scale dataset (k ≤ 1200 < 2048).
    pub fn matmul_transa(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows, "matmul_transa: inner dimensions differ");
        debug_assert!(
            self.data.iter().chain(&other.data).all(|v| v.is_finite()),
            "matmul_transa: non-finite operand entry"
        );
        let mut out = DenseMatrix::zeros(self.cols, other.cols);
        let out_len = out.data.len();
        // Block count is a pure function of the k-extent — never of the
        // thread count — so the summation tree is the same everywhere.
        let n_blocks = if self.rows == 0 {
            1
        } else {
            self.rows.div_ceil(TRANSA_BLOCK_ROWS).min(TRANSA_MAX_BLOCKS)
        };
        if n_blocks == 1 || out_len == 0 {
            Self::transa_block(self, other, 0..self.rows, &mut out.data);
            return out;
        }
        let k_ranges = amud_par::split_even(self.rows, n_blocks);
        // DISJOINT: singleton ranges b..b+1 tile 0..n_blocks in ascending
        // order without overlap; each block owns one partial buffer.
        let block_parts: Vec<Range<usize>> = (0..n_blocks).map(|b| b..b + 1).collect();
        let mut partials = vec![0.0f32; n_blocks * out_len];
        // BOUNDS(k_ranges, partials): split_even returns exactly n_blocks
        // ranges and b < n_blocks; partials holds n_blocks · out_len ≥
        // out_len elements (n_blocks ≥ 1 — the rows == 0 case returned).
        amud_par::par_row_blocks_mut(&mut partials, out_len, &block_parts, |b, _, partial| {
            Self::transa_block(self, other, k_ranges[b].clone(), partial);
        });
        // Ascending-order fold; block 0 is copied (not added to the zero
        // buffer) so signed zeros survive exactly as the block produced them.
        out.data.copy_from_slice(&partials[..out_len]);
        for partial in partials.chunks_exact(out_len).skip(1) {
            for (o, &p) in out.data.iter_mut().zip(partial) {
                *o += p;
            }
        }
        out
    }

    /// One k-block of the `selfᵀ · other` scatter restricted to `ks`,
    /// accumulating into `acc` (length `cols·other.cols`).
    ///
    /// Like `matmul`, the loop is k-blocked by 4 over [`lanes::lane_axpy4`]
    /// with an all-zero-weight block skip; per output element the terms
    /// still arrive in ascending `k` order, one fused `+= a·b` each, so
    /// this is bit-identical to the legacy serial scatter (the ±0.0-skip
    /// argument from `matmul` applies verbatim — `acc` starts at `+0.0`).
    fn transa_block(a: &DenseMatrix, b: &DenseMatrix, ks: Range<usize>, acc: &mut [f32]) {
        if a.cols == 0 || b.cols == 0 {
            return;
        }
        let len = ks.end - ks.start;
        let main = len - len % 4;
        for kb in 0..main / 4 {
            let k = ks.start + kb * 4;
            let (a0, a1, a2, a3) = (a.row(k), a.row(k + 1), a.row(k + 2), a.row(k + 3));
            let (b0, b1, b2, b3) = (b.row(k), b.row(k + 1), b.row(k + 2), b.row(k + 3));
            // BOUNDS(a0, a1, a2, a3): acc.len() == a.cols · b.cols, so
            // chunks_exact(b.cols) yields i < a.cols — the row length of a.
            for (i, out_row) in acc.chunks_exact_mut(b.cols).enumerate() {
                let w = [a0[i], a1[i], a2[i], a3[i]];
                if w == [0.0; 4] {
                    continue;
                }
                lanes::lane_axpy4(out_row, w, b0, b1, b2, b3);
            }
        }
        for k in ks.start + main..ks.end {
            let a_row = a.row(k);
            let b_row = b.row(k);
            // BOUNDS(a_row): acc.len() == a.cols · b.cols, so
            // chunks_exact(b.cols) yields i < a.cols — the row length of a.
            for (i, out_row) in acc.chunks_exact_mut(b.cols).enumerate() {
                let av = a_row[i];
                if av == 0.0 {
                    continue;
                }
                lanes::lane_axpy(out_row, av, b_row);
            }
        }
    }

    /// Out-of-place transpose, tiled `TRANSPOSE_BLOCK × TRANSPOSE_BLOCK` so
    /// both the read and the write footprint of a tile stay cache-resident,
    /// and parallel over output-row blocks (pure assignment — order-free).
    pub fn transpose(&self) -> DenseMatrix {
        const TRANSPOSE_BLOCK: usize = 32;
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        if self.data.is_empty() {
            return out;
        }
        let parts = stream_row_parts(self.cols, self.rows);
        amud_par::par_row_blocks_mut(&mut out.data, self.rows, &parts, |_, cols, block| {
            for r0 in (0..self.rows).step_by(TRANSPOSE_BLOCK) {
                let r1 = (r0 + TRANSPOSE_BLOCK).min(self.rows);
                for c0 in (cols.start..cols.end).step_by(TRANSPOSE_BLOCK) {
                    let c1 = (c0 + TRANSPOSE_BLOCK).min(cols.end);
                    // BOUNDS(block, out_row, data): the partition hands this
                    // closure (cols.end − cols.start) · rows elements;
                    // r < rows and c < cols.end ≤ self.cols stay inside both
                    // block and the row-major data.
                    for c in c0..c1 {
                        let out_row = &mut block[(c - cols.start) * self.rows..];
                        for (r, o) in
                            out_row[r0..r1].iter_mut().enumerate().map(|(i, o)| (r0 + i, o))
                        {
                            *o = self.data[r * self.cols + c];
                        }
                    }
                }
            }
        });
        out
    }

    /// Elementwise map into a new matrix, parallel over fixed element
    /// ranges (each element depends only on its own input — order-free).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        let parts = elem_parts(self.data.len());
        // BOUNDS(data): elem_parts ranges tile 0..data.len() — the same
        // invariant the runtime disjointness sanitizer checks.
        amud_par::par_row_blocks_mut(&mut out.data, 1, &parts, |_, range, chunk| {
            for (o, &x) in chunk.iter_mut().zip(&self.data[range]) {
                *o = f(x);
            }
        });
        out
    }

    /// In-place elementwise zip with a same-length slice:
    /// `f(&mut self[i], other[i])` for every `i`, parallel over fixed
    /// element ranges. The autodiff backward pass runs its elementwise
    /// gradient rules through this.
    ///
    /// # Panics
    /// Panics if `other.len() != rows * cols`.
    pub fn par_zip_assign(&mut self, other: &[f32], f: impl Fn(&mut f32, f32) + Sync) {
        assert_eq!(self.data.len(), other.len(), "par_zip_assign: length mismatch");
        let parts = elem_parts(self.data.len());
        // BOUNDS(other): asserted other.len() == data.len(), and the
        // elem_parts ranges tile exactly that length.
        amud_par::par_row_blocks_mut(&mut self.data, 1, &parts, |_, range, chunk| {
            for (a, &b) in chunk.iter_mut().zip(&other[range]) {
                f(a, b);
            }
        });
    }

    /// Runs `f(r, row)` over every row, parallel over fixed row blocks.
    /// Each row is processed by the same scalar code as a serial loop, so
    /// per-row transforms (softmax, normalisation) stay bit-identical.
    pub fn par_rows_mut(&mut self, f: impl Fn(usize, &mut [f32]) + Sync) {
        if self.cols == 0 {
            return;
        }
        let parts = stream_row_parts(self.rows, self.cols);
        let cols = self.cols;
        amud_par::par_row_blocks_mut(&mut self.data, cols, &parts, |_, rows, block| {
            for (row, r) in block.chunks_exact_mut(cols).zip(rows) {
                f(r, row);
            }
        });
    }

    /// `self += alpha * other` (same shape).
    pub fn add_scaled_assign(&mut self, other: &DenseMatrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled_assign: shape mismatch");
        self.par_zip_assign(&other.data, move |a, b| *a += alpha * b);
    }

    /// Elementwise sum of two matrices.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let mut out = self.clone();
        out.add_scaled_assign(other, 1.0);
        out
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "hadamard: shape mismatch");
        let mut out = self.clone();
        out.par_zip_assign(&other.data, |a, b| *a *= b);
        out
    }

    /// Scales all entries by `alpha`.
    pub fn scale(&self, alpha: f32) -> DenseMatrix {
        self.map(|x| alpha * x)
    }

    /// Horizontally concatenates matrices (all must share a row count).
    ///
    /// # Panics
    /// Panics on an empty list or mismatched row counts.
    pub fn concat_cols(parts: &[&DenseMatrix]) -> DenseMatrix {
        assert!(!parts.is_empty(), "concat_cols needs at least one matrix");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "concat_cols: all parts must share a row count"
        );
        let total_cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = DenseMatrix::zeros(rows, total_cols);
        for r in 0..rows {
            let out_row = out.row_mut(r);
            let mut offset = 0;
            // BOUNDS(out_row): offset accumulates part widths that sum to
            // total_cols — exactly the row length of out.
            for p in parts {
                out_row[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> DenseMatrix {
        assert!(start <= end && end <= self.cols, "slice_cols: bad range");
        let mut out = DenseMatrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Per-row index of the maximum entry — the predicted class per node.
    /// Parallel over fixed row ranges; each row's scan is independent.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.rows];
        let parts = stream_row_parts(self.rows, self.cols);
        amud_par::par_row_blocks_mut(&mut out, 1, &parts, |_, rows, chunk| {
            for (o, r) in chunk.iter_mut().zip(rows) {
                *o = self
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
            }
        });
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Row-wise L2 normalisation (zero rows stay zero). The squared norm
    /// reduces in the canonical lane-fold order — a per-row function of
    /// the column count only, so thread-invariant like every lane fold.
    pub fn l2_normalize_rows(&self) -> DenseMatrix {
        let mut out = self.clone();
        out.par_rows_mut(|_, row| {
            let norm = amud_par::lane_dot(row, row).sqrt();
            if norm > 1e-12 {
                for x in row {
                    *x /= norm;
                }
            }
        });
        out
    }
}

/// One-time interleaved pack of a B matrix for repeated
/// [`DenseMatrix::matmul_transb_packed`] calls — see
/// [`DenseMatrix::pack_transb`] for the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTransB {
    /// Row count of the packed B (the output column count).
    n_rows: usize,
    /// Column count of the packed B (the shared inner dimension).
    cols: usize,
    /// `⌊n_rows/4⌋` interleaved blocks of `cols·4` floats:
    /// `blocks[jb·cols·4 + k·4 + m] = B[4·jb + m][k]`.
    blocks: Vec<f32>,
    /// The `n_rows % 4` leftover rows, row-major.
    tail: Vec<f32>,
}

impl PackedTransB {
    /// Row count of the matrix this pack was built from.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Column count (inner dimension) of the matrix this pack was built
    /// from.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn a() -> DenseMatrix {
        DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    fn b() -> DenseMatrix {
        DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0])
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b());
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let bt = b().transpose();
        let via_transb = a().matmul_transb(&bt);
        let direct = a().matmul(&b());
        assert_eq!(via_transb.as_slice(), direct.as_slice());
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let explicit = a().transpose().matmul(&a());
        let fused = a().matmul_transa(&a());
        assert_eq!(explicit.as_slice(), fused.as_slice());
    }

    #[test]
    fn transpose_roundtrip() {
        assert_eq!(a().transpose().transpose(), a());
    }

    #[test]
    fn packed_transb_is_bit_identical_to_matmul_transb() {
        // Shapes cover the interleaved block path, the row-major tail
        // (n % 4), sub-lane k extents, and parallel-partition sizes.
        for (m, k, n) in [(2, 3, 3), (5, 7, 9), (16, 8, 4), (33, 65, 30), (64, 128, 47)] {
            let a = DenseMatrix::from_fn(m, k, |r, c| ((r * 31 + c * 17) as f32 * 0.7).sin());
            let b = DenseMatrix::from_fn(n, k, |r, c| ((r * 13 + c * 29) as f32 * 0.3).cos());
            let packed = b.pack_transb();
            let via_pack = a.matmul_transb_packed(&packed);
            let direct = a.matmul_transb(&b);
            assert_eq!(via_pack.rows(), direct.rows());
            assert_eq!(via_pack.cols(), direct.cols());
            for (x, y) in via_pack.as_slice().iter().zip(direct.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m} k={k} n={n}");
            }
        }
    }

    #[test]
    fn packed_transb_handles_degenerate_shapes() {
        let lhs = DenseMatrix::zeros(3, 0);
        let rhs = DenseMatrix::zeros(5, 0);
        let out = lhs.matmul_transb_packed(&rhs.pack_transb());
        assert_eq!(out.shape(), (3, 5));
        let empty = DenseMatrix::zeros(0, 3);
        assert_eq!(a().matmul_transb_packed(&empty.pack_transb()).shape(), (2, 0));
    }

    #[test]
    fn packed_transb_is_thread_count_invariant() {
        let a = DenseMatrix::from_fn(40, 24, |r, c| ((r * 7 + c) as f32 * 0.11).sin());
        let b = DenseMatrix::from_fn(22, 24, |r, c| ((r + c * 5) as f32 * 0.23).cos());
        let reference = amud_par::with_threads(1, || a.matmul_transb_packed(&b.pack_transb()));
        for threads in [2, 3, 8] {
            let got = amud_par::with_threads(threads, || a.matmul_transb_packed(&b.pack_transb()));
            for (x, y) in got.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let m = a();
        let cat = DenseMatrix::concat_cols(&[&m, &m]);
        assert_eq!(cat.cols(), 6);
        assert_eq!(cat.slice_cols(0, 3), m);
        assert_eq!(cat.slice_cols(3, 6), m);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let m = DenseMatrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 2.0, -1.0, 0.0]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let m = DenseMatrix::xavier_uniform(10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(m.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let m = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        let n = m.l2_normalize_rows();
        assert!((n.row(0)[0] - 0.6).abs() < 1e-6);
        assert!((n.row(0)[1] - 0.8).abs() < 1e-6);
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn hadamard_and_scale() {
        let m = a();
        assert_eq!(m.hadamard(&m).as_slice(), &[1.0, 4.0, 9.0, 16.0, 25.0, 36.0]);
        assert_eq!(m.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        let _ = a().matmul(&a());
    }
}
