//! # amud-graph
//!
//! Sparse directed-graph substrate for the AMUD/ADPA reproduction.
//!
//! This crate provides everything the paper's data-engineering layer needs
//! and nothing it does not:
//!
//! * [`csr::CsrMatrix`] — a compressed-sparse-row matrix with the operations
//!   graph learning actually uses: transpose, sparse×dense products, boolean
//!   sparse×sparse products (for directed-pattern operators), degree
//!   normalisation and self-loops.
//! * [`digraph::DiGraph`] — a directed graph with labelled nodes, undirected
//!   transformation (the paper's "coarse undirected transformation"), and
//!   degree statistics.
//! * [`measures`] — the homophily measures of Sec. II-B: node, edge, class,
//!   adjusted homophily and label informativeness, each computable on the
//!   directed or undirected view (Table I).
//! * [`patterns`] — directed-pattern (DP) operator construction: `A`, `Aᵀ`,
//!   the four 2-order products `AA, AᵀAᵀ, AAᵀ, AᵀA`, and the general order-N
//!   enumeration used by ADPA (Sec. IV-B).
//! * [`generate`] — low-level random-digraph helpers used by the synthetic
//!   dataset generators.
//! * [`io`] — plain-text persistence for labelled digraphs.
//!
//! All index types are `u32` internally (graphs in the paper top out at
//! ~25k nodes); public APIs use `usize`.
//!
//! ```
//! use amud_graph::{DiGraph, DirectedPattern};
//! use amud_graph::measures::edge_homophily;
//!
//! // A 4-node digraph with labels: 0 → 1 → 2 → 3 → 0.
//! let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)])
//!     .unwrap()
//!     .with_labels(vec![0, 0, 1, 1], 2)
//!     .unwrap();
//! assert_eq!(g.n_edges(), 4);
//! assert_eq!(edge_homophily(g.adjacency(), g.labels().unwrap()), 0.5);
//!
//! // The four 2-order directed patterns AMUD scores.
//! let names: Vec<String> =
//!     DirectedPattern::two_order().iter().map(|p| p.name()).collect();
//! assert_eq!(names, vec!["A·A", "A·Aᵀ", "Aᵀ·A", "Aᵀ·Aᵀ"]);
//! ```

pub mod csr;
pub mod digraph;
pub mod generate;
pub mod io;
pub mod measures;
pub mod patterns;

pub use csr::{spmm_calls, CsrMatrix};
pub use digraph::DiGraph;
pub use patterns::{DirectedPattern, PatternSet};

/// Errors produced by graph construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id outside `0..n`.
    NodeOutOfBounds { node: usize, n: usize },
    /// Matrix dimensions do not line up for the requested operation.
    DimensionMismatch { expected: (usize, usize), got: (usize, usize) },
    /// Labels vector length differs from the number of nodes.
    LabelLengthMismatch { nodes: usize, labels: usize },
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// A normalisation coefficient was outside its valid range. The
    /// offending value is carried as rendered text so the variant keeps
    /// the enum's `Eq` derive (an `f32` field would lose it).
    BadCoefficient { detail: String },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, n } => {
                write!(f, "node id {node} out of bounds for graph with {n} nodes")
            }
            GraphError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected:?}, got {got:?}")
            }
            GraphError::LabelLengthMismatch { nodes, labels } => {
                write!(f, "label vector length {labels} != node count {nodes}")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::BadCoefficient { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
