//! Compressed-sparse-row matrices.
//!
//! `CsrMatrix` is the workhorse of the whole reproduction: adjacency
//! matrices, directed-pattern operators, and normalised propagation
//! operators are all CSR. The design follows the usual database-engine
//! rules: construction validates and canonicalises once (sorted column
//! indices, no duplicates), after which every consumer may rely on those
//! invariants without re-checking.
//!
//! # Invariants
//!
//! * `row_ptr.len() == n_rows + 1`, `row_ptr[0] == 0`,
//!   `row_ptr[n_rows] == col_idx.len() == values.len()`.
//! * Within each row, column indices are strictly increasing (sorted and
//!   deduplicated).
//! * All column indices are `< n_cols`.

use crate::{GraphError, Result};
use amud_par::lanes;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`CsrMatrix::spmm`] invocations.
///
/// Monotonic by design: the precompute benchmarks attribute spmm work to a
/// sweep by snapshotting before and after and subtracting, which stays
/// correct under concurrency where a reset would race.
static SPMM_CALLS: AtomicU64 = AtomicU64::new(0);

/// Cumulative number of `spmm` invocations since process start. Snapshot
/// before and after a region and subtract to count its sparse products —
/// the measured (not estimated) evidence behind `BENCH_precompute.json`.
pub fn spmm_calls() -> u64 {
    SPMM_CALLS.load(Ordering::Relaxed)
}

/// A sparse matrix in compressed-sparse-row format with `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from COO triplets. Duplicate `(row, col)` entries
    /// are summed; rows and columns are canonicalised (sorted, deduped).
    pub fn from_coo(
        n_rows: usize,
        n_cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f32)>,
    ) -> Result<Self> {
        let mut entries: Vec<(usize, usize, f32)> = triplets.into_iter().collect();
        for &(r, c, _) in &entries {
            if r >= n_rows {
                return Err(GraphError::NodeOutOfBounds { node: r, n: n_rows });
            }
            if c >= n_cols {
                return Err(GraphError::NodeOutOfBounds { node: c, n: n_cols });
            }
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; n_rows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in entries {
            if last == Some((r, c)) {
                let Some(tail) = values.last_mut() else {
                    // `last` is only ever set right after a push, so a
                    // duplicate implies a previous entry exists.
                    unreachable!("duplicate implies a previous entry")
                };
                *tail += v;
                continue;
            }
            col_idx.push(c as u32);
            values.push(v);
            // BOUNDS(row_ptr): every r was range-checked against n_rows in
            // the validation loop above; row_ptr has n_rows + 1 slots.
            row_ptr[r + 1] += 1;
            last = Some((r, c));
        }
        // Prefix-sum the per-row counts into offsets.
        for i in 0..n_rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Ok(Self { n_rows, n_cols, row_ptr, col_idx, values })
    }

    /// Builds a binary (all values `1.0`) adjacency-style matrix from edges.
    pub fn from_edges(
        n_rows: usize,
        n_cols: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self> {
        Self::from_coo(n_rows, n_cols, edges.into_iter().map(|(r, c)| (r, c, 1.0)))
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            row_ptr: vec![0; n_rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `r` (sorted ascending).
    pub fn row_cols(&self, r: usize) -> &[u32] {
        // BOUNDS(row_ptr, col_idx): CSR invariant — row_ptr holds n_rows + 1
        // ascending offsets capped by col_idx.len(); callers pass r < n_rows.
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`, parallel to [`Self::row_cols`].
    pub fn row_values(&self, r: usize) -> &[f32] {
        // BOUNDS(row_ptr, values): CSR invariant — row_ptr holds n_rows + 1
        // ascending offsets capped by values.len(); callers pass r < n_rows.
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Iterates `(row, col, value)` over all stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.n_rows).flat_map(move |r| {
            self.row_cols(r).iter().zip(self.row_values(r)).map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Looks up a single entry (binary search within the row).
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let cols = self.row_cols(r);
        match cols.binary_search(&(c as u32)) {
            // BOUNDS(row_values): binary_search hit inside row_cols(r) and
            // row_values(r) has the same length (parallel CSR arrays).
            Ok(i) => self.row_values(r)[i],
            Err(_) => 0.0,
        }
    }

    /// Materialises the matrix densely, row-major. Intended for tests and
    /// small matrices only.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.n_rows * self.n_cols];
        // BOUNDS(out): iter() yields r < n_rows and c < n_cols by the CSR
        // invariant; out has n_rows · n_cols slots.
        for (r, c, v) in self.iter() {
            out[r * self.n_cols + c] = v;
        }
        out
    }

    /// Transposes the matrix in O(nnz).
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0usize; self.n_cols + 1];
        // BOUNDS(counts): stored column indices are < n_cols by the CSR
        // invariant and counts has n_cols + 1 slots.
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        // BOUNDS(cursor, col_idx, values): stored column indices are
        // < n_cols; cursor[c] walks counts[c]..counts[c + 1] ≤ nnz, and
        // col_idx/values were allocated with nnz slots.
        for (r, c, v) in self.iter() {
            let dst = cursor[c];
            col_idx[dst] = r as u32;
            values[dst] = v;
            cursor[c] += 1;
        }
        Self { n_rows: self.n_cols, n_cols: self.n_rows, row_ptr, col_idx, values }
    }

    /// Sparse matrix × dense vector: `out = self · x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `out.len() != n_rows`.
    pub fn spmv(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.n_cols, "spmv: x length mismatch");
        assert_eq!(out.len(), self.n_rows, "spmv: out length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            // BOUNDS(x): stored column indices are < n_cols by the CSR
            // invariant; x.len() == n_cols is asserted above.
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_values(r)) {
                acc += v * x[c as usize];
            }
            *o = acc;
        }
    }

    /// Sparse matrix × dense matrix: `out = self · X`, where `X` is
    /// row-major `n_cols × x_cols` and `out` is row-major `n_rows × x_cols`.
    ///
    /// This is the hot loop of feature propagation; it streams each sparse
    /// row once and accumulates whole dense rows through the lane axpy
    /// microkernels (`amud_par::lanes`): four nonzeros at a time feed one
    /// [`lanes::lane_axpy4`], so the output row stays register-resident
    /// across four gathered rows of `X`. Per output element the terms
    /// still arrive in ascending nonzero order, one fused `+= v·x` each —
    /// bit-identical to the legacy scalar loop, and therefore to serial at
    /// any `AMUD_THREADS`. Output rows are split into per-thread blocks
    /// with *nnz-balanced* boundaries (`row_ptr` is exactly the
    /// cumulative-work prefix the partitioner wants), so one hub row
    /// cannot serialise the whole product; blocks below a per-part work
    /// floor degenerate to the serial path (see [`Self::spmm_parts`]).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn spmm(&self, x: &[f32], x_cols: usize, out: &mut [f32]) {
        assert_eq!(x.len(), self.n_cols * x_cols, "spmm: X shape mismatch");
        assert_eq!(out.len(), self.n_rows * x_cols, "spmm: out shape mismatch");
        debug_assert!(
            self.values.iter().all(|v| v.is_finite()),
            "spmm: non-finite edge weight in operator"
        );
        debug_assert!(x.iter().all(|v| v.is_finite()), "spmm: non-finite input entry");
        SPMM_CALLS.fetch_add(1, Ordering::Relaxed);
        if x_cols == 0 {
            return;
        }
        // BOUNDS(x): stored column indices are < n_cols by the CSR
        // invariant and x.len() == n_cols · x_cols is asserted above.
        let x_row = |c: u32| &x[c as usize * x_cols..(c as usize + 1) * x_cols];
        let parts = self.spmm_parts(x_cols);
        amud_par::par_row_blocks_mut(out, x_cols, &parts, |_, rows, block| {
            block.fill(0.0);
            for (out_row, r) in block.chunks_exact_mut(x_cols).zip(rows) {
                let cols = self.row_cols(r);
                let vals = self.row_values(r);
                let main = cols.len() - cols.len() % 4;
                // BOUNDS(vals): row_values(r) parallels row_cols(r) — the
                // same row_ptr window — so main ≤ vals.len().
                for tb in 0..main / 4 {
                    let t = tb * 4;
                    lanes::lane_axpy4(
                        out_row,
                        [vals[t], vals[t + 1], vals[t + 2], vals[t + 3]],
                        x_row(cols[t]),
                        x_row(cols[t + 1]),
                        x_row(cols[t + 2]),
                        x_row(cols[t + 3]),
                    );
                }
                for (&c, &v) in cols.iter().zip(vals).skip(main) {
                    lanes::lane_axpy(out_row, v, x_row(c));
                }
            }
        });
    }

    /// Row partition for [`Self::spmm`]: nnz-balanced cuts of `row_ptr`,
    /// with the part count capped so every part carries at least
    /// [`SPMM_MIN_FLOPS_PER_PART`] multiply-adds — below that a part
    /// finishes in microseconds and the pool handoff dominates, so small
    /// products degenerate to a single serial range. Purely a function of
    /// the sparsity pattern, `x_cols`, and the thread budget.
    fn spmm_parts(&self, x_cols: usize) -> Vec<std::ops::Range<usize>> {
        /// Minimum multiply-adds *per part* before `spmm` fans out.
        const SPMM_MIN_FLOPS_PER_PART: usize = 1 << 15;
        let work = self.nnz().saturating_mul(x_cols);
        let parts = amud_par::current_threads().min(work / SPMM_MIN_FLOPS_PER_PART).max(1);
        if parts <= 1 {
            std::iter::once(0..self.n_rows).collect()
        } else {
            amud_par::split_by_weight(&self.row_ptr, parts)
        }
    }

    /// Boolean sparse×sparse product: returns the *pattern* of `self · other`
    /// with all values set to `1.0`. Used to build 2-order directed-pattern
    /// operators (`A·A`, `A·Aᵀ`, ...), where only which pairs are reachable
    /// matters, not path multiplicity.
    ///
    /// Uses the classic row-wise expansion with a dense marker array:
    /// O(Σ_r Σ_{c ∈ row r} nnz(other row c)).
    pub fn bool_matmul(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.n_cols != other.n_rows {
            return Err(GraphError::DimensionMismatch {
                expected: (self.n_cols, self.n_cols),
                got: (other.n_rows, other.n_cols),
            });
        }
        let n_rows = self.n_rows;
        let n_cols = other.n_cols;
        let mut marker = vec![u32::MAX; n_cols];
        let mut row_ptr = Vec::with_capacity(n_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for r in 0..n_rows {
            scratch.clear();
            for &mid in self.row_cols(r) {
                // BOUNDS(marker): other's stored column indices are
                // < other.n_cols by the CSR invariant; marker has n_cols ==
                // other.n_cols slots.
                for &c in other.row_cols(mid as usize) {
                    if marker[c as usize] != r as u32 {
                        marker[c as usize] = r as u32;
                        scratch.push(c);
                    }
                }
            }
            scratch.sort_unstable();
            col_idx.extend_from_slice(&scratch);
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0; col_idx.len()];
        Ok(CsrMatrix { n_rows, n_cols, row_ptr, col_idx, values })
    }

    /// Boolean union of two same-shaped matrices (pattern OR, values `1.0`).
    /// This is the "coarse undirected transformation": `A ∪ Aᵀ`.
    pub fn bool_union(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if (self.n_rows, self.n_cols) != (other.n_rows, other.n_cols) {
            return Err(GraphError::DimensionMismatch {
                expected: (self.n_rows, self.n_cols),
                got: (other.n_rows, other.n_cols),
            });
        }
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<u32> = Vec::new();
        for r in 0..self.n_rows {
            let (a, b) = (self.row_cols(r), other.row_cols(r));
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                let next = match (a.get(i), b.get(j)) {
                    (Some(&x), Some(&y)) if x == y => {
                        i += 1;
                        j += 1;
                        x
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        i += 1;
                        x
                    }
                    (Some(_), Some(&y)) => {
                        j += 1;
                        y
                    }
                    (Some(&x), None) => {
                        i += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        j += 1;
                        y
                    }
                    (None, None) => unreachable!("loop condition guarantees one side"),
                };
                col_idx.push(next);
            }
            row_ptr.push(col_idx.len());
        }
        let values = vec![1.0; col_idx.len()];
        Ok(CsrMatrix { n_rows: self.n_rows, n_cols: self.n_cols, row_ptr, col_idx, values })
    }

    /// Removes any diagonal entries (self-loops).
    pub fn without_diagonal(&self) -> CsrMatrix {
        let triplets = self.iter().filter(|&(r, c, _)| r != c);
        let Ok(m) = CsrMatrix::from_coo(self.n_rows, self.n_cols, triplets) else {
            // `iter` yields indices already validated at construction.
            unreachable!("entries of a valid matrix remain in bounds")
        };
        m
    }

    /// Adds self-loops with weight `w` (overwriting any existing diagonal).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn with_self_loops(&self, w: f32) -> CsrMatrix {
        assert_eq!(self.n_rows, self.n_cols, "self-loops require a square matrix");
        let triplets =
            self.iter().filter(|&(r, c, _)| r != c).chain((0..self.n_rows).map(|i| (i, i, w)));
        let Ok(m) = CsrMatrix::from_coo(self.n_rows, self.n_cols, triplets) else {
            // Existing entries are valid, and the added diagonal is bounded
            // by the square-shape assert above.
            unreachable!("entries of a valid matrix remain in bounds")
        };
        m
    }

    /// Row sums (weighted out-degrees for an adjacency matrix).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.n_rows).map(|r| self.row_values(r).iter().sum()).collect()
    }

    /// Column sums (weighted in-degrees for an adjacency matrix).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.n_cols];
        // BOUNDS(sums): iter() yields c < n_cols by the CSR invariant and
        // sums has n_cols slots.
        for (_, c, v) in self.iter() {
            sums[c] += v;
        }
        sums
    }

    /// Scales each row `r` by `scale[r]`.
    pub fn scale_rows(&self, scale: &[f32]) -> CsrMatrix {
        assert_eq!(scale.len(), self.n_rows, "scale_rows: length mismatch");
        let mut out = self.clone();
        // BOUNDS(row_ptr, values): CSR invariant — row_ptr holds n_rows + 1
        // ascending offsets capped by values.len(); enumerate keeps r < n_rows.
        for (r, &s) in scale.iter().enumerate() {
            for v in &mut out.values[out.row_ptr[r]..out.row_ptr[r + 1]] {
                *v *= s;
            }
        }
        out
    }

    /// Scales each column `c` by `scale[c]`.
    pub fn scale_cols(&self, scale: &[f32]) -> CsrMatrix {
        assert_eq!(scale.len(), self.n_cols, "scale_cols: length mismatch");
        let mut out = self.clone();
        // BOUNDS(scale): stored column indices are < n_cols by the CSR
        // invariant and scale.len() == n_cols is asserted above.
        for (v, &c) in out.values.iter_mut().zip(&out.col_idx) {
            *v *= scale[c as usize];
        }
        out
    }

    /// GCN-style degree normalisation `D^{r-1} Â D^{-r}` (Eq. 1 of the
    /// paper), where `D` holds row sums and `r ∈ [0, 1]`:
    ///
    /// * `r = 0` — reverse-transition `D⁻¹ Â` (row-stochastic),
    /// * `r = 0.5` — symmetric `D^{-1/2} Â D^{-1/2}`,
    /// * `r = 1` — random-walk `Â D⁻¹` (column-stochastic for symmetric Â).
    ///
    /// Rows/columns with zero degree are left unscaled (their factor is 0,
    /// which zeroes the entries — isolated nodes propagate nothing).
    pub fn normalized(&self, r: f32) -> CsrMatrix {
        let row_deg = self.row_sums();
        let col_deg = self.col_sums();
        let row_scale: Vec<f32> =
            row_deg.iter().map(|&d| if d > 0.0 { d.powf(r - 1.0) } else { 0.0 }).collect();
        let col_scale: Vec<f32> =
            col_deg.iter().map(|&d| if d > 0.0 { d.powf(-r) } else { 0.0 }).collect();
        self.scale_rows(&row_scale).scale_cols(&col_scale)
    }

    /// Row-stochastic normalisation `D⁻¹ A` — each row sums to 1 (or stays
    /// all-zero for isolated nodes). This is the propagation operator ADPA
    /// uses for every directed pattern.
    pub fn row_normalized(&self) -> CsrMatrix {
        self.normalized(0.0)
    }

    /// Symmetric normalisation `D^{-1/2} A D^{-1/2}`.
    pub fn sym_normalized(&self) -> CsrMatrix {
        self.normalized(0.5)
    }

    /// Keeps only entries for which `keep(row, col)` returns true.
    pub fn filter_entries(&self, mut keep: impl FnMut(usize, usize) -> bool) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f32)> =
            self.iter().filter(|&(r, c, _)| keep(r, c)).collect();
        let Ok(m) = CsrMatrix::from_coo(self.n_rows, self.n_cols, triplets) else {
            // Filtering only drops entries; survivors were validated at
            // construction.
            unreachable!("entries of a valid matrix remain in bounds")
        };
        m
    }

    /// Structural equality of the sparsity pattern (ignores values).
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.n_rows == other.n_rows
            && self.n_cols == other.n_cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// Linear combination `alpha * self + beta * other` (same shape).
    pub fn add_scaled(&self, alpha: f32, other: &CsrMatrix, beta: f32) -> Result<CsrMatrix> {
        if (self.n_rows, self.n_cols) != (other.n_rows, other.n_cols) {
            return Err(GraphError::DimensionMismatch {
                expected: (self.n_rows, self.n_cols),
                got: (other.n_rows, other.n_cols),
            });
        }
        let triplets = self
            .iter()
            .map(|(r, c, v)| (r, c, alpha * v))
            .chain(other.iter().map(|(r, c, v)| (r, c, beta * v)));
        CsrMatrix::from_coo(self.n_rows, self.n_cols, triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // 3x3: edges (0,1), (0,2), (1,2), (2,0)
        CsrMatrix::from_edges(3, 3, vec![(0, 1), (0, 2), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_coo_sorts_and_dedups() {
        let m = CsrMatrix::from_coo(2, 3, vec![(1, 2, 1.0), (0, 1, 2.0), (1, 2, 3.0), (0, 0, 1.0)])
            .unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 2), 4.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.row_cols(0), &[0, 1]);
    }

    #[test]
    fn from_coo_rejects_out_of_bounds() {
        let err = CsrMatrix::from_edges(2, 2, vec![(0, 5)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfBounds { node: 5, n: 2 });
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_moves_entries() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.get(1, 0), 1.0);
        assert_eq!(t.get(0, 2), 1.0);
        assert_eq!(t.get(2, 1), 1.0);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(0, 1), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = small();
        let x = [1.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        m.spmv(&x, &mut out);
        assert_eq!(out, [5.0, 3.0, 1.0]);
    }

    #[test]
    fn spmm_matches_spmv_per_column() {
        let m = small();
        // X = 3x2
        let x = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let mut out = vec![0.0; 6];
        m.spmm(&x, 2, &mut out);
        assert_eq!(out, vec![5.0, 50.0, 3.0, 30.0, 1.0, 10.0]);
    }

    #[test]
    fn bool_matmul_two_hop() {
        let m = small();
        let two_hop = m.bool_matmul(&m).unwrap();
        // 0->1->2, 0->2->0, 1->2->0, 2->0->1, 2->0->2
        assert_eq!(two_hop.get(0, 2), 1.0);
        assert_eq!(two_hop.get(0, 0), 1.0);
        assert_eq!(two_hop.get(1, 0), 1.0);
        assert_eq!(two_hop.get(2, 1), 1.0);
        assert_eq!(two_hop.get(2, 2), 1.0);
        assert_eq!(two_hop.nnz(), 5);
    }

    #[test]
    fn bool_union_symmetrizes() {
        let m = small();
        let u = m.bool_union(&m.transpose()).unwrap();
        for (r, c, _) in u.iter() {
            assert_eq!(u.get(c, r), 1.0, "union with transpose must be symmetric");
        }
        // 4 directed edges, one reciprocal pair (0,2)/(2,0) => 6 entries
        assert_eq!(u.nnz(), 6);
    }

    #[test]
    fn self_loops_and_diagonal_removal() {
        let m = small().with_self_loops(1.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.nnz(), 7);
        let no_diag = m.without_diagonal();
        assert_eq!(no_diag.nnz(), 4);
        assert_eq!(no_diag.get(0, 0), 0.0);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let m = small().row_normalized();
        for r in 0..3 {
            let s: f32 = m.row_values(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn sym_normalized_is_symmetric_for_symmetric_input() {
        let sym = small().bool_union(&small().transpose()).unwrap();
        let n = sym.sym_normalized();
        for (r, c, v) in n.iter() {
            assert!((n.get(c, r) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn normalized_zero_degree_rows_stay_zero() {
        // node 2 has no out-edges
        let m = CsrMatrix::from_edges(3, 3, vec![(0, 1), (1, 0)]).unwrap();
        let n = m.row_normalized();
        assert_eq!(n.row_cols(2).len(), 0);
        let s: f32 = n.row_values(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn identity_acts_as_identity_in_spmm() {
        let i = CsrMatrix::identity(3);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = vec![0.0; 6];
        i.spmm(&x, 2, &mut out);
        assert_eq!(out.as_slice(), x.as_slice());
    }

    #[test]
    fn add_scaled_combines() {
        let a = small();
        let b = a.transpose();
        let c = a.add_scaled(0.5, &b, 0.5).unwrap();
        assert_eq!(c.get(0, 1), 0.5);
        assert_eq!(c.get(1, 0), 0.5);
        assert_eq!(c.get(0, 2), 1.0, "reciprocal pair sums");
        assert_eq!(c.nnz(), 6);
    }

    #[test]
    fn filter_entries_drops() {
        let m = small().filter_entries(|r, _| r != 0);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row_cols(0).len(), 0);
    }

    #[test]
    fn to_dense_matches_get() {
        let m = small();
        let d = m.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d[r * 3 + c], m.get(r, c));
            }
        }
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(4, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.n_rows(), 4);
        assert_eq!(z.n_cols(), 5);
    }
}
