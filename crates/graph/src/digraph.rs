//! Directed graphs with node labels.
//!
//! [`DiGraph`] is the dataset-facing graph type: a set of directed edges
//! over `n` nodes plus optional class labels. It owns a canonical CSR
//! adjacency matrix (`A_d` in the paper) and lazily derivable views —
//! transpose, undirected union — that the directed-pattern machinery and
//! the homophily measures build on.

use crate::csr::CsrMatrix;
use crate::{GraphError, Result};

/// A directed graph with `n` nodes, an optional class label per node.
///
/// Edges are stored once, as a binary CSR adjacency matrix `A` where
/// `A[u, v] = 1` iff there is an edge `u → v`. Self-loops are removed at
/// construction (none of the paper's datasets keep them in the raw
/// topology; propagation operators re-add them explicitly where needed).
#[derive(Debug, Clone)]
pub struct DiGraph {
    adj: CsrMatrix,
    labels: Option<Vec<usize>>,
    n_classes: usize,
}

impl DiGraph {
    /// Builds a digraph from an edge list. Duplicate edges and self-loops
    /// are dropped.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Result<Self> {
        let adj = CsrMatrix::from_edges(n, n, edges)?.without_diagonal();
        Ok(Self { adj, labels: None, n_classes: 0 })
    }

    /// Attaches class labels (`labels[v] ∈ 0..n_classes`).
    pub fn with_labels(mut self, labels: Vec<usize>, n_classes: usize) -> Result<Self> {
        if labels.len() != self.n_nodes() {
            return Err(GraphError::LabelLengthMismatch {
                nodes: self.n_nodes(),
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&y| y >= n_classes) {
            return Err(GraphError::NodeOutOfBounds { node: bad, n: n_classes });
        }
        self.labels = Some(labels);
        self.n_classes = n_classes;
        Ok(self)
    }

    pub fn n_nodes(&self) -> usize {
        self.adj.n_rows()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.adj.nnz()
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The class labels, if attached.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// The directed adjacency matrix `A_d` (binary, no self-loops).
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// The transposed adjacency `A_dᵀ` (in-edges become out-edges).
    pub fn adjacency_t(&self) -> CsrMatrix {
        self.adj.transpose()
    }

    /// The coarse undirected transformation `A_u = A_d ∪ A_dᵀ` — the
    /// operation the paper argues is applied too indiscriminately (Sec. I,
    /// L2). Labels are preserved.
    pub fn to_undirected(&self) -> DiGraph {
        let Ok(adj) = self.adj.bool_union(&self.adj.transpose()) else {
            // Adjacency is square, so A and Aᵀ share a shape by definition.
            unreachable!("A and Aᵀ share a shape")
        };
        DiGraph { adj, labels: self.labels.clone(), n_classes: self.n_classes }
    }

    /// Whether every edge has a reciprocal edge (i.e. the graph is already
    /// effectively undirected).
    pub fn is_symmetric(&self) -> bool {
        self.adj.same_pattern(&self.adj.transpose())
    }

    /// Fraction of directed edges whose reciprocal edge also exists.
    pub fn reciprocity(&self) -> f64 {
        if self.n_edges() == 0 {
            return 0.0;
        }
        let t = self.adj.transpose();
        let recip = self.adj.iter().filter(|&(u, v, _)| t.get(u, v) != 0.0).count();
        recip as f64 / self.n_edges() as f64
    }

    /// Reverses every edge.
    pub fn reverse(&self) -> DiGraph {
        DiGraph {
            adj: self.adj.transpose(),
            labels: self.labels.clone(),
            n_classes: self.n_classes,
        }
    }

    /// Out-degrees.
    pub fn out_degrees(&self) -> Vec<usize> {
        (0..self.n_nodes()).map(|v| self.adj.row_cols(v).len()).collect()
    }

    /// In-degrees.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n_nodes()];
        for (_, c, _) in self.adj.iter() {
            deg[c] += 1;
        }
        deg
    }

    /// Out-neighbours of `v` (sorted).
    pub fn out_neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj.row_cols(v).iter().map(|&c| c as usize)
    }

    /// All directed edges as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().map(|(u, v, _)| (u, v))
    }

    /// Returns a copy with a subset of edges removed, keeping each edge with
    /// probability decided by `keep`. Used by the Fig. 7 edge-sparsity
    /// stressor.
    pub fn filter_edges(&self, keep: impl FnMut(usize, usize) -> bool) -> DiGraph {
        DiGraph {
            adj: self.adj.filter_entries(keep),
            labels: self.labels.clone(),
            n_classes: self.n_classes,
        }
    }

    /// Per-class node counts (requires labels).
    pub fn class_counts(&self) -> Option<Vec<usize>> {
        let labels = self.labels.as_ref()?;
        let mut counts = vec![0usize; self.n_classes];
        for &y in labels {
            counts[y] += 1;
        }
        Some(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> DiGraph {
        // 0 -> 1 -> 2 -> 3, plus 3 -> 0
        DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)])
            .unwrap()
            .with_labels(vec![0, 0, 1, 1], 2)
            .unwrap()
    }

    #[test]
    fn construction_drops_self_loops_and_duplicates() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (0, 1), (1, 1), (2, 0)]).unwrap();
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn labels_validated() {
        let g = DiGraph::from_edges(2, vec![(0, 1)]).unwrap();
        assert!(g.clone().with_labels(vec![0], 2).is_err());
        assert!(g.clone().with_labels(vec![0, 5], 2).is_err());
        assert!(g.with_labels(vec![0, 1], 2).is_ok());
    }

    #[test]
    fn undirected_transformation_symmetrizes() {
        let g = chain();
        assert!(!g.is_symmetric());
        let u = g.to_undirected();
        assert!(u.is_symmetric());
        assert_eq!(u.n_edges(), 8);
        assert_eq!(u.labels(), g.labels());
    }

    #[test]
    fn degrees_match_topology() {
        let g = chain();
        assert_eq!(g.out_degrees(), vec![1, 1, 1, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1, 1, 1]);
        let star = DiGraph::from_edges(3, vec![(0, 1), (0, 2)]).unwrap();
        assert_eq!(star.out_degrees(), vec![2, 0, 0]);
        assert_eq!(star.in_degrees(), vec![0, 1, 1]);
    }

    #[test]
    fn reciprocity_counts_mutual_edges() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 0), (1, 2)]).unwrap();
        assert!((g.reciprocity() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(chain().reciprocity(), 0.0);
        assert_eq!(chain().to_undirected().reciprocity(), 1.0);
    }

    #[test]
    fn reverse_flips_edges() {
        let g = chain().reverse();
        let edges: Vec<_> = g.edges().collect();
        assert!(edges.contains(&(1, 0)));
        assert!(edges.contains(&(0, 3)));
    }

    #[test]
    fn class_counts_sum_to_n() {
        let g = chain();
        assert_eq!(g.class_counts(), Some(vec![2, 2]));
    }

    #[test]
    fn filter_edges_respects_predicate() {
        let g = chain().filter_edges(|u, _| u != 0);
        assert_eq!(g.n_edges(), 3);
    }
}
