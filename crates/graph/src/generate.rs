//! Low-level random digraph generators.
//!
//! These are building blocks for the synthetic dataset replicas in
//! `amud-datasets`; they only know about topology, not labels or features.

use crate::DiGraph;
use rand::Rng;
use std::collections::HashSet;

/// Builds a graph from edges every generator in this module produces with
/// indices already reduced mod `n` — out-of-bounds is impossible.
fn built(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> DiGraph {
    let Ok(g) = DiGraph::from_edges(n, edges) else {
        unreachable!("generated edges are in bounds")
    };
    g
}

/// Erdős–Rényi digraph G(n, p): each ordered pair (u, v), u ≠ v, is an edge
/// independently with probability `p`.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut edges = Vec::new();
    // Geometric skipping keeps this O(m) instead of O(n²) for sparse p.
    if p > 0.0 {
        let total = (n * n) as u64;
        let mut idx: u64 = 0;
        loop {
            // Sample the gap to the next edge from a geometric distribution.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let skip = (u.ln() / (1.0 - p).ln()).floor() as u64;
            idx = idx.saturating_add(skip);
            if idx >= total {
                break;
            }
            let (src, dst) = ((idx / n as u64) as usize, (idx % n as u64) as usize);
            if src != dst {
                edges.push((src, dst));
            }
            idx += 1;
            if idx >= total {
                break;
            }
        }
    }
    built(n, edges)
}

/// Exact-size random digraph G(n, m): `m` distinct directed edges sampled
/// uniformly without replacement (self-loops excluded).
pub fn gnm_random<R: Rng>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max_edges, "requested {m} edges but only {max_edges} possible");
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(m);
    while chosen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            chosen.insert((u, v));
        }
    }
    built(n, chosen)
}

/// A directed cycle 0 → 1 → … → n-1 → 0. Deterministic; handy in tests.
pub fn directed_cycle(n: usize) -> DiGraph {
    built(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// A star with `n - 1` leaves, all edges pointing away from the hub (node 0).
pub fn out_star(n: usize) -> DiGraph {
    built(n, (1..n).map(|i| (0, i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_density_close_to_p() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 300;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng);
        let density = g.n_edges() as f64 / (n * (n - 1)) as f64;
        assert!((density - p).abs() < 0.01, "density {density} vs p {p}");
    }

    #[test]
    fn erdos_renyi_p_zero_and_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi(50, 0.0, &mut rng).n_edges(), 0);
        let full = erdos_renyi(20, 1.0 - 1e-12, &mut rng);
        assert!(full.n_edges() >= 20 * 19 - 20, "p→1 should be nearly complete");
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = gnm_random(100, 500, &mut rng);
        assert_eq!(g.n_edges(), 500);
    }

    #[test]
    fn cycle_shape() {
        let g = directed_cycle(5);
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.out_degrees(), vec![1; 5]);
        assert_eq!(g.in_degrees(), vec![1; 5]);
        assert_eq!(g.reciprocity(), 0.0);
    }

    #[test]
    fn star_shape() {
        let g = out_star(6);
        assert_eq!(g.out_degrees()[0], 5);
        assert_eq!(g.in_degrees()[0], 0);
    }
}
