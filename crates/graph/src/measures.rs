//! Homophily measures (Sec. II-B, Table I).
//!
//! Five measures from the literature, each evaluated on an arbitrary
//! adjacency matrix so the *directed* and *undirected* variants of a graph
//! can be compared directly, as Table I of the paper does:
//!
//! * [`node_homophily`] — H_node (Pei et al., Geom-GCN),
//! * [`edge_homophily`] — H_edge (Zhu et al., H₂GCN),
//! * [`class_homophily`] — H_class (Lim et al., LINKX),
//! * [`adjusted_homophily`] — H_adj (Platonov et al.),
//! * [`label_informativeness`] — LI (Platonov et al.).
//!
//! All functions take the adjacency matrix rather than a [`crate::DiGraph`]
//! so that directed-pattern operators (2-hop matrices etc.) can be measured
//! with the same code.

use crate::csr::CsrMatrix;
use crate::DiGraph;

/// All five measures bundled, as reported per dataset row in Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomophilyReport {
    pub node: f64,
    pub edge: f64,
    pub class: f64,
    pub adjusted: f64,
    pub label_informativeness: f64,
}

/// Computes all five measures for a labelled graph view.
///
/// # Panics
/// Panics if the graph carries no labels.
pub fn homophily_report(g: &DiGraph) -> HomophilyReport {
    let Some(labels) = g.labels() else {
        // Documented panic contract: callers must label the graph first.
        unreachable!("homophily requires labels")
    };
    let a = g.adjacency();
    let c = g.n_classes();
    HomophilyReport {
        node: node_homophily(a, labels),
        edge: edge_homophily(a, labels),
        class: class_homophily(a, labels, c),
        adjusted: adjusted_homophily(a, labels, c),
        label_informativeness: label_informativeness(a, labels, c),
    }
}

/// H_node: the mean over nodes (with at least one neighbour) of the fraction
/// of neighbours sharing the node's label. For a directed adjacency matrix
/// the "neighbours" of `u` are its out-neighbours (row `u`).
pub fn node_homophily(adj: &CsrMatrix, labels: &[usize]) -> f64 {
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for u in 0..adj.n_rows() {
        let cols = adj.row_cols(u);
        if cols.is_empty() {
            continue;
        }
        let same = cols.iter().filter(|&&v| labels[v as usize] == labels[u]).count();
        total += same as f64 / cols.len() as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// H_edge: the fraction of edges whose endpoints share a label.
pub fn edge_homophily(adj: &CsrMatrix, labels: &[usize]) -> f64 {
    let m = adj.nnz();
    if m == 0 {
        return 0.0;
    }
    let same = adj.iter().filter(|&(u, v, _)| labels[u] == labels[v]).count();
    same as f64 / m as f64
}

/// H_class (LINKX): class-wise excess homophily,
/// `1/(C−1) · Σ_k max(0, h_k − n_k/n)` where `h_k` is the fraction of
/// same-class neighbours among all edges leaving class-k nodes.
pub fn class_homophily(adj: &CsrMatrix, labels: &[usize], n_classes: usize) -> f64 {
    if n_classes < 2 {
        return 0.0;
    }
    let n = labels.len();
    let mut class_edges = vec![0usize; n_classes];
    let mut class_same = vec![0usize; n_classes];
    let mut class_size = vec![0usize; n_classes];
    for &y in labels {
        class_size[y] += 1;
    }
    for (u, v, _) in adj.iter() {
        class_edges[labels[u]] += 1;
        if labels[u] == labels[v] {
            class_same[labels[u]] += 1;
        }
    }
    let mut acc = 0.0f64;
    for k in 0..n_classes {
        if class_edges[k] == 0 {
            continue;
        }
        let h_k = class_same[k] as f64 / class_edges[k] as f64;
        let base = class_size[k] as f64 / n as f64;
        acc += (h_k - base).max(0.0);
    }
    acc / (n_classes as f64 - 1.0)
}

/// Degree-weighted class probabilities `p̄(k) = D_k / Σ D`, where `D_k` sums
/// the (out+in) degrees of class-k nodes. This is the null model both
/// adjusted homophily and LI are measured against.
fn degree_weighted_class_probs(adj: &CsrMatrix, labels: &[usize], n_classes: usize) -> Vec<f64> {
    let mut d = vec![0.0f64; n_classes];
    for (u, v, _) in adj.iter() {
        d[labels[u]] += 1.0;
        d[labels[v]] += 1.0;
    }
    let total: f64 = d.iter().sum();
    if total > 0.0 {
        for x in &mut d {
            *x /= total;
        }
    }
    d
}

/// H_adj (Platonov et al.): edge homophily recentred against the
/// degree-weighted null model,
/// `(H_edge − Σ_k p̄(k)²) / (1 − Σ_k p̄(k)²)`.
/// Unlike the raw measures it can be negative (true heterophily) and is 0 in
/// expectation for label-independent wiring.
pub fn adjusted_homophily(adj: &CsrMatrix, labels: &[usize], n_classes: usize) -> f64 {
    let h_edge = edge_homophily(adj, labels);
    let p = degree_weighted_class_probs(adj, labels, n_classes);
    let p2: f64 = p.iter().map(|x| x * x).sum();
    if (1.0 - p2).abs() < 1e-12 {
        return 0.0;
    }
    (h_edge - p2) / (1.0 - p2)
}

/// LI — edge label informativeness (Platonov et al.):
/// `I(ξ; η) / H(ξ)` where `(ξ, η)` are the endpoint labels of a uniformly
/// random edge and the marginals are the degree-weighted class
/// probabilities. 1 means an edge's far endpoint fully determines the label;
/// 0 means edges carry no label information.
pub fn label_informativeness(adj: &CsrMatrix, labels: &[usize], n_classes: usize) -> f64 {
    let m = adj.nnz();
    if m == 0 || n_classes < 2 {
        return 0.0;
    }
    // Joint distribution over ordered endpoint label pairs; symmetrised so
    // undirected graphs stored as symmetric matrices and directed graphs are
    // treated consistently (each edge contributes both orientations).
    let mut joint = vec![0.0f64; n_classes * n_classes];
    for (u, v, _) in adj.iter() {
        joint[labels[u] * n_classes + labels[v]] += 0.5;
        joint[labels[v] * n_classes + labels[u]] += 0.5;
    }
    let total: f64 = joint.iter().sum();
    for x in &mut joint {
        *x /= total;
    }
    let p = degree_weighted_class_probs(adj, labels, n_classes);
    let mut mutual = 0.0f64;
    for c1 in 0..n_classes {
        for c2 in 0..n_classes {
            let j = joint[c1 * n_classes + c2];
            if j > 0.0 && p[c1] > 0.0 && p[c2] > 0.0 {
                mutual += j * (j / (p[c1] * p[c2])).ln();
            }
        }
    }
    let entropy: f64 = -p.iter().filter(|&&x| x > 0.0).map(|&x| x * x.ln()).sum::<f64>();
    if entropy < 1e-12 {
        return 0.0;
    }
    mutual / entropy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    /// Two triangles of uniform class, bridged by one cross edge: strongly
    /// homophilous.
    fn homophilous() -> DiGraph {
        DiGraph::from_edges(6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)])
            .unwrap()
            .with_labels(vec![0, 0, 0, 1, 1, 1], 2)
            .unwrap()
    }

    /// Perfect bipartite-style heterophily: every edge crosses classes.
    fn heterophilous() -> DiGraph {
        DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)])
            .unwrap()
            .with_labels(vec![0, 1, 0, 1], 2)
            .unwrap()
    }

    #[test]
    fn edge_homophily_bounds() {
        let h = homophily_report(&homophilous());
        assert!((h.edge - 6.0 / 7.0).abs() < 1e-12);
        let het = homophily_report(&heterophilous());
        assert_eq!(het.edge, 0.0);
    }

    #[test]
    fn node_homophily_out_neighbour_fractions() {
        let g = homophilous();
        // nodes 1..5 have all-same-class out-neighbours; node 0 has 1/2.
        let expected = (5.0 + 0.5) / 6.0;
        assert!((node_homophily(g.adjacency(), g.labels().unwrap()) - expected).abs() < 1e-12);
    }

    #[test]
    fn adjusted_homophily_negative_for_heterophily() {
        let het = homophily_report(&heterophilous());
        assert!(het.adjusted < 0.0, "H_adj = {}", het.adjusted);
        let hom = homophily_report(&homophilous());
        assert!(hom.adjusted > 0.5, "H_adj = {}", hom.adjusted);
    }

    #[test]
    fn adjusted_homophily_near_zero_for_random_labels() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 400;
        let edges: Vec<(usize, usize)> = (0..4000)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|(u, v)| u != v)
            .collect();
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..4)).collect();
        let g = DiGraph::from_edges(n, edges).unwrap().with_labels(labels, 4).unwrap();
        let h = adjusted_homophily(g.adjacency(), g.labels().unwrap(), 4);
        assert!(h.abs() < 0.05, "random labels should give ~0 adjusted homophily, got {h}");
    }

    #[test]
    fn label_informativeness_high_for_deterministic_wiring() {
        // Perfect heterophilous cycle: the neighbour's label determines the
        // node's label exactly, so LI should be 1 even though H_edge = 0.
        let het = heterophilous();
        let li = label_informativeness(het.adjacency(), het.labels().unwrap(), 2);
        assert!((li - 1.0).abs() < 1e-9, "LI = {li}");
    }

    #[test]
    fn label_informativeness_low_for_random_wiring() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 500;
        let edges: Vec<(usize, usize)> = (0..6000)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|(u, v)| u != v)
            .collect();
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let g = DiGraph::from_edges(n, edges).unwrap().with_labels(labels, 3).unwrap();
        let li = label_informativeness(g.adjacency(), g.labels().unwrap(), 3);
        assert!(li < 0.05, "LI for random wiring should be near 0, got {li}");
    }

    #[test]
    fn class_homophily_zero_when_no_excess() {
        let het = heterophilous();
        assert_eq!(class_homophily(het.adjacency(), het.labels().unwrap(), 2), 0.0);
    }

    #[test]
    fn directed_vs_undirected_views_differ() {
        // A graph where direction matters: class-0 nodes point at class-1
        // nodes only. Out-neighbour node homophily is 0 directed, but the
        // undirected view mixes in reciprocal edges.
        let g = DiGraph::from_edges(4, vec![(0, 2), (0, 3), (1, 2), (1, 3), (2, 0)])
            .unwrap()
            .with_labels(vec![0, 0, 1, 1], 2)
            .unwrap();
        let d = homophily_report(&g);
        let u = homophily_report(&g.to_undirected());
        assert_eq!(d.edge, 0.0);
        assert_eq!(u.edge, 0.0);
        assert_eq!(d.node, 0.0);
        assert_eq!(u.node, 0.0);
        // but the matrices are genuinely different sizes
        assert!(g.to_undirected().n_edges() > g.n_edges());
    }

    #[test]
    fn empty_graph_measures_are_zero() {
        let g = DiGraph::from_edges(3, Vec::<(usize, usize)>::new())
            .unwrap()
            .with_labels(vec![0, 1, 0], 2)
            .unwrap();
        let h = homophily_report(&g);
        assert_eq!(h.edge, 0.0);
        assert_eq!(h.node, 0.0);
        assert_eq!(h.label_informativeness, 0.0);
    }
}
