//! Plain-text graph persistence.
//!
//! A deliberately boring line format so generated replicas and real edge
//! lists can flow in and out of the library (the graph-database framing of
//! the paper's venue):
//!
//! ```text
//! # comment lines start with '#'
//! nodes <n> classes <c>
//! label <node> <class>        (optional, one per labelled node)
//! edge <src> <dst>
//! ```
//!
//! Unlabelled graphs omit `classes`/`label` lines.

use crate::{DiGraph, GraphError, Result};
use std::fmt::Write as _;

/// Serialises a digraph (and its labels, if any) to the text format.
pub fn to_text(g: &DiGraph) -> String {
    let mut out = String::new();
    if let Some(labels) = g.labels() {
        let _ = writeln!(out, "nodes {} classes {}", g.n_nodes(), g.n_classes());
        for (v, &y) in labels.iter().enumerate() {
            let _ = writeln!(out, "label {v} {y}");
        }
    } else {
        let _ = writeln!(out, "nodes {}", g.n_nodes());
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "edge {u} {v}");
    }
    out
}

/// Parses the text format back into a digraph.
///
/// Returns [`GraphError`] on malformed headers, out-of-range ids, or
/// unknown directives.
pub fn from_text(text: &str) -> Result<DiGraph> {
    let mut n: Option<usize> = None;
    let mut n_classes: Option<usize> = None;
    let mut labels: Vec<(usize, usize)> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("nodes") => {
                n = parts.next().and_then(|s| s.parse().ok());
                if n.is_none() {
                    return Err(GraphError::EmptyGraph);
                }
                if parts.next() == Some("classes") {
                    n_classes = parts.next().and_then(|s| s.parse().ok());
                    if n_classes.is_none() {
                        return Err(GraphError::EmptyGraph);
                    }
                }
            }
            Some("label") => {
                let v: Option<usize> = parts.next().and_then(|s| s.parse().ok());
                let y: Option<usize> = parts.next().and_then(|s| s.parse().ok());
                match (v, y) {
                    (Some(v), Some(y)) => labels.push((v, y)),
                    _ => return Err(GraphError::EmptyGraph),
                }
            }
            Some("edge") => {
                let u: Option<usize> = parts.next().and_then(|s| s.parse().ok());
                let v: Option<usize> = parts.next().and_then(|s| s.parse().ok());
                match (u, v) {
                    (Some(u), Some(v)) => edges.push((u, v)),
                    _ => return Err(GraphError::EmptyGraph),
                }
            }
            _ => return Err(GraphError::EmptyGraph),
        }
    }

    let n = n.ok_or(GraphError::EmptyGraph)?;
    let g = DiGraph::from_edges(n, edges)?;
    match n_classes {
        Some(c) => {
            let mut full = vec![0usize; n];
            for (v, y) in labels {
                if v >= n {
                    return Err(GraphError::NodeOutOfBounds { node: v, n });
                }
                full[v] = y;
            }
            g.with_labels(full, c)
        }
        None => Ok(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph {
        DiGraph::from_edges(4, vec![(0, 1), (1, 2), (3, 0)])
            .unwrap()
            .with_labels(vec![0, 1, 1, 0], 2)
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = sample();
        let text = to_text(&g);
        let back = from_text(&text).unwrap();
        assert_eq!(back.n_nodes(), g.n_nodes());
        assert_eq!(back.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
        assert_eq!(back.labels(), g.labels());
        assert_eq!(back.n_classes(), g.n_classes());
    }

    #[test]
    fn roundtrip_unlabelled() {
        let g = DiGraph::from_edges(3, vec![(0, 2)]).unwrap();
        let back = from_text(&to_text(&g)).unwrap();
        assert_eq!(back.labels(), None);
        assert_eq!(back.n_edges(), 1);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nnodes 3 classes 2\nlabel 0 1\n# mid\nedge 0 1\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.labels().unwrap()[0], 1);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(from_text("edge 0 1").is_err(), "missing header");
        assert!(from_text("nodes x").is_err(), "bad node count");
        assert!(from_text("nodes 2\nedge 0").is_err(), "truncated edge");
        assert!(from_text("nodes 2\nfrobnicate 1 2").is_err(), "unknown directive");
        assert!(from_text("nodes 2\nedge 0 9").is_err(), "out-of-range edge");
    }
}
