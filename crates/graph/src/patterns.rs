//! Directed-pattern (DP) operators (Sec. III-C and IV-B).
//!
//! A directed pattern is a word over the alphabet `{A, Aᵀ}` — e.g. the four
//! 2-order patterns `A·A`, `Aᵀ·Aᵀ`, `A·Aᵀ`, `Aᵀ·A` the paper leans on:
//!
//! * `A·Aᵀ` connects nodes that share an **out**-target ("co-citing"),
//! * `Aᵀ·A` connects nodes that share an **in**-source ("co-cited"),
//!   both of which tend to carry homophily,
//! * `A·A` / `Aᵀ·Aᵀ` follow two hops in a consistent direction, which is
//!   where structured heterophily shows up (Fig. 3).
//!
//! Order-N enumeration yields `2¹ + 2² + … + 2ᴺ` operators, matching the
//! paper's `k` accounting (k=2 at order 1, k=6 at order 2).

use crate::csr::CsrMatrix;
use crate::{GraphError, Result};
use std::collections::HashMap;

/// One hop direction in a directed-pattern word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Follow edges forward: multiply by `A`.
    Fwd,
    /// Follow edges backward: multiply by `Aᵀ`.
    Rev,
}

/// A directed pattern: a non-empty word over `{A, Aᵀ}` that instantiates to
/// the boolean product of the corresponding matrices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DirectedPattern(Vec<Dir>);

impl DirectedPattern {
    /// Creates a pattern from a hop word.
    ///
    /// # Panics
    /// Panics on an empty word — a zero-length pattern is the identity and
    /// is always represented separately (the initial residual `X⁽⁰⁾`).
    pub fn new(word: Vec<Dir>) -> Self {
        assert!(!word.is_empty(), "directed pattern must have at least one hop");
        Self(word)
    }

    /// 1-hop out pattern `A`.
    pub fn out() -> Self {
        Self(vec![Dir::Fwd])
    }

    /// 1-hop in pattern `Aᵀ`.
    pub fn in_() -> Self {
        Self(vec![Dir::Rev])
    }

    /// The order (word length) of the pattern.
    pub fn order(&self) -> usize {
        self.0.len()
    }

    /// The hop word.
    pub fn word(&self) -> &[Dir] {
        &self.0
    }

    /// Human-readable name, e.g. `"A·Aᵀ"`.
    pub fn name(&self) -> String {
        self.0
            .iter()
            .map(|d| match d {
                Dir::Fwd => "A",
                Dir::Rev => "Aᵀ",
            })
            .collect::<Vec<_>>()
            .join("·")
    }

    /// All patterns of order exactly `order` (2^order words), in
    /// lexicographic order with `Fwd < Rev`.
    pub fn enumerate_order(order: usize) -> Vec<Self> {
        assert!(order >= 1, "order must be >= 1");
        assert!(order <= 16, "order-{order} enumeration would be astronomically large");
        (0..(1usize << order))
            .map(|bits| {
                Self(
                    (0..order)
                        .map(|i| if bits >> (order - 1 - i) & 1 == 0 { Dir::Fwd } else { Dir::Rev })
                        .collect(),
                )
            })
            .collect()
    }

    /// All patterns of order `1..=max_order` — the paper's
    /// `k = 2¹ + … + 2ᴺ` operator family (Sec. IV-B).
    pub fn enumerate_up_to(max_order: usize) -> Vec<Self> {
        (1..=max_order).flat_map(Self::enumerate_order).collect()
    }

    /// The four canonical 2-order patterns AMUD scores:
    /// `[A·A, A·Aᵀ, Aᵀ·A, Aᵀ·Aᵀ]`.
    pub fn two_order() -> Vec<Self> {
        Self::enumerate_order(2)
    }

    /// Materialises the pattern as a boolean reachability matrix over the
    /// directed adjacency `a`, with the diagonal removed (a node is not its
    /// own pattern-neighbour).
    pub fn materialize(&self, a: &CsrMatrix) -> Result<CsrMatrix> {
        let at = a.transpose();
        let mut acc = match self.0[0] {
            Dir::Fwd => a.clone(),
            Dir::Rev => at.clone(),
        };
        for d in &self.0[1..] {
            let rhs = match d {
                Dir::Fwd => a,
                Dir::Rev => &at,
            };
            acc = acc.bool_matmul(rhs)?;
        }
        Ok(acc.without_diagonal())
    }

    /// Materialises every pattern in `patterns` over `a` with shared work:
    /// `Aᵀ` is built once, and the raw (pre-diagonal-removal) product for
    /// every word prefix is memoised, so each distinct product — `A·A`,
    /// `A·Aᵀ`, `Aᵀ·A`, `Aᵀ·Aᵀ`, … — is computed exactly once per graph even
    /// when it appears as a prefix of several longer patterns. Each result
    /// is bitwise identical to [`DirectedPattern::materialize`], which
    /// performs the same products in the same order.
    pub fn materialize_all(a: &CsrMatrix, patterns: &[Self]) -> Result<Vec<CsrMatrix>> {
        let at = a.transpose();
        // Memo over word *prefixes* of the raw accumulated products; the
        // diagonal is removed only on the final per-pattern result, exactly
        // as in `materialize`.
        let mut memo: HashMap<Vec<Dir>, CsrMatrix> = HashMap::new();
        let mut out = Vec::with_capacity(patterns.len());
        for p in patterns {
            for end in 1..=p.0.len() {
                let prefix = &p.0[..end];
                if memo.contains_key(prefix) {
                    continue;
                }
                let product = if end == 1 {
                    match prefix[0] {
                        Dir::Fwd => a.clone(),
                        Dir::Rev => at.clone(),
                    }
                } else {
                    let rhs = match prefix[end - 1] {
                        Dir::Fwd => a,
                        Dir::Rev => &at,
                    };
                    memo[&prefix[..end - 1]].bool_matmul(rhs)?
                };
                memo.insert(prefix.to_vec(), product);
            }
            out.push(memo[&p.0].without_diagonal());
        }
        Ok(out)
    }
}

impl std::fmt::Display for DirectedPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Rejects convolution coefficients outside the paper's `r ∈ [0, 1]` range
/// (NaN included) with a typed error, so one bad grid point degrades to a
/// recorded failure instead of aborting a sweep.
fn validate_conv_r(conv_r: f32) -> Result<()> {
    if (0.0..=1.0).contains(&conv_r) {
        Ok(())
    } else {
        Err(GraphError::BadCoefficient {
            detail: format!("convolution coefficient must be in [0, 1], got {conv_r}"),
        })
    }
}

/// A set of materialised DP operators plus their row-normalised propagation
/// versions — what ADPA precomputes once per graph (Sec. IV-B).
#[derive(Debug, Clone)]
pub struct PatternSet {
    patterns: Vec<DirectedPattern>,
    /// Boolean pattern matrices (diagonal-free), parallel to `patterns`.
    operators: Vec<CsrMatrix>,
    /// Row-normalised (`D⁻¹ G`) propagation operators, parallel to `patterns`.
    propagators: Vec<CsrMatrix>,
}

impl PatternSet {
    /// Materialises every pattern in `patterns` over adjacency `a`, with
    /// row-stochastic propagation operators (`r = 0` in Eq. 1).
    pub fn build(a: &CsrMatrix, patterns: Vec<DirectedPattern>) -> Result<Self> {
        Self::build_normalized(a, patterns, 0.0)
    }

    /// Like [`PatternSet::build`] but with the general Eq. 1 degree
    /// normalisation `D^{r-1} G D^{-r}` for each pattern operator — the
    /// paper's tunable "convolution kernel coefficient" `r ∈ [0, 1]`
    /// (`r = 0` reverse-transition, `r = 0.5` symmetric, `r = 1`
    /// random-walk).
    pub fn build_normalized(
        a: &CsrMatrix,
        patterns: Vec<DirectedPattern>,
        conv_r: f32,
    ) -> Result<Self> {
        validate_conv_r(conv_r)?;
        let operators = DirectedPattern::materialize_all(a, &patterns)?;
        let propagators = operators.iter().map(|op| op.normalized(conv_r)).collect();
        Ok(Self { patterns, operators, propagators })
    }

    /// Assembles a set from already-materialised boolean operators,
    /// normalising each with coefficient `conv_r`. This is the re-use path
    /// of the precompute cache: one raw materialisation per graph serves
    /// every `conv_r` a sweep visits. `patterns` and `operators` must be
    /// parallel (same length, `operators[i]` materialising `patterns[i]`).
    pub fn from_parts(
        patterns: Vec<DirectedPattern>,
        operators: Vec<CsrMatrix>,
        conv_r: f32,
    ) -> Result<Self> {
        validate_conv_r(conv_r)?;
        if patterns.len() != operators.len() {
            return Err(GraphError::DimensionMismatch {
                expected: (patterns.len(), patterns.len()),
                got: (operators.len(), operators.len()),
            });
        }
        let propagators = operators.iter().map(|op| op.normalized(conv_r)).collect();
        Ok(Self { patterns, operators, propagators })
    }

    /// All patterns of order `1..=max_order` over `a`.
    pub fn up_to_order(a: &CsrMatrix, max_order: usize) -> Result<Self> {
        Self::build(a, DirectedPattern::enumerate_up_to(max_order))
    }

    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    pub fn patterns(&self) -> &[DirectedPattern] {
        &self.patterns
    }

    /// The boolean pattern matrices.
    pub fn operators(&self) -> &[CsrMatrix] {
        &self.operators
    }

    /// The row-normalised propagation operators.
    pub fn propagators(&self) -> &[CsrMatrix] {
        &self.propagators
    }

    /// Keeps only the patterns at `indices` (used after AMUD-guided DP
    /// selection, Sec. IV-B).
    pub fn select(&self, indices: &[usize]) -> Self {
        Self {
            patterns: indices.iter().map(|&i| self.patterns[i].clone()).collect(),
            operators: indices.iter().map(|&i| self.operators[i].clone()).collect(),
            propagators: indices.iter().map(|&i| self.propagators[i].clone()).collect(),
        }
    }

    /// Total stored entries across all operators (memory diagnostics).
    pub fn total_nnz(&self) -> usize {
        self.operators.iter().map(CsrMatrix::nnz).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CsrMatrix {
        // Fig. 3-like toy: 1 -> 4, 5 -> 1, 2 -> 4, 5 -> 2 (0-indexed shifted)
        CsrMatrix::from_edges(6, 6, vec![(0, 3), (4, 0), (1, 3), (4, 1), (2, 3), (4, 2)]).unwrap()
    }

    #[test]
    fn enumeration_counts_match_paper() {
        assert_eq!(DirectedPattern::enumerate_order(1).len(), 2);
        assert_eq!(DirectedPattern::enumerate_order(2).len(), 4);
        assert_eq!(DirectedPattern::enumerate_up_to(1).len(), 2); // k = 2
        assert_eq!(DirectedPattern::enumerate_up_to(2).len(), 6); // k = 6
        assert_eq!(DirectedPattern::enumerate_up_to(3).len(), 14); // k = 2+4+8
    }

    #[test]
    fn names_render() {
        let ps = DirectedPattern::two_order();
        let names: Vec<String> = ps.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["A·A", "A·Aᵀ", "Aᵀ·A", "Aᵀ·Aᵀ"]);
    }

    #[test]
    fn out_in_patterns_are_transposes() {
        let a = toy();
        let fwd = DirectedPattern::out().materialize(&a).unwrap();
        let rev = DirectedPattern::in_().materialize(&a).unwrap();
        assert_eq!(fwd.transpose().to_dense(), rev.to_dense());
    }

    #[test]
    fn co_citation_pattern_captures_shared_targets() {
        // Nodes 0, 1, 2 all point at 3 → A·Aᵀ connects them pairwise.
        let a = toy();
        let aat = DirectedPattern::new(vec![Dir::Fwd, Dir::Rev]).materialize(&a).unwrap();
        assert_eq!(aat.get(0, 1), 1.0);
        assert_eq!(aat.get(1, 2), 1.0);
        assert_eq!(aat.get(0, 2), 1.0);
        assert_eq!(aat.get(0, 0), 0.0, "diagonal must be removed");
        assert_eq!(aat.get(0, 4), 0.0);
    }

    #[test]
    fn co_source_pattern_captures_shared_sources() {
        // 4 points at 0, 1, 2 → Aᵀ·A connects 0, 1, 2 pairwise.
        let a = toy();
        let ata = DirectedPattern::new(vec![Dir::Rev, Dir::Fwd]).materialize(&a).unwrap();
        assert_eq!(ata.get(0, 1), 1.0);
        assert_eq!(ata.get(1, 2), 1.0);
        assert_eq!(ata.get(0, 3), 0.0);
    }

    #[test]
    fn two_hop_forward_pattern() {
        // 4 -> 0 -> 3: A·A should connect 4 to 3.
        let a = toy();
        let aa = DirectedPattern::new(vec![Dir::Fwd, Dir::Fwd]).materialize(&a).unwrap();
        assert_eq!(aa.get(4, 3), 1.0);
        assert_eq!(aa.get(0, 3), 0.0);
    }

    #[test]
    fn symmetric_adjacency_collapses_patterns() {
        let a = toy();
        let sym = a.bool_union(&a.transpose()).unwrap();
        let pats = DirectedPattern::two_order();
        let mats: Vec<_> = pats.iter().map(|p| p.materialize(&sym).unwrap()).collect();
        // On an undirected graph, all 2-order patterns coincide.
        for m in &mats[1..] {
            assert_eq!(m.to_dense(), mats[0].to_dense());
        }
    }

    #[test]
    fn pattern_set_builds_propagators() {
        let a = toy();
        let ps = PatternSet::up_to_order(&a, 2).unwrap();
        assert_eq!(ps.len(), 6);
        for prop in ps.propagators() {
            for r in 0..prop.n_rows() {
                let s: f32 = prop.row_values(r).iter().sum();
                assert!(s.abs() < 1e-6 || (s - 1.0).abs() < 1e-5, "row sum {s}");
            }
        }
    }

    #[test]
    fn build_normalized_symmetric_coefficient() {
        let a = toy();
        let sym = PatternSet::build_normalized(&a, DirectedPattern::two_order(), 0.5).unwrap();
        // With r = 0.5 on a symmetric pattern (A·Aᵀ is symmetric), the
        // propagator is symmetric too.
        let idx = 1; // A·Aᵀ
        let prop = &sym.propagators()[idx];
        for (u, v, w) in prop.iter() {
            assert!((prop.get(v, u) - w).abs() < 1e-5);
        }
    }

    #[test]
    fn build_normalized_rejects_bad_coefficient() {
        let a = toy();
        for bad in [1.5, -0.1, f32::NAN] {
            let err = PatternSet::build_normalized(&a, DirectedPattern::two_order(), bad)
                .expect_err("coefficient outside [0, 1] must be rejected");
            assert!(
                matches!(&err, GraphError::BadCoefficient { detail }
                    if detail.contains("convolution coefficient")),
                "unexpected error: {err:?}"
            );
        }
    }

    #[test]
    fn materialize_all_matches_per_pattern_materialize() {
        let a = toy();
        let pats = DirectedPattern::enumerate_up_to(3);
        let shared = DirectedPattern::materialize_all(&a, &pats).unwrap();
        for (p, got) in pats.iter().zip(&shared) {
            let direct = p.materialize(&a).unwrap();
            assert_eq!(got, &direct, "shared-prefix result diverged for {p}");
        }
    }

    #[test]
    fn from_parts_matches_build_normalized() {
        let a = toy();
        let pats = DirectedPattern::two_order();
        let built = PatternSet::build_normalized(&a, pats.clone(), 0.5).unwrap();
        let ops = DirectedPattern::materialize_all(&a, &pats).unwrap();
        let assembled = PatternSet::from_parts(pats, ops, 0.5).unwrap();
        assert_eq!(assembled.operators(), built.operators());
        assert_eq!(assembled.propagators(), built.propagators());
    }

    #[test]
    fn from_parts_rejects_length_mismatch() {
        let a = toy();
        let pats = DirectedPattern::two_order();
        let mut ops = DirectedPattern::materialize_all(&a, &pats).unwrap();
        ops.pop();
        assert!(PatternSet::from_parts(pats, ops, 0.0).is_err());
    }

    #[test]
    fn pattern_set_select_subsets() {
        let a = toy();
        let ps = PatternSet::up_to_order(&a, 2).unwrap();
        let sub = ps.select(&[0, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.patterns()[0], ps.patterns()[0]);
        assert_eq!(sub.patterns()[1], ps.patterns()[3]);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_pattern_panics() {
        let _ = DirectedPattern::new(vec![]);
    }
}
