//! Bit-identity properties for the parallel `CsrMatrix::spmm` (DESIGN.md
//! §9): nnz-balanced row partitioning must never change the result, only
//! the wall-clock. Sparsity patterns deliberately include empty rows,
//! hub-skewed nnz distributions, and row counts smaller than the thread
//! budget — the cases where a partitioner is most likely to cut wrong.

use amud_graph::CsrMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Builds a skewed sparse matrix: row 0 is a hub holding roughly half the
/// edges, a band of rows is left completely empty, the rest is random.
fn skewed_csr(n: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize, f32)> = Vec::new();
    let hub_deg = (n / 2).max(1);
    for _ in 0..hub_deg {
        edges.push((0, rng.gen_range(0..n as u64) as usize, rng.gen_range(-1.0f32..1.0)));
    }
    let empty_lo = n / 3;
    let empty_hi = (empty_lo + n / 4).min(n);
    for r in 1..n {
        if (empty_lo..empty_hi).contains(&r) {
            continue; // structurally empty rows
        }
        let deg = rng.gen_range(0..4u64);
        for _ in 0..deg {
            edges.push((r, rng.gen_range(0..n as u64) as usize, rng.gen_range(-1.0f32..1.0)));
        }
    }
    CsrMatrix::from_coo(n, n, edges).expect("generated indices are in bounds")
}

fn dense(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spmm_is_thread_invariant(
        dims in (1usize..160, 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        let (n, x_cols) = dims;
        let m = skewed_csr(n, seed);
        let x = dense(n, x_cols, seed ^ 0xabcd);
        let baseline = amud_par::with_threads(1, || {
            let mut out = vec![0.0f32; n * x_cols];
            m.spmm(&x, x_cols, &mut out);
            out
        });
        let base_bits: Vec<u32> = baseline.iter().map(|v| v.to_bits()).collect();
        for &t in &THREAD_COUNTS[1..] {
            let got = amud_par::with_threads(t, || {
                // Dirty output buffer: spmm must fully overwrite its block.
                let mut out = vec![f32::NAN; n * x_cols];
                m.spmm(&x, x_cols, &mut out);
                out
            });
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&base_bits, &got_bits, "spmm diverged at {} threads (n={})", t, n);
        }
    }

    #[test]
    fn spmm_fewer_rows_than_threads(
        n in 1usize..7,
        seed in 0u64..1_000_000,
    ) {
        // 8-thread budget against 1..6 rows: the partitioner must emit
        // at most n non-empty parts and still cover everything.
        let m = skewed_csr(n, seed);
        let x = dense(n, 3, seed ^ 0x5555);
        let mut serial = vec![0.0f32; n * 3];
        amud_par::with_threads(1, || m.spmm(&x, 3, &mut serial));
        let mut wide = vec![0.0f32; n * 3];
        amud_par::with_threads(8, || m.spmm(&x, 3, &mut wide));
        let a: Vec<u32> = serial.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = wide.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }
}

/// Every `spmm` output element must be bitwise equal to the legacy scalar
/// loop (ascending nonzero order): the lane axpy microkernels are
/// order-preserving by construction. Dense widths ≡ 1 and 7 (mod 8) force
/// the lane tail, widths < 4 force the nonzero-block tail.
#[test]
fn spmm_lane_tails_match_the_scalar_reference() {
    for x_cols in [1usize, 2, 3, 5, 7, 8, 9, 15, 17, 33, 39] {
        let n = 120;
        let m = skewed_csr(n, 9000 + x_cols as u64);
        let x = dense(n, x_cols, 600 + x_cols as u64);
        let mut got = vec![f32::NAN; n * x_cols];
        m.spmm(&x, x_cols, &mut got);
        let mut want = vec![0.0f32; n * x_cols];
        for r in 0..n {
            for (&c, &v) in m.row_cols(r).iter().zip(m.row_values(r)) {
                for j in 0..x_cols {
                    want[r * x_cols + j] += v * x[c as usize * x_cols + j];
                }
            }
        }
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "spmm x_cols={x_cols} elem {i} diverged from the scalar reference"
            );
        }
    }
}

/// A shape big enough to clear the per-part serial-fallback threshold
/// with at least two parts, so the nnz-balanced parallel path is what's
/// actually compared.
#[test]
fn spmm_above_threshold_is_thread_invariant() {
    let n = 1500;
    let m = skewed_csr(n, 424242);
    assert!(m.nnz() * 32 >= 2 << 15, "fixture must be worth at least two parallel parts");
    let x = dense(n, 32, 31337);
    let mut serial = vec![0.0f32; n * 32];
    amud_par::with_threads(1, || m.spmm(&x, 32, &mut serial));
    for t in [2, 3, 8] {
        let mut par = vec![f32::NAN; n * 32];
        amud_par::with_threads(t, || m.spmm(&x, 32, &mut par));
        assert!(
            serial.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits()),
            "spmm diverged at {t} threads"
        );
    }
}
