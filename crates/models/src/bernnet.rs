//! BernNet (He et al., NeurIPS 2021): arbitrary spectral filters via a
//! Bernstein polynomial expansion of the normalised Laplacian,
//! `Z = Σ_v θ_v B_v(L) · f(X)`.
//!
//! **Simplification** (documented in DESIGN.md): the basis is applied to
//! `X` once at construction (decoupled) rather than to `MLP(X)` per step;
//! the learnable filter coefficients `θ_v` and the MLP head are unchanged.
//! Coefficients are kept non-negative in the original via ReLU — mirrored
//! here by learning them freely but initialising flat, which preserves the
//! model's expressive range.

use crate::common::{bernstein_basis, gcn_operator};
use amud_nn::{Activation, DenseMatrix, Mlp, NodeId, ParamBank, ParamId, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct BernNet {
    bank: ParamBank,
    /// `B_v(L) X` for `v = 0..=K`, precomputed.
    basis: Vec<DenseMatrix>,
    /// `1 × (K+1)` filter coefficients θ.
    theta: ParamId,
    head: Mlp,
}

impl BernNet {
    pub fn new(data: &GraphData, hidden: usize, k: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let op = gcn_operator(&data.adj);
        let basis = bernstein_basis(&op, &data.features, k);
        let mut bank = ParamBank::new();
        let theta = bank.add(DenseMatrix::ones(1, k + 1));
        let head = Mlp::new(
            &mut bank,
            &[data.n_features(), hidden, data.n_classes],
            Activation::Relu,
            dropout,
            &mut rng,
        );
        Self { bank, basis, theta, head }
    }
}

impl Model for BernNet {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        _data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let theta = tape.param(&self.bank, self.theta);
        let mut filtered: Option<NodeId> = None;
        for (v, b) in self.basis.iter().enumerate() {
            let bx = tape.constant(b.clone());
            let scaled = tape.scalar_scale(theta, v, bx);
            filtered = Some(match filtered {
                Some(acc) => tape.add(acc, scaled),
                None => scaled,
            });
        }
        let Some(filtered) = filtered else {
            unreachable!("the Bernstein basis always has K + 1 ≥ 1 terms")
        };
        self.head.forward(tape, &self.bank, filtered, training, rng)
    }
    fn name(&self) -> &'static str {
        "BernNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn bernnet_trains_on_homophilous_replica() {
        let data = tiny_data("cora_ml", 13).to_undirected();
        let mut model = BernNet::new(&data, 32, 6, 0.2, 13);
        let acc = quick_train(&mut model, &data, 13);
        assert!(acc > 0.4, "BernNet accuracy {acc}");
    }

    #[test]
    fn flat_theta_reproduces_identity_filter() {
        // With θ ≡ 1 the Bernstein expansion sums to the identity, so the
        // filtered features equal X.
        let data = tiny_data("citeseer", 14).to_undirected();
        let model = BernNet::new(&data, 16, 4, 0.0, 14);
        let mut tape = Tape::new();
        let theta = tape.param(&model.bank, model.theta);
        let mut filtered: Option<NodeId> = None;
        for (v, b) in model.basis.iter().enumerate() {
            let bx = tape.constant(b.clone());
            let scaled = tape.scalar_scale(theta, v, bx);
            filtered = Some(match filtered {
                Some(acc) => tape.add(acc, scaled),
                None => scaled,
            });
        }
        let out = tape.value(filtered.unwrap());
        for (got, want) in out.as_slice().iter().zip(data.features.as_slice()) {
            assert!((got - want).abs() < 1e-3, "identity filter violated: {got} vs {want}");
        }
    }
}
