//! Shared operator construction and polynomial bases.

use amud_graph::CsrMatrix;
use amud_nn::{DenseMatrix, SparseOp};

/// GCN operator: `D̂^{-1/2} Â D̂^{-1/2}` with self-loops (Eq. 1, r = 1/2).
pub fn gcn_operator(adj: &CsrMatrix) -> SparseOp {
    SparseOp::new(adj.with_self_loops(1.0).sym_normalized())
}

/// Row-stochastic operator `D̂⁻¹ Â` with self-loops.
pub fn row_stochastic(adj: &CsrMatrix) -> SparseOp {
    SparseOp::new(adj.with_self_loops(1.0).row_normalized())
}

/// Out- and in-neighbour propagation operators (`D̂⁻¹Â`, `D̂⁻¹Âᵀ`, both with
/// self-loops) — the directed message-passing pair of Eq. 2.
pub fn in_out_operators(adj: &CsrMatrix) -> (SparseOp, SparseOp) {
    let out = adj.with_self_loops(1.0).row_normalized();
    let inn = adj.transpose().with_self_loops(1.0).row_normalized();
    (SparseOp::new(out), SparseOp::new(inn))
}

/// `[X, ÂX, Â²X, …, Â^K X]` — dense K-hop propagation cache used by the
/// decoupled spectral models.
pub fn propagate_k(op: &SparseOp, x: &DenseMatrix, k: usize) -> Vec<DenseMatrix> {
    let mut out = Vec::with_capacity(k + 1);
    out.push(x.clone());
    let f = x.cols();
    for step in 0..k {
        let mut next = DenseMatrix::zeros(x.rows(), f);
        op.matrix().spmm(out[step].as_slice(), f, next.as_mut_slice());
        out.push(next);
    }
    out
}

/// Applies the normalised Laplacian `L = I − Â_sym` to a dense matrix.
fn apply_laplacian(op: &SparseOp, x: &DenseMatrix) -> DenseMatrix {
    let mut ax = DenseMatrix::zeros(x.rows(), x.cols());
    op.matrix().spmm(x.as_slice(), x.cols(), ax.as_mut_slice());
    let mut out = x.clone();
    out.add_scaled_assign(&ax, -1.0);
    out
}

/// Applies `2I − L = I + Â_sym` to a dense matrix.
fn apply_two_minus_laplacian(op: &SparseOp, x: &DenseMatrix) -> DenseMatrix {
    let mut ax = DenseMatrix::zeros(x.rows(), x.cols());
    op.matrix().spmm(x.as_slice(), x.cols(), ax.as_mut_slice());
    let mut out = x.clone();
    out.add_scaled_assign(&ax, 1.0);
    out
}

/// Bernstein polynomial basis of degree `k_max` applied to `X`
/// (BernNet): `B_v = C(K,v) / 2^K · (2I − L)^{K−v} L^v X`.
///
/// The symmetric-normalised adjacency operator must include self-loops
/// (i.e. the output of [`gcn_operator`]), so `L`'s spectrum lies in [0, 2).
pub fn bernstein_basis(op: &SparseOp, x: &DenseMatrix, k_max: usize) -> Vec<DenseMatrix> {
    // l_pow[v] = L^v X
    let mut l_pow = Vec::with_capacity(k_max + 1);
    l_pow.push(x.clone());
    for v in 0..k_max {
        l_pow.push(apply_laplacian(op, &l_pow[v]));
    }
    let mut basis = Vec::with_capacity(k_max + 1);
    for (v, pow) in l_pow.iter().enumerate() {
        let mut cur = pow.clone();
        for _ in 0..(k_max - v) {
            cur = apply_two_minus_laplacian(op, &cur);
        }
        let coeff = binomial(k_max, v) / 2f32.powi(k_max as i32);
        basis.push(cur.scale(coeff));
    }
    basis
}

/// Jacobi polynomial basis `P_v^{(a,b)}(Â) X` for `v = 0..=k_max`
/// (JacobiConv), via the three-term recurrence.
pub fn jacobi_basis(
    op: &SparseOp,
    x: &DenseMatrix,
    k_max: usize,
    a: f32,
    b: f32,
) -> Vec<DenseMatrix> {
    let apply = |m: &DenseMatrix| {
        let mut out = DenseMatrix::zeros(m.rows(), m.cols());
        op.matrix().spmm(m.as_slice(), m.cols(), out.as_mut_slice());
        out
    };
    let mut basis: Vec<DenseMatrix> = Vec::with_capacity(k_max + 1);
    basis.push(x.clone());
    if k_max == 0 {
        return basis;
    }
    // P_1 = (a−b)/2 + (a+b+2)/2 · Â
    {
        let ax = apply(x);
        let mut p1 = x.scale((a - b) / 2.0);
        p1.add_scaled_assign(&ax, (a + b + 2.0) / 2.0);
        basis.push(p1);
    }
    for v in 2..=k_max {
        let vf = v as f32;
        let c = 2.0 * vf + a + b;
        let theta0 = (c * (c - 1.0)) / (2.0 * vf * (vf + a + b));
        let theta1 = ((c - 1.0) * (a * a - b * b)) / (2.0 * vf * (vf + a + b) * (c - 2.0));
        let theta2 = (c * (vf + a - 1.0) * (vf + b - 1.0)) / (vf * (vf + a + b) * (c - 2.0));
        let a_prev = apply(&basis[v - 1]);
        let mut next = a_prev.scale(theta0);
        next.add_scaled_assign(&basis[v - 1], theta1);
        next.add_scaled_assign(&basis[v - 2], -theta2);
        basis.push(next);
    }
    basis
}

fn binomial(n: usize, k: usize) -> f32 {
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrMatrix {
        CsrMatrix::from_edges(4, 4, vec![(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn gcn_operator_is_symmetric_on_symmetric_input() {
        let a = path_graph();
        let sym = a.bool_union(&a.transpose()).unwrap();
        let op = gcn_operator(&sym);
        for (u, v, w) in op.matrix().iter() {
            assert!((op.matrix().get(v, u) - w).abs() < 1e-6);
        }
    }

    #[test]
    fn in_out_operators_transpose_relationship() {
        let a = path_graph();
        let (out, inn) = in_out_operators(&a);
        // Out operator of node 0 looks at node 1; in operator of node 0
        // only sees itself (no in-edges).
        assert!(out.matrix().get(0, 1) > 0.0);
        assert_eq!(inn.matrix().get(0, 1), 0.0);
        assert!(inn.matrix().get(1, 0) > 0.0);
    }

    #[test]
    fn propagate_k_lengths_and_identity() {
        let a = path_graph();
        let sym = a.bool_union(&a.transpose()).unwrap();
        let op = gcn_operator(&sym);
        let x = DenseMatrix::ones(4, 2);
        let hops = propagate_k(&op, &x, 3);
        assert_eq!(hops.len(), 4);
        assert_eq!(hops[0], x);
    }

    #[test]
    fn bernstein_basis_partitions_unity_at_constant_features() {
        // Σ_v B_v(λ) = 1 for any λ, so summing the basis applied to X must
        // give X back.
        let a = path_graph();
        let sym = a.bool_union(&a.transpose()).unwrap();
        let op = gcn_operator(&sym);
        let x = DenseMatrix::from_fn(4, 2, |r, c| (r + c) as f32 * 0.5 - 0.3);
        let basis = bernstein_basis(&op, &x, 4);
        assert_eq!(basis.len(), 5);
        let mut sum = DenseMatrix::zeros(4, 2);
        for b in &basis {
            sum.add_scaled_assign(b, 1.0);
        }
        for (got, want) in sum.as_slice().iter().zip(x.as_slice()) {
            assert!((got - want).abs() < 1e-4, "Σ B_v X = X violated: {got} vs {want}");
        }
    }

    #[test]
    fn jacobi_basis_first_two_terms() {
        let a = path_graph();
        let sym = a.bool_union(&a.transpose()).unwrap();
        let op = gcn_operator(&sym);
        let x = DenseMatrix::ones(4, 1);
        let basis = jacobi_basis(&op, &x, 3, 1.0, 1.0);
        assert_eq!(basis.len(), 4);
        assert_eq!(basis[0], x);
        // With a = b = 1: P_1 = 2·Â. The GCN operator with self-loops has
        // row sums ≤ 1; on constants ÂX = rowsum ≈ 1 per node.
        assert!(basis[1].as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(4, 0), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(5, 5), 1.0);
    }
}
