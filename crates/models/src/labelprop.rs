//! Label propagation — the classic parameter-free baseline whose
//! "consistent and strong performance across datasets" the paper cites as
//! the empirical footing of the homophily assumption (Sec. II-B).
//!
//! `F^{(t+1)} = (1−α) Â F^{(t)} + α F^{(0)}`, with rows of `F^{(0)}`
//! one-hot on labelled training nodes, and training rows clamped after
//! every step.

use amud_graph::CsrMatrix;
use amud_nn::DenseMatrix;

/// Runs label propagation and returns the per-node class scores
/// (`n × n_classes`). Predictions are the row argmax.
pub fn label_propagation(
    adj: &CsrMatrix,
    labels: &[usize],
    train: &[usize],
    n_classes: usize,
    steps: usize,
    alpha: f32,
) -> DenseMatrix {
    assert!((0.0..=1.0).contains(&alpha), "retention must be a probability");
    let n = adj.n_rows();
    assert_eq!(labels.len(), n, "labels must cover all nodes");
    let op = adj.with_self_loops(1.0).sym_normalized();

    let mut seed = DenseMatrix::zeros(n, n_classes);
    for &v in train {
        seed.set(v, labels[v], 1.0);
    }
    let mut f = seed.clone();
    let mut next = DenseMatrix::zeros(n, n_classes);
    for _ in 0..steps {
        op.spmm(f.as_slice(), n_classes, next.as_mut_slice());
        for (o, (&p, &s)) in
            next.as_mut_slice().iter_mut().zip(f.as_slice().iter().zip(seed.as_slice()))
        {
            let _ = p;
            *o = (1.0 - alpha) * *o + alpha * s;
        }
        // Clamp training rows to their one-hot labels.
        for &v in train {
            let row = next.row_mut(v);
            row.fill(0.0);
            row[labels[v]] = 1.0;
        }
        std::mem::swap(&mut f, &mut next);
    }
    f
}

/// Accuracy of label propagation on an index set.
pub fn label_propagation_accuracy(
    adj: &CsrMatrix,
    labels: &[usize],
    train: &[usize],
    eval: &[usize],
    n_classes: usize,
    steps: usize,
    alpha: f32,
) -> f64 {
    let scores = label_propagation(adj, labels, train, n_classes, steps, alpha);
    let preds = scores.argmax_rows();
    if eval.is_empty() {
        return 0.0;
    }
    let correct = eval.iter().filter(|&&v| preds[v] == labels[v]).count();
    correct as f64 / eval.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::tiny_data;

    #[test]
    fn training_rows_stay_clamped() {
        let data = tiny_data("cora_ml", 47).to_undirected();
        let scores =
            label_propagation(&data.adj, &data.labels, &data.train, data.n_classes, 10, 0.2);
        for &v in data.train.iter() {
            assert_eq!(scores.get(v, data.labels[v]), 1.0);
        }
    }

    #[test]
    fn propagation_beats_chance_on_homophilous_graph() {
        let data = tiny_data("cora_ml", 48).to_undirected();
        let acc = label_propagation_accuracy(
            &data.adj,
            &data.labels,
            &data.train,
            &data.test,
            data.n_classes,
            20,
            0.2,
        );
        // 7 classes → chance ≈ 0.14; homophily should lift LP well above.
        assert!(acc > 0.3, "label propagation accuracy {acc}");
    }

    #[test]
    fn propagation_struggles_on_heterophilous_graph() {
        // The motivating failure: LP assumes homophily, so a heterophilous
        // digraph should give it much less lift than the homophilous one.
        let hom = tiny_data("cora_ml", 49).to_undirected();
        let het = tiny_data("chameleon", 49).to_undirected();
        let acc_hom = label_propagation_accuracy(
            &hom.adj,
            &hom.labels,
            &hom.train,
            &hom.test,
            hom.n_classes,
            20,
            0.2,
        );
        let acc_het = label_propagation_accuracy(
            &het.adj,
            &het.labels,
            &het.train,
            &het.test,
            het.n_classes,
            20,
            0.2,
        );
        assert!(acc_hom > acc_het + 0.1, "LP should prefer homophily: {acc_hom} vs {acc_het}");
    }

    #[test]
    fn zero_steps_returns_seed_scores() {
        let data = tiny_data("texas", 50);
        let scores =
            label_propagation(&data.adj, &data.labels, &data.train, data.n_classes, 0, 0.2);
        let nonzero_rows =
            (0..data.n_nodes()).filter(|&v| scores.row(v).iter().any(|&x| x != 0.0)).count();
        assert_eq!(nonzero_rows, data.train.len());
    }
}
