//! GraphSAGE (Hamilton et al., NeurIPS 2017) — the third canonical
//! message-passing design the paper's introduction cites: per layer, the
//! mean of the neighbourhood is computed separately from the node's own
//! representation and the two are concatenated before the linear map:
//!
//! ```text
//! h'_i = σ( W · [ h_i ‖ mean_{j ∈ N(i)} h_j ] )
//! ```

use crate::common::row_stochastic;
use amud_nn::{linear::dropout_mask, Linear, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct GraphSage {
    bank: ParamBank,
    op: SparseOp,
    l1: Linear,
    l2: Linear,
    dropout: f32,
}

impl GraphSage {
    pub fn new(data: &GraphData, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let f = data.n_features();
        let l1 = Linear::new(&mut bank, 2 * f, hidden, &mut rng);
        let l2 = Linear::new(&mut bank, 2 * hidden, data.n_classes, &mut rng);
        Self { bank, op: row_stochastic(&data.adj), l1, l2, dropout }
    }

    fn sage_layer(&self, tape: &mut Tape, lin: &Linear, x: NodeId) -> NodeId {
        let mean_nbr = tape.spmm(&self.op, x);
        let cat = tape.concat_cols(&[x, mean_nbr]);
        lin.forward(tape, &self.bank, cat)
    }
}

impl Model for GraphSage {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let mut x = tape.constant(data.features.clone());
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(x).shape();
            x = tape.dropout(x, dropout_mask(rng, r, c, self.dropout));
        }
        let h1 = self.sage_layer(tape, &self.l1, x);
        let mut h1 = tape.relu(h1);
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(h1).shape();
            h1 = tape.dropout(h1, dropout_mask(rng, r, c, self.dropout));
        }
        self.sage_layer(tape, &self.l2, h1)
    }
    fn name(&self) -> &'static str {
        "GraphSAGE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn sage_trains_on_homophilous_replica() {
        let data = tiny_data("cora_ml", 62).to_undirected();
        let mut model = GraphSage::new(&data, 32, 0.2, 62);
        let acc = quick_train(&mut model, &data, 62);
        assert!(acc > 0.4, "GraphSAGE accuracy {acc}");
    }

    #[test]
    fn self_features_survive_isolated_nodes() {
        // An isolated node's neighbourhood mean is zero, but its own
        // features still reach the classifier through the concat branch.
        let data = tiny_data("texas", 63);
        let model = GraphSage::new(&data, 16, 0.0, 63);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let logits = model.forward(&mut tape, &data, false, &mut rng);
        assert!(tape.value(logits).as_slice().iter().all(|v| v.is_finite()));
    }
}
