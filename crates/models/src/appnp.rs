//! APPNP (Klicpera et al., ICLR 2019) — "predict then propagate", the
//! personalised-PageRank propagation the paper cites as a foundational
//! decoupled design (Sec. II-B [37]):
//!
//! ```text
//! H^{(0)} = MLP(X),   H^{(k+1)} = (1−α) Â H^{(k)} + α H^{(0)}
//! ```

use crate::common::gcn_operator;
use amud_nn::{Activation, Mlp, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct Appnp {
    bank: ParamBank,
    op: SparseOp,
    encoder: Mlp,
    alpha: f32,
    k: usize,
}

impl Appnp {
    pub fn new(
        data: &GraphData,
        hidden: usize,
        k: usize,
        alpha: f32,
        dropout: f32,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "teleport must be a probability");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let encoder = Mlp::new(
            &mut bank,
            &[data.n_features(), hidden, data.n_classes],
            Activation::Relu,
            dropout,
            &mut rng,
        );
        Self { bank, op: gcn_operator(&data.adj), encoder, alpha, k }
    }
}

impl Model for Appnp {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        let h0 = self.encoder.forward(tape, &self.bank, x, training, rng);
        let teleport = tape.scale(h0, self.alpha);
        let mut h = h0;
        for _ in 0..self.k {
            let ah = tape.spmm(&self.op, h);
            let walk = tape.scale(ah, 1.0 - self.alpha);
            h = tape.add(walk, teleport);
        }
        h
    }
    fn name(&self) -> &'static str {
        "APPNP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn appnp_trains_on_homophilous_replica() {
        let data = tiny_data("cora_ml", 43).to_undirected();
        let mut model = Appnp::new(&data, 32, 6, 0.1, 0.2, 43);
        let acc = quick_train(&mut model, &data, 43);
        assert!(acc > 0.4, "APPNP accuracy {acc}");
    }

    #[test]
    fn alpha_one_reduces_to_mlp() {
        // With α = 1 every step returns the teleport, so propagation is a
        // no-op and the output equals the encoder's.
        let data = tiny_data("texas", 44);
        let model = Appnp::new(&data, 16, 4, 1.0, 0.0, 44);
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let x = tape.constant(data.features.clone());
        let h0 = model.encoder.forward(&mut tape, &model.bank, x, false, &mut rng);
        let full = model.forward(&mut tape, &data, false, &mut rng);
        assert_eq!(tape.value(h0), tape.value(full));
    }
}
