//! GAT (Veličković et al., ICLR 2018) — the canonical attention-based
//! message-passing GNN the paper's introduction lists alongside GCN and
//! GraphSAGE. Each layer computes per-edge attention
//! `α_ij = softmax_j(LeakyReLU(aᵀ[W h_i ‖ W h_j]))` over the node's
//! neighbourhood (self-loop included) and aggregates
//! `h'_i = Σ_j α_ij W h_j`, here with `heads` independent attention heads
//! concatenated.

use amud_graph::CsrMatrix;
use amud_nn::{linear::dropout_mask, DenseMatrix, Linear, NodeId, ParamBank, ParamId, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

struct GatLayer {
    /// One projection + attention-vector pair per head.
    heads: Vec<(Linear, ParamId, ParamId)>,
}

impl GatLayer {
    fn new(
        bank: &mut ParamBank,
        in_dim: usize,
        out_dim: usize,
        n_heads: usize,
        rng: &mut StdRng,
    ) -> Self {
        let heads = (0..n_heads)
            .map(|_| {
                let w = Linear::new(bank, in_dim, out_dim, rng);
                let a_src = bank.add(DenseMatrix::xavier_uniform(out_dim, 1, rng));
                let a_dst = bank.add(DenseMatrix::xavier_uniform(out_dim, 1, rng));
                (w, a_src, a_dst)
            })
            .collect();
        Self { heads }
    }

    fn forward(&self, tape: &mut Tape, bank: &ParamBank, adj: &Rc<CsrMatrix>, x: NodeId) -> NodeId {
        let outs: Vec<NodeId> = self
            .heads
            .iter()
            .map(|(w, a_src, a_dst)| {
                let h = w.forward(tape, bank, x);
                let asrc = tape.param(bank, *a_src);
                let adst = tape.param(bank, *a_dst);
                let s_src = tape.matmul(h, asrc);
                let s_dst = tape.matmul(h, adst);
                tape.gat_attention(adj, s_src, s_dst, h, 0.2)
            })
            .collect();
        tape.concat_cols(&outs)
    }
}

pub struct Gat {
    bank: ParamBank,
    adj: Rc<CsrMatrix>,
    l1: GatLayer,
    l2: GatLayer,
    dropout: f32,
}

impl Gat {
    pub fn new(data: &GraphData, hidden: usize, n_heads: usize, dropout: f32, seed: u64) -> Self {
        assert!(n_heads >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        // Self-loops so every node attends at least to itself.
        let adj = Rc::new(data.adj.with_self_loops(1.0));
        let mut bank = ParamBank::new();
        let per_head = (hidden / n_heads).max(1);
        let l1 = GatLayer::new(&mut bank, data.n_features(), per_head, n_heads, &mut rng);
        let l2 = GatLayer::new(&mut bank, per_head * n_heads, data.n_classes, 1, &mut rng);
        Self { bank, adj, l1, l2, dropout }
    }
}

impl Model for Gat {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let mut x = tape.constant(data.features.clone());
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(x).shape();
            x = tape.dropout(x, dropout_mask(rng, r, c, self.dropout));
        }
        let h1 = self.l1.forward(tape, &self.bank, &self.adj, x);
        let mut h1 = tape.leaky_relu(h1, 0.2);
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(h1).shape();
            h1 = tape.dropout(h1, dropout_mask(rng, r, c, self.dropout));
        }
        self.l2.forward(tape, &self.bank, &self.adj, h1)
    }
    fn name(&self) -> &'static str {
        "GAT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn gat_trains_on_homophilous_replica() {
        let data = tiny_data("cora_ml", 60).to_undirected();
        let mut model = Gat::new(&data, 32, 4, 0.2, 60);
        let acc = quick_train(&mut model, &data, 60);
        assert!(acc > 0.4, "GAT accuracy {acc}");
    }

    #[test]
    fn head_count_divides_hidden_width() {
        let data = tiny_data("texas", 61);
        let model = Gat::new(&data, 32, 4, 0.0, 61);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let logits = model.forward(&mut tape, &data, false, &mut rng);
        assert_eq!(tape.value(logits).shape(), (data.n_nodes(), data.n_classes));
    }
}
