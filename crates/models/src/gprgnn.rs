//! GPR-GNN (Chien et al., ICLR 2021): `Z = Σ_k γ_k H^{(k)}` with
//! `H^{(0)} = MLP(X)`, `H^{(k)} = Â H^{(k-1)}` and learnable generalised
//! PageRank weights `γ_k` initialised to the PPR profile `α(1−α)^k`.

use crate::common::gcn_operator;
use amud_nn::{Activation, DenseMatrix, Mlp, NodeId, ParamBank, ParamId, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct GprGnn {
    bank: ParamBank,
    op: SparseOp,
    encoder: Mlp,
    /// `1 × (K+1)` learnable propagation weights.
    gamma: ParamId,
    k: usize,
}

impl GprGnn {
    pub fn new(
        data: &GraphData,
        hidden: usize,
        k: usize,
        alpha: f32,
        dropout: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let encoder = Mlp::new(
            &mut bank,
            &[data.n_features(), hidden, data.n_classes],
            Activation::Relu,
            dropout,
            &mut rng,
        );
        // PPR initialisation, the paper's recommended default.
        let init = DenseMatrix::from_fn(1, k + 1, |_, i| {
            if i == k {
                (1.0 - alpha).powi(k as i32)
            } else {
                alpha * (1.0 - alpha).powi(i as i32)
            }
        });
        let gamma = bank.add(init);
        Self { bank, op: gcn_operator(&data.adj), encoder, gamma, k }
    }
}

impl Model for GprGnn {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        let h0 = self.encoder.forward(tape, &self.bank, x, training, rng);
        let gamma = tape.param(&self.bank, self.gamma);
        let mut h = h0;
        let mut z = tape.scalar_scale(gamma, 0, h0);
        for step in 1..=self.k {
            h = tape.spmm(&self.op, h);
            let weighted = tape.scalar_scale(gamma, step, h);
            z = tape.add(z, weighted);
        }
        z
    }
    fn name(&self) -> &'static str {
        "GPRGNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn gprgnn_trains_on_homophilous_replica() {
        let data = tiny_data("cora_ml", 5).to_undirected();
        let mut model = GprGnn::new(&data, 32, 4, 0.1, 0.2, 5);
        let acc = quick_train(&mut model, &data, 5);
        assert!(acc > 0.4, "GPR-GNN accuracy {acc}");
    }

    #[test]
    fn gamma_initialised_to_ppr_profile() {
        let data = tiny_data("citeseer", 6);
        let model = GprGnn::new(&data, 16, 3, 0.2, 0.0, 6);
        let g = model.bank.value(model.gamma);
        assert!((g.get(0, 0) - 0.2).abs() < 1e-6);
        assert!((g.get(0, 1) - 0.16).abs() < 1e-6);
        // Weights sum to 1 (telescoping PPR profile).
        let sum: f32 = g.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "γ sums to {sum}");
    }
}
