//! GCN (Kipf & Welling, ICLR 2017) — Eq. 1 of the paper.
//!
//! Two convolution layers over the symmetric-normalised adjacency with
//! self-loops: `Z = Â σ(Â X W⁽¹⁾) W⁽²⁾`.

use crate::common::gcn_operator;
use amud_nn::{linear::dropout_mask, Linear, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct Gcn {
    bank: ParamBank,
    op: SparseOp,
    l1: Linear,
    l2: Linear,
    dropout: f32,
}

impl Gcn {
    pub fn new(data: &GraphData, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let l1 = Linear::new(&mut bank, data.n_features(), hidden, &mut rng);
        let l2 = Linear::new(&mut bank, hidden, data.n_classes, &mut rng);
        Self { bank, op: gcn_operator(&data.adj), l1, l2, dropout }
    }

    fn maybe_dropout(
        &self,
        tape: &mut Tape,
        x: NodeId,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(x).shape();
            let mask = dropout_mask(rng, r, c, self.dropout);
            tape.dropout(x, mask)
        } else {
            x
        }
    }
}

impl Model for Gcn {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        let x = self.maybe_dropout(tape, x, training, rng);
        let ax = tape.spmm(&self.op, x);
        let h = self.l1.forward(tape, &self.bank, ax);
        let h = tape.relu(h);
        let h = self.maybe_dropout(tape, h, training, rng);
        let ah = tape.spmm(&self.op, h);
        self.l2.forward(tape, &self.bank, ah)
    }
    fn name(&self) -> &'static str {
        "GCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn gcn_exploits_homophilous_topology() {
        let data = tiny_data("cora_ml", 1).to_undirected();
        let mut model = Gcn::new(&data, 32, 0.3, 1);
        let acc = quick_train(&mut model, &data, 1);
        assert!(acc > 0.4, "GCN accuracy {acc}");
    }

    #[test]
    fn gcn_forward_shape() {
        let data = tiny_data("texas", 2);
        let model = Gcn::new(&data, 16, 0.0, 2);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let logits = model.forward(&mut tape, &data, false, &mut rng);
        assert_eq!(tape.value(logits).shape(), (data.n_nodes(), data.n_classes));
    }
}
