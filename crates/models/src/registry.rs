//! Name → builder dispatch for the experiment harness.
//!
//! The default hyperparameters below follow the paper's protocol (hidden
//! width 64, dropout/lr tuned per family) at the modest end of its search
//! ranges, so the full table sweeps stay CPU-feasible.

use crate::{
    a2dug::A2dug, aero::AeroGnn, appnp::Appnp, bernnet::BernNet, dgcn::Dgcn, digcn::DiGcn,
    dimpa::Dimpa, dirgnn::DirGnn, gat::Gat, gcn::Gcn, glognn::GloGnn, gprgnn::GprGnn, h2gcn::H2gcn,
    jacobi::JacobiConv, linkx::Linkx, magnet::MagNet, mgc::Mgc, mlp::MlpBaseline, nste::Nste,
    sage::GraphSage, sgc::Sgc,
};
use amud_train::{GraphData, Model};

/// Undirected baselines, in the tables' row order.
pub fn undirected_model_names() -> Vec<&'static str> {
    vec!["GCN", "SGC", "LINKX", "BernNet", "JacobiConv", "GPRGNN", "GloGNN", "AERO-GNN"]
}

/// Directed baselines, in the tables' row order.
pub fn directed_model_names() -> Vec<&'static str> {
    vec!["DGCN", "DiGCN", "MagNet", "NSTE", "DIMPA", "DirGNN", "A2DUG"]
}

/// Every baseline (undirected then directed), excluding ADPA which lives in
/// `amud-core`.
pub fn model_names() -> Vec<&'static str> {
    let mut names = undirected_model_names();
    names.extend(directed_model_names());
    names
}

/// Extra models the paper formalises but does not benchmark; available to
/// the harness alongside the table baselines.
pub fn extra_model_names() -> Vec<&'static str> {
    vec!["MLP", "GAT", "GraphSAGE", "H2GCN", "APPNP", "MGC"]
}

/// Whether the named model consumes directed topology natively.
pub fn is_directed_model(name: &str) -> bool {
    directed_model_names().contains(&name) || name == "MGC"
}

/// Builds a baseline by name with its default hyperparameters.
///
/// # Panics
/// Panics on an unknown name — valid names come from [`model_names`] plus
/// `"MLP"`.
pub fn build_model(name: &str, data: &GraphData, seed: u64) -> Box<dyn Model> {
    let hidden = 64;
    match name {
        "MLP" => Box::new(MlpBaseline::new(data, hidden, 0.4, seed)),
        "GAT" => Box::new(Gat::new(data, hidden, 4, 0.4, seed)),
        "GraphSAGE" => Box::new(GraphSage::new(data, hidden, 0.4, seed)),
        "H2GCN" => Box::new(H2gcn::new(data, hidden, 2, 0.4, seed)),
        "APPNP" => Box::new(Appnp::new(data, hidden, 6, 0.1, 0.4, seed)),
        "MGC" => Box::new(Mgc::new(data, hidden, 0.15, 0.15, 6, 0.4, seed)),
        "GCN" => Box::new(Gcn::new(data, hidden, 0.4, seed)),
        "SGC" => Box::new(Sgc::new(data, 2, seed)),
        "LINKX" => Box::new(Linkx::new(data, hidden, 0.4, seed)),
        "BernNet" => Box::new(BernNet::new(data, hidden, 8, 0.4, seed)),
        "JacobiConv" => Box::new(JacobiConv::new(data, 4, 1.0, 1.0, seed)),
        "GPRGNN" => Box::new(GprGnn::new(data, hidden, 5, 0.1, 0.4, seed)),
        "GloGNN" => Box::new(GloGnn::new(data, hidden, 16, 0.5, 2, 0.4, seed)),
        "AERO-GNN" => Box::new(AeroGnn::new(data, hidden, 4, 0.4, seed)),
        "DGCN" => Box::new(Dgcn::new(data, hidden, 0.4, seed)),
        "DiGCN" => Box::new(DiGcn::new(data, hidden, 0.1, 0.4, seed)),
        "MagNet" => Box::new(MagNet::new(data, hidden, 0.1, 0.4, seed)),
        "NSTE" => Box::new(Nste::new(data, hidden, 2, 0.4, seed)),
        "DIMPA" => Box::new(Dimpa::new(data, hidden, 2, 0.4, seed)),
        "DirGNN" => Box::new(DirGnn::new(data, hidden, 0.4, seed)),
        "A2DUG" => Box::new(A2dug::new(data, hidden, 0.4, seed)),
        other => panic!("unknown model '{other}'"),
    }
}

/// Shared fixtures for the per-model unit tests.
#[cfg(test)]
pub mod tests_support {
    use amud_datasets::{replica, ReplicaScale};
    use amud_train::{train, GraphData, Model, TrainConfig};

    /// A tiny replica wrapped as [`GraphData`].
    pub fn tiny_data(name: &str, seed: u64) -> GraphData {
        let d = replica(name, ReplicaScale::tiny(), seed);
        GraphData::new(
            &d.graph,
            d.features.clone(),
            d.split.train.clone(),
            d.split.val.clone(),
            d.split.test.clone(),
        )
        .unwrap()
    }

    /// Short training run; returns test accuracy.
    pub fn quick_train(model: &mut dyn Model, data: &GraphData, seed: u64) -> f64 {
        let cfg = TrainConfig {
            epochs: 60,
            patience: 0,
            lr: 0.01,
            weight_decay: 5e-4,
            ..TrainConfig::default()
        };
        train(model, data, cfg, seed).unwrap().test_acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tests_support::tiny_data;

    #[test]
    fn fifteen_baselines_plus_mlp() {
        assert_eq!(model_names().len(), 15);
        assert_eq!(undirected_model_names().len(), 8);
        assert_eq!(directed_model_names().len(), 7);
    }

    #[test]
    fn every_model_builds_and_produces_logits() {
        use amud_nn::Tape;
        use rand::SeedableRng;
        let data = tiny_data("texas", 99);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for name in model_names().into_iter().chain(extra_model_names()) {
            let model = build_model(name, &data, 99);
            let mut tape = Tape::new();
            let logits = model.forward(&mut tape, &data, false, &mut rng);
            assert_eq!(
                tape.value(logits).shape(),
                (data.n_nodes(), data.n_classes),
                "{name} logits shape"
            );
            assert!(
                tape.value(logits).as_slice().iter().all(|v| v.is_finite()),
                "{name} produced non-finite logits"
            );
            assert!(model.n_parameters() > 0, "{name} has no parameters");
        }
    }

    #[test]
    fn directedness_classification() {
        assert!(is_directed_model("MagNet"));
        assert!(is_directed_model("DirGNN"));
        assert!(!is_directed_model("GCN"));
        assert!(!is_directed_model("JacobiConv"));
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        let data = tiny_data("texas", 1);
        let _ = build_model("GAT-9000", &data, 1);
    }
}
