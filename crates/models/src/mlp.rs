//! Plain MLP over node features — the graph-free control every GNN paper
//! implicitly compares against.

use amud_nn::{Activation, Mlp, NodeId, ParamBank, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 2-layer MLP that ignores the topology entirely.
pub struct MlpBaseline {
    bank: ParamBank,
    mlp: Mlp,
}

impl MlpBaseline {
    pub fn new(data: &GraphData, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let mlp = Mlp::new(
            &mut bank,
            &[data.n_features(), hidden, data.n_classes],
            Activation::Relu,
            dropout,
            &mut rng,
        );
        Self { bank, mlp }
    }
}

impl Model for MlpBaseline {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        self.mlp.forward(tape, &self.bank, x, training, rng)
    }
    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn mlp_trains_above_chance_when_features_carry_signal() {
        // Texas replica: strong bag-of-words signal, 5 classes (chance 0.2).
        let data = tiny_data("texas", 0);
        let mut model = super::MlpBaseline::new(&data, 32, 0.2, 0);
        let acc = quick_train(&mut model, &data, 0);
        assert!(acc > 0.3, "MLP accuracy {acc}");
    }
}
