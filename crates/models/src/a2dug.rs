//! A2DUG (Maekawa et al., 2023): "use everything" — aggregated features
//! *and* raw adjacency lists, in both directed and undirected form, fused
//! by a linear head. The paper (Sec. IV-E) notes it obscures the
//! homophily/heterophily split beneath directed edges by treating the
//! variants symmetrically; it is nonetheless a strong simple baseline.

use crate::common::{gcn_operator, in_out_operators};
use amud_nn::{
    linear::dropout_mask, Activation, DenseMatrix, Linear, Mlp, NodeId, ParamBank, ParamId,
    SparseOp, Tape,
};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct A2dug {
    bank: ParamBank,
    /// Aggregated features: ÂᵤX, Â_→X, Â_←X (precomputed).
    agg: Vec<DenseMatrix>,
    /// Raw adjacency-list encoders: A_u·W, A_d·W, A_dᵀ·W.
    adj_ops: Vec<SparseOp>,
    adj_weights: Vec<ParamId>,
    x_encoder: Linear,
    agg_encoders: Vec<Linear>,
    head: Mlp,
    dropout: f32,
}

impl A2dug {
    pub fn new(data: &GraphData, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = data.n_nodes();
        let f = data.n_features();
        let Ok(und) = data.adj.bool_union(&data.adj.transpose()) else {
            unreachable!("A and Aᵀ share a shape by definition of transpose")
        };
        let op_u = gcn_operator(&und);
        let (op_out, op_in) = in_out_operators(&data.adj);
        let propagate = |op: &SparseOp| {
            let mut out = DenseMatrix::zeros(n, f);
            op.matrix().spmm(data.features.as_slice(), f, out.as_mut_slice());
            out
        };
        let agg = vec![propagate(&op_u), propagate(&op_out), propagate(&op_in)];
        let adj_ops = vec![
            SparseOp::new(und),
            SparseOp::new(data.adj.clone()),
            SparseOp::new(data.adj.transpose()),
        ];
        let mut bank = ParamBank::new();
        let adj_weights =
            (0..3).map(|_| bank.add(DenseMatrix::xavier_uniform(n, hidden, &mut rng))).collect();
        let x_encoder = Linear::new(&mut bank, f, hidden, &mut rng);
        let agg_encoders = (0..3).map(|_| Linear::new(&mut bank, f, hidden, &mut rng)).collect();
        // 1 feature + 3 aggregated + 3 adjacency encodings.
        let head = Mlp::new(
            &mut bank,
            &[7 * hidden, hidden, data.n_classes],
            Activation::Relu,
            dropout,
            &mut rng,
        );
        Self { bank, agg, adj_ops, adj_weights, x_encoder, agg_encoders, head, dropout }
    }
}

impl Model for A2dug {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        let mut parts = vec![self.x_encoder.forward(tape, &self.bank, x)];
        for (m, enc) in self.agg.iter().zip(&self.agg_encoders) {
            let c = tape.constant(m.clone());
            parts.push(enc.forward(tape, &self.bank, c));
        }
        for (op, &w) in self.adj_ops.iter().zip(&self.adj_weights) {
            let wn = tape.param(&self.bank, w);
            parts.push(tape.spmm(op, wn));
        }
        let mut cat = tape.concat_cols(&parts);
        cat = tape.relu(cat);
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(cat).shape();
            cat = tape.dropout(cat, dropout_mask(rng, r, c, self.dropout));
        }
        self.head.forward(tape, &self.bank, cat, training, rng)
    }
    fn name(&self) -> &'static str {
        "A2DUG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn a2dug_trains_on_directed_replica() {
        let data = tiny_data("cornell", 25);
        let mut model = A2dug::new(&data, 16, 0.2, 25);
        let acc = quick_train(&mut model, &data, 25);
        assert!(acc > 0.3, "A2DUG accuracy {acc}");
    }

    #[test]
    fn a2dug_uses_seven_branches() {
        let data = tiny_data("texas", 26);
        let model = A2dug::new(&data, 8, 0.0, 26);
        assert_eq!(model.agg.len(), 3);
        assert_eq!(model.adj_ops.len(), 3);
        assert_eq!(model.adj_weights.len(), 3);
    }
}
