//! NSTE (Kollias et al., AAAI 2022): 1-WL-inspired directed encoding with
//! *separate source and target weights* per layer —
//! `H^{(l)} = σ(W_self H + W_out Â_→ H + W_in Â_← H)` — the tightly-coupled
//! design Sec. IV-E contrasts ADPA against.

use crate::common::in_out_operators;
use amud_nn::{linear::dropout_mask, Linear, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct Nste {
    bank: ParamBank,
    op_out: SparseOp,
    op_in: SparseOp,
    layers: Vec<[Linear; 3]>,
    head: Linear,
    dropout: f32,
}

impl Nste {
    pub fn new(data: &GraphData, hidden: usize, n_layers: usize, dropout: f32, seed: u64) -> Self {
        assert!(n_layers >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (op_out, op_in) = in_out_operators(&data.adj);
        let mut bank = ParamBank::new();
        let mut layers = Vec::with_capacity(n_layers);
        let mut in_dim = data.n_features();
        for _ in 0..n_layers {
            layers.push([
                Linear::new(&mut bank, in_dim, hidden, &mut rng),
                Linear::new(&mut bank, in_dim, hidden, &mut rng),
                Linear::new(&mut bank, in_dim, hidden, &mut rng),
            ]);
            in_dim = hidden;
        }
        let head = Linear::new(&mut bank, hidden, data.n_classes, &mut rng);
        Self { bank, op_out, op_in, layers, head, dropout }
    }
}

impl Model for Nste {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let mut h = tape.constant(data.features.clone());
        for [w_self, w_out, w_in] in &self.layers {
            if training && self.dropout > 0.0 {
                let (r, c) = tape.value(h).shape();
                h = tape.dropout(h, dropout_mask(rng, r, c, self.dropout));
            }
            let hs = w_self.forward(tape, &self.bank, h);
            let out_agg = tape.spmm(&self.op_out, h);
            let ho = w_out.forward(tape, &self.bank, out_agg);
            let in_agg = tape.spmm(&self.op_in, h);
            let hi = w_in.forward(tape, &self.bank, in_agg);
            let sum = tape.add(hs, ho);
            let sum = tape.add(sum, hi);
            h = tape.relu(sum);
        }
        self.head.forward(tape, &self.bank, h)
    }
    fn name(&self) -> &'static str {
        "NSTE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn nste_trains_on_directed_replica() {
        let data = tiny_data("cornell", 21);
        let mut model = Nste::new(&data, 32, 2, 0.2, 21);
        let acc = quick_train(&mut model, &data, 21);
        assert!(acc > 0.3, "NSTE accuracy {acc}");
    }

    #[test]
    fn layer_count_respected() {
        let data = tiny_data("texas", 22);
        let m1 = Nste::new(&data, 16, 1, 0.0, 22);
        let m3 = Nste::new(&data, 16, 3, 0.0, 22);
        assert!(m3.n_parameters() > m1.n_parameters());
    }
}
