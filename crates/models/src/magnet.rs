//! MagNet (Zhang et al., NeurIPS 2021): spectral convolution on the
//! q-parameterised magnetic Laplacian — a complex Hermitian operator whose
//! *phase* encodes edge direction. Convolution runs on complex features
//! (held as real/imaginary pairs, see [`amud_nn::complex`]) with
//! independent trainable weights applied to each part, and the final layer
//! "unwinds" the complex representation by concatenation.

use amud_nn::complex::{complex_add, complex_spmm, ComplexNode, ComplexSparseOp};
use amud_nn::{linear::dropout_mask, DenseMatrix, Linear, NodeId, ParamBank, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct MagNet {
    bank: ParamBank,
    op: ComplexSparseOp,
    /// Layer weights, separate for real and imaginary parts (as in the
    /// original's independent real/imag filter taps).
    l1_re: Linear,
    l1_im: Linear,
    l2_re: Linear,
    l2_im: Linear,
    head: Linear,
    dropout: f32,
    q: f32,
}

impl MagNet {
    pub fn new(data: &GraphData, hidden: usize, q: f32, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let op = ComplexSparseOp::magnetic(&data.adj, q);
        let mut bank = ParamBank::new();
        let f = data.n_features();
        let l1_re = Linear::new(&mut bank, f, hidden, &mut rng);
        let l1_im = Linear::new(&mut bank, f, hidden, &mut rng);
        let l2_re = Linear::new(&mut bank, hidden, hidden, &mut rng);
        let l2_im = Linear::new(&mut bank, hidden, hidden, &mut rng);
        let head = Linear::new(&mut bank, 2 * hidden, data.n_classes, &mut rng);
        Self { bank, op, l1_re, l1_im, l2_re, l2_im, head, dropout, q }
    }

    pub fn q(&self) -> f32 {
        self.q
    }

    /// One magnetic convolution: `H·Z` followed by independent part-wise
    /// linear maps and a part-wise ReLU (the original's `complexReLU`
    /// gates both parts on the real part's sign; part-wise ReLU keeps the
    /// gradient structure identical for our purposes).
    fn conv(&self, tape: &mut Tape, z: ComplexNode, w_re: &Linear, w_im: &Linear) -> ComplexNode {
        let hz = complex_spmm(tape, &self.op, z);
        let re = w_re.forward(tape, &self.bank, hz.re);
        let im = w_im.forward(tape, &self.bank, hz.im);
        ComplexNode { re: tape.relu(re), im: tape.relu(im) }
    }
}

impl Model for MagNet {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let n = data.n_nodes();
        let f = data.n_features();
        let mut x_re = tape.constant(data.features.clone());
        if training && self.dropout > 0.0 {
            let mask = dropout_mask(rng, n, f, self.dropout);
            x_re = tape.dropout(x_re, mask);
        }
        let x_im = tape.constant(DenseMatrix::zeros(n, f));
        let z0 = ComplexNode { re: x_re, im: x_im };
        let z1 = self.conv(tape, z0, &self.l1_re, &self.l1_im);
        let z2 = self.conv(tape, z1, &self.l2_re, &self.l2_im);
        // First-order Chebyshev-style residual: combine the two depths.
        let z = complex_add(tape, z1, z2);
        let unwound = tape.concat_cols(&[z.re, z.im]);
        self.head.forward(tape, &self.bank, unwound)
    }
    fn name(&self) -> &'static str {
        "MagNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn magnet_trains_on_directed_replica() {
        let data = tiny_data("chameleon", 28);
        let mut model = MagNet::new(&data, 32, 0.25, 0.2, 28);
        let acc = quick_train(&mut model, &data, 28);
        assert!(acc > 0.25, "MagNet accuracy {acc}");
    }

    #[test]
    fn q_zero_produces_no_imaginary_signal() {
        let data = tiny_data("texas", 29);
        let model = MagNet::new(&data, 16, 0.0, 0.0, 29);
        assert_eq!(model.op.im.matrix().nnz(), 0);
    }

    #[test]
    fn imaginary_part_carries_direction() {
        let data = tiny_data("texas", 30);
        let model = MagNet::new(&data, 16, 0.25, 0.0, 30);
        // Texas's replica is strongly oriented → the phase matrix is busy.
        assert!(model.op.im.matrix().nnz() > 0);
    }
}
