//! AERO-GNN (Lee et al., ICML 2023) — deep attention propagation.
//!
//! **Simplification** (documented in DESIGN.md): the original attends over
//! edges at every hop; here the defining mechanism — per-node, per-hop
//! attention that keeps deep propagation from collapsing — is kept, with
//! hop representations `H^{(k)} = Â H^{(k-1)}` combined by a learned
//! per-node softmax over hops (the same mechanism the original's
//! hop-attention ablation isolates as the main contributor).

use crate::common::gcn_operator;
use amud_nn::{Activation, Linear, Mlp, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct AeroGnn {
    bank: ParamBank,
    op: SparseOp,
    encoder: Mlp,
    hop_scorer: Linear,
    head: Linear,
    k: usize,
}

impl AeroGnn {
    pub fn new(data: &GraphData, hidden: usize, k: usize, dropout: f32, seed: u64) -> Self {
        assert!(k >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let encoder =
            Mlp::new(&mut bank, &[data.n_features(), hidden], Activation::Relu, dropout, &mut rng);
        let hop_scorer = Linear::new(&mut bank, (k + 1) * hidden, k + 1, &mut rng);
        let head = Linear::new(&mut bank, hidden, data.n_classes, &mut rng);
        Self { bank, op: gcn_operator(&data.adj), encoder, hop_scorer, head, k }
    }
}

impl Model for AeroGnn {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        let h0 = self.encoder.forward(tape, &self.bank, x, training, rng);
        let mut hops = vec![h0];
        for k in 1..=self.k {
            let prev = hops[k - 1];
            hops.push(tape.spmm(&self.op, prev));
        }
        let stacked = tape.concat_cols(&hops);
        let e = self.hop_scorer.forward(tape, &self.bank, stacked);
        let e = tape.leaky_relu(e, 0.2);
        let w = tape.row_softmax(e);
        let mut z: Option<NodeId> = None;
        for (k, &h) in hops.iter().enumerate() {
            let scaled = tape.col_scale(w, k, h);
            z = Some(match z {
                Some(acc) => tape.add(acc, scaled),
                None => scaled,
            });
        }
        let Some(z) = z else { unreachable!("hops always holds the k = 0 term") };
        self.head.forward(tape, &self.bank, z)
    }
    fn name(&self) -> &'static str {
        "AERO-GNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn aero_trains_on_homophilous_replica() {
        let data = tiny_data("cora_ml", 11).to_undirected();
        let mut model = AeroGnn::new(&data, 32, 3, 0.2, 11);
        let acc = quick_train(&mut model, &data, 11);
        assert!(acc > 0.4, "AERO-GNN accuracy {acc}");
    }

    #[test]
    fn deep_propagation_does_not_nan() {
        let data = tiny_data("citeseer", 12).to_undirected();
        let model = AeroGnn::new(&data, 16, 8, 0.0, 12);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let logits = model.forward(&mut tape, &data, false, &mut rng);
        assert!(tape.value(logits).as_slice().iter().all(|v| v.is_finite()));
    }
}
