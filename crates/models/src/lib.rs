//! # amud-models
//!
//! The fifteen baseline GNNs of the paper's evaluation (Sec. V-A), each a
//! real trainable model over the `amud-nn` autodiff engine and implementing
//! [`amud_train::Model`]:
//!
//! | family | models |
//! |---|---|
//! | undirected spatial  | [`gcn::Gcn`], [`linkx::Linkx`], [`glognn::GloGnn`], [`aero::AeroGnn`] |
//! | undirected spectral | [`sgc::Sgc`], [`gprgnn::GprGnn`], [`bernnet::BernNet`], [`jacobi::JacobiConv`] |
//! | directed spatial    | [`dgcn::Dgcn`], [`nste::Nste`], [`dimpa::Dimpa`], [`dirgnn::DirGnn`], [`a2dug::A2dug`] |
//! | directed spectral   | [`digcn::DiGcn`], [`magnet::MagNet`] |
//!
//! plus extras the paper formalises without benchmarking: a plain
//! [`mlp::MlpBaseline`], [`gat::Gat`] and [`sage::GraphSage`] (the
//! introduction's canonical message-passing trio alongside GCN),
//! [`h2gcn::H2gcn`] (Sec. II-B), [`appnp::Appnp`]
//! (the decoupled PPR propagation of [37]), [`mgc::Mgc`] (Sec. II-C's
//! truncated-PageRank magnetic filter) and parameter-free
//! [`labelprop::label_propagation`]. Where the original uses machinery that
//! does not affect the comparisons the paper draws (e.g. GloGNN's
//! closed-form coefficient solver, AERO-GNN's edge-level attention), a
//! faithful-in-spirit simplification is used and documented on the model.
//!
//! [`registry`] exposes name→builder dispatch so the experiment harness can
//! sweep all models uniformly.

pub mod a2dug;
pub mod aero;
pub mod appnp;
pub mod bernnet;
pub mod common;
pub mod dgcn;
pub mod digcn;
pub mod dimpa;
pub mod dirgnn;
pub mod gat;
pub mod gcn;
pub mod glognn;
pub mod gprgnn;
pub mod h2gcn;
pub mod jacobi;
pub mod labelprop;
pub mod linkx;
pub mod magnet;
pub mod mgc;
pub mod mlp;
pub mod nste;
pub mod registry;
pub mod sage;
pub mod sgc;

pub use registry::{build_model, directed_model_names, model_names, undirected_model_names};
