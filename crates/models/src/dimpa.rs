//! DIMPA (He et al., LoG 2022): directed mixed-path aggregation — each
//! layer widens the receptive field by aggregating K hops of in- and
//! out-neighbourhoods with learnable hop weights:
//!
//! ```text
//! s_→ = Σ_{k=0..K} w_→k Â_→^k (X W_→),   s_← analogous,
//! Z = MLP(s_→ ‖ s_←)
//! ```

use crate::common::in_out_operators;
use amud_nn::{Activation, DenseMatrix, Linear, Mlp, NodeId, ParamBank, ParamId, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct Dimpa {
    bank: ParamBank,
    op_out: SparseOp,
    op_in: SparseOp,
    enc_out: Linear,
    enc_in: Linear,
    /// Hop weights, `1 × (K+1)` per side.
    w_out: ParamId,
    w_in: ParamId,
    head: Mlp,
    k: usize,
}

impl Dimpa {
    pub fn new(data: &GraphData, hidden: usize, k: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (op_out, op_in) = in_out_operators(&data.adj);
        let mut bank = ParamBank::new();
        let f = data.n_features();
        let enc_out = Linear::new(&mut bank, f, hidden, &mut rng);
        let enc_in = Linear::new(&mut bank, f, hidden, &mut rng);
        let hop_init = DenseMatrix::from_fn(1, k + 1, |_, _| 1.0 / (k + 1) as f32);
        let w_out = bank.add(hop_init.clone());
        let w_in = bank.add(hop_init);
        let head = Mlp::new(
            &mut bank,
            &[2 * hidden, hidden, data.n_classes],
            Activation::Relu,
            dropout,
            &mut rng,
        );
        Self { bank, op_out, op_in, enc_out, enc_in, w_out, w_in, head, k }
    }

    fn side(
        &self,
        tape: &mut Tape,
        op: &SparseOp,
        enc: &Linear,
        hop_w: ParamId,
        x: NodeId,
    ) -> NodeId {
        let h0 = enc.forward(tape, &self.bank, x);
        let h0 = tape.relu(h0);
        let w = tape.param(&self.bank, hop_w);
        let mut h = h0;
        let mut acc = tape.scalar_scale(w, 0, h0);
        for step in 1..=self.k {
            h = tape.spmm(op, h);
            let weighted = tape.scalar_scale(w, step, h);
            acc = tape.add(acc, weighted);
        }
        acc
    }
}

impl Model for Dimpa {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        let s_out = self.side(tape, &self.op_out, &self.enc_out, self.w_out, x);
        let s_in = self.side(tape, &self.op_in, &self.enc_in, self.w_in, x);
        let cat = tape.concat_cols(&[s_out, s_in]);
        self.head.forward(tape, &self.bank, cat, training, rng)
    }
    fn name(&self) -> &'static str {
        "DIMPA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn dimpa_trains_on_directed_replica() {
        let data = tiny_data("wisconsin", 23);
        let mut model = Dimpa::new(&data, 32, 2, 0.2, 23);
        let acc = quick_train(&mut model, &data, 23);
        assert!(acc > 0.3, "DIMPA accuracy {acc}");
    }

    #[test]
    fn hop_weights_initialised_uniform() {
        let data = tiny_data("texas", 24);
        let model = Dimpa::new(&data, 16, 3, 0.0, 24);
        let w = model.bank.value(model.w_out);
        assert!(w.as_slice().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }
}
