//! GloGNN (Li et al., ICML 2022): global homophily via a dense node-to-node
//! coefficient matrix — `Z^{(l+1)} = (1−γ) T Z^{(l)} + γ Z^{(0)}`.
//!
//! **Simplification** (documented in DESIGN.md): the original solves a
//! closed-form least-squares problem for `T` per layer; here `T` is a
//! learned low-rank attention `T = row_softmax(E Eᵀ)` with
//! `E = tanh(X W_e)`, which keeps GloGNN's defining property — every node
//! aggregates from *all* nodes, signed by feature affinity rather than by
//! adjacency — while staying `O(n² h)` per layer at replica scale.

use amud_nn::{Activation, Linear, Mlp, NodeId, ParamBank, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct GloGnn {
    bank: ParamBank,
    encoder: Mlp,
    embed: Linear,
    head: Linear,
    /// Residual coefficient γ.
    gamma: f32,
    layers: usize,
}

impl GloGnn {
    pub fn new(
        data: &GraphData,
        hidden: usize,
        rank: usize,
        gamma: f32,
        layers: usize,
        dropout: f32,
        seed: u64,
    ) -> Self {
        assert!(layers >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let encoder =
            Mlp::new(&mut bank, &[data.n_features(), hidden], Activation::Relu, dropout, &mut rng);
        let embed = Linear::new(&mut bank, hidden, rank, &mut rng);
        let head = Linear::new(&mut bank, hidden, data.n_classes, &mut rng);
        Self { bank, encoder, embed, head, gamma, layers }
    }
}

impl Model for GloGnn {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        let z0 = self.encoder.forward(tape, &self.bank, x, training, rng);
        // Global coefficient matrix from low-rank feature affinity.
        let e_lin = self.embed.forward(tape, &self.bank, z0);
        let e = tape.tanh(e_lin);
        let affinity = tape.matmul_transb(e, e);
        let t = tape.row_softmax(affinity);
        let mut z = z0;
        for _ in 0..self.layers {
            let tz = tape.matmul(t, z);
            let mixed = tape.scale(tz, 1.0 - self.gamma);
            let res = tape.scale(z0, self.gamma);
            z = tape.add(mixed, res);
        }
        self.head.forward(tape, &self.bank, z)
    }
    fn name(&self) -> &'static str {
        "GloGNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn glognn_trains_on_heterophilous_replica() {
        let data = tiny_data("wisconsin", 9).to_undirected();
        let mut model = GloGnn::new(&data, 32, 8, 0.5, 2, 0.2, 9);
        let acc = quick_train(&mut model, &data, 9);
        assert!(acc > 0.25, "GloGNN accuracy {acc}");
    }

    #[test]
    fn glognn_forward_shape() {
        let data = tiny_data("texas", 10);
        let model = GloGnn::new(&data, 16, 4, 0.3, 1, 0.0, 10);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let logits = model.forward(&mut tape, &data, false, &mut rng);
        assert_eq!(tape.value(logits).shape(), (data.n_nodes(), data.n_classes));
    }
}
