//! JacobiConv (Wang & Zhang, ICML 2022): a linear spectral GNN —
//! `Z = Σ_v P_v^{(a,b)}(Â) X W_v` with an orthogonal Jacobi polynomial
//! basis and an independent linear map per basis term.

use crate::common::{gcn_operator, jacobi_basis};
use amud_nn::{DenseMatrix, Linear, NodeId, ParamBank, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct JacobiConv {
    bank: ParamBank,
    /// `P_v(Â) X` for `v = 0..=K`, precomputed.
    basis: Vec<DenseMatrix>,
    /// One linear map per basis term.
    heads: Vec<Linear>,
}

impl JacobiConv {
    pub fn new(data: &GraphData, k: usize, a: f32, b: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let op = gcn_operator(&data.adj);
        let basis = jacobi_basis(&op, &data.features, k, a, b);
        let mut bank = ParamBank::new();
        let heads = (0..=k)
            .map(|_| Linear::new(&mut bank, data.n_features(), data.n_classes, &mut rng))
            .collect();
        Self { bank, basis, heads }
    }
}

impl Model for JacobiConv {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        _data: &GraphData,
        _training: bool,
        _rng: &mut StdRng,
    ) -> NodeId {
        let mut z: Option<NodeId> = None;
        for (b, head) in self.basis.iter().zip(&self.heads) {
            let bx = tape.constant(b.clone());
            let term = head.forward(tape, &self.bank, bx);
            z = Some(match z {
                Some(acc) => tape.add(acc, term),
                None => term,
            });
        }
        let Some(z) = z else { unreachable!("the Jacobi basis holds K + 1 ≥ 1 terms") };
        z
    }
    fn name(&self) -> &'static str {
        "JacobiConv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn jacobiconv_trains_on_homophilous_replica() {
        let data = tiny_data("cora_ml", 15).to_undirected();
        let mut model = JacobiConv::new(&data, 4, 1.0, 1.0, 15);
        let acc = quick_train(&mut model, &data, 15);
        assert!(acc > 0.4, "JacobiConv accuracy {acc}");
    }

    #[test]
    fn basis_terms_have_independent_heads() {
        let data = tiny_data("texas", 16);
        let model = JacobiConv::new(&data, 3, 1.0, 1.0, 16);
        assert_eq!(model.heads.len(), 4);
        assert_eq!(model.basis.len(), 4);
    }
}
