//! LINKX (Lim et al., NeurIPS 2021): separate encodings of the adjacency
//! and the features, fused by an MLP —
//! `Z = MLP(σ(W[h_A ‖ h_X] + h_A + h_X))` with `h_A = MLP_A(A)`,
//! `h_X = MLP_X(X)`.
//!
//! `MLP_A(A)`'s first layer is the sparse product `A · W_A` (`W_A ∈
//! R^{n×h}`), recorded as an SpMM against a *parameter* right-hand side.

use amud_nn::{
    linear::dropout_mask, Activation, DenseMatrix, Linear, Mlp, NodeId, ParamBank, ParamId,
    SparseOp, Tape,
};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct Linkx {
    bank: ParamBank,
    adj_op: SparseOp,
    /// `W_A ∈ R^{n×h}` — the adjacency-encoder's first layer.
    w_adj: ParamId,
    x_encoder: Mlp,
    fuse: Linear,
    head: Mlp,
    dropout: f32,
}

impl Linkx {
    pub fn new(data: &GraphData, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let w_adj = bank.add(DenseMatrix::xavier_uniform(data.n_nodes(), hidden, &mut rng));
        let x_encoder =
            Mlp::new(&mut bank, &[data.n_features(), hidden], Activation::Relu, dropout, &mut rng);
        let fuse = Linear::new(&mut bank, 2 * hidden, hidden, &mut rng);
        let head =
            Mlp::new(&mut bank, &[hidden, data.n_classes], Activation::Relu, dropout, &mut rng);
        Self {
            bank,
            adj_op: SparseOp::new(data.adj.clone()),
            w_adj,
            x_encoder,
            fuse,
            head,
            dropout,
        }
    }
}

impl Model for Linkx {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        // h_A = A · W_A
        let w_a = tape.param(&self.bank, self.w_adj);
        let h_a = tape.spmm(&self.adj_op, w_a);
        let h_a = tape.relu(h_a);
        // h_X = MLP_X(X)
        let x = tape.constant(data.features.clone());
        let h_x = self.x_encoder.forward(tape, &self.bank, x, training, rng);
        let h_x = tape.relu(h_x);
        // Fuse with residual connections.
        let cat = tape.concat_cols(&[h_a, h_x]);
        let fused = self.fuse.forward(tape, &self.bank, cat);
        let fused = tape.add(fused, h_a);
        let fused = tape.add(fused, h_x);
        let mut fused = tape.relu(fused);
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(fused).shape();
            fused = tape.dropout(fused, dropout_mask(rng, r, c, self.dropout));
        }
        self.head.forward(tape, &self.bank, fused, training, rng)
    }
    fn name(&self) -> &'static str {
        "LINKX"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn linkx_trains_on_heterophilous_replica() {
        // LINKX's selling point is heterophily robustness via separate
        // topology/feature encoders.
        let data = tiny_data("texas", 7).to_undirected();
        let mut model = Linkx::new(&data, 32, 0.2, 7);
        let acc = quick_train(&mut model, &data, 7);
        assert!(acc > 0.25, "LINKX accuracy {acc}");
    }

    #[test]
    fn linkx_parameter_count_scales_with_n() {
        let small = tiny_data("texas", 8);
        let m = Linkx::new(&small, 16, 0.0, 8);
        // W_A alone is n×h.
        assert!(m.n_parameters() >= small.n_nodes() * 16);
    }
}
