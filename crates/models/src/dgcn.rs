//! DGCN (Tong et al., 2020): directed convolution with first- and
//! second-order proximity — three parallel branches over the symmetrised
//! adjacency, the co-citation pattern `A·Aᵀ` and the co-cited pattern
//! `Aᵀ·A`, concatenated per layer.

use amud_graph::patterns::{Dir, DirectedPattern};
use amud_nn::{linear::dropout_mask, Linear, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct Dgcn {
    bank: ParamBank,
    /// Symmetrised first-order operator.
    op_sym: SparseOp,
    /// Second-order out-proximity `A·Aᵀ` (normalised).
    op_out: SparseOp,
    /// Second-order in-proximity `Aᵀ·A` (normalised).
    op_in: SparseOp,
    l1: [Linear; 3],
    l2: Linear,
    dropout: f32,
}

impl Dgcn {
    pub fn new(data: &GraphData, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(sym) = data.adj.bool_union(&data.adj.transpose()) else {
            unreachable!("A and Aᵀ share a shape by definition of transpose")
        };
        let sym = sym.with_self_loops(1.0).sym_normalized();
        let second = |word: Vec<Dir>| {
            let Ok(m) = DirectedPattern::new(word).materialize(&data.adj) else {
                unreachable!("the node adjacency is square by construction")
            };
            SparseOp::new(m.with_self_loops(1.0).sym_normalized())
        };
        let mut bank = ParamBank::new();
        let f = data.n_features();
        let l1 = [
            Linear::new(&mut bank, f, hidden, &mut rng),
            Linear::new(&mut bank, f, hidden, &mut rng),
            Linear::new(&mut bank, f, hidden, &mut rng),
        ];
        let l2 = Linear::new(&mut bank, 3 * hidden, data.n_classes, &mut rng);
        Self {
            bank,
            op_sym: SparseOp::new(sym),
            op_out: second(vec![Dir::Fwd, Dir::Rev]),
            op_in: second(vec![Dir::Rev, Dir::Fwd]),
            l1,
            l2,
            dropout,
        }
    }
}

impl Model for Dgcn {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let mut x = tape.constant(data.features.clone());
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(x).shape();
            x = tape.dropout(x, dropout_mask(rng, r, c, self.dropout));
        }
        let branches: Vec<NodeId> = [&self.op_sym, &self.op_out, &self.op_in]
            .iter()
            .zip(&self.l1)
            .map(|(op, lin)| {
                let ax = tape.spmm(op, x);
                let h = lin.forward(tape, &self.bank, ax);
                tape.relu(h)
            })
            .collect();
        let cat = tape.concat_cols(&branches);
        self.l2.forward(tape, &self.bank, cat)
    }
    fn name(&self) -> &'static str {
        "DGCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn dgcn_trains_on_directed_replica() {
        // Two seeds to damp tiny-replica variance (single seeds straddle
        // the bar either side of it).
        let data = tiny_data("chameleon", 17);
        let acc = (17..19)
            .map(|s| {
                let mut model = Dgcn::new(&data, 32, 0.2, s);
                quick_train(&mut model, &data, s)
            })
            .sum::<f64>()
            / 2.0;
        assert!(acc > 0.25, "DGCN accuracy {acc}");
    }

    #[test]
    fn second_order_operators_differ_on_directed_input() {
        let data = tiny_data("texas", 18);
        let model = Dgcn::new(&data, 16, 0.0, 18);
        assert!(!model.op_out.matrix().same_pattern(model.op_in.matrix()));
    }
}
