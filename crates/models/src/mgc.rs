//! MGC (Zhang et al., 2021) — the directed spectral method the paper
//! formalises in Sec. II-C: a **truncated PageRank** (linear-rank) filter
//! on the q-magnetic Laplacian, applied once as pre-processing, followed
//! by an MLP (the decoupled `MLP(Poly(L_d) MLP(X))` shape of Eq. 3 with
//! the inner transform folded into the filter).
//!
//! The filter `S = Σ_{t=0}^{T} α(1−α)^t H^t` is computed on the complex
//! magnetic operator with plain (non-autodiff) arithmetic — it is
//! weight-free — and the real/imaginary parts of `S·X` are concatenated as
//! the MLP input.

use amud_nn::complex::ComplexSparseOp;
use amud_nn::{Activation, DenseMatrix, Mlp, NodeId, ParamBank, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Applies the complex operator to a complex dense pair (plain arithmetic).
fn complex_apply(
    op: &ComplexSparseOp,
    re: &DenseMatrix,
    im: &DenseMatrix,
) -> (DenseMatrix, DenseMatrix) {
    let f = re.cols();
    let n = re.rows();
    let mut rr = DenseMatrix::zeros(n, f);
    let mut ii = DenseMatrix::zeros(n, f);
    let mut ri = DenseMatrix::zeros(n, f);
    let mut ir = DenseMatrix::zeros(n, f);
    op.re.matrix().spmm(re.as_slice(), f, rr.as_mut_slice());
    op.im.matrix().spmm(im.as_slice(), f, ii.as_mut_slice());
    op.re.matrix().spmm(im.as_slice(), f, ri.as_mut_slice());
    op.im.matrix().spmm(re.as_slice(), f, ir.as_mut_slice());
    let mut out_re = rr;
    out_re.add_scaled_assign(&ii, -1.0);
    let mut out_im = ri;
    out_im.add_scaled_assign(&ir, 1.0);
    (out_re, out_im)
}

/// The truncated-PageRank magnetic filter: `Σ_{t=0}^{T} α(1−α)^t H^t X`.
pub fn truncated_pagerank_filter(
    op: &ComplexSparseOp,
    x: &DenseMatrix,
    alpha: f32,
    truncation: usize,
) -> (DenseMatrix, DenseMatrix) {
    let n = x.rows();
    let f = x.cols();
    let mut cur_re = x.clone();
    let mut cur_im = DenseMatrix::zeros(n, f);
    let mut acc_re = x.scale(alpha);
    let mut acc_im = DenseMatrix::zeros(n, f);
    let mut weight = alpha;
    for _ in 1..=truncation {
        let (nr, ni) = complex_apply(op, &cur_re, &cur_im);
        cur_re = nr;
        cur_im = ni;
        weight *= 1.0 - alpha;
        acc_re.add_scaled_assign(&cur_re, weight);
        acc_im.add_scaled_assign(&cur_im, weight);
    }
    (acc_re, acc_im)
}

pub struct Mgc {
    bank: ParamBank,
    /// Filtered features `[Re(S·X) ‖ Im(S·X)]`, precomputed.
    filtered: DenseMatrix,
    head: Mlp,
}

impl Mgc {
    pub fn new(
        data: &GraphData,
        hidden: usize,
        q: f32,
        alpha: f32,
        truncation: usize,
        dropout: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let op = ComplexSparseOp::magnetic(&data.adj, q);
        let (re, im) = truncated_pagerank_filter(&op, &data.features, alpha, truncation);
        let filtered = DenseMatrix::concat_cols(&[&re, &im]);
        let mut bank = ParamBank::new();
        let head = Mlp::new(
            &mut bank,
            &[2 * data.n_features(), hidden, data.n_classes],
            Activation::Relu,
            dropout,
            &mut rng,
        );
        Self { bank, filtered, head }
    }
}

impl Model for Mgc {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        _data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(self.filtered.clone());
        self.head.forward(tape, &self.bank, x, training, rng)
    }
    fn name(&self) -> &'static str {
        "MGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};
    use amud_graph::CsrMatrix;

    #[test]
    fn filter_weights_form_truncated_geometric_series() {
        // On the identity operator (a graph with only self-influence), the
        // filter must scale X by Σ α(1−α)^t.
        let n = 4;
        let eye = CsrMatrix::identity(n);
        let op = ComplexSparseOp::new(eye, CsrMatrix::zeros(n, n));
        let x = DenseMatrix::ones(n, 2);
        let (re, im) = truncated_pagerank_filter(&op, &x, 0.2, 5);
        let expected: f32 = (0..=5).map(|t| 0.2 * 0.8f32.powi(t)).sum();
        for v in re.as_slice() {
            assert!((v - expected).abs() < 1e-5, "{v} vs {expected}");
        }
        assert_eq!(im.frobenius_norm(), 0.0);
    }

    #[test]
    fn mgc_trains_on_directed_replica() {
        let data = tiny_data("chameleon", 45);
        let mut model = Mgc::new(&data, 32, 0.15, 0.15, 6, 0.2, 45);
        let acc = quick_train(&mut model, &data, 45);
        assert!(acc > 0.25, "MGC accuracy {acc}");
    }

    #[test]
    fn nonzero_q_produces_imaginary_features() {
        let data = tiny_data("texas", 46);
        let op = ComplexSparseOp::magnetic(&data.adj, 0.25);
        let (_, im) = truncated_pagerank_filter(&op, &data.features, 0.15, 4);
        assert!(im.frobenius_norm() > 0.0, "oriented digraph must produce phase signal");
    }
}
