//! DiGCN (Tong et al., NeurIPS 2020): digraph convolution via the
//! personalised-PageRank-based symmetric digraph Laplacian.
//!
//! The operator is built from the teleporting random walk
//! `P_α = (1−α) D̂⁻¹Â + α/n · 11ᵀ`: its stationary distribution `π` is
//! found by power iteration (teleport handled analytically, so the dense
//! rank-one term is never materialised), then
//!
//! ```text
//! Â_dig = ½ (Π^{1/2} P Π^{-1/2} + Π^{-1/2} Pᵀ Π^{1/2})
//! ```
//!
//! is a *symmetric* operator on which ordinary GCN layers run.

use amud_graph::CsrMatrix;
use amud_nn::{linear::dropout_mask, Linear, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Computes the stationary distribution of the α-teleporting walk over the
/// row-stochastic matrix `p` by power iteration.
fn stationary_distribution(p: &CsrMatrix, alpha: f32, iters: usize) -> Vec<f32> {
    let n = p.n_rows();
    let pt = p.transpose();
    let mut pi = vec![1.0f32 / n as f32; n];
    let mut next = vec![0.0f32; n];
    for _ in 0..iters {
        pt.spmv(&pi, &mut next);
        let teleport = alpha / n as f32;
        for x in &mut next {
            *x = (1.0 - alpha) * *x + teleport;
        }
        // Dangling mass: rows of p with zero sum leak probability; renormalise.
        let total: f32 = next.iter().sum();
        for x in &mut next {
            *x /= total.max(1e-12);
        }
        std::mem::swap(&mut pi, &mut next);
    }
    pi
}

/// Builds the PPR-based symmetric digraph operator.
pub fn digcn_operator(adj: &CsrMatrix, alpha: f32) -> SparseOp {
    let p = adj.with_self_loops(1.0).row_normalized();
    let pi = stationary_distribution(&p, alpha, 100);
    let sqrt_pi: Vec<f32> = pi.iter().map(|&x| x.max(1e-12).sqrt()).collect();
    let inv_sqrt_pi: Vec<f32> = sqrt_pi.iter().map(|&x| 1.0 / x).collect();
    // Π^{1/2} P Π^{-1/2}
    let left = p.scale_rows(&sqrt_pi).scale_cols(&inv_sqrt_pi);
    // Π^{-1/2} Pᵀ Π^{1/2}
    let right = p.transpose().scale_rows(&inv_sqrt_pi).scale_cols(&sqrt_pi);
    let Ok(sym) = left.add_scaled(0.5, &right, 0.5) else {
        unreachable!("left and right are both rescalings of P, so shapes match")
    };
    SparseOp::new(sym)
}

pub struct DiGcn {
    bank: ParamBank,
    op: SparseOp,
    l1: Linear,
    l2: Linear,
    dropout: f32,
}

impl DiGcn {
    pub fn new(data: &GraphData, hidden: usize, alpha: f32, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bank = ParamBank::new();
        let l1 = Linear::new(&mut bank, data.n_features(), hidden, &mut rng);
        let l2 = Linear::new(&mut bank, hidden, data.n_classes, &mut rng);
        Self { bank, op: digcn_operator(&data.adj, alpha), l1, l2, dropout }
    }
}

impl Model for DiGcn {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let mut x = tape.constant(data.features.clone());
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(x).shape();
            x = tape.dropout(x, dropout_mask(rng, r, c, self.dropout));
        }
        let ax = tape.spmm(&self.op, x);
        let h = self.l1.forward(tape, &self.bank, ax);
        let h = tape.relu(h);
        let ah = tape.spmm(&self.op, h);
        self.l2.forward(tape, &self.bank, ah)
    }
    fn name(&self) -> &'static str {
        "DiGCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn stationary_distribution_sums_to_one() {
        let adj = CsrMatrix::from_edges(4, 4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let p = adj.with_self_loops(1.0).row_normalized();
        let pi = stationary_distribution(&p, 0.1, 100);
        let sum: f32 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(pi.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn digcn_operator_is_symmetric() {
        let adj = CsrMatrix::from_edges(5, 5, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 0), (0, 3)])
            .unwrap();
        let op = digcn_operator(&adj, 0.1);
        for (u, v, w) in op.matrix().iter() {
            assert!(
                (op.matrix().get(v, u) - w).abs() < 1e-4,
                "asymmetric at ({u},{v}): {w} vs {}",
                op.matrix().get(v, u)
            );
        }
    }

    #[test]
    fn digcn_trains_on_directed_replica() {
        let data = tiny_data("chameleon", 27);
        let mut model = DiGcn::new(&data, 32, 0.1, 0.2, 27);
        let acc = quick_train(&mut model, &data, 27);
        assert!(acc > 0.25, "DiGCN accuracy {acc}");
    }
}
