//! SGC (Wu et al., ICML 2019): `Z = softmax(Â^K X W)` — propagation
//! collapsed into a pre-processing step, then logistic regression.

use crate::common::{gcn_operator, propagate_k};
use amud_nn::{DenseMatrix, Linear, NodeId, ParamBank, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct Sgc {
    bank: ParamBank,
    /// `Â^K X`, precomputed.
    propagated: DenseMatrix,
    linear: Linear,
    k: usize,
}

impl Sgc {
    pub fn new(data: &GraphData, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let op = gcn_operator(&data.adj);
        let hops = propagate_k(&op, &data.features, k);
        let Some(propagated) = hops.into_iter().last() else {
            unreachable!("propagate_k returns the k = 0 hop even for k = 0")
        };
        let mut bank = ParamBank::new();
        let linear = Linear::new(&mut bank, data.n_features(), data.n_classes, &mut rng);
        Self { bank, propagated, linear, k }
    }

    pub fn k(&self) -> usize {
        self.k
    }
}

impl Model for Sgc {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        _data: &GraphData,
        _training: bool,
        _rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(self.propagated.clone());
        self.linear.forward(tape, &self.bank, x)
    }
    fn name(&self) -> &'static str {
        "SGC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn sgc_trains_on_homophilous_replica() {
        let data = tiny_data("cora_ml", 3).to_undirected();
        let mut model = Sgc::new(&data, 2, 3);
        let acc = quick_train(&mut model, &data, 3);
        assert!(acc > 0.35, "SGC accuracy {acc}");
    }

    #[test]
    fn sgc_propagation_differs_from_raw_features() {
        let data = tiny_data("citeseer", 4).to_undirected();
        let model = Sgc::new(&data, 2, 4);
        assert_ne!(model.propagated, data.features);
        assert_eq!(model.k(), 2);
    }
}
