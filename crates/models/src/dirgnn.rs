//! Dir-GNN (Rossi et al., 2023): direction-aware message passing — every
//! layer aggregates separately over out-edges (`D⁻¹A`) and in-edges
//! (`D⁻¹Aᵀ`) with independent weights and jumping-knowledge concatenation:
//!
//! ```text
//! H^{(l)} = σ( Â_→ H^{(l-1)} W_→ ‖ Â_← H^{(l-1)} W_← )
//! ```

use crate::common::in_out_operators;
use amud_nn::{linear::dropout_mask, Linear, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub struct DirGnn {
    bank: ParamBank,
    op_out: SparseOp,
    op_in: SparseOp,
    layer1: (Linear, Linear),
    layer2: (Linear, Linear),
    head: Linear,
    dropout: f32,
}

impl DirGnn {
    pub fn new(data: &GraphData, hidden: usize, dropout: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (op_out, op_in) = in_out_operators(&data.adj);
        let mut bank = ParamBank::new();
        let f = data.n_features();
        let h = hidden / 2;
        let layer1 =
            (Linear::new(&mut bank, f, h, &mut rng), Linear::new(&mut bank, f, h, &mut rng));
        let layer2 = (
            Linear::new(&mut bank, 2 * h, h, &mut rng),
            Linear::new(&mut bank, 2 * h, h, &mut rng),
        );
        let head = Linear::new(&mut bank, 2 * h, data.n_classes, &mut rng);
        Self { bank, op_out, op_in, layer1, layer2, head, dropout }
    }

    fn dir_layer(&self, tape: &mut Tape, x: NodeId, (w_fwd, w_rev): &(Linear, Linear)) -> NodeId {
        let fwd = tape.spmm(&self.op_out, x);
        let fwd = w_fwd.forward(tape, &self.bank, fwd);
        let rev = tape.spmm(&self.op_in, x);
        let rev = w_rev.forward(tape, &self.bank, rev);
        let cat = tape.concat_cols(&[fwd, rev]);
        tape.relu(cat)
    }
}

impl Model for DirGnn {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let mut x = tape.constant(data.features.clone());
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(x).shape();
            x = tape.dropout(x, dropout_mask(rng, r, c, self.dropout));
        }
        let h1 = self.dir_layer(tape, x, &self.layer1);
        let mut h1d = h1;
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(h1).shape();
            h1d = tape.dropout(h1, dropout_mask(rng, r, c, self.dropout));
        }
        let h2 = self.dir_layer(tape, h1d, &self.layer2);
        self.head.forward(tape, &self.bank, h2)
    }
    fn name(&self) -> &'static str {
        "DirGNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn dirgnn_trains_on_oriented_heterophilous_replica() {
        let data = tiny_data("texas", 19);
        let mut model = DirGnn::new(&data, 32, 0.2, 19);
        let acc = quick_train(&mut model, &data, 19);
        assert!(acc > 0.3, "DirGNN accuracy {acc}");
    }

    #[test]
    fn direction_matters_to_dirgnn() {
        // On a fully oriented digraph the directed model should beat its
        // own undirected-input variant (the paper's O1/O2 observation).
        let directed = tiny_data("texas", 20);
        let undirected = directed.to_undirected();
        let acc_d = quick_train(&mut DirGnn::new(&directed, 32, 0.2, 20), &directed, 20);
        let acc_u = quick_train(&mut DirGnn::new(&undirected, 32, 0.2, 20), &undirected, 20);
        // Allow slack — tiny replicas are noisy — but directed must not be
        // catastrophically worse.
        assert!(acc_d + 0.15 > acc_u, "directed {acc_d} vs undirected {acc_u}");
    }
}
