//! H₂GCN (Zhu et al., NeurIPS 2020) — the heterophily design the paper
//! formalises in Sec. II-B: `Z = Combine(Agg(A₁, X), Agg(A₂, X))` with
//! ego/1-hop/2-hop **separation** (no self-loops in the aggregators, the
//! 2-hop ring excludes 1-hop neighbours) and final concatenation of all
//! rounds' representations.

use amud_graph::CsrMatrix;
use amud_nn::{linear::dropout_mask, Linear, NodeId, ParamBank, SparseOp, Tape};
use amud_train::{GraphData, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the 1-hop and exclusive 2-hop neighbourhood operators
/// (symmetrised, degree-normalised, self-loop-free).
fn hop_operators(adj: &CsrMatrix) -> (SparseOp, SparseOp) {
    let Ok(sym) = adj.bool_union(&adj.transpose()) else {
        unreachable!("A and Aᵀ share a shape by definition of transpose")
    };
    let one_hop = sym.without_diagonal();
    let Ok(two_raw) = one_hop.bool_matmul(&one_hop) else {
        unreachable!("one_hop is square, so it composes with itself")
    };
    let two_raw = two_raw.without_diagonal();
    // Exclusive 2-hop ring: drop pairs already adjacent.
    let one = one_hop.clone();
    let two_hop = two_raw.filter_entries(|u, v| one.get(u, v) == 0.0);
    (SparseOp::new(one_hop.sym_normalized()), SparseOp::new(two_hop.sym_normalized()))
}

pub struct H2gcn {
    bank: ParamBank,
    op1: SparseOp,
    op2: SparseOp,
    embed: Linear,
    head: Linear,
    rounds: usize,
    dropout: f32,
}

impl H2gcn {
    pub fn new(data: &GraphData, hidden: usize, rounds: usize, dropout: f32, seed: u64) -> Self {
        assert!(rounds >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (op1, op2) = hop_operators(&data.adj);
        let mut bank = ParamBank::new();
        let embed = Linear::new(&mut bank, data.n_features(), hidden, &mut rng);
        // Final representation: ego + per-round (1-hop ‖ 2-hop) pieces, each
        // of width `hidden` doubling per round.
        let mut width = hidden;
        let mut total = hidden;
        for _ in 0..rounds {
            width *= 2;
            total += width;
        }
        let head = Linear::new(&mut bank, total, data.n_classes, &mut rng);
        Self { bank, op1, op2, embed, head, rounds, dropout }
    }
}

impl Model for H2gcn {
    fn bank(&self) -> &ParamBank {
        &self.bank
    }
    fn bank_mut(&mut self) -> &mut ParamBank {
        &mut self.bank
    }
    fn forward(
        &self,
        tape: &mut Tape,
        data: &GraphData,
        training: bool,
        rng: &mut StdRng,
    ) -> NodeId {
        let x = tape.constant(data.features.clone());
        let h0 = self.embed.forward(tape, &self.bank, x);
        let h0 = tape.relu(h0);
        let mut rounds = vec![h0];
        for _ in 0..self.rounds {
            let Some(&prev) = rounds.last() else { unreachable!("rounds is seeded with h0") };
            let n1 = tape.spmm(&self.op1, prev);
            let n2 = tape.spmm(&self.op2, prev);
            rounds.push(tape.concat_cols(&[n1, n2]));
        }
        let mut cat = tape.concat_cols(&rounds);
        if training && self.dropout > 0.0 {
            let (r, c) = tape.value(cat).shape();
            cat = tape.dropout(cat, dropout_mask(rng, r, c, self.dropout));
        }
        self.head.forward(tape, &self.bank, cat)
    }
    fn name(&self) -> &'static str {
        "H2GCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests_support::{quick_train, tiny_data};

    #[test]
    fn hop_operators_are_disjoint() {
        let data = tiny_data("chameleon", 40);
        let (op1, op2) = hop_operators(&data.adj);
        for (u, v, _) in op2.matrix().iter() {
            assert_eq!(op1.matrix().get(u, v), 0.0, "2-hop ring must exclude 1-hop ({u},{v})");
        }
    }

    #[test]
    fn h2gcn_trains_on_heterophilous_replica() {
        let data = tiny_data("chameleon", 41);
        let mut model = H2gcn::new(&data, 32, 2, 0.2, 41);
        let acc = quick_train(&mut model, &data, 41);
        assert!(acc > 0.25, "H2GCN accuracy {acc}");
    }

    #[test]
    fn round_count_grows_representation() {
        let data = tiny_data("texas", 42);
        let one = H2gcn::new(&data, 16, 1, 0.0, 42);
        let two = H2gcn::new(&data, 16, 2, 0.0, 42);
        assert!(two.n_parameters() > one.n_parameters());
    }
}
