//! Disjoint mutable-slice fan-out — the `par_chunks_mut` layer.
//!
//! These helpers are the only place the runtime hands `&mut` data across
//! threads, and they do it the boring way: validate up front that the
//! requested row ranges tile the buffer without overlap, then let each
//! task reborrow exactly its own block. Everything else in the workspace
//! builds on these two functions, so the unsafe surface stays here.

use crate::pool;
use std::ops::Range;

/// Raw base pointer that may cross threads. Safe to share because every
/// task derives a *disjoint* sub-slice from it (validated by the caller).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — whose `Send`/`Sync` impls carry the safety argument —
    /// instead of edition-2021-disjoint-capturing the bare `*mut T`.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: `SendPtr` crosses threads only so each task can reconstruct its
// own output block. Every slice derived from it covers a row range the
// ascending-range validation in `par_row_blocks_mut` proved disjoint from
// all others, and the owning `&mut [T]` stays exclusively borrowed by
// that call until every task has returned — so moving the pointer to
// another thread can never create an aliasing access.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: sharing `SendPtr` between tasks is sound for the same reason it
// may move: tasks only derive pairwise-disjoint sub-slices from the base
// pointer (validated by `par_row_blocks_mut`), so concurrent use never
// aliases an element of the exclusively borrowed buffer.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Runs `f(part, rows, block)` for every row-range in `parts`, in
/// parallel, where `block` is the sub-slice
/// `data[rows.start * stride .. rows.end * stride]` owned exclusively by
/// that task. Ranges must ascend without overlap and fit the buffer;
/// determinism follows because each output element is written by the same
/// code over the same inputs no matter how tasks are scheduled.
///
/// # Panics
/// Panics if the ranges overlap, regress, or exceed `data.len()`.
pub fn par_row_blocks_mut<T, F>(data: &mut [T], stride: usize, parts: &[Range<usize>], f: F)
where
    T: Send,
    F: Fn(usize, Range<usize>, &mut [T]) + Sync,
{
    let mut prev_end = 0;
    for r in parts {
        assert!(
            r.start >= prev_end && r.end >= r.start,
            "par_row_blocks_mut: ranges must ascend without overlap"
        );
        prev_end = r.end;
    }
    assert!(
        prev_end.checked_mul(stride).is_some_and(|n| n <= data.len()),
        "par_row_blocks_mut: ranges exceed the buffer"
    );
    // Under `--features san` every call is an epoch in the shadow
    // registry; the guard releases the epoch's blocks on return or unwind.
    #[cfg(feature = "san")]
    let san = crate::san::EpochGuard::begin();
    let base = SendPtr(data.as_mut_ptr());
    pool::run(parts.len(), |p| {
        let rows = parts[p].clone();
        let len = (rows.end - rows.start) * stride;
        let start = base.get().wrapping_add(rows.start * stride);
        #[cfg(feature = "san")]
        if len > 0 {
            crate::san::record_block(
                san.epoch(),
                start as usize,
                len * std::mem::size_of::<T>(),
                rows.clone(),
            );
        }
        // SAFETY: `start`/`len` delimit exactly rows `rows` of `data`,
        // which the ascending-range assertions above proved in-bounds and
        // disjoint from every other task's block; `pool::run` gives part
        // `p` to exactly one task and returns before `data`'s exclusive
        // borrow ends, so this is the only live reference into the block.
        let block = unsafe { std::slice::from_raw_parts_mut(start, len) };
        f(p, rows, block);
    });
}

/// Convenience wrapper: splits `data` into `parts` near-equal contiguous
/// chunks ([`crate::split_even`]) and runs `f(part, range, chunk)` on each.
pub fn par_chunks_mut<T, F>(data: &mut [T], parts: usize, f: F)
where
    T: Send,
    F: Fn(usize, Range<usize>, &mut [T]) + Sync,
{
    let ranges = crate::split_even(data.len(), parts);
    par_row_blocks_mut(data, 1, &ranges, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_fill_disjointly_at_any_thread_count() {
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0usize; 1000];
            crate::with_threads(threads, || {
                par_chunks_mut(&mut data, 7, |_, range, chunk| {
                    for (offset, v) in chunk.iter_mut().enumerate() {
                        *v = range.start + offset;
                    }
                });
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i), "threads={threads}");
        }
    }

    #[test]
    fn row_blocks_respect_stride() {
        let mut data = vec![0u32; 6 * 4];
        let parts = [0..2, 2..3, 3..6];
        crate::with_threads(4, || {
            par_row_blocks_mut(&mut data, 4, &parts, |p, rows, block| {
                assert_eq!(block.len(), rows.len() * 4);
                block.fill(p as u32 + 1);
            });
        });
        let expect: Vec<u32> =
            [1, 1, 2, 3, 3, 3].iter().flat_map(|&v| std::iter::repeat_n(v, 4)).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn empty_ranges_and_empty_data_are_fine() {
        let mut data: Vec<f32> = Vec::new();
        par_row_blocks_mut(&mut data, 3, &[0..0, 0..0], |_, _, block| {
            assert!(block.is_empty());
        });
        let mut data = vec![1.0f32; 8];
        par_row_blocks_mut(&mut data, 2, &[0..0, 0..4], |_, rows, block| {
            assert_eq!(block.len(), rows.len() * 2);
        });
    }

    #[test]
    #[should_panic(expected = "ranges must ascend")]
    fn overlapping_ranges_are_rejected() {
        let mut data = vec![0u8; 10];
        par_row_blocks_mut(&mut data, 1, &[0..5, 4..10], |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "exceed the buffer")]
    #[allow(clippy::single_range_in_vec_init)]
    fn oversized_ranges_are_rejected() {
        let mut data = vec![0u8; 10];
        par_row_blocks_mut(&mut data, 4, &[0..3], |_, _, _| {});
    }
}
