//! The persistent worker pool.
//!
//! One pool per process ([`pool`]), holding up to `MAX_THREADS - 1`
//! workers spawned lazily on first use. A parallel region is a *broadcast
//! job*: the caller publishes an erased `Fn(usize)` plus a task count,
//! wakes the workers, and then pulls task indices from a shared atomic
//! counter alongside them, so the calling thread is always participant
//! number one and a pool with zero live workers still completes every
//! task. [`ThreadPool::run`] returns only after every joined participant
//! has finished, which is what makes the borrowed-closure erasure sound.
//!
//! Scheduling (which participant claims which task index) is dynamic and
//! timing-dependent; determinism is the *partitioning* layer's job — see
//! the crate docs. A panic inside a task is caught, the job is drained,
//! and the panic is re-raised on the calling thread.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks a mutex, recovering the guard from a poisoned lock: a panicked
/// task must not wedge every later kernel call in the process.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A lifetime-erased broadcast job. The raw pointer is only dereferenced
/// between a worker's join (under the state lock, while `run` is still
/// blocked) and its matching `active -= 1`, which `run` awaits before
/// returning — the closure therefore outlives every dereference.
#[derive(Clone, Copy)]
struct RawJob {
    func: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
    /// Workers allowed to join (participants minus the calling thread).
    worker_cap: usize,
}

// SAFETY: `RawJob` may cross to worker threads because `func` points at a
// `Sync` closure (shared calls from several threads are fine) that `run`
// keeps borrowed — and therefore alive — until the drain loop has seen
// every joined worker leave the job, so the pointer outlives every
// dereference a worker can make.
unsafe impl Send for RawJob {}

struct State {
    /// Bumped once per published job so sleeping workers can tell a new
    /// job from a spurious wakeup.
    epoch: u64,
    job: Option<RawJob>,
    /// Workers that joined the current epoch (capped by `worker_cap`).
    joined: usize,
    /// Participants currently inside the job body.
    active: usize,
    /// Set when any worker task panicked during the current job.
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
    /// Next unclaimed task index of the current job.
    next_task: AtomicUsize,
}

/// The persistent worker pool. Use the process-wide instance via [`pool`]
/// (or the [`run`] shorthand); constructing private pools is deliberately
/// not exposed, so the whole process shares one thread budget.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Workers spawned so far; grows on demand up to the requested budget.
    spawned: Mutex<usize>,
    /// Serialises broadcasts: the pool has one job slot, so concurrent
    /// callers (e.g. parallel test threads) take turns. Workers never
    /// acquire this (nested regions run inline), so it cannot deadlock.
    driver: Mutex<()>,
}

thread_local! {
    /// True while the current thread is executing tasks of a job — used to
    /// run nested parallel regions inline instead of deadlocking on the
    /// single job slot.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl ThreadPool {
    fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    joined: 0,
                    active: 0,
                    panicked: false,
                }),
                work_ready: Condvar::new(),
                work_done: Condvar::new(),
                next_task: AtomicUsize::new(0),
            }),
            spawned: Mutex::new(0),
            driver: Mutex::new(()),
        }
    }

    fn ensure_workers(&self, target: usize) {
        let mut spawned = lock(&self.spawned);
        while *spawned < target.min(crate::MAX_THREADS - 1) {
            let shared = Arc::clone(&self.shared);
            let name = format!("amud-par-{}", *spawned);
            match std::thread::Builder::new().name(name).spawn(move || worker_loop(&shared)) {
                // Detach: the pool lives for the process; workers park on
                // the condvar between jobs and exit with the process.
                Ok(_handle) => *spawned += 1,
                // Spawn failure degrades parallelism, never correctness:
                // the calling thread drains whatever workers don't take.
                Err(_) => break,
            }
        }
    }

    /// Runs `f(0)`, `f(1)`, …, `f(n_tasks - 1)`, each exactly once, spread
    /// over at most [`crate::current_threads`] participants (the calling
    /// thread included). Returns after every task has completed.
    ///
    /// Tasks must only write state they own exclusively (see
    /// [`crate::par_row_blocks_mut`]); which participant executes which
    /// index is unspecified. With a budget of 1, inside a nested parallel
    /// region, or for `n_tasks <= 1`, the tasks run inline serially.
    ///
    /// # Panics
    /// Re-raises the panic of any panicking task after the job drains.
    pub fn run<F: Fn(usize) + Sync>(&self, n_tasks: usize, f: F) {
        let participants = crate::current_threads().min(n_tasks);
        if participants <= 1 || IN_PARALLEL.get() {
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        self.ensure_workers(participants - 1);
        let _turn = lock(&self.driver);
        let func: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: pure lifetime erasure of the fat pointer `func` — same
        // pointee, same vtable. The drain loop below keeps `f` borrowed
        // until every worker that joined the job has left it, so no
        // dereference of the erased pointer outlives the closure.
        let func: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(func) };
        let job = RawJob { func, n_tasks, worker_cap: participants - 1 };
        {
            let mut st = lock(&self.shared.state);
            debug_assert!(st.job.is_none() && st.active == 0, "one job at a time");
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(job);
            st.joined = 0;
            self.shared.next_task.store(0, Ordering::Relaxed);
        }
        self.shared.work_ready.notify_all();

        // The calling thread is a participant too; its own panic must not
        // skip the drain below (the workers may still hold `func`).
        IN_PARALLEL.set(true);
        let main_result = catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.shared.next_task.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            f(i);
        }));
        IN_PARALLEL.set(false);

        let workers_panicked = {
            let mut st = lock(&self.shared.state);
            // No further joins; late workers see `None` and go back to sleep.
            st.job = None;
            while st.active > 0 {
                st = self.shared.work_done.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            std::mem::take(&mut st.panicked)
        };
        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
        assert!(
            !workers_panicked,
            "amud-par: a worker task panicked (original panic message above)"
        );
    }
}

fn worker_loop(shared: &Shared) {
    // Workers only ever execute tasks, so any parallel region entered from
    // task code must run inline.
    IN_PARALLEL.set(true);
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(job) = st.job {
                        if st.joined < job.worker_cap {
                            st.joined += 1;
                            st.active += 1;
                            break job;
                        }
                    }
                }
                st = shared.work_ready.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: `job.func` still points at the closure borrowed by `run`:
        // `run` blocks until `active` returns to zero, and this shared
        // reborrow is used only between our `active += 1` above and the
        // matching `active -= 1` below, so it cannot outlive the borrow.
        let f = unsafe { &*job.func };
        let result = catch_unwind(AssertUnwindSafe(|| loop {
            let i = shared.next_task.fetch_add(1, Ordering::Relaxed);
            if i >= job.n_tasks {
                break;
            }
            f(i);
        }));
        let mut st = lock(&shared.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// The process-wide pool, created on first use.
pub fn pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(ThreadPool::new)
}

/// Shorthand for [`ThreadPool::run`] on the process-wide [`pool`].
pub fn run<F: Fn(usize) + Sync>(n_tasks: usize, f: F) {
    pool().run(n_tasks, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_task_runs_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
            crate::with_threads(threads, || {
                run(hits.len(), |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}: some task ran zero or multiple times"
            );
        }
    }

    #[test]
    fn zero_and_one_task_jobs_complete() {
        run(0, |_| unreachable!("no tasks to run"));
        let hit = AtomicUsize::new(0);
        run(1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn back_to_back_jobs_reuse_the_pool() {
        crate::with_threads(4, || {
            for round in 0..50 {
                let sum = AtomicUsize::new(0);
                run(round % 7 + 1, |i| {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                });
                let n = round % 7 + 1;
                assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
            }
        });
    }

    #[test]
    fn nested_parallel_regions_run_inline() {
        let total = AtomicUsize::new(0);
        crate::with_threads(4, || {
            run(4, |_| {
                // Inner region must not deadlock on the single job slot.
                run(3, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            crate::with_threads(4, || {
                run(16, |i| {
                    assert!(i != 5, "task 5 fails");
                });
            })
        });
        assert!(result.is_err(), "panic must reach the caller");
        // The pool must still work afterwards.
        let ok = AtomicUsize::new(0);
        crate::with_threads(4, || {
            run(8, |_| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn concurrent_callers_from_user_threads_are_safe() {
        // Two OS threads issuing jobs against the global pool at once: the
        // epoch/join protocol must never lose or double-run a task.
        let results: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let sum = AtomicUsize::new(0);
                        crate::with_threads(3, || {
                            run(64, |i| {
                                sum.fetch_add(i, Ordering::Relaxed);
                            });
                        });
                        sum.load(Ordering::Relaxed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("caller thread panicked")).collect()
        });
        assert!(results.iter().all(|&s| s == 63 * 64 / 2));
    }
}
