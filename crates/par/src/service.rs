//! Long-lived service threads.
//!
//! The broadcast pool in [`crate::pool`] is built for short CPU-bound
//! kernel regions: workers must return to the condvar promptly, so a
//! thread that blocks on a socket or sleeps on a watch interval would
//! starve every kernel call in the process. Server-style components (the
//! `amud-serve` accept loop, connection handlers, the snapshot watcher)
//! therefore get their own primitive here — a named, detachable OS thread
//! — instead of borrowing pool workers.
//!
//! Routing service-thread creation through this module keeps the
//! workspace invariant enforced by the `raw-thread-spawn` lint: *all*
//! thread creation lives in `crates/par`, so the determinism contract's
//! audit surface stays one crate wide. Service threads must never touch
//! tensor kernels' shared outputs directly; they interact with compute by
//! *calling* kernels (which partition work themselves) or by message
//! passing, so they sit outside the bit-identity argument entirely.

/// A handle to a running service thread. Wraps [`std::thread::JoinHandle`]
/// so callers outside `crates/par` never name the `std::thread` spawn API
/// themselves.
pub struct ServiceHandle<T> {
    inner: std::thread::JoinHandle<T>,
}

impl<T> ServiceHandle<T> {
    /// Blocks until the service thread finishes, returning its result.
    /// A panic on the service thread is re-raised here, mirroring
    /// [`std::thread::JoinHandle::join`]'s contract but without exposing
    /// the `Result`-of-`Any` plumbing to callers.
    pub fn join(self) -> T {
        match self.inner.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Whether the service thread has exited (its closure returned or
    /// panicked). Non-blocking.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawns a named long-lived service thread running `f`.
///
/// Unlike pool workers, service threads may block indefinitely (socket
/// accept, condvar waits with deadlines, sleep-poll loops). The name shows
/// up in debuggers and panic messages; keep it short and unique-ish
/// (`"amud-serve-accept"`, `"amud-serve-watch"`, …). Spawn failure (fd /
/// memory exhaustion) is surfaced as the OS error, not a panic, so a
/// saturated server can shed the connection instead of dying.
pub fn spawn_service<T, F>(name: &str, f: F) -> std::io::Result<ServiceHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let inner = std::thread::Builder::new().name(name.to_string()).spawn(f)?;
    Ok(ServiceHandle { inner })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_thread_runs_and_joins() {
        let h = spawn_service("amud-test-svc", || 6 * 7).unwrap();
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn service_thread_panic_is_reraised_on_join() {
        let h = spawn_service("amud-test-panic", || panic!("boom")).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()));
        assert!(r.is_err(), "join must re-raise the service panic");
    }

    #[test]
    fn is_finished_reflects_completion() {
        let h = spawn_service("amud-test-done", || ()).unwrap();
        while !h.is_finished() {
            std::thread::yield_now();
        }
        h.join();
    }
}
