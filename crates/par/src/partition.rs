//! Deterministic range partitioning.
//!
//! Both splitters are pure functions of `(shape, parts)` — never of thread
//! scheduling — which is half of the runtime's determinism contract (the
//! other half being exclusive ownership of each part's output).

use std::ops::Range;

/// Splits `0..n` into `parts` contiguous ranges whose lengths differ by at
/// most one (the first `n % parts` ranges get the extra element). With
/// `parts >= n` the tail ranges are empty; `parts` is clamped to at least 1.
pub fn split_even(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Splits rows `0..n` into `parts` contiguous ranges of approximately
/// equal *weight*, where `prefix` is a cumulative weight array of length
/// `n + 1` with `prefix[0] == 0` (a CSR `row_ptr` is exactly this, making
/// the partition nnz-balanced). Cut `p` is the first row whose cumulative
/// weight reaches `p/parts` of the total, so heavily skewed rows push
/// later cuts outward and empty rows cost nothing. Zero total weight
/// degrades to [`split_even`].
///
/// # Panics
/// Panics if `prefix` is empty, does not start at 0, or decreases.
pub fn split_by_weight(prefix: &[usize], parts: usize) -> Vec<Range<usize>> {
    assert!(!prefix.is_empty(), "split_by_weight: prefix must have length n + 1");
    assert_eq!(prefix[0], 0, "split_by_weight: prefix must start at 0");
    debug_assert!(prefix.windows(2).all(|w| w[0] <= w[1]), "split_by_weight: prefix must ascend");
    let n = prefix.len() - 1;
    let total = prefix[n];
    let parts = parts.max(1);
    if total == 0 {
        return split_even(n, parts);
    }
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 1..=parts {
        let end = if p == parts {
            n
        } else {
            // First row index whose cumulative weight reaches the target;
            // clamped monotone so ranges never overlap or regress.
            let target = (total as u128 * p as u128 / parts as u128) as usize;
            prefix.partition_point(|&w| w < target).min(n).max(start)
        };
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers(parts: &[Range<usize>], n: usize) {
        let mut next = 0;
        for r in parts {
            assert_eq!(r.start, next, "ranges must tile without gaps");
            assert!(r.end >= r.start);
            next = r.end;
        }
        assert_eq!(next, n, "ranges must cover 0..n");
    }

    #[test]
    fn split_even_tiles_and_balances() {
        for n in [0, 1, 5, 97, 100] {
            for parts in [1, 2, 3, 7, 128] {
                let ranges = split_even(n, parts);
                assert_eq!(ranges.len(), parts);
                covers(&ranges, n);
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (
                    lens.iter().min().copied().unwrap_or(0),
                    lens.iter().max().copied().unwrap_or(0),
                );
                assert!(max - min <= 1, "n={n} parts={parts}: lengths {lens:?}");
            }
        }
    }

    #[test]
    fn split_by_weight_balances_skew() {
        // One hub row with weight 1000, then 99 rows of weight 1.
        let mut prefix = vec![0usize];
        let mut acc = 0;
        for r in 0..100 {
            acc += if r == 0 { 1000 } else { 1 };
            prefix.push(acc);
        }
        let parts = split_by_weight(&prefix, 4);
        covers(&parts, 100);
        // The hub row must sit alone-ish: the first range cannot also
        // swallow most of the light rows.
        assert!(parts[0].len() <= 2, "hub row must dominate its part: {parts:?}");
    }

    #[test]
    fn split_by_weight_handles_empty_rows_and_zero_total() {
        let prefix = [0usize, 0, 0, 0, 0];
        let parts = split_by_weight(&prefix, 3);
        covers(&parts, 4);

        // Empty rows interleaved with weighted ones.
        let prefix = [0usize, 0, 5, 5, 5, 10];
        let parts = split_by_weight(&prefix, 2);
        covers(&parts, 5);
        assert_eq!(parts[0], 0..2, "first part ends once half the weight is reached");
    }

    #[test]
    fn split_by_weight_more_parts_than_rows() {
        let prefix = [0usize, 3, 4];
        let parts = split_by_weight(&prefix, 8);
        covers(&parts, 2);
        assert_eq!(parts.len(), 8);
    }

    #[test]
    fn splits_are_pure_functions() {
        let prefix = [0usize, 2, 9, 9, 14, 20];
        assert_eq!(split_by_weight(&prefix, 3), split_by_weight(&prefix, 3));
        assert_eq!(split_even(17, 4), split_even(17, 4));
    }
}
