//! Runtime disjointness sanitizer (compiled under `--features san`).
//!
//! The static `par-disjointness` pass proves, at lint time, that the row
//! ranges handed to [`crate::par_row_blocks_mut`] derive from the blessed
//! partitioners. This module is the dynamic half of that contract: a
//! shadow registry that records, per *epoch* (one `par_row_blocks_mut`
//! call), the byte range of every block a task receives, and aborts the
//! process with a structured report the moment two live blocks alias —
//! including aliasing the static pass cannot see, such as a second slice
//! reconstructed from a raw address overlapping a block of an enclosing
//! parallel call.
//!
//! Two violation classes are detected:
//!
//! * **overlap** — a newly recorded block intersects a live block it does
//!   not legitimately reborrow. A block fully contained in a block of an
//!   *enclosing* epoch is a parent reborrow (sound: the parent task owns
//!   it exclusively) and is allowed; any partial intersection, and any
//!   intersection between blocks of the same epoch, aborts.
//! * **cross-epoch retention** — blocks of an epoch that was marked
//!   inactive are still registered when the next epoch begins, meaning a
//!   block outlived its parallel call. The runtime's [`EpochGuard`]
//!   releases blocks on drop, so retention can only arise from a leaked
//!   guard or a future code path that bypasses the guard; the registry
//!   turns that silent lifetime bug into a loud abort.
//!
//! The sanitizer aborts (rather than panics) so a violation cannot be
//! swallowed by `catch_unwind` in a harness: a disjointness breach means
//! the process may already have raced, and nothing downstream is
//! trustworthy. The shadow state is a single global mutex — the sanitizer
//! is a debugging build, not a fast path — and lock poisoning is ignored
//! via `PoisonError::into_inner` because the registry's plain-old-data
//! state is valid even if a panic interrupted an earlier holder.

use std::ops::Range;
use std::sync::{Mutex, OnceLock, PoisonError};

/// One shadow-registered block: the byte span a task may write.
struct Entry {
    /// Epoch (parallel call) the block belongs to.
    epoch: u64,
    /// First byte address of the block.
    start: usize,
    /// One past the last byte address of the block.
    end: usize,
    /// Row range the block was derived from (for reports).
    rows: Range<usize>,
}

struct Registry {
    /// Next epoch id to hand out; epoch 0 is never used.
    next_epoch: u64,
    /// Epochs whose parallel call is still running.
    active: Vec<u64>,
    /// Live blocks across all active epochs.
    entries: Vec<Entry>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry { next_epoch: 1, active: Vec::new(), entries: Vec::new() })
    })
}

/// Releases an epoch's registration *without* releasing its blocks.
///
/// This is the failure-injection hook for the retention detector: the
/// normal lifecycle ([`EpochGuard::drop`]) always releases blocks together
/// with the epoch. Calling this instead — as `san-abuse retain` does after
/// `mem::forget`ting its guard — leaves the blocks behind, which the next
/// [`epoch_begin`] reports as cross-epoch retention.
#[doc(hidden)]
pub fn mark_epoch_inactive(epoch: u64) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.active.retain(|&e| e != epoch);
}

/// Opens a new epoch, first checking that no block from an inactive epoch
/// is still registered. Returns the epoch id to pass to [`record_block`].
pub fn epoch_begin() -> u64 {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let retained: Vec<String> =
        reg.entries.iter().filter(|e| !reg.active.contains(&e.epoch)).map(describe).collect();
    if !retained.is_empty() {
        drop(reg);
        report_and_abort(
            "cross-epoch retention",
            &retained,
            "a block outlived its parallel call: its epoch ended without releasing it",
        );
    }
    let epoch = reg.next_epoch;
    reg.next_epoch += 1;
    reg.active.push(epoch);
    epoch
}

/// Registers a task's block (byte span `start..start + len_bytes`, derived
/// from `rows`) under `epoch`, aborting on any illegitimate overlap with a
/// live block.
pub fn record_block(epoch: u64, start: usize, len_bytes: usize, rows: Range<usize>) {
    let end = start.saturating_add(len_bytes);
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let new = Entry { epoch, start, end, rows };
    let clashes: Vec<String> = reg
        .entries
        .iter()
        .filter(|e| {
            let disjoint = e.end <= new.start || new.end <= e.start;
            // A block fully inside an *enclosing* epoch's block is that
            // parent task reborrowing its own memory — sound by exclusive
            // ownership. Everything else that intersects is a violation.
            let parent_reborrow = e.epoch != new.epoch && e.start <= new.start && new.end <= e.end;
            !disjoint && !parent_reborrow
        })
        .map(describe)
        .collect();
    if !clashes.is_empty() {
        let msg = describe(&new);
        drop(reg);
        let mut lines = vec![format!("new block : {msg}")];
        for c in clashes {
            lines.push(format!("clashes   : {c}"));
        }
        report_and_abort(
            "overlapping blocks",
            &lines,
            "two live blocks alias the same bytes; writes through them race",
        );
    }
    reg.entries.push(new);
}

/// Releases every block of `epoch` and marks it inactive — the normal end
/// of a parallel call, invoked by [`EpochGuard::drop`].
fn epoch_end(epoch: u64) {
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.entries.retain(|e| e.epoch != epoch);
    reg.active.retain(|&e| e != epoch);
}

fn describe(e: &Entry) -> String {
    format!(
        "epoch {} rows {}..{} bytes {:#x}..{:#x}",
        e.epoch, e.rows.start, e.rows.end, e.start, e.end
    )
}

fn report_and_abort(kind: &str, details: &[String], why: &str) -> ! {
    eprintln!("== amud-par sanitizer: {kind} ==");
    for d in details {
        eprintln!("  {d}");
    }
    eprintln!("  {why}");
    eprintln!("== aborting: parallel state is no longer trustworthy ==");
    std::process::abort()
}

/// Scope marker for one parallel call: opened by [`EpochGuard::begin`],
/// releases the epoch's blocks on drop (including on unwind, so a panic
/// inside a task cannot leak shadow state into the next call).
pub struct EpochGuard {
    epoch: u64,
}

impl EpochGuard {
    /// Opens a fresh epoch (see [`epoch_begin`]) and ties its lifetime to
    /// the returned guard.
    pub fn begin() -> Self {
        EpochGuard { epoch: epoch_begin() }
    }

    /// The epoch id, to pass to [`record_block`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        epoch_end(self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The abort paths are exercised end-to-end by `tests/san.rs`, which
    // drives the `san-abuse` binary in a subprocess; in-process tests
    // cover only the non-aborting bookkeeping.

    #[test]
    fn disjoint_blocks_and_parent_reborrows_are_clean() {
        let outer = EpochGuard::begin();
        record_block(outer.epoch(), 0x1000, 64, 0..4);
        record_block(outer.epoch(), 0x1040, 64, 4..8);
        {
            // A nested epoch re-deriving a sub-span of the first block.
            let inner = EpochGuard::begin();
            record_block(inner.epoch(), 0x1010, 16, 1..2);
        }
        // Dropping the guards releases everything; the next epoch sees a
        // clean registry.
        drop(outer);
        let fresh = EpochGuard::begin();
        record_block(fresh.epoch(), 0x1000, 128, 0..8);
    }
}
