//! # amud-par — deterministic std-only data-parallel runtime
//!
//! Every experiment in the reproduction bottoms out in four serial loops —
//! `DenseMatrix::{matmul, matmul_transa, matmul_transb}` and
//! `CsrMatrix::spmm` — plus the tape's elementwise forward/backward maps.
//! This crate supplies the one piece of machinery all of them share: a
//! persistent worker pool (std only — no registry dependencies) with a
//! range-partitioned `par_chunks_mut`-style API.
//!
//! ## Determinism contract
//!
//! Parallel results are **bit-identical to serial**, for every thread
//! count, because the runtime guarantees two properties and the kernels
//! supply a third:
//!
//! 1. **Fixed partitions.** Partition boundaries ([`split_even`],
//!    [`split_by_weight`]) are pure functions of the problem shape and the
//!    requested part count — never of scheduling, timing, or which worker
//!    picks up which part.
//! 2. **Exclusive ownership.** [`par_row_blocks_mut`] hands each task a
//!    disjoint sub-slice of the output; no two tasks ever write the same
//!    element, so there is nothing for scheduling order to reorder.
//! 3. **Order-preserving kernels.** Each task runs the *same* scalar loop
//!    the serial kernel runs over its range, so every output element is
//!    produced by the same sequence of floating-point operations
//!    regardless of how many threads participate. Kernels that must
//!    reduce across partitions (the `matmul_transa` gradient scatter) use
//!    a fixed block structure and fold the per-block partials in
//!    ascending block order on one thread.
//!
//! Consequently `AMUD_THREADS=1` is an *exact* serial fallback: it runs
//! the identical code inline on the calling thread.
//!
//! ## Environment knobs
//!
//! * `AMUD_THREADS` — thread budget for the whole process. Unset, `0`, or
//!   unparsable means [`std::thread::available_parallelism`]; `1` disables
//!   the pool entirely. Read once, at first use.
//!
//! Tests (and the kernel benchmark harness) can override the budget for a
//! scope on the current thread with [`with_threads`], which is how the
//! equivalence proptests compare `AMUD_THREADS ∈ {1, 2, 3, 8}` inside one
//! process.
//!
//! ## Why not `std::thread::scope` per call?
//!
//! Spawning OS threads costs tens of microseconds; the training loop calls
//! kernels thousands of times per second. The pool spawns its workers once
//! (lazily, on first parallel call) and broadcasts jobs to them; idle
//! workers block on a condvar and cost nothing. The workspace lint bans
//! `std::thread::spawn` everywhere else, so all parallelism flows through
//! this runtime and inherits the determinism contract.

mod chunks;
mod fold;
pub mod lanes;
mod partition;
mod pool;
#[cfg(feature = "san")]
pub mod san;
mod service;

pub use chunks::{par_chunks_mut, par_row_blocks_mut};
pub use fold::{lane_dot, lane_sum, ordered_dot, ordered_sum};
pub use partition::{split_by_weight, split_even};
pub use pool::{pool, run, ThreadPool};
pub use service::{spawn_service, ServiceHandle};

use std::cell::Cell;
use std::sync::OnceLock;

/// Hard ceiling on the thread budget (a safety rail for typo'd env vars).
pub const MAX_THREADS: usize = 256;

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_THREADS)
}

/// The process-wide thread budget: `AMUD_THREADS` when set to a positive
/// integer (clamped to [`MAX_THREADS`]), otherwise
/// [`std::thread::available_parallelism`]. Cached after the first call.
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("AMUD_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    })
}

thread_local! {
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The thread budget in effect for the calling thread: the innermost
/// [`with_threads`] override if one is active, else [`max_threads`].
pub fn current_threads() -> usize {
    let o = OVERRIDE.get();
    if o == 0 {
        max_threads()
    } else {
        o
    }
}

/// Runs `f` with the calling thread's budget overridden to `n` (clamped to
/// `1..=MAX_THREADS`). The previous budget is restored when `f` returns —
/// or unwinds, so a failing assertion inside a property test cannot leak
/// its thread count into the next case.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.set(self.0);
        }
    }
    let _restore = Restore(OVERRIDE.replace(n.clamp(1, MAX_THREADS)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_nests_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(7, || assert_eq!(current_threads(), 7));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn override_restores_on_panic() {
        let outer = current_threads();
        let result = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn override_is_clamped() {
        with_threads(0, || assert_eq!(current_threads(), 1));
        with_threads(usize::MAX, || assert_eq!(current_threads(), MAX_THREADS));
    }
}
