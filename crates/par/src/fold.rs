//! Ordered floating-point reductions — the *approved* folds for parallel
//! kernels.
//!
//! f32 addition is not associative, so the bit-identity contract (lib.rs,
//! property 3) requires every reduction to run in one fixed order. These
//! helpers are that order, written down once: a plain ascending-index
//! scalar loop, exactly the sequence `iter().sum()` / a serial `acc +=`
//! loop would produce. Kernels outside this crate must reduce through
//! these (the `float-determinism` pass in `amud-lint` enforces it), so a
//! refactor cannot silently introduce a reassociated — and therefore
//! thread-count-dependent — accumulation.

/// Sum of a slice in ascending index order.
///
/// Bit-identical to `xs.iter().sum::<f32>()`: one scalar accumulation per
/// element, no pairwise or SIMD reassociation, starting from `0.0`.
pub fn ordered_sum(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Dot product of two slices in ascending index order.
///
/// Bit-identical to the serial kernel loop `for i { acc += a[i] * b[i] }`.
/// Trailing elements of the longer slice are ignored (the kernels always
/// pass equal lengths; zip semantics keep the helper total).
pub fn ordered_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    let n = a.len().min(b.len());
    for i in 0..n {
        acc += a[i] * b[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_sum_matches_iterator_sum_bitwise() {
        // Values chosen so reassociation would change the result.
        let xs: Vec<f32> =
            (0..1000).map(|i| ((i * 2654435761u64 as usize) as f32).sin() * 1e3).collect();
        let reference: f32 = xs.iter().sum();
        assert_eq!(ordered_sum(&xs).to_bits(), reference.to_bits());
    }

    #[test]
    fn ordered_dot_matches_serial_loop_bitwise() {
        let a: Vec<f32> = (0..777).map(|i| (i as f32 * 0.37).cos()).collect();
        let b: Vec<f32> = (0..777).map(|i| (i as f32 * 1.91).sin()).collect();
        let mut reference = 0.0f32;
        for (&x, &y) in a.iter().zip(&b) {
            reference += x * y;
        }
        assert_eq!(ordered_dot(&a, &b).to_bits(), reference.to_bits());
    }

    #[test]
    fn unequal_lengths_use_the_shorter() {
        assert_eq!(ordered_dot(&[1.0, 2.0, 3.0], &[2.0]), 2.0);
        assert_eq!(ordered_sum(&[]), 0.0);
    }
}
