//! Ordered floating-point reductions — the *approved* folds for parallel
//! kernels.
//!
//! f32 addition is not associative, so the bit-identity contract (lib.rs,
//! property 3) requires every reduction to run in one fixed order. These
//! helpers are that order, written down once. Two families exist:
//!
//! * [`lane_sum`] / [`lane_dot`] — the **canonical** lane-folded order used
//!   by every kernel in the workspace: `LANE_WIDTH` interleaved partial
//!   accumulators over the lane-aligned prefix, collapsed by the fixed
//!   [`crate::lanes::fold_lanes`] tree, then an ascending scalar tail. The
//!   order is a pure function of the operand length — never of the thread
//!   count or partition — so serial fallback and every parallel block
//!   reduce identically, and the autovectorizer can lift the lane loop to
//!   SIMD without changing a bit.
//! * [`ordered_sum`] / [`ordered_dot`] — the legacy plain ascending scalar
//!   order, kept as the reference the lane variants are tested against
//!   (and the exact `iter().sum()` sequence, for pinning host folds).
//!
//! Kernels outside this crate must reduce through these (the
//! `float-determinism` pass in `amud-lint` enforces it, and additionally
//! flags hand-rolled `[f32; N]` lane accumulators outside `crates/par`),
//! so a refactor cannot silently introduce a reassociated — and therefore
//! thread-count-dependent — accumulation.

use crate::lanes::{fold_lanes, LANE_WIDTH};

/// Sum of a slice in ascending index order.
///
/// Bit-identical to `xs.iter().sum::<f32>()`: one scalar accumulation per
/// element, no pairwise or SIMD reassociation, starting from `0.0`.
pub fn ordered_sum(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for &x in xs {
        acc += x;
    }
    acc
}

/// Dot product of two slices in ascending index order.
///
/// Bit-identical to the serial kernel loop `for i { acc += a[i] * b[i] }`.
/// Trailing elements of the longer slice are ignored (the kernels always
/// pass equal lengths; zip semantics keep the helper total).
pub fn ordered_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    let n = a.len().min(b.len());
    for i in 0..n {
        acc += a[i] * b[i];
    }
    acc
}

/// Sum of a slice in the canonical lane-folded order.
///
/// The lane-aligned prefix feeds `LANE_WIDTH` interleaved accumulators
/// (`acc[i % LANE_WIDTH] += x[i]`), collapsed by the fixed
/// [`fold_lanes`] tree; the tail is added scalar, in ascending order.
/// The reduction shape depends only on `xs.len()`. For `xs.len() <
/// LANE_WIDTH` this is bit-identical to [`ordered_sum`].
pub fn lane_sum(xs: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANE_WIDTH];
    let mut chunks = xs.chunks_exact(LANE_WIDTH);
    for c in chunks.by_ref() {
        for l in 0..LANE_WIDTH {
            acc[l] += c[l];
        }
    }
    let mut s = fold_lanes(acc);
    for &x in chunks.remainder() {
        s += x;
    }
    s
}

/// Dot product of two slices in the canonical lane-folded order.
///
/// Same schedule as [`lane_sum`] with `a[i] * b[i]` terms; the common
/// prefix of the two slices is reduced (zip semantics, like
/// [`ordered_dot`]). For lengths below `LANE_WIDTH` this is bit-identical
/// to [`ordered_dot`].
pub fn lane_dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let main = n - n % LANE_WIDTH;
    let mut acc = [0.0f32; LANE_WIDTH];
    for (ca, cb) in a[..main].chunks_exact(LANE_WIDTH).zip(b[..main].chunks_exact(LANE_WIDTH)) {
        for l in 0..LANE_WIDTH {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut s = fold_lanes(acc);
    for (&x, &y) in a[main..n].iter().zip(&b[main..n]) {
        s += x * y;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_sum_matches_iterator_sum_bitwise() {
        // Values chosen so reassociation would change the result.
        let xs: Vec<f32> =
            (0..1000).map(|i| ((i * 2654435761u64 as usize) as f32).sin() * 1e3).collect();
        let reference: f32 = xs.iter().sum();
        assert_eq!(ordered_sum(&xs).to_bits(), reference.to_bits());
    }

    #[test]
    fn ordered_dot_matches_serial_loop_bitwise() {
        let a: Vec<f32> = (0..777).map(|i| (i as f32 * 0.37).cos()).collect();
        let b: Vec<f32> = (0..777).map(|i| (i as f32 * 1.91).sin()).collect();
        let mut reference = 0.0f32;
        for (&x, &y) in a.iter().zip(&b) {
            reference += x * y;
        }
        assert_eq!(ordered_dot(&a, &b).to_bits(), reference.to_bits());
    }

    #[test]
    fn unequal_lengths_use_the_shorter() {
        assert_eq!(ordered_dot(&[1.0, 2.0, 3.0], &[2.0]), 2.0);
        assert_eq!(ordered_sum(&[]), 0.0);
        assert_eq!(lane_dot(&[1.0, 2.0, 3.0], &[2.0]), 2.0);
        assert_eq!(lane_sum(&[]), 0.0);
    }

    /// Hand-evaluated reference of the canonical lane-fold schedule: lane
    /// accumulators over the aligned prefix, [`fold_lanes`] tree, ascending
    /// scalar tail. This is the order every workspace kernel reduces in.
    fn lane_reference(terms: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANE_WIDTH];
        for (i, &t) in terms.iter().take(terms.len() - terms.len() % LANE_WIDTH).enumerate() {
            acc[i % LANE_WIDTH] += t;
        }
        let mut s = fold_lanes(acc);
        for &t in &terms[terms.len() - terms.len() % LANE_WIDTH..] {
            s += t;
        }
        s
    }

    #[test]
    fn lane_sum_order_is_pinned_including_tails() {
        // Lengths ≡ 0, 1, and 7 (mod LANE_WIDTH) — the tail shapes the
        // equivalence proptests exercise at the matrix level.
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 64, 71, 1000, 1001, 1007] {
            let xs: Vec<f32> =
                (0..n).map(|i| ((i * 2654435761u64 as usize) as f32).sin() * 1e3).collect();
            assert_eq!(lane_sum(&xs).to_bits(), lane_reference(&xs).to_bits(), "n={n}");
        }
    }

    #[test]
    fn lane_dot_order_is_pinned_including_tails() {
        for n in [0, 1, 7, 8, 9, 33, 777, 783] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).cos()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 1.91).sin()).collect();
            let terms: Vec<f32> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
            assert_eq!(lane_dot(&a, &b).to_bits(), lane_reference(&terms).to_bits(), "n={n}");
        }
    }

    #[test]
    fn lane_variants_degenerate_to_ordered_below_one_lane() {
        for n in 0..LANE_WIDTH {
            let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).tan()).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32 * 1.3).cos()).collect();
            assert_eq!(lane_sum(&a).to_bits(), ordered_sum(&a).to_bits(), "n={n}");
            assert_eq!(lane_dot(&a, &b).to_bits(), ordered_dot(&a, &b).to_bits(), "n={n}");
        }
    }
}
