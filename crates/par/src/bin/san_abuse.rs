//! Seeded-violation driver for the runtime disjointness sanitizer.
//!
//! Built only under `--features san` (see `required-features` in the
//! manifest). Each mode stages one violation class end-to-end so
//! `tests/san.rs` can assert, from a subprocess, that the shadow registry
//! actually aborts — a sanitizer whose abort path is never exercised is
//! indistinguishable from one that silently misses races.
//!
//! * `overlap` — an inner parallel call over an aliasing slice whose block
//!   straddles the boundary between two live outer blocks. The per-call
//!   ascending-range asserts in `par_row_blocks_mut` cannot see this (each
//!   call's ranges are individually well-formed); only the cross-call
//!   shadow registry can.
//! * `retain` — a block that outlives its epoch: the guard is leaked and
//!   the epoch deactivated through the failure-injection hook, so the next
//!   epoch finds the stale registration.
//! * `clean` — a well-formed fan-out, as a negative control: exits 0.

fn overlap() {
    let mut data = vec![0u32; 64];
    let addr = data.as_mut_ptr() as usize;
    // One thread keeps both calls inline on this thread: the outer epoch's
    // blocks are live while the inner call records its own.
    amud_par::with_threads(1, || {
        amud_par::par_row_blocks_mut(&mut data, 1, &[0..32, 32..64], |p, _rows, _block| {
            if p == 0 {
                // SAFETY: deliberately unsound — `from_raw_parts_mut`
                // resurrects all 64 rows from `addr` while the enclosing
                // `par_row_blocks_mut` call holds them exclusively,
                // exactly the aliasing bug the sanitizer exists to catch.
                // The inner range 20..44 straddles the outer 32-row
                // boundary, so it is neither disjoint from nor a
                // parent-reborrow of any live block; the registry aborts
                // before any write happens through the alias.
                let alias = unsafe { std::slice::from_raw_parts_mut(addr as *mut u32, 64) };
                let straddle = 20..44;
                amud_par::par_row_blocks_mut(alias, 1, &[straddle], |_, _, b| {
                    let _ = b.len();
                });
            }
        });
    });
    eprintln!("san-abuse overlap: sanitizer failed to abort");
    std::process::exit(1);
}

fn retain() {
    let guard = amud_par::san::EpochGuard::begin();
    let data = [0u8; 16];
    let epoch = guard.epoch();
    amud_par::san::record_block(epoch, data.as_ptr() as usize, data.len(), 0..16);
    // Leak the guard, then deactivate the epoch through the
    // failure-injection hook: the block stays registered with no active
    // owner, which the next epoch must report as retention.
    std::mem::forget(guard);
    amud_par::san::mark_epoch_inactive(epoch);
    let _next = amud_par::san::EpochGuard::begin();
    eprintln!("san-abuse retain: sanitizer failed to abort");
    std::process::exit(1);
}

fn clean() {
    let mut data = vec![0u64; 1024];
    amud_par::with_threads(4, || {
        amud_par::par_chunks_mut(&mut data, 8, |_, rows, block| {
            for (offset, v) in block.iter_mut().enumerate() {
                *v = (rows.start + offset) as u64;
            }
        });
    });
    if data.iter().enumerate().any(|(i, &v)| v != i as u64) {
        eprintln!("san-abuse clean: wrong fill");
        std::process::exit(1);
    }
    println!("san-abuse clean: ok");
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("overlap") => overlap(),
        Some("retain") => retain(),
        Some("clean") => clean(),
        _ => {
            eprintln!("usage: san-abuse <overlap|retain|clean>");
            std::process::exit(2);
        }
    }
}
