//! Fixed-width lane microkernels — the register-blocked building blocks
//! behind every dense/sparse hot loop.
//!
//! A *lane block* is a `[f32; LANE_WIDTH]` accumulator updated by an
//! explicitly unrolled loop over `LANE_WIDTH` independent lanes. The shape
//! is chosen so the autovectorizer can lift each lane loop to one or two
//! SIMD ops (std only — no intrinsics, no `target-feature` gates), while
//! the numerics stay fully pinned:
//!
//! * **Reductions** ([`fold_lanes`], and `lane_sum`/`lane_dot` built on it
//!   in `fold.rs`) use a *fixed* binary reduction tree whose shape depends
//!   only on the operand length — never on the thread count, the partition,
//!   or the host. That tree is the single canonical order for every lane
//!   reduction in the workspace.
//! * **Axpy kernels** ([`lane_axpy`], [`lane_axpy4`]) perform exactly one
//!   scalar `o += w * x` per (element, weight) pair, in ascending weight
//!   order — the same floating-point op sequence as the serial loops they
//!   replace, so adopting them changes *nothing* bitwise.
//!
//! Lengths that are not a multiple of [`LANE_WIDTH`] take a deterministic
//! scalar tail in ascending index order. In particular, for inputs shorter
//! than one lane block the lane reductions degenerate to the legacy
//! `ordered_*` scalar order exactly (the lane accumulator folds to `+0.0`
//! and the tail is the whole input).

/// Number of f32 lanes per accumulator block. Eight f32s fill one AVX
/// register (or two SSE registers); the unrolled lane loops below are
/// written against this width and the reduction-tree shape is defined in
/// terms of it, so it is a semantic constant, not a tuning knob.
pub const LANE_WIDTH: usize = 8;

/// Collapses one lane accumulator block to a scalar via the canonical
/// fixed-shape binary tree:
///
/// ```text
/// ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))
/// ```
///
/// (stride-halving, the same shape a SIMD horizontal reduction uses). The
/// tree depends only on `LANE_WIDTH`, so every caller — serial fallback or
/// any parallel block, at any `AMUD_THREADS` — folds identically.
#[inline]
pub fn fold_lanes(acc: [f32; LANE_WIDTH]) -> f32 {
    let s0 = acc[0] + acc[4];
    let s1 = acc[1] + acc[5];
    let s2 = acc[2] + acc[6];
    let s3 = acc[3] + acc[7];
    (s0 + s2) + (s1 + s3)
}

/// `out[j] += w * x[j]` over the common prefix of `out` and `x`.
///
/// Bit-identical to the scalar loop: each element receives exactly one
/// `+= w * x[j]`, so the lane blocking is a pure instruction-scheduling
/// transform. The trailing `len % LANE_WIDTH` elements run scalar, in
/// ascending index order.
#[inline]
pub fn lane_axpy(out: &mut [f32], w: f32, x: &[f32]) {
    let n = out.len().min(x.len());
    let main = n - n % LANE_WIDTH;
    let (o_main, o_tail) = out[..n].split_at_mut(main);
    let (x_main, x_tail) = x[..n].split_at(main);
    for (o, c) in o_main.chunks_exact_mut(LANE_WIDTH).zip(x_main.chunks_exact(LANE_WIDTH)) {
        for l in 0..LANE_WIDTH {
            o[l] += w * c[l];
        }
    }
    for (o, &c) in o_tail.iter_mut().zip(x_tail) {
        *o += w * c;
    }
}

/// Four-way k-blocked axpy: `out[j] += w[0]*x0[j]; out[j] += w[1]*x1[j];
/// out[j] += w[2]*x2[j]; out[j] += w[3]*x3[j]` for every `j` in the common
/// prefix.
///
/// Per element this is the *same* ascending-weight sequence of fused
/// load/mul/add ops as four successive [`lane_axpy`] calls — bit-identical
/// by construction — but `out[j]` stays register-resident across all four
/// updates, quartering the write traffic of the ikj GEMM inner loop.
#[inline]
pub fn lane_axpy4(out: &mut [f32], w: [f32; 4], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) {
    let n = out.len().min(x0.len()).min(x1.len()).min(x2.len()).min(x3.len());
    let main = n - n % LANE_WIDTH;
    let mut j = 0;
    while j < main {
        let o = &mut out[j..j + LANE_WIDTH];
        let (c0, c1) = (&x0[j..j + LANE_WIDTH], &x1[j..j + LANE_WIDTH]);
        let (c2, c3) = (&x2[j..j + LANE_WIDTH], &x3[j..j + LANE_WIDTH]);
        for l in 0..LANE_WIDTH {
            o[l] += w[0] * c0[l];
            o[l] += w[1] * c1[l];
            o[l] += w[2] * c2[l];
            o[l] += w[3] * c3[l];
        }
        j += LANE_WIDTH;
    }
    while j < n {
        out[j] += w[0] * x0[j];
        out[j] += w[1] * x1[j];
        out[j] += w[2] * x2[j];
        out[j] += w[3] * x3[j];
        j += 1;
    }
}

/// Four simultaneous lane dots of `a` against `b0..b3`.
///
/// When all five slices share a length, `lane_dot4(a, b0, b1, b2, b3)[k]`
/// is bit-identical to `lane_dot(a, bk)`: each of the four accumulations
/// runs the identical lane schedule ([`fold_lanes`] tree + ascending
/// scalar tail); interleaving them only reuses the loads of `a` across
/// four independent register chains.
#[inline]
pub fn lane_dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let n = a.len().min(b0.len()).min(b1.len()).min(b2.len()).min(b3.len());
    let main = n - n % LANE_WIDTH;
    // Zipped `chunks_exact` hands the optimizer fixed-length windows with
    // no residual bounds checks, so each lane statement lowers to one
    // vector multiply-add chain.
    let mut acc0 = [0.0f32; LANE_WIDTH];
    let mut acc1 = [0.0f32; LANE_WIDTH];
    let mut acc2 = [0.0f32; LANE_WIDTH];
    let mut acc3 = [0.0f32; LANE_WIDTH];
    let chunks = a[..main]
        .chunks_exact(LANE_WIDTH)
        .zip(b0[..main].chunks_exact(LANE_WIDTH))
        .zip(b1[..main].chunks_exact(LANE_WIDTH))
        .zip(b2[..main].chunks_exact(LANE_WIDTH))
        .zip(b3[..main].chunks_exact(LANE_WIDTH));
    for ((((av, c0), c1), c2), c3) in chunks {
        for l in 0..LANE_WIDTH {
            acc0[l] += av[l] * c0[l];
            acc1[l] += av[l] * c1[l];
            acc2[l] += av[l] * c2[l];
            acc3[l] += av[l] * c3[l];
        }
    }
    let mut out = [fold_lanes(acc0), fold_lanes(acc1), fold_lanes(acc2), fold_lanes(acc3)];
    let mut i = main;
    while i < n {
        out[0] += a[i] * b0[i];
        out[1] += a[i] * b1[i];
        out[2] += a[i] * b2[i];
        out[3] += a[i] * b3[i];
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::{lane_dot, ordered_dot};

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * scale).sin() * 3.0).collect()
    }

    #[test]
    fn fold_lanes_shape_is_pinned() {
        // The documented tree, spelled out by hand. If this test moves, the
        // canonical order moved — every lane reduction in the workspace
        // changes with it, and DESIGN.md §14 must be updated.
        let a = [1e8f32, -3.0, 7.5, 1e-3, -1e8, 2.0, -7.5, 0.125];
        let expected = ((a[0] + a[4]) + (a[2] + a[6])) + ((a[1] + a[5]) + (a[3] + a[7]));
        assert_eq!(fold_lanes(a).to_bits(), expected.to_bits());
    }

    #[test]
    fn lane_axpy_is_bit_identical_to_scalar_axpy() {
        for n in [0, 1, 7, 8, 9, 15, 16, 63, 64, 65] {
            let x = seq(n, 0.73);
            let mut out = seq(n, 1.19);
            let mut reference = out.clone();
            lane_axpy(&mut out, -0.37, &x);
            for (o, &c) in reference.iter_mut().zip(&x) {
                *o += -0.37 * c;
            }
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn lane_axpy4_matches_four_sequential_lane_axpys() {
        for n in [1, 7, 8, 9, 31, 64, 65] {
            let rows: Vec<Vec<f32>> = (0..4).map(|r| seq(n, 0.31 + r as f32)).collect();
            let w = [0.5, -1.25, 3.0, -0.0625];
            let mut blocked = seq(n, 2.17);
            let mut sequential = blocked.clone();
            lane_axpy4(&mut blocked, w, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (r, &wk) in rows.iter().zip(&w) {
                lane_axpy(&mut sequential, wk, r);
            }
            for (a, b) in blocked.iter().zip(&sequential) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn lane_dot4_matches_lane_dot_per_output() {
        for n in [0, 1, 7, 8, 9, 33, 64, 71] {
            let a = seq(n, 0.91);
            let rows: Vec<Vec<f32>> = (0..4).map(|r| seq(n, 1.07 + r as f32)).collect();
            let d4 = lane_dot4(&a, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (k, row) in rows.iter().enumerate() {
                assert_eq!(d4[k].to_bits(), lane_dot(&a, row).to_bits(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn sub_lane_inputs_degenerate_to_the_legacy_scalar_order() {
        // Below one lane block the accumulator folds to +0.0 and the whole
        // input runs through the ascending scalar tail — i.e. the legacy
        // ordered_* sequence prefixed by `0.0 +`, which is bitwise inert
        // for a +0.0 start.
        for n in 0..LANE_WIDTH {
            let a = seq(n, 0.57);
            let b = seq(n, 1.43);
            assert_eq!(lane_dot(&a, &b).to_bits(), ordered_dot(&a, &b).to_bits(), "n={n}");
        }
    }
}
