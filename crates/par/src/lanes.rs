//! Fixed-width lane microkernels — the register-blocked building blocks
//! behind every dense/sparse hot loop.
//!
//! A *lane block* is a `[f32; LANE_WIDTH]` accumulator updated by an
//! explicitly unrolled loop over `LANE_WIDTH` independent lanes. The shape
//! is chosen so the autovectorizer can lift each lane loop to one or two
//! SIMD ops (std only — no intrinsics, no `target-feature` gates), while
//! the numerics stay fully pinned:
//!
//! * **Reductions** ([`fold_lanes`], and `lane_sum`/`lane_dot` built on it
//!   in `fold.rs`) use a *fixed* binary reduction tree whose shape depends
//!   only on the operand length — never on the thread count, the partition,
//!   or the host. That tree is the single canonical order for every lane
//!   reduction in the workspace.
//! * **Axpy kernels** ([`lane_axpy`], [`lane_axpy4`]) perform exactly one
//!   scalar `o += w * x` per (element, weight) pair, in ascending weight
//!   order — the same floating-point op sequence as the serial loops they
//!   replace, so adopting them changes *nothing* bitwise.
//!
//! Lengths that are not a multiple of [`LANE_WIDTH`] take a deterministic
//! scalar tail in ascending index order. In particular, for inputs shorter
//! than one lane block the lane reductions degenerate to the legacy
//! `ordered_*` scalar order exactly (the lane accumulator folds to `+0.0`
//! and the tail is the whole input).

/// Number of f32 lanes per accumulator block. Eight f32s fill one AVX
/// register (or two SSE registers); the unrolled lane loops below are
/// written against this width and the reduction-tree shape is defined in
/// terms of it, so it is a semantic constant, not a tuning knob.
pub const LANE_WIDTH: usize = 8;

/// Collapses one lane accumulator block to a scalar via the canonical
/// fixed-shape binary tree:
///
/// ```text
/// ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))
/// ```
///
/// (stride-halving, the same shape a SIMD horizontal reduction uses). The
/// tree depends only on `LANE_WIDTH`, so every caller — serial fallback or
/// any parallel block, at any `AMUD_THREADS` — folds identically.
#[inline]
pub fn fold_lanes(acc: [f32; LANE_WIDTH]) -> f32 {
    let s0 = acc[0] + acc[4];
    let s1 = acc[1] + acc[5];
    let s2 = acc[2] + acc[6];
    let s3 = acc[3] + acc[7];
    (s0 + s2) + (s1 + s3)
}

/// `out[j] += w * x[j]` over the common prefix of `out` and `x`.
///
/// Bit-identical to the scalar loop: each element receives exactly one
/// `+= w * x[j]`, so the lane blocking is a pure instruction-scheduling
/// transform. The trailing `len % LANE_WIDTH` elements run scalar, in
/// ascending index order.
#[inline]
pub fn lane_axpy(out: &mut [f32], w: f32, x: &[f32]) {
    let n = out.len().min(x.len());
    let main = n - n % LANE_WIDTH;
    let (o_main, o_tail) = out[..n].split_at_mut(main);
    let (x_main, x_tail) = x[..n].split_at(main);
    for (o, c) in o_main.chunks_exact_mut(LANE_WIDTH).zip(x_main.chunks_exact(LANE_WIDTH)) {
        for l in 0..LANE_WIDTH {
            o[l] += w * c[l];
        }
    }
    for (o, &c) in o_tail.iter_mut().zip(x_tail) {
        *o += w * c;
    }
}

/// Four-way k-blocked axpy: `out[j] += w[0]*x0[j]; out[j] += w[1]*x1[j];
/// out[j] += w[2]*x2[j]; out[j] += w[3]*x3[j]` for every `j` in the common
/// prefix.
///
/// Per element this is the *same* ascending-weight sequence of fused
/// load/mul/add ops as four successive [`lane_axpy`] calls — bit-identical
/// by construction — but `out[j]` stays register-resident across all four
/// updates, quartering the write traffic of the ikj GEMM inner loop.
#[inline]
pub fn lane_axpy4(out: &mut [f32], w: [f32; 4], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) {
    let n = out.len().min(x0.len()).min(x1.len()).min(x2.len()).min(x3.len());
    let main = n - n % LANE_WIDTH;
    let mut j = 0;
    while j < main {
        let o = &mut out[j..j + LANE_WIDTH];
        let (c0, c1) = (&x0[j..j + LANE_WIDTH], &x1[j..j + LANE_WIDTH]);
        let (c2, c3) = (&x2[j..j + LANE_WIDTH], &x3[j..j + LANE_WIDTH]);
        for l in 0..LANE_WIDTH {
            o[l] += w[0] * c0[l];
            o[l] += w[1] * c1[l];
            o[l] += w[2] * c2[l];
            o[l] += w[3] * c3[l];
        }
        j += LANE_WIDTH;
    }
    while j < n {
        out[j] += w[0] * x0[j];
        out[j] += w[1] * x1[j];
        out[j] += w[2] * x2[j];
        out[j] += w[3] * x3[j];
        j += 1;
    }
}

/// Four simultaneous lane dots of `a` against `b0..b3`.
///
/// When all five slices share a length, `lane_dot4(a, b0, b1, b2, b3)[k]`
/// is bit-identical to `lane_dot(a, bk)`: each of the four accumulations
/// runs the identical lane schedule ([`fold_lanes`] tree + ascending
/// scalar tail); interleaving them only reuses the loads of `a` across
/// four independent register chains.
#[inline]
pub fn lane_dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let n = a.len().min(b0.len()).min(b1.len()).min(b2.len()).min(b3.len());
    let main = n - n % LANE_WIDTH;
    // Zipped `chunks_exact` hands the optimizer fixed-length windows with
    // no residual bounds checks, so each lane statement lowers to one
    // vector multiply-add chain.
    let mut acc0 = [0.0f32; LANE_WIDTH];
    let mut acc1 = [0.0f32; LANE_WIDTH];
    let mut acc2 = [0.0f32; LANE_WIDTH];
    let mut acc3 = [0.0f32; LANE_WIDTH];
    let chunks = a[..main]
        .chunks_exact(LANE_WIDTH)
        .zip(b0[..main].chunks_exact(LANE_WIDTH))
        .zip(b1[..main].chunks_exact(LANE_WIDTH))
        .zip(b2[..main].chunks_exact(LANE_WIDTH))
        .zip(b3[..main].chunks_exact(LANE_WIDTH));
    for ((((av, c0), c1), c2), c3) in chunks {
        for l in 0..LANE_WIDTH {
            acc0[l] += av[l] * c0[l];
            acc1[l] += av[l] * c1[l];
            acc2[l] += av[l] * c2[l];
            acc3[l] += av[l] * c3[l];
        }
    }
    let mut out = [fold_lanes(acc0), fold_lanes(acc1), fold_lanes(acc2), fold_lanes(acc3)];
    let mut i = main;
    while i < n {
        out[0] += a[i] * b0[i];
        out[1] += a[i] * b1[i];
        out[2] += a[i] * b2[i];
        out[3] += a[i] * b3[i];
        i += 1;
    }
    out
}

/// Exact IEEE-754 binary16 → binary32 decode.
///
/// Every binary16 value (normals, subnormals, ±0, ±inf, NaNs) is exactly
/// representable in binary32, so this is a pure re-encoding with no
/// rounding: the fused dequant kernels below can expand f16 operands
/// on the fly and still be bit-identical to a decode-then-compute
/// reference path. NaN payloads are preserved (shifted into the f32
/// mantissa), matching the software decode convention.
#[inline]
pub fn f16_to_f32(bits: u16) -> f32 {
    // Branch-light widening: shift exponent+mantissa into binary32
    // position and rebias 15 → 127. The common (normal) case is pure
    // integer ALU with no taken branch, which keeps the fused dequant
    // inner loops vectorizable; the two rare buckets fix up after.
    let sign = u32::from(bits & 0x8000) << 16;
    let em = u32::from(bits & 0x7fff) << 13; // exponent+mantissa, shifted
    let exp = em & 0x0f80_0000; // the f16 exponent field, post-shift
    let mut o = em.wrapping_add(112 << 23); // rebias 15 → 127
    if exp == 0x0f80_0000 {
        // Inf / NaN: exponent saturates to 255, payload already shifted.
        o = o.wrapping_add(112 << 23);
    } else if exp == 0 {
        // Zero / subnormal: rebias once more to land at `2^-14 +
        // man·2^-24`, then renormalize with an exact binary32 subtract
        // (both operands and the difference are representable).
        o = o.wrapping_add(1 << 23);
        o = (f32::from_bits(o) - f32::from_bits(0x3880_0000)).to_bits(); // 2^-14
    }
    f32::from_bits(o | sign)
}

/// Fused-dequant lane dot: `lane_dot(a, decode(b))` without materialising
/// the decoded row.
///
/// Runs the canonical [`fold_lanes`] schedule with [`f16_to_f32`] applied
/// per element inside the lane loop. Decode is exact, so the result is
/// bit-identical to decoding `b` into a scratch `Vec<f32>` and calling
/// `lane_dot` — pinned by test below.
#[inline]
pub fn deq_f16_dot(a: &[f32], b: &[u16]) -> f32 {
    let n = a.len().min(b.len());
    let main = n - n % LANE_WIDTH;
    let mut acc = [0.0f32; LANE_WIDTH];
    for (av, bv) in a[..main].chunks_exact(LANE_WIDTH).zip(b[..main].chunks_exact(LANE_WIDTH)) {
        for l in 0..LANE_WIDTH {
            acc[l] += av[l] * f16_to_f32(bv[l]);
        }
    }
    let mut out = fold_lanes(acc);
    for i in main..n {
        out += a[i] * f16_to_f32(b[i]);
    }
    out
}

/// Fused-dequant lane dot over int8 with a per-tensor scale:
/// `lane_dot(a, q .* scale)` without materialising the dequantized row.
///
/// Each element decodes as `(q as f32) * scale` — the same single-rounding
/// expression the reference dequantize pass uses — so the fused form is
/// bit-identical to decode-then-`lane_dot`.
#[inline]
pub fn deq_i8_dot(a: &[f32], q: &[i8], scale: f32) -> f32 {
    let n = a.len().min(q.len());
    let main = n - n % LANE_WIDTH;
    let mut acc = [0.0f32; LANE_WIDTH];
    for (av, qv) in a[..main].chunks_exact(LANE_WIDTH).zip(q[..main].chunks_exact(LANE_WIDTH)) {
        for l in 0..LANE_WIDTH {
            acc[l] += av[l] * (qv[l] as f32 * scale);
        }
    }
    let mut out = fold_lanes(acc);
    for i in main..n {
        out += a[i] * (q[i] as f32 * scale);
    }
    out
}

/// Fused-dequant axpy: `out[j] += w * decode(x[j])` — [`lane_axpy`] with
/// the f16 operand expanded in-register. Bit-identical to decoding `x`
/// first (decode is exact).
#[inline]
pub fn deq_f16_axpy(out: &mut [f32], w: f32, x: &[u16]) {
    let n = out.len().min(x.len());
    let main = n - n % LANE_WIDTH;
    let (o_main, o_tail) = out[..n].split_at_mut(main);
    let (x_main, x_tail) = x[..n].split_at(main);
    for (o, c) in o_main.chunks_exact_mut(LANE_WIDTH).zip(x_main.chunks_exact(LANE_WIDTH)) {
        for l in 0..LANE_WIDTH {
            o[l] += w * f16_to_f32(c[l]);
        }
    }
    for (o, &c) in o_tail.iter_mut().zip(x_tail) {
        *o += w * f16_to_f32(c);
    }
}

/// Fused-dequant axpy over int8: `out[j] += w * (x[j] as f32 * scale)`.
#[inline]
pub fn deq_i8_axpy(out: &mut [f32], w: f32, x: &[i8], scale: f32) {
    let n = out.len().min(x.len());
    let main = n - n % LANE_WIDTH;
    let (o_main, o_tail) = out[..n].split_at_mut(main);
    let (x_main, x_tail) = x[..n].split_at(main);
    for (o, c) in o_main.chunks_exact_mut(LANE_WIDTH).zip(x_main.chunks_exact(LANE_WIDTH)) {
        for l in 0..LANE_WIDTH {
            o[l] += w * (c[l] as f32 * scale);
        }
    }
    for (o, &c) in o_tail.iter_mut().zip(x_tail) {
        *o += w * (c as f32 * scale);
    }
}

/// Four-way k-blocked fused-dequant axpy over f16 rows — [`lane_axpy4`]
/// with the four B rows decoded in-register. Per element the ascending
/// weight order is preserved, so it is bit-identical to four sequential
/// [`deq_f16_axpy`] calls (and hence to the f32 kernel on decoded rows).
#[inline]
pub fn deq_f16_axpy4(out: &mut [f32], w: [f32; 4], x0: &[u16], x1: &[u16], x2: &[u16], x3: &[u16]) {
    let n = out.len().min(x0.len()).min(x1.len()).min(x2.len()).min(x3.len());
    let main = n - n % LANE_WIDTH;
    let mut j = 0;
    while j < main {
        let o = &mut out[j..j + LANE_WIDTH];
        let (c0, c1) = (&x0[j..j + LANE_WIDTH], &x1[j..j + LANE_WIDTH]);
        let (c2, c3) = (&x2[j..j + LANE_WIDTH], &x3[j..j + LANE_WIDTH]);
        for l in 0..LANE_WIDTH {
            o[l] += w[0] * f16_to_f32(c0[l]);
            o[l] += w[1] * f16_to_f32(c1[l]);
            o[l] += w[2] * f16_to_f32(c2[l]);
            o[l] += w[3] * f16_to_f32(c3[l]);
        }
        j += LANE_WIDTH;
    }
    while j < n {
        out[j] += w[0] * f16_to_f32(x0[j]);
        out[j] += w[1] * f16_to_f32(x1[j]);
        out[j] += w[2] * f16_to_f32(x2[j]);
        out[j] += w[3] * f16_to_f32(x3[j]);
        j += 1;
    }
}

/// Four-way k-blocked fused-dequant axpy over int8 rows with one shared
/// per-tensor scale. Bit-identical to four sequential [`deq_i8_axpy`]
/// calls in ascending weight order.
#[inline]
pub fn deq_i8_axpy4(
    out: &mut [f32],
    w: [f32; 4],
    scale: f32,
    x0: &[i8],
    x1: &[i8],
    x2: &[i8],
    x3: &[i8],
) {
    let n = out.len().min(x0.len()).min(x1.len()).min(x2.len()).min(x3.len());
    let main = n - n % LANE_WIDTH;
    let mut j = 0;
    while j < main {
        let o = &mut out[j..j + LANE_WIDTH];
        let (c0, c1) = (&x0[j..j + LANE_WIDTH], &x1[j..j + LANE_WIDTH]);
        let (c2, c3) = (&x2[j..j + LANE_WIDTH], &x3[j..j + LANE_WIDTH]);
        for l in 0..LANE_WIDTH {
            o[l] += w[0] * (c0[l] as f32 * scale);
            o[l] += w[1] * (c1[l] as f32 * scale);
            o[l] += w[2] * (c2[l] as f32 * scale);
            o[l] += w[3] * (c3[l] as f32 * scale);
        }
        j += LANE_WIDTH;
    }
    while j < n {
        out[j] += w[0] * (x0[j] as f32 * scale);
        out[j] += w[1] * (x1[j] as f32 * scale);
        out[j] += w[2] * (x2[j] as f32 * scale);
        out[j] += w[3] * (x3[j] as f32 * scale);
        j += 1;
    }
}

/// Four simultaneous lane dots of `a` against a 4-way *interleaved* B
/// pack: `b4[k * 4 + m]` holds element `k` of row `m`.
///
/// `lane_dot4_interleaved(a, b4)[m]` is bit-identical to
/// `lane_dot(a, b_m)`: each of the four accumulations runs the identical
/// lane schedule ([`fold_lanes`] tree + ascending scalar tail) — the
/// interleaved layout only turns four strided row streams into one
/// sequential stream, which is what makes a pre-packed `matmul_transb`
/// traversal bandwidth-friendly.
#[inline]
pub fn lane_dot4_interleaved(a: &[f32], b4: &[f32]) -> [f32; 4] {
    let n = a.len().min(b4.len() / 4);
    let main = n - n % LANE_WIDTH;
    let mut acc0 = [0.0f32; LANE_WIDTH];
    let mut acc1 = [0.0f32; LANE_WIDTH];
    let mut acc2 = [0.0f32; LANE_WIDTH];
    let mut acc3 = [0.0f32; LANE_WIDTH];
    let chunks =
        a[..main].chunks_exact(LANE_WIDTH).zip(b4[..main * 4].chunks_exact(LANE_WIDTH * 4));
    for (av, bb) in chunks {
        for l in 0..LANE_WIDTH {
            acc0[l] += av[l] * bb[l * 4];
            acc1[l] += av[l] * bb[l * 4 + 1];
            acc2[l] += av[l] * bb[l * 4 + 2];
            acc3[l] += av[l] * bb[l * 4 + 3];
        }
    }
    let mut out = [fold_lanes(acc0), fold_lanes(acc1), fold_lanes(acc2), fold_lanes(acc3)];
    let mut i = main;
    while i < n {
        out[0] += a[i] * b4[i * 4];
        out[1] += a[i] * b4[i * 4 + 1];
        out[2] += a[i] * b4[i * 4 + 2];
        out[3] += a[i] * b4[i * 4 + 3];
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::{lane_dot, ordered_dot};

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * scale).sin() * 3.0).collect()
    }

    #[test]
    fn fold_lanes_shape_is_pinned() {
        // The documented tree, spelled out by hand. If this test moves, the
        // canonical order moved — every lane reduction in the workspace
        // changes with it, and DESIGN.md §14 must be updated.
        let a = [1e8f32, -3.0, 7.5, 1e-3, -1e8, 2.0, -7.5, 0.125];
        let expected = ((a[0] + a[4]) + (a[2] + a[6])) + ((a[1] + a[5]) + (a[3] + a[7]));
        assert_eq!(fold_lanes(a).to_bits(), expected.to_bits());
    }

    #[test]
    fn lane_axpy_is_bit_identical_to_scalar_axpy() {
        for n in [0, 1, 7, 8, 9, 15, 16, 63, 64, 65] {
            let x = seq(n, 0.73);
            let mut out = seq(n, 1.19);
            let mut reference = out.clone();
            lane_axpy(&mut out, -0.37, &x);
            for (o, &c) in reference.iter_mut().zip(&x) {
                *o += -0.37 * c;
            }
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn lane_axpy4_matches_four_sequential_lane_axpys() {
        for n in [1, 7, 8, 9, 31, 64, 65] {
            let rows: Vec<Vec<f32>> = (0..4).map(|r| seq(n, 0.31 + r as f32)).collect();
            let w = [0.5, -1.25, 3.0, -0.0625];
            let mut blocked = seq(n, 2.17);
            let mut sequential = blocked.clone();
            lane_axpy4(&mut blocked, w, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (r, &wk) in rows.iter().zip(&w) {
                lane_axpy(&mut sequential, wk, r);
            }
            for (a, b) in blocked.iter().zip(&sequential) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn lane_dot4_matches_lane_dot_per_output() {
        for n in [0, 1, 7, 8, 9, 33, 64, 71] {
            let a = seq(n, 0.91);
            let rows: Vec<Vec<f32>> = (0..4).map(|r| seq(n, 1.07 + r as f32)).collect();
            let d4 = lane_dot4(&a, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (k, row) in rows.iter().enumerate() {
                assert_eq!(d4[k].to_bits(), lane_dot(&a, row).to_bits(), "n={n} k={k}");
            }
        }
    }

    /// Round-to-nearest-even binary32 → binary16 (test-local reference
    /// encoder; the production encoder lives in `amud-quant`).
    fn f16_bits(v: f32) -> u16 {
        let bits = v.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let man = bits & 0x007f_ffff;
        if exp == 0xff {
            return sign | 0x7c00 | if man != 0 { 0x200 } else { 0 };
        }
        let e16 = exp - 127 + 15;
        if e16 >= 0x1f {
            return sign | 0x7c00;
        }
        if e16 <= 0 {
            if e16 < -10 {
                return sign;
            }
            let m = man | 0x0080_0000;
            let shift = (14 - e16) as u32;
            let base = (m >> shift) as u16;
            let rem = m & ((1 << shift) - 1);
            let half = 1u32 << (shift - 1);
            return sign
                | if rem > half || (rem == half && base & 1 == 1) { base + 1 } else { base };
        }
        let base = ((e16 as u32) << 10 | man >> 13) as u16;
        let rem = man & 0x1fff;
        sign | if rem > 0x1000 || (rem == 0x1000 && base & 1 == 1) { base + 1 } else { base }
    }

    fn f16_row(n: usize, scale: f32) -> Vec<u16> {
        seq(n, scale).iter().map(|&v| f16_bits(v)).collect()
    }

    fn i8_row(n: usize, scale: f32) -> Vec<i8> {
        (0..n).map(|i| (((i as f32) * scale).sin() * 127.0).round() as i8).collect()
    }

    #[test]
    fn f16_decode_is_exact_on_pinned_patterns() {
        // Exactness spot checks across every decode branch: zero, subnormal,
        // normal, inf, NaN.
        assert_eq!(f16_to_f32(0x0000).to_bits(), 0.0f32.to_bits());
        assert_eq!(f16_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
        assert_eq!(f16_to_f32(0x0001), 2.0f32.powi(-24)); // smallest subnormal
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0xc000), -2.0);
        assert_eq!(f16_to_f32(0x7bff), 65504.0); // largest finite
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_to_f32(0xfc00), f32::NEG_INFINITY);
        assert!(f16_to_f32(0x7e00).is_nan());
    }

    #[test]
    fn fused_f16_kernels_match_decode_then_f32_kernels() {
        for n in [0, 1, 7, 8, 9, 33, 64, 71] {
            let a = seq(n, 0.91);
            let b = f16_row(n, 1.07);
            let dec: Vec<f32> = b.iter().map(|&x| f16_to_f32(x)).collect();
            assert_eq!(deq_f16_dot(&a, &b).to_bits(), lane_dot(&a, &dec).to_bits(), "dot n={n}");

            let mut fused = seq(n, 2.17);
            let mut reference = fused.clone();
            deq_f16_axpy(&mut fused, -0.37, &b);
            lane_axpy(&mut reference, -0.37, &dec);
            for (x, y) in fused.iter().zip(&reference) {
                assert_eq!(x.to_bits(), y.to_bits(), "axpy n={n}");
            }
        }
    }

    #[test]
    fn fused_f16_axpy4_matches_four_sequential_deq_axpys() {
        for n in [1, 7, 8, 9, 31, 64, 65] {
            let rows: Vec<Vec<u16>> = (0..4).map(|r| f16_row(n, 0.31 + r as f32)).collect();
            let w = [0.5, -1.25, 3.0, -0.0625];
            let mut blocked = seq(n, 2.17);
            let mut sequential = blocked.clone();
            deq_f16_axpy4(&mut blocked, w, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (r, &wk) in rows.iter().zip(&w) {
                deq_f16_axpy(&mut sequential, wk, r);
            }
            for (x, y) in blocked.iter().zip(&sequential) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn fused_i8_kernels_match_decode_then_f32_kernels() {
        let scale = 0.02734375; // an exact binary fraction, typical max_abs/127 shape
        for n in [0, 1, 7, 8, 9, 33, 64, 71] {
            let a = seq(n, 0.91);
            let q = i8_row(n, 1.07);
            let dec: Vec<f32> = q.iter().map(|&x| x as f32 * scale).collect();
            assert_eq!(
                deq_i8_dot(&a, &q, scale).to_bits(),
                lane_dot(&a, &dec).to_bits(),
                "dot n={n}"
            );

            let mut fused = seq(n, 2.17);
            let mut reference = fused.clone();
            deq_i8_axpy(&mut fused, -0.37, &q, scale);
            lane_axpy(&mut reference, -0.37, &dec);
            for (x, y) in fused.iter().zip(&reference) {
                assert_eq!(x.to_bits(), y.to_bits(), "axpy n={n}");
            }
        }
    }

    #[test]
    fn fused_i8_axpy4_matches_four_sequential_deq_axpys() {
        let scale = 0.0113;
        for n in [1, 7, 8, 9, 31, 64, 65] {
            let rows: Vec<Vec<i8>> = (0..4).map(|r| i8_row(n, 0.31 + r as f32)).collect();
            let w = [0.5, -1.25, 3.0, -0.0625];
            let mut blocked = seq(n, 2.17);
            let mut sequential = blocked.clone();
            deq_i8_axpy4(&mut blocked, w, scale, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (r, &wk) in rows.iter().zip(&w) {
                deq_i8_axpy(&mut sequential, wk, r, scale);
            }
            for (x, y) in blocked.iter().zip(&sequential) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn interleaved_dot4_matches_lane_dot_per_output() {
        for n in [0, 1, 7, 8, 9, 33, 64, 71] {
            let a = seq(n, 0.91);
            let rows: Vec<Vec<f32>> = (0..4).map(|r| seq(n, 1.07 + r as f32)).collect();
            let mut b4 = vec![0.0f32; n * 4];
            for k in 0..n {
                for (m, row) in rows.iter().enumerate() {
                    b4[k * 4 + m] = row[k];
                }
            }
            let d4 = lane_dot4_interleaved(&a, &b4);
            for (k, row) in rows.iter().enumerate() {
                assert_eq!(d4[k].to_bits(), lane_dot(&a, row).to_bits(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn sub_lane_inputs_degenerate_to_the_legacy_scalar_order() {
        // Below one lane block the accumulator folds to +0.0 and the whole
        // input runs through the ascending scalar tail — i.e. the legacy
        // ordered_* sequence prefixed by `0.0 +`, which is bitwise inert
        // for a +0.0 start.
        for n in 0..LANE_WIDTH {
            let a = seq(n, 0.57);
            let b = seq(n, 1.43);
            assert_eq!(lane_dot(&a, &b).to_bits(), ordered_dot(&a, &b).to_bits(), "n={n}");
        }
    }
}
