//! End-to-end sanitizer tests: drive the `san-abuse` binary in a
//! subprocess and assert on its exit status and report, because the
//! sanitizer's failure mode is a process abort that cannot be observed
//! in-process.

#![cfg(feature = "san")]

use std::process::{Command, Output};

fn run_abuse(mode: &str) -> Output {
    let exe = env!("CARGO_BIN_EXE_san-abuse");
    match Command::new(exe).arg(mode).output() {
        Ok(out) => out,
        Err(e) => panic!("failed to spawn {exe}: {e}"),
    }
}

#[test]
fn overlap_aborts_with_report() {
    let out = run_abuse("overlap");
    assert!(!out.status.success(), "aliasing blocks must abort, got {:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("amud-par sanitizer: overlapping blocks"), "stderr: {stderr}");
    assert!(stderr.contains("new block"), "report names the offending block: {stderr}");
    assert!(stderr.contains("clashes"), "report names the clashing block(s): {stderr}");
}

#[test]
fn retention_aborts_with_report() {
    let out = run_abuse("retain");
    assert!(!out.status.success(), "retained blocks must abort, got {:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("amud-par sanitizer: cross-epoch retention"), "stderr: {stderr}");
}

#[test]
fn clean_fanout_passes() {
    let out = run_abuse("clean");
    assert!(out.status.success(), "well-formed fan-out must exit 0: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok"), "stdout: {stdout}");
}
