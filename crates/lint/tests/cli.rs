//! Subprocess tests pinning the `amud-lint` exit-code table:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | clean (baselined debt only)               |
//! | 1    | fresh rule violation                      |
//! | 2    | usage error (unknown flag, bad baseline)  |
//! | 3    | ratchet regression (budgeted count rose)  |
//! | 4    | internal error (unreadable input)         |
//!
//! Mirrors the PR 2 exit-code table for the training binary: every failure
//! class is distinguishable by a shell script without parsing output.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_amud-lint")).args(args).output().expect("spawn amud-lint")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name).to_string_lossy().into_owned()
}

/// A scratch dir unique to this test process.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amud-lint-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn exit_0_on_clean_file_and_report_is_written() {
    let report = scratch().join("clean-report.json");
    let out = run(&["--report", report.to_str().expect("utf8 path"), &fixture("clean.rs")]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(json.contains("\"schema\": \"amud-analyze/1\""));
    assert!(json.contains("\"files_scanned\": 1"));
}

#[test]
fn exit_1_on_fresh_violation() {
    let out = run(&[&fixture("bad.rs")]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unwrap-ratchet"));
    assert!(stdout.contains("raw-thread-spawn"));
}

#[test]
fn exit_1_on_each_interprocedural_fixture() {
    // The interprocedural passes key on workspace-relative path prefixes,
    // so stage each fixture in a scratch dir under its target path and run
    // the CLI from there with a relative argument (relative paths are kept
    // verbatim as labels).
    let cases = [
        ("panic_reachability.rs", "crates/nn/src/fixture.rs", "panic-reachability"),
        ("determinism_taint.rs", "crates/train/src/fixture.rs", "determinism-taint"),
        ("par_disjointness.rs", "crates/nn/src/fixture.rs", "par-disjointness"),
        ("error_taxonomy.rs", "crates/datasets/src/fixture.rs", "error-taxonomy"),
        ("serve_error_taxonomy.rs", "crates/serve/src/fixture.rs", "error-taxonomy"),
        ("index_bounds.rs", "crates/par/src/fixture.rs", "index-bounds"),
        ("shape_consistency.rs", "crates/train/src/fixture.rs", "shape-consistency"),
        ("exit_code_registry.rs", "crates/train/src/fixture.rs", "exit-code-registry"),
    ];
    for (fixture_name, rel_label, rule) in cases {
        let dir = scratch().join("interprocedural").join(rule);
        let dest = dir.join(rel_label);
        let parent = dest.parent().expect("label has a parent dir");
        std::fs::create_dir_all(parent).expect("create staged crate dir");
        std::fs::copy(fixture(fixture_name), &dest).expect("stage fixture");
        let out = Command::new(env!("CARGO_BIN_EXE_amud-lint"))
            .current_dir(&dir)
            .arg(rel_label)
            .output()
            .expect("spawn amud-lint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(out.status.code(), Some(1), "{fixture_name}: stdout: {stdout}");
        assert!(stdout.contains(rule), "{fixture_name} must trip {rule}: {stdout}");
    }
}

#[test]
fn exit_1_on_quant_crate_fixture() {
    // amud-quant is governed by cache-key-completeness AND determinism-
    // taint: the staged fixture trips both in a single run.
    let dir = scratch().join("quant-governance");
    let rel_label = "crates/quant/src/fixture.rs";
    let dest = dir.join(rel_label);
    std::fs::create_dir_all(dest.parent().expect("label has a parent dir"))
        .expect("create staged crate dir");
    std::fs::copy(fixture("quant_key.rs"), &dest).expect("stage fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_amud-lint"))
        .current_dir(&dir)
        .arg(rel_label)
        .output()
        .expect("spawn amud-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("cache-key-completeness"), "must trip cache-key: {stdout}");
    assert!(stdout.contains("determinism-taint"), "must trip determinism-taint: {stdout}");
}

#[test]
fn exit_1_on_float_determinism_fixture() {
    // float-determinism keys on its path label too (crates/par is exempt),
    // so stage the fixture under a governed crate path like the
    // interprocedural cases above.
    let dir = scratch().join("float-determinism");
    let rel_label = "crates/train/src/fixture.rs";
    let dest = dir.join(rel_label);
    std::fs::create_dir_all(dest.parent().expect("label has a parent dir"))
        .expect("create staged crate dir");
    std::fs::copy(fixture("float_determinism.rs"), &dest).expect("stage fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_amud-lint"))
        .current_dir(&dir)
        .arg(rel_label)
        .output()
        .expect("spawn amud-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("float-determinism"), "must trip float-determinism: {stdout}");
    assert!(
        stdout.contains("lane accumulator"),
        "must include the raw lane-accumulator finding: {stdout}"
    );
}

#[test]
fn timings_flag_prints_wall_time_and_keeps_exit_code() {
    let out = run(&["--timings", &fixture("clean.rs")]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("amud-analyze: analysis wall time"), "total line: {stdout}");
    assert!(stdout.contains(" ms"), "per-pass column: {stdout}");
}

#[test]
fn exit_2_on_unknown_flag() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn exit_3_on_ratchet_regression() {
    // Two unwraps against an explicit budget of 1: the (rule, file) pair is
    // known to the baseline, so this is a regression, not a fresh finding.
    let dir = scratch();
    let src = dir.join("regressed.rs");
    std::fs::write(
        &src,
        "pub fn f(a: Option<u8>, b: Option<u8>) -> u8 {\n    a.unwrap() + b.unwrap()\n}\n",
    )
    .expect("write fixture");
    let label = src.to_string_lossy().replace('\\', "/");
    let baseline = dir.join("baseline.txt");
    std::fs::write(&baseline, format!("unwrap-ratchet {label} 1 # pinned by cli test\n"))
        .expect("write baseline");

    let out = run(&["--baseline", baseline.to_str().expect("utf8"), src.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(3), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ratchet only goes down"));

    // The same file under a budget of 2 is clean (baselined debt).
    std::fs::write(&baseline, format!("unwrap-ratchet {label} 2\n")).expect("rewrite baseline");
    let out = run(&["--baseline", baseline.to_str().expect("utf8"), src.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn exit_4_on_unreadable_baseline() {
    let out = run(&["--baseline", "/nonexistent/amud-baseline.txt", &fixture("clean.rs")]);
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn violation_beats_regression_when_both_present() {
    // One file regresses its budget while another has an unbaselined
    // violation: the fresh violation (exit 1) wins.
    let dir = scratch();
    let regressed = dir.join("both-regressed.rs");
    std::fs::write(&regressed, "pub fn f(a: Option<u8>) -> u8 { a.unwrap() + a.unwrap() }\n")
        .expect("write fixture");
    let label = regressed.to_string_lossy().replace('\\', "/");
    let baseline = dir.join("both-baseline.txt");
    std::fs::write(&baseline, format!("unwrap-ratchet {label} 1\n")).expect("write baseline");

    let out = run(&[
        "--baseline",
        baseline.to_str().expect("utf8"),
        regressed.to_str().expect("utf8"),
        &fixture("bad.rs"),
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}
