//! Golden `analyze-report.json` snapshots — one per analysis pass — plus
//! tokenizer assertions over the stress corpus.
//!
//! Each test runs the engine over a seeded fixture under a label that
//! selects the pass, resolves against an empty baseline, renders the JSON
//! report, and compares it byte-for-byte to `fixtures/golden/<name>.json`.
//! Regenerate after an intentional diagnostic change with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p amud-lint --test golden
//! ```

use amud_lint::tokenizer::{tokenize, TokKind};
use amud_lint::{analyze_files, analyze_source, report, resolve, Baseline, RuleKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixtures_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Analyzes `fixture_name` under `label` with the per-file passes only,
/// checks the pass fired exactly where expected, and snapshots the
/// rendered report.
fn golden_check(fixture_name: &str, label: &str, rule: RuleKind, expect_fresh: usize) {
    let src = fixture(fixture_name);
    let violations = analyze_source(label, &src);
    golden_snapshot(fixture_name, label, violations, rule, expect_fresh);
}

/// Like [`golden_check`] but runs the full engine — per-file *and*
/// interprocedural workspace passes — treating the fixture as a one-file
/// workspace under `label`.
fn golden_check_files(fixture_name: &str, label: &str, rule: RuleKind, expect_fresh: usize) {
    let src = fixture(fixture_name);
    let files = vec![(label.to_string(), src)];
    let violations = analyze_files(&files);
    golden_snapshot(fixture_name, label, violations, rule, expect_fresh);
}

fn golden_snapshot(
    fixture_name: &str,
    label: &str,
    violations: Vec<amud_lint::Violation>,
    rule: RuleKind,
    expect_fresh: usize,
) {
    let scanned: BTreeSet<String> = [label.to_string()].into();
    let res = resolve(violations, &scanned, &Baseline::default());

    let fired = res.fresh.iter().filter(|v| v.rule == rule).count();
    assert_eq!(
        fired,
        expect_fresh,
        "{fixture_name}: expected {expect_fresh} {} finding(s), got {fired}: {:#?}",
        rule.name(),
        res.fresh
    );

    let json = report::render_json(1, &res);
    let golden_path = fixtures_dir()
        .join("golden")
        .join(format!("{}.json", fixture_name.trim_end_matches(".rs")));
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &json)
            .unwrap_or_else(|e| panic!("write {}: {e}", golden_path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} — regenerate with BLESS_GOLDEN=1 cargo test -p amud-lint --test golden",
            golden_path.display()
        )
    });
    assert_eq!(
        json, expected,
        "{fixture_name}: report drifted from its golden snapshot; if the change is \
         intentional, regenerate with BLESS_GOLDEN=1"
    );
}

#[test]
fn unsafe_contract_pass_golden() {
    // 3 contract-quality findings + 1 raw-pointer confinement finding.
    golden_check("unsafe_contract.rs", "crates/train/src/fixture.rs", RuleKind::UnsafeContract, 4);
}

#[test]
fn float_determinism_pass_golden() {
    // .sum, .fold, and a bare `acc +=` inside the par closure, plus the
    // file-wide raw `[f32; 8]` lane-accumulator fold.
    golden_check(
        "float_determinism.rs",
        "crates/train/src/fixture.rs",
        RuleKind::FloatDeterminism,
        4,
    );
}

#[test]
fn cache_key_pass_golden() {
    // `incomplete` drops conv_r; `complete` and `exempted` stay silent.
    golden_check("cache_key.rs", "crates/cache/src/fixture.rs", RuleKind::CacheKeyCompleteness, 1);
}

#[test]
fn concurrency_pass_golden() {
    // Mutex::new + AtomicU64::new (the fixture's thread::spawn additionally
    // trips raw-thread-spawn, captured in the same snapshot).
    golden_check(
        "concurrency.rs",
        "crates/train/src/fixture.rs",
        RuleKind::ConcurrencyDiscipline,
        2,
    );
}

#[test]
fn panic_reachability_pass_golden() {
    // `.expect` in `factor`, reachable via kernel → scale → factor; the
    // same site is also counted once by the per-file unwrap ratchet.
    golden_check_files(
        "panic_reachability.rs",
        "crates/nn/src/fixture.rs",
        RuleKind::PanicReachability,
        1,
    );
}

#[test]
fn determinism_taint_pass_golden() {
    // Wall-clock taint into `ordered_sum`, env-var taint into `from_vec`.
    golden_check_files(
        "determinism_taint.rs",
        "crates/train/src/fixture.rs",
        RuleKind::DeterminismTaint,
        2,
    );
}

#[test]
fn quant_crate_is_governed_golden() {
    // amud-quant is governed like the cache layer: `lookup_dropping_scale`
    // omits its per-tensor `scale` from the store key (1 × cache-key), and
    // an env-var epsilon reaches tensor contents through `env_epsilon` →
    // `from_vec` (1 × determinism-taint). Both land in the same snapshot.
    golden_check_files(
        "quant_key.rs",
        "crates/quant/src/fixture.rs",
        RuleKind::CacheKeyCompleteness,
        1,
    );
    golden_check_files(
        "quant_key.rs",
        "crates/quant/src/fixture.rs",
        RuleKind::DeterminismTaint,
        1,
    );
}

#[test]
fn par_disjointness_pass_golden() {
    // Ad-hoc `vec![0..cut, …]` ranges with neither a partition provider
    // nor a `// DISJOINT:` proof.
    golden_check_files(
        "par_disjointness.rs",
        "crates/nn/src/fixture.rs",
        RuleKind::ParDisjointness,
        1,
    );
}

#[test]
fn error_taxonomy_pass_golden() {
    // `Result<_, String>` and `Result<_, Box<dyn Error>>` on pub fns.
    golden_check_files(
        "error_taxonomy.rs",
        "crates/datasets/src/fixture.rs",
        RuleKind::ErrorTaxonomy,
        2,
    );
}

#[test]
fn serve_error_taxonomy_pass_golden() {
    // The serving crate is governed too: stringly-typed errors on its pub
    // API (instead of `ServeError`/`SnapshotError`) are fresh findings.
    golden_check_files(
        "serve_error_taxonomy.rs",
        "crates/serve/src/fixture.rs",
        RuleKind::ErrorTaxonomy,
        2,
    );
}

#[test]
fn index_bounds_pass_golden() {
    // Proved loops, an audited escape, and three seeded violations: an
    // undominated index, a shadow-killed length fact, and a placeholder
    // escape reason.
    golden_check_files("index_bounds.rs", "crates/par/src/fixture.rs", RuleKind::IndexBounds, 3);
}

#[test]
fn shape_consistency_pass_golden() {
    // One clean product and two inner-dimension mismatches, one of them
    // flowing through QMatrix::quantize.
    golden_check_files(
        "shape_consistency.rs",
        "crates/train/src/fixture.rs",
        RuleKind::ShapeConsistency,
        2,
    );
}

#[test]
fn exit_code_registry_pass_golden() {
    // A documented train-side exit, an undocumented code through an exit
    // sink, and a serve-owned code claimed from the train side.
    golden_check_files(
        "exit_code_registry.rs",
        "crates/train/src/fixture.rs",
        RuleKind::ExitCodeRegistry,
        2,
    );
}

#[test]
fn dataflow_stress_fixture_is_clean() {
    // Every access needs a composed proof — min chains, tuple lets,
    // chunking, windows, scaled lane indices, method summaries — and the
    // domain must discharge all of them without an escape.
    golden_check_files("dataflow_stress.rs", "crates/par/src/fixture.rs", RuleKind::IndexBounds, 0);
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    let src = fixture("clean.rs");
    for label in
        ["crates/core/src/fixture.rs", "crates/nn/src/fixture.rs", "crates/train/src/fixture.rs"]
    {
        // Per-file and interprocedural passes both stay silent.
        let vs = analyze_files(&[(label.to_string(), src.clone())]);
        assert!(vs.is_empty(), "clean.rs under {label}: {vs:#?}");
    }
    // Snapshot the all-clean report too: the summary must still list every
    // rule, with zero rows, so report diffs stay aligned across runs.
    golden_check_files("clean.rs", "crates/nn/src/fixture.rs", RuleKind::UnwrapRatchet, 0);
}

#[test]
fn tokenizer_handles_the_stress_corpus() {
    let toks = tokenize(&fixture("tokens.rs"));

    // The macro-body `unsafe` is a real identifier token…
    assert!(toks.iter().any(|t| t.is_ident("unsafe")), "unsafe inside macro body is lexed");
    // …while every rule keyword inside the raw string stays string content.
    let idents: Vec<&str> =
        toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
    assert!(!idents.contains(&"Mutex"), "raw-string contents must not lex as identifiers");
    assert!(
        toks.iter().any(|t| t.kind == TokKind::RawStrLit && t.text.contains(".unwrap()")),
        "raw string captured verbatim"
    );

    // Nested block comment is one token.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::BlockComment && t.text.contains("still one comment")));

    // Lifetimes vs char literals.
    assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "'x'"));
    assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == r"'\''"));

    // Numbers keep exponents but release `..` and method calls.
    assert!(toks.iter().any(|t| t.kind == TokKind::NumLit && t.text == "1.5e-3f32"));
    assert!(toks.iter().any(|t| t.is_punct("..")));
    assert!(toks.iter().any(|t| t.is_ident("max")));

    // The analysis itself must not fire on the corpus decoys: the only
    // findings are the macro's contract-less `unsafe` (by design).
    let vs = analyze_source("crates/train/src/fixture.rs", &fixture("tokens.rs"));
    assert!(
        vs.iter().all(|v| v.rule == RuleKind::UnsafeContract),
        "decoys must not trip token-level rules: {vs:#?}"
    );
}
