//! Golden `analyze-report.json` snapshots — one per analysis pass — plus
//! tokenizer assertions over the stress corpus.
//!
//! Each test runs the engine over a seeded fixture under a label that
//! selects the pass, resolves against an empty baseline, renders the JSON
//! report, and compares it byte-for-byte to `fixtures/golden/<name>.json`.
//! Regenerate after an intentional diagnostic change with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p amud-lint --test golden
//! ```

use amud_lint::tokenizer::{tokenize, TokKind};
use amud_lint::{analyze_source, report, resolve, Baseline, RuleKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixtures_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Analyzes `fixture_name` under `label`, checks the pass fired exactly
/// where expected, and snapshots the rendered report.
fn golden_check(fixture_name: &str, label: &str, rule: RuleKind, expect_fresh: usize) {
    let src = fixture(fixture_name);
    let violations = analyze_source(label, &src);
    let scanned: BTreeSet<String> = [label.to_string()].into();
    let res = resolve(violations, &scanned, &Baseline::default());

    let fired = res.fresh.iter().filter(|v| v.rule == rule).count();
    assert_eq!(
        fired,
        expect_fresh,
        "{fixture_name}: expected {expect_fresh} {} finding(s), got {fired}: {:#?}",
        rule.name(),
        res.fresh
    );

    let json = report::render_json(1, &res);
    let golden_path = fixtures_dir()
        .join("golden")
        .join(format!("{}.json", fixture_name.trim_end_matches(".rs")));
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::write(&golden_path, &json)
            .unwrap_or_else(|e| panic!("write {}: {e}", golden_path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} — regenerate with BLESS_GOLDEN=1 cargo test -p amud-lint --test golden",
            golden_path.display()
        )
    });
    assert_eq!(
        json, expected,
        "{fixture_name}: report drifted from its golden snapshot; if the change is \
         intentional, regenerate with BLESS_GOLDEN=1"
    );
}

#[test]
fn unsafe_contract_pass_golden() {
    // 3 contract-quality findings + 1 raw-pointer confinement finding.
    golden_check("unsafe_contract.rs", "crates/train/src/fixture.rs", RuleKind::UnsafeContract, 4);
}

#[test]
fn float_determinism_pass_golden() {
    // .sum, .fold, and a bare `acc +=` inside the par closure.
    golden_check(
        "float_determinism.rs",
        "crates/train/src/fixture.rs",
        RuleKind::FloatDeterminism,
        3,
    );
}

#[test]
fn cache_key_pass_golden() {
    // `incomplete` drops conv_r; `complete` and `exempted` stay silent.
    golden_check("cache_key.rs", "crates/cache/src/fixture.rs", RuleKind::CacheKeyCompleteness, 1);
}

#[test]
fn concurrency_pass_golden() {
    // Mutex::new + AtomicU64::new (the fixture's thread::spawn additionally
    // trips raw-thread-spawn, captured in the same snapshot).
    golden_check(
        "concurrency.rs",
        "crates/train/src/fixture.rs",
        RuleKind::ConcurrencyDiscipline,
        2,
    );
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    let src = fixture("clean.rs");
    for label in
        ["crates/core/src/fixture.rs", "crates/nn/src/fixture.rs", "crates/train/src/fixture.rs"]
    {
        let vs = analyze_source(label, &src);
        assert!(vs.is_empty(), "clean.rs under {label}: {vs:#?}");
    }
}

#[test]
fn tokenizer_handles_the_stress_corpus() {
    let toks = tokenize(&fixture("tokens.rs"));

    // The macro-body `unsafe` is a real identifier token…
    assert!(toks.iter().any(|t| t.is_ident("unsafe")), "unsafe inside macro body is lexed");
    // …while every rule keyword inside the raw string stays string content.
    let idents: Vec<&str> =
        toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
    assert!(!idents.contains(&"Mutex"), "raw-string contents must not lex as identifiers");
    assert!(
        toks.iter().any(|t| t.kind == TokKind::RawStrLit && t.text.contains(".unwrap()")),
        "raw string captured verbatim"
    );

    // Nested block comment is one token.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::BlockComment && t.text.contains("still one comment")));

    // Lifetimes vs char literals.
    assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "'x'"));
    assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == r"'\''"));

    // Numbers keep exponents but release `..` and method calls.
    assert!(toks.iter().any(|t| t.kind == TokKind::NumLit && t.text == "1.5e-3f32"));
    assert!(toks.iter().any(|t| t.is_punct("..")));
    assert!(toks.iter().any(|t| t.is_ident("max")));

    // The analysis itself must not fire on the corpus decoys: the only
    // findings are the macro's contract-less `unsafe` (by design).
    let vs = analyze_source("crates/train/src/fixture.rs", &fixture("tokens.rs"));
    assert!(
        vs.iter().all(|v| v.rule == RuleKind::UnsafeContract),
        "decoys must not trip token-level rules: {vs:#?}"
    );
}
