//! Structural index over a token stream: brace-matched spans, test-module
//! masks, `unsafe` sites, parallel-closure bodies, and a function index.
//!
//! Everything here is *lexical* structure — no type information — which is
//! exactly the level the analysis passes need: "which tokens are inside the
//! closure passed to a `par_*` call", "where does this `unsafe` block end",
//! "which identifiers feed this function's cache key". The index is built
//! once per file and shared by every pass.

use crate::tokenizer::{Tok, TokKind};
use std::collections::BTreeMap;
use std::ops::Range;

/// A token stream plus the structural facts passes share.
pub struct FileIndex {
    pub toks: Vec<Tok>,
    /// `true` for tokens inside a `#[cfg(test)]` item (the whole item,
    /// attribute included). Test code is exempt from every rule.
    pub test_mask: Vec<bool>,
}

/// Advances to the next code (non-comment) token at or after `i`.
pub fn next_code(toks: &[Tok], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if toks[i].is_code() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// The previous code (non-comment) token strictly before `i`.
pub fn prev_code(toks: &[Tok], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| toks[j].is_code())
}

/// Given the index of an opening delimiter token (`{`, `(` or `[`), returns
/// the index of its matching close, counting only that delimiter pair.
pub fn match_delim(toks: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// First `{` at bracket depth 0 starting from `i` (skipping over any
/// `(...)` / `[...]` groups, e.g. a parameter list or return type).
fn first_body_brace(toks: &[Tok], mut i: usize) -> Option<usize> {
    let mut depth = 0isize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "(" | "[" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokKind::Punct => depth -= 1,
            "{" if t.kind == TokKind::Punct && depth == 0 => return Some(i),
            ";" if t.kind == TokKind::Punct && depth == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whether the attribute starting at `hash` (a `#` token) gates the item
/// to test builds; returns the index of the closing `]` when it is any
/// attribute at all.
///
/// A cfg attribute is test-gating when the ident `test` appears anywhere
/// inside it **outside** a `not(...)` group — this covers `#[cfg(test)]`,
/// `#[cfg(all(test, feature = "slow"))]` and `#[cfg(any(test, fuzzing))]`
/// while leaving `#[cfg(not(test))]` live. (`any(test, …)` items are also
/// compiled in non-test builds when the other arm holds; masking them is
/// the conservative choice for a test-code detector — we would rather skip
/// dual-use scaffolding than lint generated test harness code.)
fn attr_span(toks: &[Tok], hash: usize) -> Option<(usize, bool)> {
    let open = next_code(toks, hash + 1)?;
    if !toks[open].is_punct("[") {
        return None;
    }
    let close = match_delim(toks, open)?;
    let inner: Vec<&str> =
        toks[open + 1..close].iter().filter(|t| t.is_code()).map(|t| t.text.as_str()).collect();
    let is_cfg_test = inner.first() == Some(&"cfg") && cfg_mentions_live_test(&inner[1..]);
    Some((close, is_cfg_test))
}

/// Whether the token stream of a cfg predicate (everything after the `cfg`
/// ident) contains the ident `test` at a position not nested inside a
/// `not(...)` group.
fn cfg_mentions_live_test(inner: &[&str]) -> bool {
    // Depths (paren levels) at which a `not(` group opened; `test` counts
    // only while no such group is on the stack.
    let mut depth = 0usize;
    let mut not_stack: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < inner.len() {
        match inner[i] {
            "(" => {
                if i > 0 && inner[i - 1] == "not" {
                    not_stack.push(depth);
                }
                depth += 1;
            }
            ")" => {
                depth = depth.saturating_sub(1);
                if not_stack.last() == Some(&depth) {
                    not_stack.pop();
                }
            }
            "test" if not_stack.is_empty() => return true,
            _ => {}
        }
        i += 1;
    }
    false
}

impl FileIndex {
    /// Builds the index: tokenizes nothing (takes tokens), computes the
    /// `#[cfg(test)]` mask by brace-matching the annotated item.
    pub fn new(toks: Vec<Tok>) -> Self {
        let mut test_mask = vec![false; toks.len()];
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_punct("#") {
                if let Some((close, true)) = attr_span(&toks, i) {
                    // Skip any further attributes/doc comments, then mask to
                    // the end of the annotated item (brace-matched block or
                    // trailing `;`).
                    let mut j = close + 1;
                    while let Some(k) = next_code(&toks, j) {
                        if toks[k].is_punct("#") {
                            match attr_span(&toks, k) {
                                Some((c2, _)) => j = c2 + 1,
                                None => break,
                            }
                        } else {
                            break;
                        }
                    }
                    let end = match first_body_brace(&toks, j) {
                        Some(open) => match_delim(&toks, open).unwrap_or(toks.len() - 1),
                        None => {
                            // `;`-terminated item (e.g. `#[cfg(test)] use x;`).
                            let mut k = j;
                            while k < toks.len() && !toks[k].is_punct(";") {
                                k += 1;
                            }
                            k.min(toks.len() - 1)
                        }
                    };
                    for m in test_mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i += 1;
        }
        FileIndex { toks, test_mask }
    }

    /// Whether token `i` is live, non-test code.
    pub fn is_live(&self, i: usize) -> bool {
        self.toks[i].is_code() && !self.test_mask[i]
    }

    /// All live `unsafe` sites with their body span (token range).
    pub fn unsafe_sites(&self) -> Vec<UnsafeSite> {
        let mut out = Vec::new();
        for i in 0..self.toks.len() {
            if !self.is_live(i) || !self.toks[i].is_ident("unsafe") {
                continue;
            }
            let Some(next) = next_code(&self.toks, i + 1) else { continue };
            let (kind, body) = if self.toks[next].is_punct("{") {
                let close = match_delim(&self.toks, next).unwrap_or(self.toks.len() - 1);
                (UnsafeKind::Block, next..close + 1)
            } else if self.toks[next].is_ident("fn")
                || self.toks[next].is_ident("extern")
                || self.toks[next].is_ident("impl")
                || self.toks[next].is_ident("trait")
            {
                match first_body_brace(&self.toks, next) {
                    Some(open) => {
                        let close = match_delim(&self.toks, open).unwrap_or(self.toks.len() - 1);
                        let kind = if self.toks[next].is_ident("impl") {
                            UnsafeKind::Impl
                        } else {
                            UnsafeKind::Fn
                        };
                        (kind, next..close + 1)
                    }
                    // `unsafe impl Send for T {}` with the `{}` found above;
                    // a `;`-terminated form has no body to inspect.
                    None => (UnsafeKind::Impl, next..next + 1),
                }
            } else {
                (UnsafeKind::Block, i..i + 1)
            };
            out.push(UnsafeSite { at: i, kind, body });
        }
        out
    }

    /// Body spans of every closure passed to a parallel entry point:
    /// an identifier starting with `par_`, or `run` qualified as
    /// `pool::run` / `amud_par::run`. The span covers the closure body
    /// tokens up to the call's closing paren.
    pub fn par_closure_bodies(&self) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        for i in 0..self.toks.len() {
            if !self.is_live(i) || self.toks[i].kind != TokKind::Ident {
                continue;
            }
            let name = self.toks[i].text.as_str();
            let is_par = name.starts_with("par_")
                || (name == "run"
                    && prev_code(&self.toks, i)
                        .filter(|&j| self.toks[j].is_punct("::"))
                        .and_then(|j| prev_code(&self.toks, j))
                        .is_some_and(|j| {
                            self.toks[j].is_ident("pool") || self.toks[j].is_ident("amud_par")
                        }));
            if !is_par {
                continue;
            }
            let Some(open) = next_code(&self.toks, i + 1) else { continue };
            if !self.toks[open].is_punct("(") {
                continue;
            }
            let Some(close) = match_delim(&self.toks, open) else { continue };
            // Find the closure's parameter bars at depth 1 inside the call.
            let mut depth = 0isize;
            let mut j = open;
            while j < close {
                let t = &self.toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "||" if depth == 1 => {
                            out.push(j + 1..close);
                            break;
                        }
                        "|" if depth == 1 => {
                            // Matching closing bar of the parameter list.
                            let mut k = j + 1;
                            while k < close && !self.toks[k].is_punct("|") {
                                k += 1;
                            }
                            out.push(k + 1..close);
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
        }
        out
    }

    /// Index of every live `fn` item: name, parameter names, body span.
    pub fn fn_items(&self) -> Vec<FnItem> {
        let mut out = Vec::new();
        for i in 0..self.toks.len() {
            if !self.is_live(i) || !self.toks[i].is_ident("fn") {
                continue;
            }
            let Some(name_i) = next_code(&self.toks, i + 1) else { continue };
            if self.toks[name_i].kind != TokKind::Ident {
                continue;
            }
            // Skip a generic parameter list `<...>` if present (`->` and
            // `>>` are single tokens, so plain angle counting works).
            let mut j = match next_code(&self.toks, name_i + 1) {
                Some(j) => j,
                None => continue,
            };
            if self.toks[j].is_punct("<") {
                let mut angle = 0isize;
                while j < self.toks.len() {
                    match self.toks[j].text.as_str() {
                        "<" if self.toks[j].kind == TokKind::Punct => angle += 1,
                        ">" if self.toks[j].kind == TokKind::Punct => {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        ">>" if self.toks[j].kind == TokKind::Punct => angle -= 2,
                        _ => {}
                    }
                    j += 1;
                }
                j = match next_code(&self.toks, j + 1) {
                    Some(j) => j,
                    None => continue,
                };
            }
            if !self.toks[j].is_punct("(") {
                continue;
            }
            let Some(params_close) = match_delim(&self.toks, j) else { continue };
            let params = param_names(&self.toks, j, params_close);
            let Some(body_open) = first_body_brace(&self.toks, params_close + 1) else {
                continue; // trait method signature without a body
            };
            let body_close = match_delim(&self.toks, body_open).unwrap_or(self.toks.len() - 1);
            out.push(FnItem {
                name: self.toks[name_i].text.clone(),
                at: i,
                params,
                body: body_open..body_close + 1,
            });
        }
        out
    }

    /// `let <name> = <expr>;` bindings inside `body`, mapped to the set of
    /// identifiers in each initialiser. One level of lexical data flow —
    /// enough to trace `let fp = fingerprint(x); key = (fp, …)` back to `x`.
    pub fn let_bindings(&self, body: &Range<usize>) -> BTreeMap<String, Vec<String>> {
        let mut map = BTreeMap::new();
        let mut i = body.start;
        while i < body.end {
            if self.is_live(i) && self.toks[i].is_ident("let") {
                let mut j = match next_code(&self.toks, i + 1) {
                    Some(j) => j,
                    None => break,
                };
                if self.toks[j].is_ident("mut") {
                    j = match next_code(&self.toks, j + 1) {
                        Some(j) => j,
                        None => break,
                    };
                }
                if self.toks[j].kind == TokKind::Ident {
                    let name = self.toks[j].text.clone();
                    // Scan to `=` then collect idents until the closing `;`
                    // at statement depth.
                    let mut k = j + 1;
                    while k < body.end && !self.toks[k].is_punct("=") && !self.toks[k].is_punct(";")
                    {
                        k += 1;
                    }
                    if k < body.end && self.toks[k].is_punct("=") {
                        let mut idents = Vec::new();
                        let mut depth = 0isize;
                        let mut m = k + 1;
                        while m < body.end {
                            let t = &self.toks[m];
                            if t.kind == TokKind::Punct {
                                match t.text.as_str() {
                                    "(" | "[" | "{" => depth += 1,
                                    ")" | "]" | "}" => depth -= 1,
                                    ";" if depth <= 0 => break,
                                    _ => {}
                                }
                            } else if t.kind == TokKind::Ident {
                                idents.push(t.text.clone());
                            }
                            m += 1;
                        }
                        map.insert(name, idents);
                        i = m;
                        continue;
                    }
                }
            }
            i += 1;
        }
        map
    }
}

/// What introduced an `unsafe` span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
}

/// One `unsafe` occurrence: the keyword token and the body span the
/// contract must cover.
pub struct UnsafeSite {
    /// Token index of the `unsafe` keyword.
    pub at: usize,
    pub kind: UnsafeKind,
    /// Token range of the governed body (block/impl braces included).
    pub body: Range<usize>,
}

/// One `fn` item.
pub struct FnItem {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub at: usize,
    pub params: Vec<String>,
    /// Token range of the body including braces.
    pub body: Range<usize>,
}

/// Parameter names between `(` at `open` and `)` at `close`: the last
/// identifier before each depth-1 `:` (skips `self`, `mut`, references).
fn param_names(toks: &[Tok], open: usize, close: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    for j in open..=close {
        let t = &toks[j];
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 1 => {
                if let Some(p) = prev_code(toks, j) {
                    if toks[p].kind == TokKind::Ident && !toks[p].is_ident("self") {
                        out.push(toks[p].text.clone());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn index(src: &str) -> FileIndex {
        FileIndex::new(tokenize(src))
    }

    #[test]
    fn cfg_test_module_is_masked_even_mid_file() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn also_live() { y.unwrap(); }\n";
        let ix = index(src);
        let live: Vec<&str> = (0..ix.toks.len())
            .filter(|&i| ix.is_live(i) && ix.toks[i].kind == TokKind::Ident)
            .map(|i| ix.toks[i].text.as_str())
            .collect();
        assert!(live.contains(&"also_live"), "code after a test module stays live");
        assert!(live.contains(&"y"));
        assert!(!live.contains(&"t"), "test module contents are masked");
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let ix = index("#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        let live: Vec<&str> = (0..ix.toks.len())
            .filter(|&i| ix.is_live(i) && ix.toks[i].kind == TokKind::Ident)
            .map(|i| ix.toks[i].text.as_str())
            .collect();
        assert!(live.contains(&"live"), "cfg(not(test)) code is production code");
    }

    #[test]
    fn cfg_all_and_any_with_test_are_masked() {
        for src in [
            "#[cfg(all(test, feature = \"slow\"))]\nmod harness { fn t() { x.unwrap(); } }\nfn live() {}\n",
            "#[cfg(any(test, fuzzing))]\nmod harness { fn t() { x.unwrap(); } }\nfn live() {}\n",
        ] {
            let ix = index(src);
            let live: Vec<&str> = (0..ix.toks.len())
                .filter(|&i| ix.is_live(i) && ix.toks[i].kind == TokKind::Ident)
                .map(|i| ix.toks[i].text.as_str())
                .collect();
            assert!(!live.contains(&"t"), "composite test cfg is masked in {src:?}");
            assert!(live.contains(&"live"), "following item stays live in {src:?}");
        }
    }

    #[test]
    fn cfg_with_test_only_inside_not_stays_live() {
        for src in [
            "#[cfg(all(not(test), feature = \"slow\"))]\nfn live() { x.unwrap(); }\n",
            "#[cfg(any(not(test), fuzzing))]\nfn live() { x.unwrap(); }\n",
        ] {
            let ix = index(src);
            let live: Vec<&str> = (0..ix.toks.len())
                .filter(|&i| ix.is_live(i) && ix.toks[i].kind == TokKind::Ident)
                .map(|i| ix.toks[i].text.as_str())
                .collect();
            assert!(live.contains(&"live"), "not(test)-guarded item is live in {src:?}");
        }
        // `test` outside the `not(...)` still wins even when one also
        // appears inside it.
        let ix = index("#[cfg(all(test, not(test)))]\nfn odd() {}\n");
        let live: Vec<&str> = (0..ix.toks.len())
            .filter(|&i| ix.is_live(i) && ix.toks[i].kind == TokKind::Ident)
            .map(|i| ix.toks[i].text.as_str())
            .collect();
        assert!(!live.contains(&"odd"));
    }

    #[test]
    fn cfg_feature_named_like_test_is_not_masked() {
        // Only the bare ident `test` gates; `feature = "test"` is a string
        // literal and `integration_test` is a different ident.
        let ix =
            index("#[cfg(feature = \"test\")]\nfn a() {}\n#[cfg(integration_test)]\nfn b() {}\n");
        let live: Vec<&str> = (0..ix.toks.len())
            .filter(|&i| ix.is_live(i) && ix.toks[i].kind == TokKind::Ident)
            .map(|i| ix.toks[i].text.as_str())
            .collect();
        assert!(live.contains(&"a"));
        assert!(live.contains(&"b"));
    }

    #[test]
    fn unsafe_block_and_fn_spans() {
        let src = "fn f() { unsafe { deref(p) } }\nunsafe fn g() { body(); }\n";
        let ix = index(src);
        let sites = ix.unsafe_sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].kind, UnsafeKind::Block);
        assert_eq!(sites[1].kind, UnsafeKind::Fn);
        let body0: Vec<&str> = sites[0].body.clone().map(|i| ix.toks[i].text.as_str()).collect();
        assert!(body0.contains(&"deref"));
    }

    #[test]
    fn unsafe_impl_span() {
        let ix = index("unsafe impl<T: Send> Send for Ptr<T> {}\n");
        let sites = ix.unsafe_sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, UnsafeKind::Impl);
    }

    #[test]
    fn par_closure_body_is_extracted() {
        let src = "fn f() { amud_par::par_row_blocks_mut(&mut d, 4, &p, |_, rows, block| { block.fill(0.0); acc(rows) }); }";
        let ix = index(src);
        let bodies = ix.par_closure_bodies();
        assert_eq!(bodies.len(), 1);
        let texts: Vec<&str> = bodies[0].clone().map(|i| ix.toks[i].text.as_str()).collect();
        assert!(texts.contains(&"fill"));
        assert!(texts.contains(&"acc"));
    }

    #[test]
    fn pool_run_and_bare_par_names_count_nothing_else() {
        let src = "fn f() { pool::run(n, |i| { g(i) }); other::run(n, |i| h(i)); }";
        let ix = index(src);
        assert_eq!(ix.par_closure_bodies().len(), 1, "only pool::run is a parallel entry");
    }

    #[test]
    fn fn_items_with_generics_and_params() {
        let src =
            "pub fn operators<T: Clone>(adj: &CsrMatrix, max_order: usize) -> T { body(adj) }";
        let ix = index(src);
        let fns = ix.fn_items();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "operators");
        assert_eq!(fns[0].params, vec!["adj", "max_order"]);
    }

    #[test]
    fn let_bindings_map_to_initialiser_idents() {
        let src = "fn f(x: T) { let fp = fingerprint(x); let key = (fp, N); use_it(key); }";
        let ix = index(src);
        let f = &ix.fn_items()[0];
        let lets = ix.let_bindings(&f.body);
        assert_eq!(lets["fp"], vec!["fingerprint", "x"]);
        assert!(lets["key"].contains(&"fp".to_string()));
    }

    #[test]
    fn brace_matching_ignores_braces_in_strings() {
        let src = "fn f() { let s = \"}}}\"; g(); }";
        let ix = index(src);
        let fns = ix.fn_items();
        assert_eq!(fns.len(), 1);
        let texts: Vec<&str> = fns[0].body.clone().map(|i| ix.toks[i].text.as_str()).collect();
        assert!(texts.contains(&"g"), "body extends past the string literal");
    }
}
