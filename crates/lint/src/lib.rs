//! Workspace lint harness (std-only, no syn): line-oriented static checks
//! enforcing the repo's reliability conventions on non-test library code.
//!
//! Rules:
//!
//! 1. **unwrap/expect ratchet** — `.unwrap()` / `.expect(...)` calls in
//!    library source are budgeted per file by `lint-allow.txt` at the
//!    workspace root. New calls beyond a file's budget fail the lint; when
//!    a file drops below its budget the harness asks for the allowlist to
//!    be ratcheted down (`--bless` rewrites it).
//! 2. **kernel panic ban** — no `panic!`, `todo!` or `unimplemented!` in
//!    `amud-nn` / `amud-graph` non-test code: the numeric kernels must
//!    report through `Result` or documented `expect` invariants.
//!    (`unreachable!` with a justification message is allowed.)
//! 3. **SAFETY comments** — every `unsafe` keyword must be introduced by a
//!    `// SAFETY:` comment on the same or the preceding line.
//! 4. **doc coverage** — every `pub` item in `amud-core` (the crate other
//!    people read first) carries a doc comment.
//! 5. **raw thread-spawn ban** — no `thread::spawn` / `thread::Builder`
//!    outside `amud-par`: all workspace parallelism goes through the
//!    deterministic runtime (DESIGN.md §9), so thread-count behaviour and
//!    the bit-identity contract stay centralised in one crate.
//!
//! The scanner is deliberately simple: files are processed line by line,
//! `//` comments are stripped before token matching, and everything from
//! the first `#[cfg(test)]` to the end of the file is ignored (the
//! workspace convention keeps test modules last in the file). That
//! heuristic is what makes a std-only linter feasible; it is checked by
//! the fixtures in this crate's tests.

use std::collections::BTreeMap;
use std::fmt;

/// Which rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    UnwrapRatchet,
    PanicInKernel,
    MissingSafetyComment,
    UndocumentedPublicItem,
    RawThreadSpawn,
}

impl RuleKind {
    pub fn name(self) -> &'static str {
        match self {
            RuleKind::UnwrapRatchet => "unwrap-ratchet",
            RuleKind::PanicInKernel => "panic-in-kernel",
            RuleKind::MissingSafetyComment => "missing-safety-comment",
            RuleKind::UndocumentedPublicItem => "undocumented-public-item",
            RuleKind::RawThreadSpawn => "raw-thread-spawn",
        }
    }
}

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: RuleKind,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.message)
    }
}

/// Which rule set applies to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileRules {
    /// Ban `panic!`/`todo!`/`unimplemented!` (numeric kernel crates).
    pub forbid_panic: bool,
    /// Require doc comments on `pub` items (the flagship API crate).
    pub require_docs: bool,
    /// Ban raw `thread::spawn` / `thread::Builder` (everywhere except the
    /// `amud-par` runtime itself).
    pub forbid_raw_threads: bool,
}

/// Rule set for a workspace-relative path.
pub fn rules_for(path: &str) -> FileRules {
    FileRules {
        forbid_panic: path.starts_with("crates/nn/src/")
            || path.starts_with("crates/graph/src/")
            || path.starts_with("crates/par/src/"),
        require_docs: path.starts_with("crates/core/src/"),
        forbid_raw_threads: !path.starts_with("crates/par/src/"),
    }
}

/// Per-file unwrap/expect budget, keyed by workspace-relative path.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    budgets: BTreeMap<String, usize>,
}

impl Allowlist {
    /// Parses `lint-allow.txt`: `#` comments, blank lines, and
    /// `<path> <count>` entries.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut budgets = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (path, count) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(c), None) => (p, c),
                _ => return Err(format!("line {}: expected `<path> <count>`", i + 1)),
            };
            let count: usize =
                count.parse().map_err(|_| format!("line {}: `{count}` is not a count", i + 1))?;
            budgets.insert(path.to_string(), count);
        }
        Ok(Self { budgets })
    }

    /// The unwrap/expect budget for a file (0 when unlisted).
    pub fn budget(&self, path: &str) -> usize {
        self.budgets.get(path).copied().unwrap_or(0)
    }

    /// All allowlisted paths (for stale-entry reporting).
    pub fn paths(&self) -> impl Iterator<Item = (&str, usize)> {
        self.budgets.iter().map(|(p, &c)| (p.as_str(), c))
    }

    /// Renders an allowlist file from per-file counts (used by `--bless`).
    pub fn render(counts: &BTreeMap<String, usize>) -> String {
        let mut out = String::from(
            "# unwrap/expect budget per file (non-test code), enforced by `cargo run -p amud-lint`.\n\
             # Ratchet DOWN only: fix call sites, then regenerate with `cargo run -p amud-lint -- --bless`.\n",
        );
        for (path, count) in counts {
            if *count > 0 {
                out.push_str(&format!("{path} {count}\n"));
            }
        }
        out
    }
}

/// What the scanner found in one file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    /// Rule 2–4 findings (rule 1 is resolved against the allowlist later).
    pub violations: Vec<Violation>,
    /// Non-test `.unwrap()` + `.expect(` call count (rule 1 input).
    pub unwrap_count: usize,
    /// Lines (1-based) of the unwrap/expect calls, for reporting overruns.
    pub unwrap_lines: Vec<usize>,
}

/// Returns the line with `//` comments removed and string-literal contents
/// blanked (the quotes stay), so tokens inside either never match a rule —
/// including in this linter's own source.
fn code_only(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\\' if in_str => i += 1, // skip the escaped byte
            b'"' => {
                in_str = !in_str;
                out.push('"');
            }
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            _ if !in_str => out.push(b as char),
            _ => {}
        }
        i += 1;
    }
    out
}

fn is_doc_or_attr(trimmed: &str) -> bool {
    trimmed.starts_with("///") || trimmed.starts_with("#[") || trimmed.starts_with("#!")
}

/// True when the trimmed line declares a `pub` item that needs a doc
/// comment (re-exports and restricted visibility are out of scope).
fn is_pub_item(trimmed: &str) -> bool {
    if !trimmed.starts_with("pub ") || trimmed.starts_with("pub use ") {
        return false;
    }
    let rest = &trimmed[4..];
    ["fn ", "struct ", "enum ", "trait ", "type ", "const ", "static ", "mod "]
        .iter()
        .any(|kw| rest.starts_with(kw))
}

/// Scans one file. `path` is the workspace-relative path (used both for
/// reporting and for selecting the rule set via [`rules_for`]).
pub fn lint_source(path: &str, source: &str) -> FileReport {
    let rules = rules_for(path);
    let mut report = FileReport::default();
    let lines: Vec<&str> = source.lines().collect();

    // Everything from the first `#[cfg(test)]` onward is test code by
    // workspace convention (test modules close the file).
    let code_end = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len());

    for (idx, raw) in lines[..code_end].iter().enumerate() {
        let line_no = idx + 1;
        let code = code_only(raw);
        let trimmed = code.trim_start();

        // Rule 1: unwrap/expect counting.
        let hits = code.matches(".unwrap()").count() + code.matches(".expect(").count();
        if hits > 0 {
            report.unwrap_count += hits;
            report.unwrap_lines.push(line_no);
        }

        // Rule 2: kernel panic ban.
        if rules.forbid_panic {
            for mac in ["panic!", "todo!", "unimplemented!"] {
                if code.contains(mac) {
                    report.violations.push(Violation {
                        file: path.to_string(),
                        line: line_no,
                        rule: RuleKind::PanicInKernel,
                        message: format!(
                            "`{mac}` in a kernel crate — return a Result or document the invariant with expect()"
                        ),
                    });
                }
            }
        }

        // Rule 5: raw thread-spawn ban.
        if rules.forbid_raw_threads {
            for token in ["thread::spawn", "thread::Builder"] {
                if code.contains(token) {
                    report.violations.push(Violation {
                        file: path.to_string(),
                        line: line_no,
                        rule: RuleKind::RawThreadSpawn,
                        message: format!(
                            "`{token}` outside amud-par — use the deterministic runtime \
                             (amud_par::run / par_row_blocks_mut) instead"
                        ),
                    });
                }
            }
        }

        // Rule 3: SAFETY comments. The comment may sit on the same line or
        // the line above (checked on the raw text, since it *is* a comment).
        if code.contains("unsafe") {
            let here = raw.contains("// SAFETY:");
            let above = idx > 0 && lines[idx - 1].trim_start().starts_with("// SAFETY:");
            if !here && !above {
                report.violations.push(Violation {
                    file: path.to_string(),
                    line: line_no,
                    rule: RuleKind::MissingSafetyComment,
                    message: "`unsafe` without a `// SAFETY:` comment on this or the previous line"
                        .into(),
                });
            }
        }

        // Rule 4: doc coverage.
        if rules.require_docs && is_pub_item(trimmed) {
            let mut j = idx;
            let mut documented = false;
            while j > 0 {
                let prev = lines[j - 1].trim_start();
                if prev.starts_with("///") {
                    documented = true;
                    break;
                }
                if is_doc_or_attr(prev) {
                    j -= 1; // skip attribute lines between doc and item
                    continue;
                }
                break;
            }
            if !documented {
                report.violations.push(Violation {
                    file: path.to_string(),
                    line: line_no,
                    rule: RuleKind::UndocumentedPublicItem,
                    message: format!(
                        "public item `{}` has no doc comment",
                        trimmed.split('{').next().unwrap_or(trimmed).trim()
                    ),
                });
            }
        }
    }
    report
}

/// Resolves rule 1 for one file against the allowlist: an overrun is a
/// violation; headroom is returned as a ratchet opportunity.
pub fn resolve_ratchet(
    path: &str,
    report: &FileReport,
    allow: &Allowlist,
) -> (Option<Violation>, Option<String>) {
    let budget = allow.budget(path);
    if report.unwrap_count > budget {
        let line = report.unwrap_lines.last().copied().unwrap_or(0);
        (
            Some(Violation {
                file: path.to_string(),
                line,
                rule: RuleKind::UnwrapRatchet,
                message: format!(
                    "{} unwrap/expect call(s) but the allowlist budget is {budget} — \
                     handle the error or move the budget with a justification",
                    report.unwrap_count
                ),
            }),
            None,
        )
    } else if report.unwrap_count < budget {
        (
            None,
            Some(format!(
                "{path}: {} unwrap/expect call(s) under a budget of {budget} — ratchet down \
                 (`cargo run -p amud-lint -- --bless`)",
                report.unwrap_count
            )),
        )
    } else {
        (None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL_PATH: &str = "crates/nn/src/fixture.rs";
    const CORE_PATH: &str = "crates/core/src/fixture.rs";
    const PLAIN_PATH: &str = "crates/train/src/fixture.rs";

    #[test]
    fn counts_unwrap_and_expect_outside_tests() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"reason\");\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn g() { z.unwrap(); }\n}\n";
        let report = lint_source(PLAIN_PATH, src);
        assert_eq!(report.unwrap_count, 2, "test-module unwrap must not count");
        assert_eq!(report.unwrap_lines, vec![2, 3]);
    }

    #[test]
    fn comments_and_strings_do_not_count_as_calls() {
        let src = "fn f() {\n    // don't .unwrap() here\n    let s = \"https://x\"; g();\n    let t = \"never .unwrap() or panic! in strings\";\n}\n";
        let report = lint_source(PLAIN_PATH, src);
        assert_eq!(report.unwrap_count, 0);
        assert!(lint_source(KERNEL_PATH, src).violations.is_empty());
    }

    #[test]
    fn ratchet_flags_overrun_and_reports_headroom() {
        let allow = Allowlist::parse(&format!("{PLAIN_PATH} 1\n")).unwrap();
        let over = lint_source(PLAIN_PATH, "fn f() { a.unwrap(); b.unwrap(); }\n");
        let (violation, note) = resolve_ratchet(PLAIN_PATH, &over, &allow);
        let v = violation.expect("overrun must fail");
        assert_eq!(v.rule, RuleKind::UnwrapRatchet);
        assert!(note.is_none());

        let under = lint_source(PLAIN_PATH, "fn f() {}\n");
        let (violation, note) = resolve_ratchet(PLAIN_PATH, &under, &allow);
        assert!(violation.is_none());
        assert!(note.expect("headroom must ask for a ratchet").contains("ratchet down"));
    }

    #[test]
    fn unlisted_file_has_zero_budget() {
        let allow = Allowlist::default();
        let report = lint_source(PLAIN_PATH, "fn f() { a.unwrap(); }\n");
        let (violation, _) = resolve_ratchet(PLAIN_PATH, &report, &allow);
        assert!(violation.is_some(), "a new unwrap in a clean file must fail");
    }

    #[test]
    fn panic_banned_only_in_kernel_crates() {
        let src = "fn f() {\n    panic!(\"boom\");\n}\n";
        let kernel = lint_source(KERNEL_PATH, src);
        assert_eq!(kernel.violations.len(), 1);
        assert_eq!(kernel.violations[0].rule, RuleKind::PanicInKernel);
        assert_eq!(kernel.violations[0].line, 2);

        let plain = lint_source(PLAIN_PATH, src);
        assert!(plain.violations.is_empty(), "panic rule is kernel-crate-only");
    }

    #[test]
    fn unreachable_with_message_is_allowed_in_kernels() {
        let src = "fn f() {\n    unreachable!(\"loop invariant\");\n}\n";
        assert!(lint_source(KERNEL_PATH, src).violations.is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let report = lint_source(PLAIN_PATH, bad);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, RuleKind::MissingSafetyComment);

        let good = "fn f() {\n    // SAFETY: guarded by the bounds check above\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert!(lint_source(PLAIN_PATH, good).violations.is_empty());
    }

    #[test]
    fn core_pub_items_need_docs() {
        let bad = "pub fn naked() {}\n";
        let report = lint_source(CORE_PATH, bad);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, RuleKind::UndocumentedPublicItem);

        let good = "/// Documented.\n#[derive(Debug)]\npub struct S;\n";
        assert!(lint_source(CORE_PATH, good).violations.is_empty());

        let other_crate = lint_source(PLAIN_PATH, bad);
        assert!(other_crate.violations.is_empty(), "doc rule is amud-core-only");
    }

    #[test]
    fn pub_use_and_restricted_visibility_are_exempt() {
        let src = "pub use crate::thing::Thing;\npub(crate) fn helper() {}\n";
        assert!(lint_source(CORE_PATH, src).violations.is_empty());
    }

    #[test]
    fn raw_thread_spawn_banned_outside_amud_par() {
        let spawn = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let report = lint_source(PLAIN_PATH, spawn);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, RuleKind::RawThreadSpawn);
        assert_eq!(report.violations[0].line, 2);

        let builder = "fn f() {\n    std::thread::Builder::new();\n}\n";
        assert_eq!(lint_source(KERNEL_PATH, builder).violations.len(), 1);

        // The runtime crate itself may spawn, and test modules are exempt.
        assert!(lint_source("crates/par/src/pool.rs", spawn).violations.is_empty());
        let in_tests =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}\n";
        assert!(lint_source(PLAIN_PATH, in_tests).violations.is_empty());
    }

    #[test]
    fn allowlist_round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert("a.rs".to_string(), 3);
        counts.insert("b.rs".to_string(), 0); // dropped: clean files stay unlisted
        let text = Allowlist::render(&counts);
        let allow = Allowlist::parse(&text).unwrap();
        assert_eq!(allow.budget("a.rs"), 3);
        assert_eq!(allow.budget("b.rs"), 0);
        assert!(Allowlist::parse("nonsense line\n").is_err());
    }
}
