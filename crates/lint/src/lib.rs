//! `amud-analyze` — token-level static analysis for the workspace
//! (std-only, no syn).
//!
//! The engine replaces the line-regex linter of PR 1 with a real pipeline
//! (DESIGN.md §11): [`tokenizer`] lexes each file into a faithful token
//! stream, [`index`] derives structural facts (brace-matched item spans,
//! `#[cfg(test)]` masks, `unsafe` sites, parallel-closure bodies, a
//! function index with one-level `let` dataflow), [`passes`] run the rules
//! over that index, and the results are resolved against a per-rule
//! [`Baseline`] so existing debt is budgeted while anything new fails CI.
//!
//! Rules (see [`passes`] for details):
//!
//! * `unwrap-ratchet` — budgeted `.unwrap()` / `.expect(…)` in library code
//! * `panic-in-kernel` — no `panic!`/`todo!`/`unimplemented!` in kernels
//! * `unsafe-contract` — structured `// SAFETY:` contracts with a real
//!   aliasing/disjointness argument; raw-pointer derivation confined to
//!   `crates/par`
//! * `undocumented-public-item` — doc comments on `pub` items in amud-core
//! * `raw-thread-spawn` — no `thread::spawn` outside amud-par
//! * `concurrency-discipline` — no sync-primitive construction outside
//!   `crates/par` / `crates/cache`
//! * `float-determinism` — no unordered f32 reductions inside `par_*`
//!   closures
//! * `cache-key-completeness` — every parameter of a store-consulting
//!   function flows into its cache key or is `KEY-EXEMPT`-justified
//!
//! On top of the per-file passes, [`symbols`] + [`callgraph`] fuse every
//! file into one workspace view, and [`workspace`] runs seven
//! interprocedural passes over it (DESIGN.md §12): `panic-reachability`,
//! `determinism-taint`, `par-disjointness`, `error-taxonomy`, and — riding
//! the value-level abstract-interpretation layer in [`dataflow`]
//! (DESIGN.md §16) — `index-bounds`, `shape-consistency`, and
//! `exit-code-registry`.

pub mod callgraph;
pub mod dataflow;
pub mod index;
pub mod passes;
pub mod report;
pub mod symbols;
pub mod tokenizer;
pub mod workspace;

pub use passes::{rules_for, FileRules, RuleKind, Severity, Violation};

use std::collections::{BTreeMap, BTreeSet};

/// Runs the full engine over one file: tokenize → index → passes.
/// `path` is the workspace-relative path (it selects the rule set).
///
/// Per-file rules only — for the interprocedural passes use
/// [`analyze_files`], which sees all files at once.
pub fn analyze_source(path: &str, source: &str) -> Vec<Violation> {
    let ix = index::FileIndex::new(tokenizer::tokenize(source));
    passes::run_passes(path, &ix)
}

/// Runs the full engine — per-file passes *and* the interprocedural
/// workspace passes — over a set of `(label, source)` pairs. This is what
/// the CLI runs over the workspace, and what the fixtures run over a
/// single file (a one-file workspace is still a workspace).
pub fn analyze_files(files: &[(String, String)]) -> Vec<Violation> {
    let indexed: Vec<(String, index::FileIndex)> = files
        .iter()
        .map(|(label, src)| (label.clone(), index::FileIndex::new(tokenizer::tokenize(src))))
        .collect();
    let mut out = Vec::new();
    for (label, ix) in &indexed {
        out.extend(passes::run_passes(label, ix));
    }
    out.extend(workspace::run_workspace_passes(&indexed));
    out
}

/// [`analyze_files`] with per-stage wall-clock instrumentation, feeding
/// the `--timings` summary column. The returned violations are identical
/// to the untimed run (the final [`resolve`] re-sorts), and the durations
/// never reach the JSON report — timings are human-output only, so the
/// byte-identical determinism contract on `analyze-report.json` holds.
pub fn analyze_files_timed(
    files: &[(String, String)],
) -> (Vec<Violation>, Vec<(String, std::time::Duration)>) {
    let mut timings = Vec::new();
    let t0 = std::time::Instant::now();
    let indexed: Vec<(String, index::FileIndex)> = files
        .iter()
        .map(|(label, src)| (label.clone(), index::FileIndex::new(tokenizer::tokenize(src))))
        .collect();
    timings.push(("tokenize+index".to_string(), t0.elapsed()));

    let mut out = Vec::new();
    for (name, pass) in passes::FILE_PASSES {
        let t = std::time::Instant::now();
        for (label, ix) in &indexed {
            pass(label, ix, &mut out);
        }
        timings.push((name.to_string(), t.elapsed()));
    }

    let t = std::time::Instant::now();
    let syms = symbols::SymbolTable::build(&indexed);
    let cg = callgraph::CallGraph::build(&indexed, &syms);
    timings.push(("symbols+callgraph".to_string(), t.elapsed()));

    for (name, pass) in workspace::WORKSPACE_PASSES {
        let t = std::time::Instant::now();
        pass(&indexed, &syms, &cg, &mut out);
        timings.push((name.to_string(), t.elapsed()));
    }
    (out, timings)
}

/// One baseline entry: a violation budget plus its written justification.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    pub budget: usize,
    pub note: Option<String>,
}

/// Per-(rule, file) violation budgets, parsed from `lint-allow.txt`.
///
/// Format, one entry per line:
///
/// ```text
/// <rule-id> <path> <count> [# justification]
/// ```
///
/// The budget is a ratchet: counts may only go down. `--bless` regenerates
/// the file from current counts, preserving justifications.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String), BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline file; `#`-lines and blank lines are comments.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (entry, note) = match line.split_once('#') {
                Some((e, n)) => {
                    let n = n.trim();
                    (e.trim(), if n.is_empty() { None } else { Some(n.to_string()) })
                }
                None => (line, None),
            };
            let parts: Vec<&str> = entry.split_whitespace().collect();
            let [rule, path, count] = parts.as_slice() else {
                return Err(format!(
                    "line {}: expected `<rule-id> <path> <count> [# justification]`",
                    i + 1
                ));
            };
            if RuleKind::from_name(rule).is_none() {
                return Err(format!("line {}: unknown rule id `{rule}`", i + 1));
            }
            let budget: usize =
                count.parse().map_err(|_| format!("line {}: `{count}` is not a count", i + 1))?;
            entries.insert((rule.to_string(), path.to_string()), BaselineEntry { budget, note });
        }
        Ok(Self { entries })
    }

    /// The budget entry for a (rule, file) pair, if any.
    pub fn entry(&self, rule: &str, path: &str) -> Option<&BaselineEntry> {
        self.entries.get(&(rule.to_string(), path.to_string()))
    }

    /// All entries, for stale reporting and `--bless` note preservation.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, &BaselineEntry)> {
        self.entries.iter().map(|((r, p), e)| (r.as_str(), p.as_str(), e))
    }

    /// Renders a baseline file from current per-(rule, file) counts,
    /// carrying over the justification of any entry that survives.
    pub fn render(counts: &BTreeMap<(String, String), usize>, old: &Baseline) -> String {
        let mut out = String::from(
            "# amud-analyze baseline: `<rule-id> <path> <count> [# justification]`.\n\
             # Budgets are a ratchet — counts may only go DOWN. Fix the finding, or keep the\n\
             # entry with a written justification. Regenerate with\n\
             # `cargo run -p amud-lint -- --bless` (justifications are preserved).\n",
        );
        for ((rule, path), n) in counts {
            if *n == 0 {
                continue;
            }
            out.push_str(&format!("{rule} {path} {n}"));
            if let Some(e) = old.entries.get(&(rule.clone(), path.clone())) {
                if let Some(note) = &e.note {
                    out.push_str(&format!(" # {note}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The outcome of resolving raw findings against the baseline.
#[derive(Debug, Default)]
pub struct Resolution {
    /// Violations in a (rule, file) group with no baseline entry — new
    /// debt. Exit code 1.
    pub fresh: Vec<Violation>,
    /// Violations in a group whose count exceeds a positive budget — the
    /// ratchet moved the wrong way. Exit code 3.
    pub regressions: Vec<Violation>,
    /// Suppressed (within-budget) counts per rule id.
    pub baselined: BTreeMap<String, usize>,
    /// Ratchet-down opportunities and stale baseline entries.
    pub notes: Vec<String>,
    /// Live per-(rule, file) counts, the input to `--bless`.
    pub counts: BTreeMap<(String, String), usize>,
}

/// Resolves raw findings against the baseline. `scanned` is the set of
/// file labels that were analyzed (to tell a fixed file from a deleted
/// one when reporting stale entries).
pub fn resolve(
    violations: Vec<Violation>,
    scanned: &BTreeSet<String>,
    baseline: &Baseline,
) -> Resolution {
    let mut groups: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
    for v in violations {
        groups.entry((v.rule.name().to_string(), v.file.clone())).or_default().push(v);
    }
    let mut res = Resolution::default();
    for ((rule, path), vs) in groups {
        let n = vs.len();
        res.counts.insert((rule.clone(), path.clone()), n);
        match baseline.entry(&rule, &path) {
            None => res.fresh.extend(vs),
            Some(e) if n > e.budget => {
                res.notes.push(format!(
                    "{path}: {n} {rule} finding(s) against a budget of {} — the ratchet only goes down",
                    e.budget
                ));
                res.regressions.extend(vs);
            }
            Some(e) => {
                *res.baselined.entry(rule.clone()).or_default() += n;
                if n < e.budget {
                    res.notes.push(format!(
                        "{path}: {n} {rule} finding(s) under a budget of {} — ratchet down \
                         (`cargo run -p amud-lint -- --bless`)",
                        e.budget
                    ));
                }
            }
        }
    }
    for (rule, path, e) in baseline.entries() {
        let key = (rule.to_string(), path.to_string());
        if res.counts.contains_key(&key) {
            continue;
        }
        if scanned.contains(path) {
            res.notes.push(format!(
                "{path}: {rule} budget {} but the file is now clean — ratchet down \
                 (`cargo run -p amud-lint -- --bless`)",
                e.budget
            ));
        } else {
            res.notes.push(format!(
                "{path}: baselined for {rule} ({}) but no longer scanned — remove the entry",
                e.budget
            ));
        }
    }
    let order = |v: &Violation| (v.file.clone(), v.line, v.col, v.rule);
    res.fresh.sort_by_key(order);
    res.regressions.sort_by_key(order);
    res.notes.sort();
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL_PATH: &str = "crates/nn/src/fixture.rs";
    const CORE_PATH: &str = "crates/core/src/fixture.rs";
    const PLAIN_PATH: &str = "crates/train/src/fixture.rs";

    fn by_rule(vs: &[Violation], rule: RuleKind) -> Vec<&Violation> {
        vs.iter().filter(|v| v.rule == rule).collect()
    }

    fn resolve_all(path: &str, src: &str, baseline: &Baseline) -> Resolution {
        let scanned: BTreeSet<String> = [path.to_string()].into();
        resolve(analyze_source(path, src), &scanned, baseline)
    }

    #[test]
    fn counts_unwrap_and_expect_outside_tests() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"reason\");\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn g() { z.unwrap(); }\n}\n";
        let vs = analyze_source(PLAIN_PATH, src);
        let unwraps = by_rule(&vs, RuleKind::UnwrapRatchet);
        assert_eq!(unwraps.len(), 2, "test-module unwrap must not count");
        assert_eq!((unwraps[0].line, unwraps[1].line), (2, 3));
    }

    #[test]
    fn comments_and_strings_do_not_count_as_calls() {
        let src = "fn f() {\n    // don't .unwrap() here\n    let s = \"https://x\"; g();\n    let t = \"never .unwrap() or panic! in strings\";\n}\n";
        assert!(analyze_source(PLAIN_PATH, src).is_empty());
        assert!(analyze_source(KERNEL_PATH, src).is_empty());
    }

    #[test]
    fn ratchet_classifies_overrun_headroom_and_fresh() {
        let two = "fn f() { a.unwrap(); b.unwrap(); }\n";
        let baseline =
            Baseline::parse(&format!("unwrap-ratchet {PLAIN_PATH} 1 # legacy\n")).unwrap();
        let res = resolve_all(PLAIN_PATH, two, &baseline);
        assert!(res.fresh.is_empty());
        assert_eq!(res.regressions.len(), 2, "overrun of a budgeted file is a regression");

        let baseline3 =
            Baseline::parse(&format!("unwrap-ratchet {PLAIN_PATH} 3 # legacy\n")).unwrap();
        let res = resolve_all(PLAIN_PATH, two, &baseline3);
        assert!(res.fresh.is_empty() && res.regressions.is_empty());
        assert_eq!(res.baselined["unwrap-ratchet"], 2);
        assert!(res.notes.iter().any(|n| n.contains("ratchet down")));

        let res = resolve_all(PLAIN_PATH, two, &Baseline::default());
        assert_eq!(res.fresh.len(), 2, "an unlisted file has zero budget");
    }

    #[test]
    fn clean_budgeted_file_asks_for_ratchet_and_missing_file_is_stale() {
        let baseline =
            Baseline::parse(&format!("unwrap-ratchet {PLAIN_PATH} 2\nunwrap-ratchet gone.rs 1\n"))
                .unwrap();
        let res = resolve_all(PLAIN_PATH, "fn f() {}\n", &baseline);
        assert!(res.notes.iter().any(|n| n.contains("now clean")));
        assert!(res.notes.iter().any(|n| n.contains("no longer scanned")));
    }

    #[test]
    fn panic_banned_only_in_kernel_crates() {
        let src = "fn f() {\n    panic!(\"boom\");\n}\n";
        let vs = analyze_source(KERNEL_PATH, src);
        assert_eq!(by_rule(&vs, RuleKind::PanicInKernel).len(), 1);
        assert_eq!(vs[0].line, 2);
        assert!(analyze_source(PLAIN_PATH, src).is_empty(), "panic rule is kernel-crate-only");
    }

    #[test]
    fn unreachable_with_message_is_allowed_in_kernels() {
        let src = "fn f() {\n    unreachable!(\"loop invariant\");\n}\n";
        assert!(analyze_source(KERNEL_PATH, src).is_empty());
    }

    #[test]
    fn unsafe_requires_substantive_contract() {
        let bare = "fn f(p: *mut f32) {\n    unsafe { p.write(0.0) }\n}\n";
        let vs = analyze_source(PLAIN_PATH, bare);
        assert_eq!(by_rule(&vs, RuleKind::UnsafeContract).len(), 1);

        let placeholder =
            "fn f(p: *mut f32) {\n    // SAFETY: fine\n    unsafe { p.write(0.0) }\n}\n";
        let vs = analyze_source(PLAIN_PATH, placeholder);
        assert_eq!(by_rule(&vs, RuleKind::UnsafeContract).len(), 1, "placeholder must not pass");

        let good = "fn f(p: *mut f32) {\n    // SAFETY: p is valid and exclusively borrowed by this call;\n    // no other alias of p exists while the write runs.\n    unsafe { p.write(0.0) }\n}\n";
        assert!(analyze_source(PLAIN_PATH, good).is_empty());
    }

    #[test]
    fn core_pub_items_need_docs() {
        let bad = "pub fn naked() {}\n";
        let vs = analyze_source(CORE_PATH, bad);
        assert_eq!(by_rule(&vs, RuleKind::UndocumentedPublicItem).len(), 1);

        let good = "/// Documented.\n#[derive(Debug)]\npub struct S;\n";
        assert!(analyze_source(CORE_PATH, good).is_empty());
        assert!(analyze_source(PLAIN_PATH, bad).is_empty(), "doc rule is amud-core-only");
    }

    #[test]
    fn pub_use_and_restricted_visibility_are_exempt() {
        let src = "pub use crate::thing::Thing;\npub(crate) fn helper() {}\n";
        assert!(analyze_source(CORE_PATH, src).is_empty());
    }

    #[test]
    fn raw_thread_spawn_banned_outside_amud_par() {
        let spawn = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        let vs = analyze_source(PLAIN_PATH, spawn);
        assert_eq!(by_rule(&vs, RuleKind::RawThreadSpawn).len(), 1);
        assert_eq!(vs[0].line, 2);

        // The runtime crate itself may spawn, and test modules are exempt.
        assert!(analyze_source("crates/par/src/pool.rs", spawn).is_empty());
        let in_tests =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}\n";
        assert!(analyze_source(PLAIN_PATH, in_tests).is_empty());
    }

    #[test]
    fn baseline_round_trips_with_justifications() {
        let old = Baseline::parse(
            "unwrap-ratchet a.rs 3 # legacy IO path\nconcurrency-discipline b.rs 1 # perf counter\n",
        )
        .unwrap();
        let mut counts = BTreeMap::new();
        counts.insert(("unwrap-ratchet".to_string(), "a.rs".to_string()), 2);
        counts.insert(("concurrency-discipline".to_string(), "b.rs".to_string()), 1);
        counts.insert(("unwrap-ratchet".to_string(), "clean.rs".to_string()), 0);
        let text = Baseline::render(&counts, &old);
        let reparsed = Baseline::parse(&text).unwrap();
        let e = reparsed.entry("unwrap-ratchet", "a.rs").expect("entry kept");
        assert_eq!(e.budget, 2, "bless writes the current (lower) count");
        assert_eq!(e.note.as_deref(), Some("legacy IO path"), "justification preserved");
        assert!(reparsed.entry("unwrap-ratchet", "clean.rs").is_none(), "clean files unlisted");

        assert!(Baseline::parse("nonsense line\n").is_err());
        assert!(Baseline::parse("not-a-rule a.rs 1\n").is_err(), "rule ids are validated");
    }
}
