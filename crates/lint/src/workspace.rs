//! Workspace-level interprocedural passes, built on [`crate::symbols`] +
//! [`crate::callgraph`].
//!
//! Where the per-file passes in [`crate::passes`] see one token stream at
//! a time, these four see the whole workspace at once:
//!
//! * `panic-reachability` — no panicking function (`.unwrap()` /
//!   `.expect(…)` / `panic!` / `todo!` / `unimplemented!`, discovered
//!   transitively over the call graph) may be reachable from a kernel hot
//!   path: a `crates/nn` / `crates/graph` function that enters the
//!   parallel runtime (`par_*`). `unreachable!` with a proof stays the
//!   sanctioned escape hatch, exactly as in `panic-in-kernel`.
//! * `determinism-taint` — values originating from `std::env`, wall-clock
//!   time, or ambient RNG state must not flow — through `let` bindings
//!   and call arguments, interprocedurally — into cache keys
//!   (`*_store(…).get(key)`), ordered-fold inputs (`ordered_sum` /
//!   `ordered_dot`), or tensor contents (`from_vec` / `from_fn` / `set`
//!   data arguments). The shape-pure thread-budget accessors of
//!   `amud-par` (`max_threads` and friends) are exempt: the proptested
//!   determinism contract guarantees thread count never changes output
//!   values. A `// TAINT-PURE(name): reason` comment inside a function
//!   body is the audited escape hatch (the sibling of `KEY-EXEMPT` /
//!   `DISJOINT:`): it declares a local — or, naming the function itself,
//!   its return value — run-pure despite its env-derived provenance, for
//!   the sanctioned patterns the lexical engine cannot see through
//!   (an env var selecting among fixed presets, a user-facing knob that
//!   only bounds a loop).
//! * `par-disjointness` — every `par_row_blocks_mut` call outside the
//!   runtime itself must derive its block ranges from `split_even` /
//!   `split_by_weight` (directly, through a `*_parts` helper that
//!   bottoms out in one, or through `let` bindings), or the enclosing
//!   function must carry a substantive `// DISJOINT:` proof comment.
//!   `par_zip_assign` / `par_chunks_mut` partition internally, so they
//!   are validated once, at their definitions.
//! * `error-taxonomy` — public fallible functions in `crates/train` and
//!   `crates/datasets` must return the typed error enums, not
//!   `String` / `Box` payloads.
//!
//! All analysis is lexical and over-approximate in the same way the
//! symbol table is: a call resolves to every workspace function with
//! that bare name. For safety checks that is the right polarity — a
//! spurious same-name edge can cost a justified baseline entry, a missed
//! real edge would cost a silent non-deterministic kernel.

use crate::callgraph::CallGraph;
use crate::index::{match_delim, next_code, prev_code, FileIndex};
use crate::passes::{RuleKind, Severity, Violation};
use crate::symbols::SymbolTable;
use crate::tokenizer::TokKind;
use std::collections::BTreeSet;
use std::ops::Range;

/// A workspace pass entry point over the indexed files, symbol table and
/// call graph.
pub(crate) type WsPass = fn(&[(String, FileIndex)], &SymbolTable, &CallGraph, &mut Vec<Violation>);

/// The interprocedural passes in dispatch order, labelled by the rule
/// they enforce (the label feeds the `--timings` column). The last three
/// ride on the value-level abstract domain in [`crate::dataflow`].
pub(crate) const WORKSPACE_PASSES: &[(&str, WsPass)] = &[
    ("panic-reachability", pass_panic_reachability),
    ("determinism-taint", pass_determinism_taint),
    ("par-disjointness", pass_par_disjointness),
    ("error-taxonomy", pass_error_taxonomy),
    ("index-bounds", crate::dataflow::pass_index_bounds),
    ("shape-consistency", crate::dataflow::pass_shape_consistency),
    ("exit-code-registry", crate::dataflow::pass_exit_code_registry),
];

/// Runs all seven interprocedural passes over the indexed workspace.
pub fn run_workspace_passes(files: &[(String, FileIndex)]) -> Vec<Violation> {
    let syms = SymbolTable::build(files);
    let cg = CallGraph::build(files, &syms);
    let mut out = Vec::new();
    for (_, pass) in WORKSPACE_PASSES {
        pass(files, &syms, &cg, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    out
}

fn violation(
    label: &str,
    ix: &FileIndex,
    at: usize,
    rule: RuleKind,
    message: String,
    suggestion: &str,
) -> Violation {
    Violation {
        file: label.to_string(),
        line: ix.toks[at].line,
        col: ix.toks[at].col,
        rule,
        severity: Severity::Error,
        message,
        suggestion: Some(suggestion.to_string()),
    }
}

/// Top-level comma-split argument ranges of the call whose callee
/// identifier is at `at`. Closure arguments may split at their parameter
/// commas — harmless for taint (the union covers the same tokens).
pub(crate) fn call_args(ix: &FileIndex, at: usize) -> Option<Vec<Range<usize>>> {
    let open = next_code(&ix.toks, at + 1)?;
    if !ix.toks[open].is_punct("(") {
        return None;
    }
    let close = match_delim(&ix.toks, open)?;
    let mut args = Vec::new();
    let mut depth = 0isize;
    let mut start = open + 1;
    for j in open + 1..close {
        let t = &ix.toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    args.push(start..j);
                    start = j + 1;
                }
                _ => {}
            }
        }
    }
    if start < close {
        args.push(start..close);
    }
    Some(args)
}

/// `let <name> = <init>;` bindings inside `body` with the initialiser's
/// token range (the range-carrying sibling of `FileIndex::let_bindings`).
pub(crate) fn binding_inits(ix: &FileIndex, body: &Range<usize>) -> Vec<(String, Range<usize>)> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if ix.is_live(i) && ix.toks[i].is_ident("let") {
            let Some(mut j) = next_code(&ix.toks, i + 1) else { break };
            if ix.toks[j].is_ident("mut") {
                match next_code(&ix.toks, j + 1) {
                    Some(n) => j = n,
                    None => break,
                }
            }
            if ix.toks[j].kind == TokKind::Ident {
                let name = ix.toks[j].text.clone();
                let mut k = j + 1;
                while k < body.end && !ix.toks[k].is_punct("=") && !ix.toks[k].is_punct(";") {
                    k += 1;
                }
                if k < body.end && ix.toks[k].is_punct("=") {
                    let mut depth = 0isize;
                    let mut m = k + 1;
                    while m < body.end {
                        let t = &ix.toks[m];
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                ";" if depth <= 0 => break,
                                _ => {}
                            }
                        }
                        m += 1;
                    }
                    out.push((name, k + 1..m));
                    i = m;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Whether any live identifier in `range` satisfies `pred`.
fn range_mentions(ix: &FileIndex, range: &Range<usize>, pred: impl Fn(&str) -> bool) -> bool {
    range
        .clone()
        .any(|i| ix.is_live(i) && ix.toks[i].kind == TokKind::Ident && pred(&ix.toks[i].text))
}

// ---------------------------------------------------------------------
// panic-reachability
// ---------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Panic sources inside `body`: `.unwrap()` / `.expect(…)` calls and the
/// banned macros. `unreachable!` is exempt (a proof-carrying invariant).
fn panic_sites(ix: &FileIndex, body: &Range<usize>) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for i in body.clone() {
        if !ix.is_live(i) {
            continue;
        }
        let t = &ix.toks[i];
        if t.is_punct(".") {
            if let Some(name) = next_code(&ix.toks, i + 1) {
                if (ix.toks[name].is_ident("unwrap") || ix.toks[name].is_ident("expect"))
                    && next_code(&ix.toks, name + 1).is_some_and(|p| ix.toks[p].is_punct("("))
                {
                    out.push((name, format!(".{}(…)", ix.toks[name].text)));
                }
            }
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && next_code(&ix.toks, i + 1).is_some_and(|j| ix.toks[j].is_punct("!"))
        {
            out.push((i, format!("{}!", t.text)));
        }
    }
    out
}

fn pass_panic_reachability(
    files: &[(String, FileIndex)],
    syms: &SymbolTable,
    cg: &CallGraph,
    out: &mut Vec<Violation>,
) {
    // Hot-path roots: nn/graph functions that enter the parallel runtime.
    let roots: Vec<usize> = syms
        .symbols
        .iter()
        .filter(|s| {
            (s.label.starts_with("crates/nn/src/") || s.label.starts_with("crates/graph/src/"))
                && cg.sites[s.id].iter().any(|c| c.callee.starts_with("par_"))
        })
        .map(|s| s.id)
        .collect();
    let reach = cg.reachable_from(&roots);
    for s in &syms.symbols {
        if !reach.visited[s.id] {
            continue;
        }
        let ix = &files[s.file].1;
        for (at, what) in panic_sites(ix, &s.body) {
            let path = reach.path_to(s.id, syms).join(" → ");
            out.push(violation(
                &s.label,
                ix,
                at,
                RuleKind::PanicReachability,
                format!("`{what}` in `{}` is reachable from a kernel hot path via {path}", s.name),
                "make the callee infallible (let-else + unreachable! with a proof) or surface a Result before entering the parallel region",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// determinism-taint
// ---------------------------------------------------------------------

/// Thread-budget accessors whose returns are shape-pure by the proptested
/// determinism contract: thread count never changes output values, so
/// their env-derived results do not count as taint.
const SHAPE_PURE: &[&str] = &[
    "max_threads",
    "current_threads",
    "default_threads",
    "with_threads",
    "split_even",
    "split_by_weight",
];

/// Ordered-fold sinks: any tainted argument is a violation.
const ORDERED_SINKS: &[&str] = &["ordered_sum", "ordered_dot"];

/// Tensor-content sinks: taint in the *data* arguments (index ≥ 2 of
/// `from_vec(rows, cols, data)` / `from_fn(rows, cols, f)` /
/// `set(r, c, v)`) is a violation; shape arguments are not contents.
const TENSOR_SINKS: &[&str] = &["from_vec", "from_fn", "set"];

/// Classifies token `i` as a non-determinism source, if it is one.
fn source_kind(ix: &FileIndex, i: usize) -> Option<&'static str> {
    let t = &ix.toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let qualifier = |i: usize| {
        prev_code(&ix.toks, i)
            .filter(|&j| ix.toks[j].is_punct("::"))
            .and_then(|j| prev_code(&ix.toks, j))
    };
    match t.text.as_str() {
        "var" | "var_os" => {
            qualifier(i).filter(|&j| ix.toks[j].is_ident("env")).map(|_| "std::env")
        }
        "now" => qualifier(i)
            .filter(|&j| ix.toks[j].is_ident("Instant") || ix.toks[j].is_ident("SystemTime"))
            .map(|_| "the wall clock"),
        "thread_rng" | "from_entropy" => Some("ambient RNG state"),
        _ => None,
    }
}

/// Per-function facts the taint fixpoint consumes.
struct TaintFacts {
    /// Token indices of non-determinism sources in the body.
    sources: BTreeSet<usize>,
    /// `let` bindings with initialiser ranges.
    bindings: Vec<(String, Range<usize>)>,
    /// Call sites with argument ranges and their qualifier-filtered
    /// resolved targets.
    calls: Vec<CallFacts>,
    /// Resolved targets per call-site token index, for taint lookups on
    /// arbitrary sub-ranges of the body.
    call_targets: std::collections::BTreeMap<usize, Vec<usize>>,
    /// Ranges whose taint makes the function's return tainted: explicit
    /// `return` expressions plus the final statement/tail expression.
    returns: Vec<Range<usize>>,
    /// Names declared run-pure by `// TAINT-PURE(name): reason` comments
    /// in the body (with a substantive reason).
    pure_names: BTreeSet<String>,
}

/// One call site inside a function body, as the taint pass sees it.
struct CallFacts {
    /// Callee name at the site.
    callee: String,
    /// Token index of the callee identifier.
    at: usize,
    /// Token range of each argument.
    args: Vec<Range<usize>>,
    /// Qualifier-filtered resolution targets (symbol ids).
    targets: Vec<usize>,
}

/// `// TAINT-PURE(name): reason` exemptions inside `body` — the reason
/// must be substantive (≥ 10 chars) for the exemption to count.
fn taint_pure_names(ix: &FileIndex, body: &Range<usize>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for j in body.clone() {
        let t = &ix.toks[j];
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let mut rest = t.text.as_str();
        while let Some(pos) = rest.find("TAINT-PURE(") {
            rest = &rest[pos + "TAINT-PURE(".len()..];
            if let Some(end) = rest.find(')') {
                let name = rest[..end].trim();
                let after = rest[end + 1..].trim_start();
                if after.starts_with(':') && after[1..].trim().len() >= 10 {
                    out.insert(name.to_string());
                }
            }
        }
    }
    out
}

/// Explicit `return` expression ranges plus the body's final top-level
/// statement (the lexical stand-in for the tail expression).
fn return_ranges(ix: &FileIndex, body: &Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    if body.end <= body.start + 2 {
        return out;
    }
    let inner = body.start + 1..body.end - 1;
    let mut depth = 0isize;
    let mut seg_start = inner.start;
    let mut last_seg: Option<Range<usize>> = None;
    for i in inner.clone() {
        let t = &ix.toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        last_seg = Some(seg_start..i + 1);
                        seg_start = i + 1;
                    }
                }
                ";" if depth == 0 => {
                    last_seg = Some(seg_start..i);
                    seg_start = i + 1;
                }
                _ => {}
            }
        } else if ix.is_live(i) && t.is_ident("return") {
            let mut d = 0isize;
            let mut j = i + 1;
            while j < body.end {
                let u = &ix.toks[j];
                if u.kind == TokKind::Punct {
                    match u.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                        }
                        ";" if d == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            out.push(i + 1..j);
        }
    }
    let tail = seg_start..inner.end;
    if tail.is_empty() {
        // Body ends exactly at a statement boundary; the final statement
        // (e.g. a trailing if/match used as the tail) is the best lexical
        // stand-in for the return expression.
        if let Some(seg) = last_seg {
            out.push(seg);
        }
    } else {
        out.push(tail);
    }
    out
}

/// Any taint inside `range`: a source token, a tainted local, or a call
/// to a taint-returning workspace function.
fn range_tainted(
    ix: &FileIndex,
    range: &Range<usize>,
    tainted: &BTreeSet<String>,
    facts: &TaintFacts,
    syms: &SymbolTable,
    returns_taint: &[bool],
) -> bool {
    for i in range.clone() {
        if !ix.is_live(i) {
            continue;
        }
        if facts.sources.contains(&i) {
            return true;
        }
        let t = &ix.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if tainted.contains(&t.text) {
            return true;
        }
        // A call to a taint-returning workspace function. Per-site
        // resolution (qualifier-filtered) keeps `Vec::new()` from
        // aliasing every workspace `new`; bare-name resolution is only
        // the fallback for idents the call graph did not register.
        if !SHAPE_PURE.contains(&t.text.as_str())
            && next_code(&ix.toks, i + 1).is_some_and(|j| ix.toks[j].is_punct("("))
        {
            let via_site = match facts.call_targets.get(&i) {
                Some(targets) => targets.iter().any(|&id| returns_taint[id]),
                None => syms.resolve(&t.text).iter().any(|&id| returns_taint[id]),
            };
            if via_site {
                return true;
            }
        }
    }
    false
}

/// Locals tainted inside one function, given its tainted parameters —
/// the binding-level fixpoint.
fn local_taint(
    ix: &FileIndex,
    params: &[String],
    tainted_params: &BTreeSet<usize>,
    facts: &TaintFacts,
    syms: &SymbolTable,
    returns_taint: &[bool],
) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = tainted_params
        .iter()
        .filter_map(|&k| params.get(k).cloned())
        .filter(|name| !facts.pure_names.contains(name))
        .collect();
    loop {
        let mut grew = false;
        for (name, init) in &facts.bindings {
            if !tainted.contains(name)
                && !facts.pure_names.contains(name)
                && range_tainted(ix, init, &tainted, facts, syms, returns_taint)
            {
                tainted.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    tainted
}

fn pass_determinism_taint(
    files: &[(String, FileIndex)],
    syms: &SymbolTable,
    cg: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let facts: Vec<TaintFacts> = syms
        .symbols
        .iter()
        .map(|s| {
            let ix = &files[s.file].1;
            let sources =
                s.body.clone().filter(|&i| ix.is_live(i) && source_kind(ix, i).is_some()).collect();
            let calls: Vec<CallFacts> = cg.sites[s.id]
                .iter()
                .filter_map(|c| {
                    call_args(ix, c.at).map(|args| CallFacts {
                        callee: c.callee.clone(),
                        at: c.at,
                        args,
                        targets: c.targets.clone(),
                    })
                })
                .collect();
            let call_targets = calls.iter().map(|c| (c.at, c.targets.clone())).collect();
            TaintFacts {
                sources,
                bindings: binding_inits(ix, &s.body),
                calls,
                call_targets,
                returns: return_ranges(ix, &s.body),
                pure_names: taint_pure_names(ix, &s.body),
            }
        })
        .collect();

    // Summary fixpoint: which params carry taint in, which returns carry
    // taint out. Monotone over finite sets, so it terminates.
    let mut param_taint: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); syms.len()];
    let mut returns_taint = vec![false; syms.len()];
    loop {
        let mut changed = false;
        for s in &syms.symbols {
            let ix = &files[s.file].1;
            let tainted =
                local_taint(ix, &s.params, &param_taint[s.id], &facts[s.id], syms, &returns_taint);
            if !returns_taint[s.id]
                && !SHAPE_PURE.contains(&s.name.as_str())
                && !facts[s.id].pure_names.contains(&s.name)
                && facts[s.id]
                    .returns
                    .iter()
                    .any(|r| range_tainted(ix, r, &tainted, &facts[s.id], syms, &returns_taint))
            {
                returns_taint[s.id] = true;
                changed = true;
            }
            for call in &facts[s.id].calls {
                if SHAPE_PURE.contains(&call.callee.as_str()) {
                    continue;
                }
                for (k, arg) in call.args.iter().enumerate() {
                    if !range_tainted(ix, arg, &tainted, &facts[s.id], syms, &returns_taint) {
                        continue;
                    }
                    for &t in &call.targets {
                        if k < syms.get(t).params.len() && param_taint[t].insert(k) {
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    if std::env::var("LINT_DEBUG_TAINT").is_ok() {
        for s in &syms.symbols {
            if returns_taint[s.id] {
                eprintln!("RET-TAINT {} {}", s.label, s.name);
            }
            if !param_taint[s.id].is_empty() {
                eprintln!("PARAM-TAINT {} {} {:?}", s.label, s.name, param_taint[s.id]);
            }
        }
    }
    // Sink scan with the converged summaries.
    for s in &syms.symbols {
        let ix = &files[s.file].1;
        let tainted =
            local_taint(ix, &s.params, &param_taint[s.id], &facts[s.id], syms, &returns_taint);
        let is_tainted =
            |r: &Range<usize>| range_tainted(ix, r, &tainted, &facts[s.id], syms, &returns_taint);
        for call in &facts[s.id].calls {
            let (callee, at, args) = (&call.callee, call.at, &call.args);
            if ORDERED_SINKS.contains(&callee.as_str()) && args.iter().any(&is_tainted) {
                out.push(violation(
                    &s.label,
                    ix,
                    at,
                    RuleKind::DeterminismTaint,
                    format!(
                        "env/time/RNG-derived value flows into the ordered fold `{callee}` in `{}`",
                        s.name
                    ),
                    "ordered folds must see run-independent inputs — derive the value from data, config literals, or a seeded RNG",
                ));
            }
            if TENSOR_SINKS.contains(&callee.as_str())
                && args.len() >= 3
                && args[2..].iter().any(&is_tainted)
            {
                out.push(violation(
                    &s.label,
                    ix,
                    at,
                    RuleKind::DeterminismTaint,
                    format!(
                        "env/time/RNG-derived value flows into tensor contents via `{callee}` in `{}`",
                        s.name
                    ),
                    "tensor contents must be reproducible — thread the value through a seeded RNG or config instead",
                ));
            }
        }
        // Cache-key sink: `*_store(…).get(key)` with taint in the key.
        let mut i = s.body.start;
        while i < s.body.end {
            let is_store = ix.is_live(i)
                && ix.toks[i].kind == TokKind::Ident
                && ix.toks[i].text.ends_with("_store");
            if is_store {
                if let Some(close) = next_code(&ix.toks, i + 1)
                    .filter(|&j| ix.toks[j].is_punct("("))
                    .and_then(|j| match_delim(&ix.toks, j))
                {
                    let get_i = next_code(&ix.toks, close + 1)
                        .filter(|&j| ix.toks[j].is_punct("."))
                        .and_then(|j| next_code(&ix.toks, j + 1))
                        .filter(|&j| ix.toks[j].is_ident("get"));
                    if let Some(get_i) = get_i {
                        if let Some(arg_close) = next_code(&ix.toks, get_i + 1)
                            .filter(|&j| ix.toks[j].is_punct("("))
                            .and_then(|j| match_delim(&ix.toks, j))
                        {
                            if is_tainted(&(get_i + 2..arg_close)) {
                                out.push(violation(
                                    &s.label,
                                    ix,
                                    get_i,
                                    RuleKind::DeterminismTaint,
                                    format!(
                                        "env/time/RNG-derived value flows into a cache key in `{}`",
                                        s.name
                                    ),
                                    "cache keys must be pure content fingerprints — a run-dependent key silently forks the cache",
                                ));
                            }
                            i = arg_close + 1;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------
// par-disjointness
// ---------------------------------------------------------------------

/// Minimum substance (chars after the colon) of a `// DISJOINT:` proof.
const MIN_DISJOINT_PROOF: usize = 20;

fn pass_par_disjointness(
    files: &[(String, FileIndex)],
    syms: &SymbolTable,
    cg: &CallGraph,
    out: &mut Vec<Violation>,
) {
    // Provider fixpoint: the two partition functions, plus any `*_parts`
    // helper that bottoms out in a provider.
    let mut providers: BTreeSet<String> =
        ["split_even", "split_by_weight"].iter().map(|s| s.to_string()).collect();
    loop {
        let mut grew = false;
        for s in &syms.symbols {
            if providers.contains(&s.name) || !s.name.ends_with("_parts") {
                continue;
            }
            // Name-based, not resolution-based: the base providers live in
            // `crates/par`, which explicit-file runs may not include.
            if cg.sites[s.id].iter().any(|c| providers.contains(&c.callee)) {
                providers.insert(s.name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    for s in &syms.symbols {
        if s.label.starts_with("crates/par/src/") {
            continue; // the runtime's own plumbing (validated by its tests)
        }
        let ix = &files[s.file].1;
        let mut checked_bindings: Option<BTreeSet<String>> = None;
        for site in cg.sites[s.id].iter().filter(|c| c.callee == "par_row_blocks_mut") {
            let Some(args) = call_args(ix, site.at) else { continue };
            // Lazily compute which locals trace back to a provider.
            let provider_locals = checked_bindings.get_or_insert_with(|| {
                let bindings = binding_inits(ix, &s.body);
                let mut locals: BTreeSet<String> = BTreeSet::new();
                loop {
                    let mut grew = false;
                    for (name, init) in &bindings {
                        if !locals.contains(name)
                            && range_mentions(ix, init, |t| {
                                providers.contains(t) || locals.contains(t)
                            })
                        {
                            locals.insert(name.clone());
                            grew = true;
                        }
                    }
                    if !grew {
                        break;
                    }
                }
                locals
            });
            let derived = args.get(2).is_some_and(|arg| {
                range_mentions(ix, arg, |t| providers.contains(t) || provider_locals.contains(t))
            });
            if derived {
                continue;
            }
            let proof = s.body.clone().any(|j| {
                let t = &ix.toks[j];
                matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                    && t.text.find("DISJOINT:").is_some_and(|p| {
                        t.text[p + "DISJOINT:".len()..].trim().len() >= MIN_DISJOINT_PROOF
                    })
            });
            if !proof {
                out.push(violation(
                    &s.label,
                    ix,
                    site.at,
                    RuleKind::ParDisjointness,
                    format!(
                        "`par_row_blocks_mut` in `{}` takes block ranges with no provenance from split_even/split_by_weight",
                        s.name
                    ),
                    "derive the ranges from a partition provider, or add a `// DISJOINT: …` comment proving the ranges tile without overlap",
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// error-taxonomy
// ---------------------------------------------------------------------

/// Crates whose public API must use the typed error enums.
const TAXONOMY_PATHS: &[&str] = &["crates/train/src/", "crates/datasets/src/", "crates/serve/src/"];

fn pass_error_taxonomy(
    files: &[(String, FileIndex)],
    syms: &SymbolTable,
    _cg: &CallGraph,
    out: &mut Vec<Violation>,
) {
    for s in &syms.symbols {
        if !TAXONOMY_PATHS.iter().any(|p| s.label.starts_with(p)) {
            continue;
        }
        let ix = &files[s.file].1;
        // `pub fn` only (not `pub(crate)`): walk back from the `fn`
        // keyword over the permitted modifiers.
        let k = s.at;
        let mut is_pub = false;
        let mut p = k;
        let mut hops = 0;
        while hops < 4 {
            let Some(prev) = prev_code(&ix.toks, p) else { break };
            let t = &ix.toks[prev];
            if t.is_ident("pub") {
                is_pub = !next_code(&ix.toks, prev + 1).is_some_and(|n| ix.toks[n].is_punct("("));
                break;
            }
            if matches!(t.text.as_str(), "unsafe" | "const" | "async" | "extern")
                || t.kind == TokKind::StrLit
            {
                p = prev;
                hops += 1;
                continue;
            }
            break;
        }
        if !is_pub {
            continue;
        }
        // Return type tokens: between `->` and the body brace (stopping at
        // a `where` clause).
        let mut saw_arrow = false;
        let mut ret: Vec<&str> = Vec::new();
        for i in k..s.body.start {
            let t = &ix.toks[i];
            if !t.is_code() {
                continue;
            }
            if t.is_punct("->") {
                saw_arrow = true;
                continue;
            }
            if t.is_ident("where") {
                break;
            }
            if saw_arrow && t.kind == TokKind::Ident {
                ret.push(t.text.as_str());
            }
        }
        if !ret.contains(&"Result") {
            continue;
        }
        if let Some(bad) = ["String", "Box"].iter().find(|b| ret.contains(*b)) {
            out.push(violation(
                &s.label,
                ix,
                k,
                RuleKind::ErrorTaxonomy,
                format!(
                    "public fallible fn `{}` returns `{bad}`-flavoured errors instead of a typed error enum",
                    s.name
                ),
                "return the crate's typed error (DatasetError / TrainError) so callers can match on failure classes",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn analyze(files: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<(String, FileIndex)> = files
            .iter()
            .map(|(label, src)| (label.to_string(), FileIndex::new(tokenize(src))))
            .collect();
        run_workspace_passes(&files)
    }

    fn by_rule(vs: &[Violation], rule: RuleKind) -> Vec<&Violation> {
        vs.iter().filter(|v| v.rule == rule).collect()
    }

    #[test]
    fn panic_reachability_follows_cross_crate_edges() {
        let vs = analyze(&[
            (
                "crates/nn/src/kernel.rs",
                "pub fn hot(d: &mut [f32]) { par_row_blocks_mut(d, 1, &split_even(d.len(), 2), |_, _, _| {}); helper(); }\n",
            ),
            (
                "crates/datasets/src/util.rs",
                "pub fn helper() { deeper(); }\npub fn deeper() { x.unwrap(); }\n",
            ),
        ]);
        let hits = by_rule(&vs, RuleKind::PanicReachability);
        assert_eq!(hits.len(), 1, "transitive panic must be found: {vs:?}");
        assert!(hits[0].message.contains("hot → helper → deeper"), "{}", hits[0].message);
        assert_eq!(hits[0].file, "crates/datasets/src/util.rs");
    }

    #[test]
    fn unreachable_bang_is_not_a_panic_source() {
        let vs = analyze(&[(
            "crates/nn/src/kernel.rs",
            "pub fn hot(d: &mut [f32]) { par_chunks_mut(d, 2, |_, _, _| {}); let Some(x) = o else { unreachable!(\"proved\") }; }\n",
        )]);
        assert!(by_rule(&vs, RuleKind::PanicReachability).is_empty());
    }

    #[test]
    fn determinism_taint_flows_through_calls_and_lets() {
        let vs = analyze(&[(
            "crates/train/src/sched.rs",
            "fn jitter() -> f32 { let t = std::env::var(\"J\").ok(); parse(t) }\n\
             pub fn blend(xs: &[f32]) -> f32 { let j = jitter(); let scaled = scale_all(xs, j); amud_par::ordered_sum(&scaled) }\n",
        )]);
        let hits = by_rule(&vs, RuleKind::DeterminismTaint);
        assert_eq!(hits.len(), 1, "{vs:?}");
        assert!(hits[0].message.contains("ordered_sum"));
    }

    #[test]
    fn shape_pure_thread_budget_is_not_taint() {
        let vs = analyze(&[(
            "crates/train/src/sched.rs",
            "pub fn reduce(xs: &[f32]) -> f32 { let n = max_threads(); let parts = split_even(xs.len(), n); amud_par::ordered_sum(xs) }\n",
        )]);
        assert!(by_rule(&vs, RuleKind::DeterminismTaint).is_empty(), "{vs:?}");
    }

    #[test]
    fn par_disjointness_accepts_providers_and_proofs_only() {
        let bad = analyze(&[(
            "crates/nn/src/k.rs",
            "pub fn f(d: &mut [f32], mid: usize) { let parts = vec![0..mid, mid..d.len()]; amud_par::par_row_blocks_mut(d, 1, &parts, |_, _, _| {}); }\n",
        )]);
        assert_eq!(by_rule(&bad, RuleKind::ParDisjointness).len(), 1, "{bad:?}");

        let derived = analyze(&[(
            "crates/nn/src/k.rs",
            "pub fn f(d: &mut [f32]) { let parts = split_even(d.len(), 4); amud_par::par_row_blocks_mut(d, 1, &parts, |_, _, _| {}); }\n",
        )]);
        assert!(by_rule(&derived, RuleKind::ParDisjointness).is_empty(), "{derived:?}");

        let helper = analyze(&[(
            "crates/nn/src/k.rs",
            "fn tile_parts(n: usize) -> Vec<Range<usize>> { split_even(n, 4) }\n\
             pub fn f(d: &mut [f32]) { amud_par::par_row_blocks_mut(d, 1, &tile_parts(d.len()), |_, _, _| {}); }\n",
        )]);
        assert!(by_rule(&helper, RuleKind::ParDisjointness).is_empty(), "{helper:?}");

        let proved = analyze(&[(
            "crates/nn/src/k.rs",
            "pub fn f(d: &mut [f32]) { // DISJOINT: singleton ranges b..b+1 tile 0..n ascending without overlap\n let parts = vec![0..1]; amud_par::par_row_blocks_mut(d, 1, &parts, |_, _, _| {}); }\n",
        )]);
        assert!(by_rule(&proved, RuleKind::ParDisjointness).is_empty(), "{proved:?}");
    }

    #[test]
    fn taint_pure_comment_exempts_binding_and_return() {
        // Without the comment, `preset` (env-derived) reaching the fold is
        // a violation; with an audited TAINT-PURE it is sanctioned.
        let flagged = analyze(&[(
            "crates/train/src/sched.rs",
            "pub fn blend(xs: &[f32]) -> f32 { let preset = std::env::var(\"P\").ok(); amud_par::ordered_sum(pick(xs, preset)) }\n",
        )]);
        assert_eq!(by_rule(&flagged, RuleKind::DeterminismTaint).len(), 1, "{flagged:?}");

        let exempt_local = analyze(&[(
            "crates/train/src/sched.rs",
            "pub fn blend(xs: &[f32]) -> f32 {\n\
             // TAINT-PURE(preset): env var only selects among fixed presets, never enters values\n\
             let preset = std::env::var(\"P\").ok(); amud_par::ordered_sum(pick(xs, preset)) }\n",
        )]);
        assert!(by_rule(&exempt_local, RuleKind::DeterminismTaint).is_empty(), "{exempt_local:?}");

        // Naming the function itself exempts its return value at call sites.
        let exempt_fn = analyze(&[(
            "crates/train/src/sched.rs",
            "fn env_scale() -> Scale {\n\
             // TAINT-PURE(env_scale): the env var selects among fixed preset structs\n\
             match std::env::var(\"S\").as_deref() { Ok(\"tiny\") => Scale::tiny(), _ => Scale::default() } }\n\
             pub fn blend(xs: &[f32]) -> f32 { let s = env_scale(); amud_par::ordered_sum(pick(xs, s)) }\n",
        )]);
        assert!(by_rule(&exempt_fn, RuleKind::DeterminismTaint).is_empty(), "{exempt_fn:?}");

        // A thin reason does not buy the exemption.
        let thin = analyze(&[(
            "crates/train/src/sched.rs",
            "pub fn blend(xs: &[f32]) -> f32 {\n\
             // TAINT-PURE(preset): ok\n\
             let preset = std::env::var(\"P\").ok(); amud_par::ordered_sum(pick(xs, preset)) }\n",
        )]);
        assert_eq!(by_rule(&thin, RuleKind::DeterminismTaint).len(), 1, "{thin:?}");
    }

    #[test]
    fn error_taxonomy_flags_stringly_public_results() {
        let vs = analyze(&[(
            "crates/datasets/src/load.rs",
            "pub fn load(p: &str) -> Result<Data, String> { imp(p) }\n\
             pub(crate) fn internal(p: &str) -> Result<Data, String> { imp(p) }\n\
             pub fn typed(p: &str) -> Result<Data, DatasetError> { imp(p) }\n",
        )]);
        let hits = by_rule(&vs, RuleKind::ErrorTaxonomy);
        assert_eq!(hits.len(), 1, "{vs:?}");
        assert!(hits[0].message.contains("`load`"));
    }
}
