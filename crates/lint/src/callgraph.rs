//! Name-resolved call graph over the [`SymbolTable`], plus BFS
//! reachability with path reconstruction.
//!
//! A call site is a live identifier directly followed by `(` that is not
//! a keyword, not a macro invocation (`name!`), and not the definition
//! site itself (`fn name(`). Each site resolves to *every* workspace
//! function with that bare name — over-approximate by design (see
//! [`crate::symbols`]): a safety pass would rather follow a spurious
//! same-name edge than miss a real one.
//!
//! One refinement keeps the over-approximation useful: a path-qualified
//! call `Type::name(…)` resolves only to symbols defined in a file that
//! has an `impl` header mentioning `Type`, and `Self::name(…)` resolves
//! only within the caller's own file. Without this, every `Vec::new()`
//! in a kernel would alias every `new` constructor in the workspace and
//! reachability would degenerate to "everything".

use crate::index::{next_code, prev_code, FileIndex};
use crate::symbols::SymbolTable;
use crate::tokenizer::TokKind;
use std::collections::VecDeque;

/// Identifiers that look like calls lexically but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "as", "in", "move", "impl", "struct", "enum", "trait", "use", "pub", "mod", "where", "unsafe",
    "ref", "mut", "dyn", "box", "crate", "self", "Self", "super", "static", "const", "type",
    "union", "async", "await", "extern", "true", "false",
];

/// One call site inside a function body.
pub struct CallSite {
    /// Bare callee name as written.
    pub callee: String,
    /// Token index of the callee identifier in the owning file.
    pub at: usize,
    /// Workspace symbols this site resolves to (qualifier-filtered),
    /// sorted. Empty for calls into std / compat / closures.
    pub targets: Vec<usize>,
}

/// The workspace call graph: per-symbol call sites and resolved edges.
pub struct CallGraph {
    /// Call sites per caller symbol id (token order).
    pub sites: Vec<Vec<CallSite>>,
    /// Resolved callee symbol ids per caller, sorted and deduplicated.
    pub callees: Vec<Vec<usize>>,
}

/// BFS result over the graph: which symbols are reachable from the root
/// set, and through whom (for diagnostic call paths).
pub struct Reachability {
    pub visited: Vec<bool>,
    /// `pred[s]` is the caller through which BFS first reached `s`.
    /// Meaningless for roots and unvisited symbols.
    pred: Vec<usize>,
    roots: Vec<bool>,
}

/// Uppercase identifiers appearing in the file's `impl` headers (type
/// names, trait names, generic bounds — an over-approximate "this file
/// implements something for `T`" set used to filter `T::name(…)` calls).
fn impl_header_types(ix: &FileIndex) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for i in 0..ix.toks.len() {
        if !ix.is_live(i) || !ix.toks[i].is_ident("impl") {
            continue;
        }
        let mut j = i + 1;
        while j < ix.toks.len() {
            let t = &ix.toks[j];
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            if t.kind == TokKind::Ident && t.text.chars().next().is_some_and(char::is_uppercase) {
                out.insert(t.text.clone());
            }
            j += 1;
        }
    }
    out
}

impl CallGraph {
    /// Extracts call sites from every symbol body and resolves them.
    pub fn build(files: &[(String, FileIndex)], syms: &SymbolTable) -> CallGraph {
        let impl_types: Vec<std::collections::BTreeSet<String>> =
            files.iter().map(|(_, ix)| impl_header_types(ix)).collect();
        let mut sites: Vec<Vec<CallSite>> = Vec::with_capacity(syms.len());
        let mut callees: Vec<Vec<usize>> = Vec::with_capacity(syms.len());
        for s in &syms.symbols {
            let ix = &files[s.file].1;
            let mut my_sites = Vec::new();
            let mut my_callees = Vec::new();
            for i in s.body.clone() {
                if !ix.is_live(i) || ix.toks[i].kind != TokKind::Ident {
                    continue;
                }
                let name = ix.toks[i].text.as_str();
                if NON_CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                let Some(nx) = next_code(&ix.toks, i + 1) else { continue };
                if !ix.toks[nx].is_punct("(") {
                    continue; // macros (`name!`) and turbofish paths drop out here
                }
                if prev_code(&ix.toks, i).is_some_and(|p| ix.toks[p].is_ident("fn")) {
                    continue; // a nested fn's definition site, not a call
                }
                // `Q::name(…)` — use the path qualifier to filter
                // candidates; `Vec::new()` must not alias workspace `new`s.
                let qualifier = prev_code(&ix.toks, i)
                    .filter(|&p| ix.toks[p].is_punct("::"))
                    .and_then(|p| prev_code(&ix.toks, p))
                    .filter(|&q| ix.toks[q].kind == TokKind::Ident)
                    .map(|q| ix.toks[q].text.as_str());
                let mut targets = Vec::new();
                for &t in syms.resolve(name) {
                    let keep = match qualifier {
                        Some("Self") => syms.get(t).file == s.file,
                        Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                            impl_types[syms.get(t).file].contains(q)
                        }
                        // Lowercase qualifiers are module paths — those
                        // rarely collide, so bare-name resolution stands.
                        _ => true,
                    };
                    if keep {
                        targets.push(t);
                        if t != s.id {
                            my_callees.push(t);
                        }
                    }
                }
                my_sites.push(CallSite { callee: name.to_string(), at: i, targets });
            }
            my_callees.sort_unstable();
            my_callees.dedup();
            sites.push(my_sites);
            callees.push(my_callees);
        }
        CallGraph { sites, callees }
    }

    /// Breadth-first reachability from `roots` (deterministic: roots are
    /// visited in sorted order, neighbours in ascending id order).
    pub fn reachable_from(&self, roots: &[usize]) -> Reachability {
        let n = self.callees.len();
        let mut visited = vec![false; n];
        let mut pred = vec![0usize; n];
        let mut is_root = vec![false; n];
        let mut sorted: Vec<usize> = roots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut queue = VecDeque::new();
        for &r in &sorted {
            visited[r] = true;
            is_root[r] = true;
            queue.push_back(r);
        }
        while let Some(s) = queue.pop_front() {
            for &t in &self.callees[s] {
                if !visited[t] {
                    visited[t] = true;
                    pred[t] = s;
                    queue.push_back(t);
                }
            }
        }
        Reachability { visited, pred, roots: is_root }
    }
}

impl Reachability {
    /// The call path `root → … → target` as symbol names, for diagnostics.
    /// Empty when `target` is unreachable.
    pub fn path_to(&self, target: usize, syms: &SymbolTable) -> Vec<String> {
        if !self.visited[target] {
            return Vec::new();
        }
        let mut chain = vec![target];
        let mut cur = target;
        while !self.roots[cur] {
            cur = self.pred[cur];
            chain.push(cur);
            if chain.len() > self.visited.len() {
                break; // defensive: cannot happen with a well-formed pred map
            }
        }
        chain.reverse();
        chain.into_iter().map(|id| syms.get(id).name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileIndex;
    use crate::tokenizer::tokenize;

    fn graph(files: &[(&str, &str)]) -> (Vec<(String, FileIndex)>, SymbolTable) {
        let files: Vec<(String, FileIndex)> = files
            .iter()
            .map(|(label, src)| (label.to_string(), FileIndex::new(tokenize(src))))
            .collect();
        let table = SymbolTable::build(&files);
        (files, table)
    }

    fn id(t: &SymbolTable, name: &str) -> usize {
        t.resolve(name)[0]
    }

    #[test]
    fn cross_crate_calls_resolve() {
        let (files, t) = graph(&[
            ("crates/nn/src/a.rs", "pub fn kernel() { helper(1); }\n"),
            ("crates/graph/src/b.rs", "pub fn helper(x: usize) -> usize { x }\n"),
        ]);
        let cg = CallGraph::build(&files, &t);
        assert_eq!(cg.callees[id(&t, "kernel")], vec![id(&t, "helper")]);
    }

    #[test]
    fn macros_keywords_and_defs_are_not_calls() {
        let (files, t) = graph(&[(
            "crates/nn/src/a.rs",
            "pub fn f() { if (x) { panic!(\"no\"); } g(); fn g() {} }\npub fn h() { g(); }\n",
        )]);
        let cg = CallGraph::build(&files, &t);
        let f_sites: Vec<&str> = cg.sites[id(&t, "f")].iter().map(|s| s.callee.as_str()).collect();
        assert_eq!(f_sites, vec!["g"], "if/panic!/fn-def must not register as calls");
        assert_eq!(cg.callees[id(&t, "h")], vec![id(&t, "g")]);
    }

    #[test]
    fn method_calls_resolve_by_bare_name_to_all_candidates() {
        let (files, t) = graph(&[
            ("crates/nn/src/a.rs", "pub fn f(m: &M) { m.scale(2.0); }\n"),
            ("crates/nn/src/m.rs", "impl M { pub fn scale(&self, s: f32) {} }\n"),
            ("crates/graph/src/n.rs", "impl N { pub fn scale(&self, s: f32) {} }\n"),
        ]);
        let cg = CallGraph::build(&files, &t);
        assert_eq!(cg.callees[id(&t, "f")].len(), 2, "bare-name resolution is deliberately plural");
    }

    #[test]
    fn qualified_calls_filter_by_impl_header() {
        let (files, t) = graph(&[
            (
                "crates/nn/src/a.rs",
                "pub fn f() { Vec::new(); DenseMatrix::new(3); }\n",
            ),
            (
                "crates/nn/src/m.rs",
                "impl DenseMatrix {\n    pub fn new(n: usize) -> Self { Self::init(n) }\n    fn init(n: usize) -> Self { todo_impl() }\n}\n",
            ),
            ("crates/models/src/g.rs", "impl Gprgnn {\n    pub fn new(k: usize) -> Self { x }\n}\n"),
        ]);
        let cg = CallGraph::build(&files, &t);
        let f_callees: Vec<&str> =
            cg.callees[id(&t, "f")].iter().map(|&c| t.get(c).label.as_str()).collect();
        assert_eq!(
            f_callees,
            vec!["crates/nn/src/m.rs"],
            "Vec::new resolves nowhere; DenseMatrix::new only to the impl's file"
        );
        let new_dm = t
            .resolve("new")
            .iter()
            .copied()
            .find(|&c| t.get(c).label == "crates/nn/src/m.rs")
            .expect("DenseMatrix::new indexed");
        assert_eq!(
            cg.callees[new_dm],
            vec![id(&t, "init")],
            "Self::init stays inside the defining file"
        );
    }

    #[test]
    fn reachability_finds_transitive_paths() {
        let (files, t) = graph(&[(
            "crates/nn/src/a.rs",
            "pub fn root() { mid(); }\npub fn mid() { leaf(); }\npub fn leaf() {}\npub fn island() {}\n",
        )]);
        let cg = CallGraph::build(&files, &t);
        let reach = cg.reachable_from(&[id(&t, "root")]);
        assert!(reach.visited[id(&t, "leaf")]);
        assert!(!reach.visited[id(&t, "island")]);
        assert_eq!(reach.path_to(id(&t, "leaf"), &t), vec!["root", "mid", "leaf"]);
        assert_eq!(reach.path_to(id(&t, "root"), &t), vec!["root"]);
        assert!(reach.path_to(id(&t, "island"), &t).is_empty());
    }
}
